#!/usr/bin/env bash
# The consolidated lint gate: one entry point for every static check,
# identical locally and in CI.
#
#   gofmt       formatting (fails listing the offending files)
#   go vet      the stock correctness checks
#   staticcheck honnef.co analyses (skipped locally when the binary is
#               absent; REQUIRED in CI, where the workflow installs it)
#   tcvet       the project-invariant analyzer suite (cmd/tcvet):
#               layering, injected clocks, drained response bodies,
#               typed wire errors, the metric catalog
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "$unformatted"
    echo "FAIL: gofmt the files above"
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ -n "${CI:-}" ]; then
    echo "FAIL: staticcheck is required in CI but is not installed"
    exit 1
else
    echo "skipped (staticcheck not installed; CI runs it)"
fi

echo "== tcvet"
go run ./cmd/tcvet

echo "lint: all checks passed"
