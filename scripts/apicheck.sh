#!/usr/bin/env bash
# API-stability gate for the public facade: the rendered documentation
# of pkg/tcq (go doc -all: every exported symbol, signature and doc
# comment) is committed as tcq.api, and CI fails when the surface
# drifts without the golden being regenerated. This is the
# zero-dependency counterpart of apidiff — signature changes, removed
# symbols and doc rewrites all show up in the diff.
#
# Usage:
#   scripts/apicheck.sh            # check (CI gate)
#   scripts/apicheck.sh -update    # regenerate tcq.api after a reviewed change
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go doc -all repro/pkg/tcq >"$tmp"

if [ "${1:-}" = "-update" ]; then
    cp "$tmp" tcq.api
    echo "tcq.api regenerated"
    exit 0
fi

if ! diff -u tcq.api "$tmp"; then
    echo
    echo "FAIL: the public pkg/tcq API drifted from the committed tcq.api golden."
    echo "If the change is intentional, regenerate with: scripts/apicheck.sh -update"
    exit 1
fi
echo "pkg/tcq API matches tcq.api"
