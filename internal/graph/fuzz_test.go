package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary text to the graph parser: it must never
// panic, and any graph it accepts must survive a write/read round trip.
// (Seed corpus only under plain `go test`; run `go test -fuzz=FuzzRead
// ./internal/graph` to explore.)
func FuzzRead(f *testing.F) {
	f.Add("node 1 0 0\nedge 1 2 1.5\n")
	f.Add("# comment\n\nedge 3 4\n")
	f.Add("node 1 0.5 -2\nnode 2 3 4\nedge 1 2 2.25\nedge 2 1 1\n")
	f.Add("edge 1 1 0\n")
	f.Add("node -5 1e300 -1e300\n")
	f.Add("bogus\n")
	f.Add("edge a b c\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed the graph: %v vs %v", back, g)
		}
	})
}
