package graph

// StronglyConnectedComponents returns the strongly connected components
// of the directed graph in reverse topological order of the condensation
// (every edge of the condensation points from a later component to an
// earlier one in the returned slice). Each component is sorted
// ascending. The algorithm is Tarjan's, iterative to survive deep
// recursion on path graphs.
//
// SCC condensation is the classic preprocessing step for transitive
// closure on cyclic graphs — all members of a component reach exactly
// the same nodes — and package tc builds its condensation closure on
// it. The bitset kernel (internal/tc/bitset.go) carries a dense-index
// mirror of this algorithm; a low-link fix here applies there too.
func (g *Graph) StronglyConnectedComponents() [][]NodeID {
	nodes := g.Nodes()
	index := make(map[NodeID]int, len(nodes))
	low := make(map[NodeID]int, len(nodes))
	onStack := make(map[NodeID]bool, len(nodes))
	var stack []NodeID
	var comps [][]NodeID
	next := 0

	type frame struct {
		node NodeID
		ei   int // next out-edge index to explore
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		callStack := []frame{{node: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			out := g.Out(f.node)
			advanced := false
			for f.ei < len(out) {
				w := out[f.ei].To
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.node is finished.
			v := f.node
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, SortNodeIDs(comp))
			}
		}
	}
	return comps
}

// Condensation returns the DAG of strongly connected components: a new
// graph with one node per component (IDs are component indices into the
// returned components slice) and an edge c1→c2 whenever some original
// edge crosses from component c1 to component c2. Edge weights are the
// minimum crossing weight.
func (g *Graph) Condensation() (dag *Graph, comps [][]NodeID, compOf map[NodeID]int) {
	comps = g.StronglyConnectedComponents()
	compOf = make(map[NodeID]int, g.NumNodes())
	for ci, comp := range comps {
		for _, id := range comp {
			compOf[id] = ci
		}
	}
	dag = New()
	for ci := range comps {
		dag.AddNode(NodeID(ci), Coord{})
	}
	best := make(map[[2]int]float64)
	for _, e := range g.Edges() {
		cf, ct := compOf[e.From], compOf[e.To]
		if cf == ct {
			continue
		}
		key := [2]int{cf, ct}
		if w, ok := best[key]; !ok || e.Weight < w {
			best[key] = e.Weight
		}
	}
	for key, w := range best {
		dag.AddEdge(Edge{From: NodeID(key[0]), To: NodeID(key[1]), Weight: w})
	}
	return dag, comps, compOf
}
