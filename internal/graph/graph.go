// Package graph provides the directed weighted graph substrate used
// throughout the reproduction of Houtsma, Apers and Schipper,
// "Data fragmentation for parallel transitive closure strategies"
// (ICDE 1993).
//
// The paper models a connection network as a relation R whose tuples are
// the edges of a directed graph, possibly with an associated weight, and
// whose nodes carry coordinates (used both by the graph generator of §4.1
// and by the topology-aware fragmentation algorithms of §3). This package
// supplies that graph: nodes with (x, y) coordinates, weighted directed
// edges, and the traversal and metric algorithms the fragmentation and
// transitive-closure layers are built on.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a graph. IDs are opaque to the algorithms;
// the generator assigns consecutive integers but nothing relies on that.
type NodeID int

// Coord is the planar position of a node. The ICDE'93 generator spreads
// coordinates evenly over an interval (§4.1) and the linear fragmentation
// algorithm (§3.3) and the distributed-centers variant (§4.2.1) consume
// them.
type Coord struct {
	X, Y float64
}

// Edge is a directed weighted edge; it corresponds to one tuple of the
// base relation R of the paper ("each tuple represents an edge of the
// graph, possibly with an associated weight").
type Edge struct {
	From   NodeID
	To     NodeID
	Weight float64
}

// Reverse returns the edge with endpoints swapped and the same weight.
func (e Edge) Reverse() Edge { return Edge{From: e.To, To: e.From, Weight: e.Weight} }

// Graph is a directed weighted graph with node coordinates. The zero
// value is not usable; use New.
//
// Graph is not safe for concurrent mutation; concurrent reads are safe.
// The disconnection set approach never mutates a graph after
// construction, so per-site goroutines share fragment graphs freely.
type Graph struct {
	coords map[NodeID]Coord
	out    map[NodeID][]Edge
	in     map[NodeID][]Edge
	edges  int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		coords: make(map[NodeID]Coord),
		out:    make(map[NodeID][]Edge),
		in:     make(map[NodeID][]Edge),
	}
}

// NewWithCapacity returns an empty graph with the node maps pre-sized
// for the given node count, so bulk loaders (the binary snapshot
// store) avoid the incremental map growth of a node-at-a-time build.
// The hint is only a hint; the graph grows past it normally.
func NewWithCapacity(nodes int) *Graph {
	if nodes < 0 {
		nodes = 0
	}
	return &Graph{
		coords: make(map[NodeID]Coord, nodes),
		out:    make(map[NodeID][]Edge, nodes),
		in:     make(map[NodeID][]Edge, nodes),
	}
}

// AddNode inserts (or repositions) a node with the given coordinates.
func (g *Graph) AddNode(id NodeID, c Coord) {
	if _, ok := g.coords[id]; !ok {
		g.out[id] = nil
		g.in[id] = nil
	}
	g.coords[id] = c
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.coords[id]
	return ok
}

// Coord returns the coordinates of id. Nodes added implicitly by AddEdge
// have the zero coordinate until repositioned.
func (g *Graph) Coord(id NodeID) Coord { return g.coords[id] }

// AddEdge inserts a directed edge. Unknown endpoints are added with zero
// coordinates. Parallel edges are permitted (the relational model allows
// duplicate connections with different weights); most callers avoid them.
func (g *Graph) AddEdge(e Edge) {
	if !g.HasNode(e.From) {
		g.AddNode(e.From, Coord{})
	}
	if !g.HasNode(e.To) {
		g.AddNode(e.To, Coord{})
	}
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To] = append(g.in[e.To], e)
	g.edges++
}

// InstallNode adds node id with coordinates c and its complete
// adjacency in one shot: out holds every edge leaving id, in every
// edge entering it. This is the bulk path for loaders and site
// builders that bucket an edge volume into contiguous per-node runs —
// a fixed handful of map writes per node instead of two map appends
// per edge. The caller guarantees id is not already a node, that both
// endpoints of every edge are (or will be) installed, and that the
// global out/in multisets agree. The slices are adopted, not copied;
// they may share backing arrays with other graphs, which is safe
// because nothing in this package mutates an installed adjacency list
// in place (updates rebuild copy-on-write) — callers clamp shared
// slices (s[:len:len]) so a later append reallocates.
func (g *Graph) InstallNode(id NodeID, c Coord, out, in []Edge) {
	g.coords[id] = c
	if len(out) > 0 {
		g.out[id] = out
	}
	if len(in) > 0 {
		g.in[id] = in
	}
	g.edges += len(out)
}

// AddBoth inserts the edge and its reverse: transportation networks
// (railways, roads) are symmetric, and the paper's example graphs are
// connection networks traversable in both directions.
func (g *Graph) AddBoth(e Edge) {
	g.AddEdge(e)
	g.AddEdge(e.Reverse())
}

// HasEdge reports whether at least one edge from 'from' to 'to' exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	for _, e := range g.out[from] {
		if e.To == to {
			return true
		}
	}
	return false
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.coords) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node IDs in ascending order. The deterministic order
// keeps every downstream algorithm reproducible for a fixed seed.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.coords))
	for id := range g.coords {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Edges returns a copy of all edges, ordered by (From, To, Weight).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for _, id := range g.Nodes() {
		es = append(es, g.out[id]...)
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	return es
}

// Out returns the outgoing edges of id. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of id. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// OutDegree returns the number of outgoing edges of id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of id.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Grade returns the grade of a node in the paper's sense (§3.1): the
// number of edges adjacent to it. For the symmetric graphs the paper
// studies this equals the undirected degree; for general directed graphs
// we count distinct neighbours reachable by either an in- or out-edge.
func (g *Graph) Grade(id NodeID) int {
	return len(g.undirectedNeighbors(id))
}

// undirectedNeighbors returns the set of nodes adjacent to id by an edge
// in either direction, excluding id itself (self-loops contribute no
// neighbour).
func (g *Graph) undirectedNeighbors(id NodeID) map[NodeID]struct{} {
	nbs := make(map[NodeID]struct{})
	for _, e := range g.out[id] {
		if e.To != id {
			nbs[e.To] = struct{}{}
		}
	}
	for _, e := range g.in[id] {
		if e.From != id {
			nbs[e.From] = struct{}{}
		}
	}
	return nbs
}

// Neighbors returns the distinct undirected neighbours of id in ascending
// order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	set := g.undirectedNeighbors(id)
	ids := make([]NodeID, 0, len(set))
	for n := range set {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of g. Adjacency lists are copied
// wholesale (one allocation per node, not one map operation per edge),
// so cloning is cheap enough for the hot construction paths — the
// per-site augmented graphs and the snapshot restore.
func (g *Graph) Clone() *Graph {
	c := NewWithCapacity(len(g.coords))
	for id, co := range g.coords {
		c.coords[id] = co
	}
	for id, es := range g.out {
		c.out[id] = append([]Edge(nil), es...)
	}
	for id, es := range g.in {
		c.in[id] = append([]Edge(nil), es...)
	}
	c.edges = g.edges
	return c
}

// CloneShared returns a graph equal to g whose adjacency lists share
// g's backing arrays, each clamped to its length so a later AddEdge on
// the clone reallocates instead of writing into the shared array. This
// is the cheap base for overlay graphs (the per-site augmented search
// graphs) that add a few edges on top of a large shared body; like
// every graph, the clone's installed lists must never be edited in
// place.
func (g *Graph) CloneShared() *Graph {
	c := NewWithCapacity(len(g.coords))
	for id, co := range g.coords {
		c.coords[id] = co
	}
	for id, es := range g.out {
		c.out[id] = es[:len(es):len(es)]
	}
	for id, es := range g.in {
		c.in[id] = es[:len(es):len(es)]
	}
	c.edges = g.edges
	return c
}

// Subgraph returns the graph induced by the given edge set: it contains
// exactly those edges plus their endpoints (with coordinates copied from
// g). This is how a fragment R_i induces the subgraph G_i of the paper.
func (g *Graph) Subgraph(edges []Edge) *Graph {
	// Pre-size for the sparse-graph common case (average degree ≥ 2)
	// to skip most incremental map growth, and write the maps directly
	// — endpoint re-validation per edge would double the map traffic
	// on a path that runs once per fragment per (re)build.
	s := NewWithCapacity(len(edges) / 2)
	for _, e := range edges {
		s.coords[e.From] = g.coords[e.From]
		s.coords[e.To] = g.coords[e.To]
		s.out[e.From] = append(s.out[e.From], e)
		s.in[e.To] = append(s.in[e.To], e)
	}
	s.edges = len(edges)
	return s
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d}", g.NumNodes(), g.NumEdges())
}
