package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: 0, To: 1, Weight: 1})
	g.AddEdge(Edge{From: 1, To: 2, Weight: 1})
	g.AddEdge(Edge{From: 2, To: 0, Weight: 1})
	g.AddEdge(Edge{From: 2, To: 3, Weight: 1})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	// Reverse topological order: the sink {3} first.
	if !reflect.DeepEqual(comps[0], []NodeID{3}) {
		t.Errorf("first component = %v, want [3]", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []NodeID{0, 1, 2}) {
		t.Errorf("second component = %v, want [0 1 2]", comps[1])
	}
}

func TestSCCDAGIsSingletons(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: 0, To: 1, Weight: 1})
	g.AddEdge(Edge{From: 1, To: 2, Weight: 1})
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Errorf("DAG should give singleton components: %v", comps)
	}
}

func TestSCCDeepPathNoOverflow(t *testing.T) {
	// 50k-node path: the iterative Tarjan must not blow the stack.
	g := New()
	const n = 50000
	for i := 0; i+1 < n; i++ {
		g.AddEdge(Edge{From: NodeID(i), To: NodeID(i + 1), Weight: 1})
	}
	comps := g.StronglyConnectedComponents()
	if len(comps) != n {
		t.Errorf("components = %d, want %d", len(comps), n)
	}
}

func TestCondensation(t *testing.T) {
	g := New()
	// Two 2-cycles joined by one edge.
	g.AddBoth(Edge{From: 0, To: 1, Weight: 1})
	g.AddBoth(Edge{From: 10, To: 11, Weight: 1})
	g.AddEdge(Edge{From: 1, To: 10, Weight: 7})
	dag, comps, compOf := g.Condensation()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if dag.NumNodes() != 2 || dag.NumEdges() != 1 {
		t.Fatalf("condensation = %v", dag)
	}
	e := dag.Edges()[0]
	if e.Weight != 7 {
		t.Errorf("crossing weight = %v, want 7", e.Weight)
	}
	if compOf[0] != compOf[1] || compOf[10] != compOf[11] || compOf[0] == compOf[10] {
		t.Errorf("compOf = %v", compOf)
	}
}

// TestPropertySCCPartition: components partition the node set, members
// of one component reach each other, and the condensation is acyclic.
func TestPropertySCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i), Coord{})
		}
		for k := 0; k < n*2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				g.AddEdge(Edge{From: NodeID(i), To: NodeID(j), Weight: 1})
			}
		}
		comps := g.StronglyConnectedComponents()
		seen := make(map[NodeID]bool)
		total := 0
		for _, comp := range comps {
			total += len(comp)
			for _, id := range comp {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
			// Mutual reachability within the component.
			if len(comp) > 1 {
				r := g.Reachable(comp[0])
				for _, id := range comp[1:] {
					if _, ok := r[id]; !ok {
						return false
					}
					back := g.Reachable(id)
					if _, ok := back[comp[0]]; !ok {
						return false
					}
				}
			}
		}
		if total != g.NumNodes() {
			return false
		}
		// The condensation has no cycle: every SCC of it is a singleton.
		dag, _, _ := g.Condensation()
		for _, c := range dag.StronglyConnectedComponents() {
			if len(c) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
