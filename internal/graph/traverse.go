package graph

import (
	"container/heap"
	"math"
	"sort"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// BFSLevels returns, for every node reachable from the sources by
// directed edges, its hop distance (level) from the nearest source.
// Sources themselves are at level 0.
func (g *Graph) BFSLevels(sources ...NodeID) map[NodeID]int {
	levels := make(map[NodeID]int)
	frontier := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if !g.HasNode(s) {
			continue
		}
		if _, seen := levels[s]; !seen {
			levels[s] = 0
			frontier = append(frontier, s)
		}
	}
	for depth := 1; len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for _, e := range g.out[u] {
				if _, seen := levels[e.To]; !seen {
					levels[e.To] = depth
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return levels
}

// UndirectedBFSLevels is BFSLevels over the underlying undirected graph
// (edges traversable in both directions). The center-based algorithm's
// status score and the generator's cluster checks use undirected
// distances, matching the symmetric transportation networks of the paper.
func (g *Graph) UndirectedBFSLevels(sources ...NodeID) map[NodeID]int {
	levels := make(map[NodeID]int)
	frontier := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if !g.HasNode(s) {
			continue
		}
		if _, seen := levels[s]; !seen {
			levels[s] = 0
			frontier = append(frontier, s)
		}
	}
	for depth := 1; len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for n := range g.undirectedNeighbors(u) {
				if _, seen := levels[n]; !seen {
					levels[n] = depth
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	return levels
}

// Reachable returns the set of nodes reachable from the sources by
// directed edges, including the sources.
func (g *Graph) Reachable(sources ...NodeID) map[NodeID]struct{} {
	set := make(map[NodeID]struct{})
	for id := range g.BFSLevels(sources...) {
		set[id] = struct{}{}
	}
	return set
}

// ConnectedComponents returns the weakly connected components of g, each
// as an ascending slice of node IDs; components are ordered by their
// smallest member.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make(map[NodeID]struct{})
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if _, ok := seen[start]; ok {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[start] = struct{}{}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for n := range g.undirectedNeighbors(u) {
				if _, ok := seen[n]; !ok {
					seen[n] = struct{}{}
					stack = append(stack, n)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a binary min-heap of pqItem ordered by dist.
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPaths runs Dijkstra from source over the directed edges and
// returns the distance and predecessor maps. Nodes absent from the
// distance map are unreachable. Negative weights are not supported (the
// paper's path problems are cost networks with non-negative costs).
func (g *Graph) ShortestPaths(source NodeID) (dist map[NodeID]float64, pred map[NodeID]NodeID) {
	dist = make(map[NodeID]float64)
	pred = make(map[NodeID]NodeID)
	if !g.HasNode(source) {
		return dist, pred
	}
	dist[source] = 0
	q := &pq{{node: source, dist: 0}}
	done := make(map[NodeID]struct{})
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if _, ok := done[it.node]; ok {
			continue
		}
		done[it.node] = struct{}{}
		for _, e := range g.out[it.node] {
			nd := it.dist + e.Weight
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				pred[e.To] = it.node
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, pred
}

// ShortestPathsMulti runs Dijkstra from a set of sources with given
// initial costs: dist[v] = min over sources s of (seed[s] + d(s, v)).
// It is the primitive behind pipelined chain evaluation, where the
// running cost vector of the previous fragments seeds the next
// fragment's search.
func (g *Graph) ShortestPathsMulti(seeds map[NodeID]float64) (dist map[NodeID]float64, pred map[NodeID]NodeID) {
	dist = make(map[NodeID]float64)
	pred = make(map[NodeID]NodeID)
	q := &pq{}
	for s, c := range seeds {
		if !g.HasNode(s) || c < 0 {
			continue
		}
		if old, ok := dist[s]; !ok || c < old {
			dist[s] = c
		}
	}
	for s, c := range dist {
		heap.Push(q, pqItem{node: s, dist: c})
	}
	done := make(map[NodeID]struct{})
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if _, ok := done[it.node]; ok {
			continue
		}
		if it.dist > dist[it.node] {
			continue
		}
		done[it.node] = struct{}{}
		for _, e := range g.out[it.node] {
			nd := it.dist + e.Weight
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				pred[e.To] = it.node
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, pred
}

// Distance returns the shortest-path cost from 'from' to 'to', or Inf if
// unreachable.
func (g *Graph) Distance(from, to NodeID) float64 {
	dist, _ := g.ShortestPaths(from)
	if d, ok := dist[to]; ok {
		return d
	}
	return Inf
}

// PathTo reconstructs the node sequence of a shortest path from the
// predecessor map returned by ShortestPaths. It returns nil if 'to' was
// unreachable.
func PathTo(source, to NodeID, dist map[NodeID]float64, pred map[NodeID]NodeID) []NodeID {
	if _, ok := dist[to]; !ok {
		return nil
	}
	var rev []NodeID
	for cur := to; ; {
		rev = append(rev, cur)
		if cur == source {
			break
		}
		p, ok := pred[cur]
		if !ok {
			return nil
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Diameter returns the longest shortest path in hops over directed
// edges, ignoring unreachable pairs ("the number of edges constituting
// the longest path", §2.2). The empty graph has diameter 0.
//
// This is the quantity that bounds the number of iterations of a
// semi-naive transitive-closure fixpoint, which is why fragment diameter
// drives the workload estimate of the center-based algorithm.
func (g *Graph) Diameter() int {
	maxHops := 0
	for _, s := range g.Nodes() {
		for _, lvl := range g.BFSLevels(s) {
			if lvl > maxHops {
				maxHops = lvl
			}
		}
	}
	return maxHops
}

// Eccentricity returns the maximum hop distance from id to any node
// reachable from it.
func (g *Graph) Eccentricity(id NodeID) int {
	max := 0
	for _, lvl := range g.BFSLevels(id) {
		if lvl > max {
			max = lvl
		}
	}
	return max
}

// EuclideanDistance returns the planar distance between the coordinates
// of two nodes; it is the d(p, q) of the generator's probability
// function P(p,q) = (c1/n²)·e^(−c2·d(p,q)) (§4.1).
func (g *Graph) EuclideanDistance(p, q NodeID) float64 {
	cp, cq := g.coords[p], g.coords[q]
	dx, dy := cp.X-cq.X, cp.Y-cq.Y
	return math.Sqrt(dx*dx + dy*dy)
}
