package graph

import "sort"

// StatusScore computes the weight the center-based fragmentation
// algorithm assigns to node i (§3.1):
//
//	grade(i) + a·Σ_j nb(j,1) + a²·Σ_j nb(j,2) + a³·Σ_j nb(j,3) + …
//
// where grade(i) is the number of edges adjacent to i, nb(j,d) is the
// grade of node j at d edges from i, and a < 1. The formula is a
// variation on Hoede's status score for actors in a social network
// (paper reference [9]); the paper truncates the sum at distance 3,
// which corresponds to depth = 3 here.
//
// Nodes with high status scores are "gravity points in the graph, very
// much like spiders in a web" and are the candidate centers from which
// fragments are grown.
func (g *Graph) StatusScore(i NodeID, a float64, depth int) float64 {
	score := float64(g.Grade(i))
	if depth <= 0 {
		return score
	}
	levels := g.UndirectedBFSLevels(i)
	factor := 1.0
	// Accumulate Σ nb(j,d) per distance ring, scaling by a^d.
	ringSum := make([]float64, depth+1)
	for j, d := range levels {
		if d >= 1 && d <= depth {
			ringSum[d] += float64(g.Grade(j))
		}
	}
	for d := 1; d <= depth; d++ {
		factor *= a
		score += factor * ringSum[d]
	}
	return score
}

// StatusScores returns the status score of every node.
func (g *Graph) StatusScores(a float64, depth int) map[NodeID]float64 {
	scores := make(map[NodeID]float64, g.NumNodes())
	for _, id := range g.Nodes() {
		scores[id] = g.StatusScore(id, a, depth)
	}
	return scores
}

// TopByStatus returns the n nodes with the highest status scores, best
// first. Ties break by ascending node ID so the selection is
// deterministic.
func (g *Graph) TopByStatus(n int, a float64, depth int) []NodeID {
	scores := g.StatusScores(a, depth)
	ids := g.Nodes()
	sort.SliceStable(ids, func(i, j int) bool {
		si, sj := scores[ids[i]], scores[ids[j]]
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}
