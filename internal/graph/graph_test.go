package graph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// line builds the directed path 0 -> 1 -> ... -> n-1 with unit weights.
func line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), Coord{X: float64(i)})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(Edge{From: NodeID(i), To: NodeID(i + 1), Weight: 1})
	}
	return g
}

// ringBoth builds the symmetric cycle of n nodes.
func ringBoth(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), Coord{})
	}
	for i := 0; i < n; i++ {
		g.AddBoth(Edge{From: NodeID(i), To: NodeID((i + 1) % n), Weight: 1})
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Diameter() != 0 {
		t.Errorf("empty graph diameter = %d, want 0", g.Diameter())
	}
	if comps := g.ConnectedComponents(); len(comps) != 0 {
		t.Errorf("empty graph components = %v, want none", comps)
	}
	if d := g.Distance(1, 2); !math.IsInf(d, 1) {
		t.Errorf("distance on empty graph = %v, want +Inf", d)
	}
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	g.AddNode(3, Coord{X: 1, Y: 2})
	if !g.HasNode(3) {
		t.Fatal("node 3 missing after AddNode")
	}
	if c := g.Coord(3); c.X != 1 || c.Y != 2 {
		t.Errorf("coord = %+v, want {1 2}", c)
	}
	g.AddEdge(Edge{From: 3, To: 7, Weight: 2.5})
	if !g.HasNode(7) {
		t.Error("AddEdge should implicitly add node 7")
	}
	if !g.HasEdge(3, 7) {
		t.Error("edge 3->7 missing")
	}
	if g.HasEdge(7, 3) {
		t.Error("edge 7->3 should not exist (directed)")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddBoth(t *testing.T) {
	g := New()
	g.AddBoth(Edge{From: 1, To: 2, Weight: 4})
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("AddBoth should add both directions")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{5, 1, 9, 3} {
		g.AddNode(id, Coord{})
	}
	got := g.Nodes()
	want := []NodeID{1, 3, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Nodes() = %v, want %v", got, want)
	}
}

func TestGradeAndNeighbors(t *testing.T) {
	g := New()
	// Star: center 0 connected symmetrically to 1..4.
	for i := 1; i <= 4; i++ {
		g.AddBoth(Edge{From: 0, To: NodeID(i), Weight: 1})
	}
	if got := g.Grade(0); got != 4 {
		t.Errorf("Grade(center) = %d, want 4", got)
	}
	if got := g.Grade(1); got != 1 {
		t.Errorf("Grade(leaf) = %d, want 1", got)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []NodeID{1, 2, 3, 4}) {
		t.Errorf("Neighbors(0) = %v", got)
	}
}

func TestGradeIgnoresSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: 1, To: 1})
	g.AddBoth(Edge{From: 1, To: 2})
	if got := g.Grade(1); got != 1 {
		t.Errorf("Grade with self loop = %d, want 1", got)
	}
}

func TestBFSLevelsLine(t *testing.T) {
	g := line(5)
	levels := g.BFSLevels(0)
	for i := 0; i < 5; i++ {
		if levels[NodeID(i)] != i {
			t.Errorf("level(%d) = %d, want %d", i, levels[NodeID(i)], i)
		}
	}
	// Directed: nothing reaches node 0 except itself.
	back := g.BFSLevels(4)
	if len(back) != 1 {
		t.Errorf("BFS from sink reached %d nodes, want 1", len(back))
	}
}

func TestBFSLevelsMultiSource(t *testing.T) {
	g := line(7)
	levels := g.BFSLevels(0, 4)
	if levels[5] != 1 {
		t.Errorf("level(5) = %d, want 1 (from source 4)", levels[5])
	}
	if levels[2] != 2 {
		t.Errorf("level(2) = %d, want 2 (from source 0)", levels[2])
	}
}

func TestBFSLevelsUnknownSource(t *testing.T) {
	g := line(3)
	if got := g.BFSLevels(99); len(got) != 0 {
		t.Errorf("BFS from unknown source returned %v", got)
	}
}

func TestUndirectedBFSLevels(t *testing.T) {
	g := line(5) // directed 0->...->4
	levels := g.UndirectedBFSLevels(4)
	if len(levels) != 5 {
		t.Fatalf("undirected BFS reached %d nodes, want 5", len(levels))
	}
	if levels[0] != 4 {
		t.Errorf("undirected level(0) = %d, want 4", levels[0])
	}
}

func TestReachable(t *testing.T) {
	g := line(4)
	g.AddNode(100, Coord{})
	r := g.Reachable(1)
	if _, ok := r[0]; ok {
		t.Error("node 0 should not be reachable from 1 in a directed line")
	}
	for _, id := range []NodeID{1, 2, 3} {
		if _, ok := r[id]; !ok {
			t.Errorf("node %d should be reachable from 1", id)
		}
	}
	if _, ok := r[100]; ok {
		t.Error("isolated node should not be reachable")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddBoth(Edge{From: 1, To: 2})
	g.AddBoth(Edge{From: 3, To: 4})
	g.AddNode(9, Coord{})
	comps := g.ConnectedComponents()
	want := [][]NodeID{{1, 2}, {3, 4}, {9}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
}

func TestShortestPathsTriangle(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: 1, To: 2, Weight: 1})
	g.AddEdge(Edge{From: 2, To: 3, Weight: 1})
	g.AddEdge(Edge{From: 1, To: 3, Weight: 5})
	dist, pred := g.ShortestPaths(1)
	if dist[3] != 2 {
		t.Errorf("dist(1,3) = %v, want 2 (via 2)", dist[3])
	}
	path := PathTo(1, 3, dist, pred)
	if !reflect.DeepEqual(path, []NodeID{1, 2, 3}) {
		t.Errorf("path = %v, want [1 2 3]", path)
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := line(3)
	g.AddNode(42, Coord{})
	dist, pred := g.ShortestPaths(0)
	if _, ok := dist[42]; ok {
		t.Error("isolated node should be absent from dist")
	}
	if p := PathTo(0, 42, dist, pred); p != nil {
		t.Errorf("PathTo unreachable = %v, want nil", p)
	}
	if d := g.Distance(0, 42); !math.IsInf(d, 1) {
		t.Errorf("Distance unreachable = %v, want +Inf", d)
	}
}

func TestDistanceSelf(t *testing.T) {
	g := line(3)
	if d := g.Distance(1, 1); d != 0 {
		t.Errorf("Distance(v,v) = %v, want 0", d)
	}
}

func TestDiameterLineAndRing(t *testing.T) {
	if d := line(6).Diameter(); d != 5 {
		t.Errorf("line(6) diameter = %d, want 5", d)
	}
	if d := ringBoth(8).Diameter(); d != 4 {
		t.Errorf("ring(8) diameter = %d, want 4", d)
	}
}

func TestEccentricity(t *testing.T) {
	g := line(5)
	if e := g.Eccentricity(0); e != 4 {
		t.Errorf("ecc(0) = %d, want 4", e)
	}
	if e := g.Eccentricity(4); e != 0 {
		t.Errorf("ecc(sink) = %d, want 0", e)
	}
}

func TestEuclideanDistance(t *testing.T) {
	g := New()
	g.AddNode(1, Coord{X: 0, Y: 0})
	g.AddNode(2, Coord{X: 3, Y: 4})
	if d := g.EuclideanDistance(1, 2); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := line(3)
	c := g.Clone()
	c.AddEdge(Edge{From: 2, To: 0, Weight: 1})
	if g.HasEdge(2, 0) {
		t.Error("mutating clone affected original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Errorf("clone edges = %d, original = %d", c.NumEdges(), g.NumEdges())
	}
}

func TestSubgraph(t *testing.T) {
	g := line(5)
	g.AddNode(0, Coord{X: -1, Y: 7})
	sub := g.Subgraph([]Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph = %v", sub)
	}
	if c := sub.Coord(0); c.X != -1 || c.Y != 7 {
		t.Errorf("subgraph should copy coordinates, got %+v", c)
	}
	if sub.HasNode(4) {
		t.Error("subgraph should not contain untouched nodes")
	}
}

func TestStatusScoreStar(t *testing.T) {
	// Star with center 0 and leaves 1..4. grade(0)=4; at distance 1 from 0
	// the leaves each have grade 1, so score(0) = 4 + a*4.
	g := New()
	for i := 1; i <= 4; i++ {
		g.AddBoth(Edge{From: 0, To: NodeID(i)})
	}
	a := 0.5
	got := g.StatusScore(0, a, 3)
	want := 4 + a*4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StatusScore(center) = %v, want %v", got, want)
	}
	// Leaf: grade 1, center at distance 1 has grade 4, three other leaves
	// at distance 2 have grade 1 each.
	gotLeaf := g.StatusScore(1, a, 3)
	wantLeaf := 1 + a*4 + a*a*3
	if math.Abs(gotLeaf-wantLeaf) > 1e-12 {
		t.Errorf("StatusScore(leaf) = %v, want %v", gotLeaf, wantLeaf)
	}
}

func TestStatusScoreDepthZero(t *testing.T) {
	g := ringBoth(5)
	if got := g.StatusScore(0, 0.5, 0); got != 2 {
		t.Errorf("depth-0 status = %v, want grade 2", got)
	}
}

func TestTopByStatusPrefersCenter(t *testing.T) {
	g := New()
	for i := 1; i <= 6; i++ {
		g.AddBoth(Edge{From: 0, To: NodeID(i)})
	}
	top := g.TopByStatus(1, 0.5, 3)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("TopByStatus = %v, want [0]", top)
	}
	all := g.TopByStatus(100, 0.5, 3)
	if len(all) != 7 {
		t.Errorf("TopByStatus(100) returned %d nodes, want all 7", len(all))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := New()
	g.AddNode(1, Coord{X: 0.5, Y: -2})
	g.AddNode(2, Coord{X: 3, Y: 4})
	g.AddNode(9, Coord{}) // isolated node must survive
	g.AddEdge(Edge{From: 1, To: 2, Weight: 2.25})
	g.AddEdge(Edge{From: 2, To: 1, Weight: 1})

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.NumNodes() != 3 || back.NumEdges() != 2 {
		t.Fatalf("round trip: %v", back)
	}
	if c := back.Coord(1); c.X != 0.5 || c.Y != -2 {
		t.Errorf("coord lost in round trip: %+v", c)
	}
	if !reflect.DeepEqual(back.Edges(), g.Edges()) {
		t.Errorf("edges differ after round trip:\n%v\n%v", back.Edges(), g.Edges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"unknown directive", "vertex 1 0 0\n"},
		{"node missing args", "node 1 0\n"},
		{"bad node id", "node x 0 0\n"},
		{"bad coordinate", "node 1 a 0\n"},
		{"edge missing args", "edge 1\n"},
		{"bad edge weight", "edge 1 2 w\n"},
		{"bad edge endpoint", "edge a 2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.input)); err == nil {
				t.Errorf("Read(%q) succeeded, want error", c.input)
			}
		})
	}
}

// errAfterReader yields its payload, then fails with a synthetic
// stream error — a transport failing mid-parse.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestReadErrorsReportLine: every parse failure names the offending
// line, so a bad row in a million-line file is findable.
func TestReadErrorsReportLine(t *testing.T) {
	in := "node 1 0 0\nnode 2 1 0\nedge 1 x\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("Read succeeded, want error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}
}

// TestReadStreamErrorHasLineContext: a reader failing mid-stream (a
// truncated pipe, a dying disk) reports where the scan stopped, not
// just the underlying error.
func TestReadStreamErrorHasLineContext(t *testing.T) {
	boom := errors.New("synthetic stream failure")
	_, err := Read(&errAfterReader{data: []byte("node 1 0 0\nnode 2 1 0\nedge 1 2 1\n"), err: boom})
	if err == nil {
		t.Fatal("Read succeeded, want error")
	}
	if !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), boom.Error()) {
		t.Errorf("error %q should name line 4 and the stream failure", err)
	}
}

func TestReadCommentsAndDefaults(t *testing.T) {
	in := "# a comment\n\nedge 1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	es := g.Edges()
	if len(es) != 1 || es[0].Weight != 1 {
		t.Errorf("edges = %v, want one unit-weight edge", es)
	}
}

// randomGraph builds a connected-ish random symmetric graph for property
// tests.
func randomGraph(rng *rand.Rand, n, extraEdges int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i), Coord{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.AddBoth(Edge{From: NodeID(i), To: NodeID(j), Weight: 1 + rng.Float64()*9})
	}
	for k := 0; k < extraEdges; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j && !g.HasEdge(NodeID(i), NodeID(j)) {
			g.AddBoth(Edge{From: NodeID(i), To: NodeID(j), Weight: 1 + rng.Float64()*9})
		}
	}
	return g
}

func TestPropertyDijkstraTriangleInequality(t *testing.T) {
	// d(s,v) <= d(s,u) + w(u,v) for every edge (u,v): the fixpoint
	// condition of shortest paths.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(30), rng.Intn(40))
		src := g.Nodes()[rng.Intn(g.NumNodes())]
		dist, _ := g.ShortestPaths(src)
		for _, e := range g.Edges() {
			du, okU := dist[e.From]
			dv, okV := dist[e.To]
			if okU && (!okV || dv > du+e.Weight+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSLevelsAreShortestHops(t *testing.T) {
	// On unit weights, Dijkstra distance equals BFS level.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(25)
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i), Coord{})
		}
		for k := 0; k < n*2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				g.AddEdge(Edge{From: NodeID(i), To: NodeID(j), Weight: 1})
			}
		}
		src := NodeID(rng.Intn(n))
		levels := g.BFSLevels(src)
		dist, _ := g.ShortestPaths(src)
		if len(levels) != len(dist) {
			return false
		}
		for id, lvl := range levels {
			if dist[id] != float64(lvl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTripPreservesGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(20), rng.Intn(20))
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(g.Edges(), back.Edges()) && back.NumNodes() == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestShortestPathsMulti(t *testing.T) {
	g := line(6)
	// Seeds 0 (cost 5) and 3 (cost 0): node 5 is cheaper via seed 3.
	dist, _ := g.ShortestPathsMulti(map[NodeID]float64{0: 5, 3: 0})
	if dist[5] != 2 {
		t.Errorf("dist(5) = %v, want 2 (via seed 3)", dist[5])
	}
	if dist[1] != 6 {
		t.Errorf("dist(1) = %v, want 6 (via seed 0)", dist[1])
	}
	// Unknown and negative seeds are ignored.
	dist, _ = g.ShortestPathsMulti(map[NodeID]float64{99: 0, 2: -1})
	if len(dist) != 0 {
		t.Errorf("invalid seeds produced %v", dist)
	}
}

func TestPropertyMultiSourceEqualsMinOfSingles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(15), rng.Intn(20))
		nodes := g.Nodes()
		seeds := make(map[NodeID]float64)
		for i := 0; i < 1+rng.Intn(3); i++ {
			seeds[nodes[rng.Intn(len(nodes))]] = float64(rng.Intn(10))
		}
		multi, _ := g.ShortestPathsMulti(seeds)
		for _, v := range nodes {
			want := math.Inf(1)
			for s, c := range seeds {
				dist, _ := g.ShortestPaths(s)
				if d, ok := dist[v]; ok && c+d < want {
					want = c + d
				}
			}
			got, ok := multi[v]
			if math.IsInf(want, 1) != !ok {
				return false
			}
			if ok && math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
