package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format understood by Write and Read is a line-oriented edge
// list with optional node-coordinate lines, friendly to shell tooling:
//
//	# comment
//	node <id> <x> <y>
//	edge <from> <to> <weight>
//
// Lines may omit the weight (default 1). The cmd/ tools exchange graphs
// in this format.

// Write serialises g to w in the text format. Nodes are written first so
// that coordinates survive a round trip even for isolated nodes.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, id := range g.Nodes() {
		c := g.Coord(id)
		if _, err := fmt.Fprintf(bw, "node %d %g %g\n", id, c.X, c.Y); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %d %d %g\n", e.From, e.To, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the text format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: node wants 3 args, got %d", lineNo, len(fields)-1)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[1], err)
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad x %q: %v", lineNo, fields[2], err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad y %q: %v", lineNo, fields[3], err)
			}
			g.AddNode(NodeID(id), Coord{X: x, Y: y})
		case "edge":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge wants 2 or 3 args, got %d", lineNo, len(fields)-1)
			}
			from, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad from %q: %v", lineNo, fields[1], err)
			}
			to, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad to %q: %v", lineNo, fields[2], err)
			}
			w := 1.0
			if len(fields) == 4 {
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[3], err)
				}
			}
			g.AddEdge(Edge{From: NodeID(from), To: NodeID(to), Weight: w})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		// Truncated streams and over-long lines surface here; the line
		// counter points at where the scan stopped.
		return nil, fmt.Errorf("graph: line %d: read: %v", lineNo+1, err)
	}
	return g, nil
}

// SortNodeIDs sorts a slice of node IDs in place and returns it, for
// deterministic printing by callers.
func SortNodeIDs(ids []NodeID) []NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
