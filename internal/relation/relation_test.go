package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func edgeRel(edges ...[3]int64) *Relation {
	r := New("src", "dst", "cost")
	for _, e := range edges {
		r.MustInsert(Tuple{e[0], e[1], float64(e[2])})
	}
	return r
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name   string
		schema []string
	}{
		{"empty", nil},
		{"duplicate", []string{"a", "a"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", tc.schema)
				}
			}()
			New(tc.schema...)
		})
	}
}

func TestInsertValidation(t *testing.T) {
	r := New("a", "b")
	if err := r.Insert(Tuple{int64(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Insert(Tuple{int64(1), []int{2}}); err == nil {
		t.Error("unsupported type accepted")
	}
	if err := r.Insert(Tuple{int64(1), "x"}); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := New("a")
	src := Tuple{int64(1)}
	r.MustInsert(src)
	src[0] = int64(99)
	if got := r.Tuples()[0][0]; got != int64(1) {
		t.Errorf("relation aliased caller tuple: got %v", got)
	}
}

func TestSchemaIndexOfAndEqual(t *testing.T) {
	s := Schema{"x", "y"}
	if s.IndexOf("y") != 1 || s.IndexOf("z") != -1 {
		t.Error("IndexOf wrong")
	}
	if !s.Equal(Schema{"x", "y"}) || s.Equal(Schema{"y", "x"}) || s.Equal(Schema{"x"}) {
		t.Error("Equal wrong")
	}
}

func TestSelectEq(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 5}, [3]int64{2, 3, 5}, [3]int64{1, 3, 9})
	got, err := r.SelectEq("src", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("selected %d tuples, want 2", got.Len())
	}
	if _, err := r.SelectEq("nope", int64(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSelectEqNoCoercion(t *testing.T) {
	r := New("a")
	r.MustInsert(Tuple{int64(1)})
	got, err := r.SelectEq("a", float64(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("int64(1) matched float64(1); engine must not coerce")
	}
}

func TestSelectIn(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1}, [3]int64{3, 4, 1}, [3]int64{5, 6, 1})
	set := map[Value]struct{}{int64(1): {}, int64(5): {}}
	got, err := r.SelectIn("src", set)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("SelectIn kept %d, want 2", got.Len())
	}
}

func TestProject(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 7}, [3]int64{1, 3, 8})
	p, err := r.Project("dst", "src")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Schema().Equal(Schema{"dst", "src"}) {
		t.Errorf("schema = %v", p.Schema())
	}
	if !reflect.DeepEqual(p.Tuples()[0], Tuple{int64(2), int64(1)}) {
		t.Errorf("tuple = %v", p.Tuples()[0])
	}
	if _, err := r.Project("ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestProjectKeepsDuplicates(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 7}, [3]int64{1, 3, 8})
	p, err := r.Project("src")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("projection is a bag; got %d tuples, want 2", p.Len())
	}
	if p.Distinct().Len() != 1 {
		t.Error("distinct projection should collapse")
	}
}

func TestRename(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 7})
	n, err := r.Rename("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Schema().Equal(Schema{"a", "b", "c"}) {
		t.Errorf("schema = %v", n.Schema())
	}
	if _, err := r.Rename("a"); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestUnionDistinct(t *testing.T) {
	a := edgeRel([3]int64{1, 2, 1})
	b := edgeRel([3]int64{1, 2, 1}, [3]int64{2, 3, 1})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 {
		t.Errorf("union size = %d, want 2 (set semantics)", u.Len())
	}
	if _, err := a.Union(New("x")); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDifference(t *testing.T) {
	a := edgeRel([3]int64{1, 2, 1}, [3]int64{2, 3, 1}, [3]int64{2, 3, 1})
	b := edgeRel([3]int64{1, 2, 1})
	d, err := a.Difference(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !d.Contains(Tuple{int64(2), int64(3), float64(1)}) {
		t.Errorf("difference = %v", d)
	}
	if _, err := a.Difference(New("x")); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestJoinPathComposition(t *testing.T) {
	// R ⋈ R on dst=src is the single step of transitive closure.
	r := edgeRel([3]int64{1, 2, 1}, [3]int64{2, 3, 1}, [3]int64{3, 4, 1})
	s, err := r.Rename("src2", "dst2", "cost2")
	if err != nil {
		t.Fatal(err)
	}
	j, err := r.Join(s, []string{"dst"}, []string{"src2"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("join size = %d, want 2 (1-2-3, 2-3-4)", j.Len())
	}
	if !j.Schema().Equal(Schema{"src", "dst", "cost", "dst2", "cost2"}) {
		t.Errorf("join schema = %v", j.Schema())
	}
}

func TestJoinErrors(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1})
	if _, err := r.Join(r, []string{"dst"}, []string{"src"}); err == nil {
		t.Error("ambiguous output schema accepted (self-join without rename)")
	}
	if _, err := r.Join(r, nil, nil); err == nil {
		t.Error("empty attribute lists accepted")
	}
	if _, err := r.Join(r, []string{"ghost"}, []string{"src"}); err == nil {
		t.Error("unknown left attribute accepted")
	}
	s, _ := r.Rename("a", "b", "c")
	if _, err := r.Join(s, []string{"dst"}, []string{"ghost"}); err == nil {
		t.Error("unknown right attribute accepted")
	}
}

func TestJoinBuildSideSymmetry(t *testing.T) {
	// Join result must not depend on which side is smaller.
	small := edgeRel([3]int64{1, 2, 1})
	bigT := [][3]int64{{2, 3, 1}, {2, 4, 1}, {5, 6, 1}, {7, 8, 1}}
	big := edgeRel(bigT...)
	bigR, _ := big.Rename("s2", "d2", "c2")
	j1, err := small.Join(bigR, []string{"dst"}, []string{"s2"})
	if err != nil {
		t.Fatal(err)
	}
	smallR, _ := small.Rename("s2", "d2", "c2")
	j2, err := big.Join(smallR, []string{"src"}, []string{"d2"})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Len() != 2 || j2.Len() != 2 {
		t.Errorf("join sizes = %d, %d, want 2, 2", j1.Len(), j2.Len())
	}
}

func TestSemiJoin(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1}, [3]int64{3, 4, 1})
	s := New("n")
	s.MustInsert(Tuple{int64(2)})
	sj, err := r.SemiJoin(s, []string{"dst"}, []string{"n"})
	if err != nil {
		t.Fatal(err)
	}
	if sj.Len() != 1 || !sj.Contains(Tuple{int64(1), int64(2), float64(1)}) {
		t.Errorf("semijoin = %v", sj)
	}
	if _, err := r.SemiJoin(s, []string{"dst"}, nil); err == nil {
		t.Error("mismatched lists accepted")
	}
}

func TestMinBy(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 9}, [3]int64{1, 2, 3}, [3]int64{1, 3, 4})
	m, err := r.MinBy("cost", "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("MinBy size = %d, want 2", m.Len())
	}
	if !m.Contains(Tuple{int64(1), int64(2), float64(3)}) {
		t.Errorf("MinBy kept wrong tuple: %v", m)
	}
	if _, err := r.MinBy("ghost", "src"); err == nil {
		t.Error("unknown value attribute accepted")
	}
	if _, err := r.MinBy("cost"); err == nil {
		t.Error("missing keys accepted")
	}
}

func TestMinByNonNumeric(t *testing.T) {
	r := New("k", "v")
	r.MustInsert(Tuple{int64(1), "not a number"})
	if _, err := r.MinBy("v", "k"); err == nil {
		t.Error("non-numeric aggregation accepted")
	}
}

func TestMinValueAndSum(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 9}, [3]int64{1, 3, 4})
	min, ok, err := r.MinValue("cost")
	if err != nil || !ok || min != 4 {
		t.Errorf("MinValue = %v, %v, %v", min, ok, err)
	}
	sum, err := r.SumAttr("cost")
	if err != nil || sum != 13 {
		t.Errorf("Sum = %v, %v", sum, err)
	}
	_, ok, err = New("cost").MinValue("cost")
	if err != nil || ok {
		t.Error("MinValue of empty relation should report not-found")
	}
}

func TestTupleKeyDistinguishesTypes(t *testing.T) {
	pairs := [][2]Tuple{
		{{int64(1)}, {float64(1)}},
		{{"1"}, {int64(1)}},
		{{true}, {"true"}},
		{{"a", "b"}, {"ab", ""}},
		{{"ab"}, {"a", "b"}},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("keys collide: %v vs %v", p[0], p[1])
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	r := edgeRel([3]int64{2, 1, 1}, [3]int64{1, 2, 1})
	r.Sort()
	if r.Tuples()[0][0] != int64(1) {
		t.Errorf("sorted first tuple = %v", r.Tuples()[0])
	}
}

func TestStringRendering(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1})
	s := r.String()
	if !strings.Contains(s, "src, dst, cost") || !strings.Contains(s, "(1 tuples)") {
		t.Errorf("String() = %q", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1})
	c := r.Clone()
	c.MustInsert(Tuple{int64(9), int64(9), 1.0})
	c.Tuples()[0][0] = int64(42)
	if r.Len() != 1 || r.Tuples()[0][0] != int64(1) {
		t.Error("clone shares storage with original")
	}
}

func TestGraphConversionRoundTrip(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 2.5})
	g.AddEdge(graph.Edge{From: 2, To: 3, Weight: 1})
	r := FromGraph(g)
	if r.Len() != 2 {
		t.Fatalf("relation size = %d", r.Len())
	}
	edges, err := ToEdges(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(edges, g.Edges()) {
		t.Errorf("round trip: %v vs %v", edges, g.Edges())
	}
}

func TestToEdgesErrors(t *testing.T) {
	if _, err := ToEdges(New("a", "b")); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := New("a", "b", "c")
	bad.MustInsert(Tuple{"x", int64(1), 1.0})
	if _, err := ToEdges(bad); err == nil {
		t.Error("wrong types accepted")
	}
}

func TestNodeSet(t *testing.T) {
	set := NodeSet([]graph.NodeID{1, 2})
	if len(set) != 2 {
		t.Fatalf("NodeSet size = %d", len(set))
	}
	if _, ok := set[int64(1)]; !ok {
		t.Error("NodeSet should contain int64 values")
	}
}

// TestPropertyUnionDifference checks (A ∪ B) \ B ⊆ A and A \ B contains
// no tuple of B, over random edge relations.
func TestPropertyUnionDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Relation {
			r := New("src", "dst", "cost")
			for i := 0; i < rng.Intn(20); i++ {
				r.MustInsert(Tuple{int64(rng.Intn(5)), int64(rng.Intn(5)), float64(rng.Intn(3))})
			}
			return r
		}
		a, b := mk(), mk()
		u, err := a.Union(b)
		if err != nil {
			return false
		}
		d, err := u.Difference(b)
		if err != nil {
			return false
		}
		for _, tup := range d.Tuples() {
			if !a.Contains(tup) || b.Contains(tup) {
				return false
			}
		}
		// Difference is idempotent.
		d2, err := d.Difference(b)
		if err != nil || d2.Len() != d.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinMatchesNestedLoop compares the hash join against a
// naive nested-loop reference on random inputs.
func TestPropertyJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New("x", "y")
		b := New("u", "v")
		for i := 0; i < rng.Intn(15); i++ {
			a.MustInsert(Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
		}
		for i := 0; i < rng.Intn(15); i++ {
			b.MustInsert(Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
		}
		j, err := a.Join(b, []string{"y"}, []string{"u"})
		if err != nil {
			return false
		}
		// Nested-loop reference.
		var ref []string
		for _, ta := range a.Tuples() {
			for _, tb := range b.Tuples() {
				if valueEqual(ta[1], tb[0]) {
					ref = append(ref, Tuple{ta[0], ta[1], tb[1]}.Key())
				}
			}
		}
		if len(ref) != j.Len() {
			return false
		}
		got := make(map[string]int)
		for _, tj := range j.Tuples() {
			got[tj.Key()]++
		}
		want := make(map[string]int)
		for _, k := range ref {
			want[k]++
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
