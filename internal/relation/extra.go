package relation

import (
	"fmt"
	"sort"
)

// CountBy groups by the named key attributes and returns one tuple per
// group with the keys followed by an int64 "count" attribute. Group
// order follows first appearance.
func (r *Relation) CountBy(keyAttrs ...string) (*Relation, error) {
	if len(keyAttrs) == 0 {
		return nil, fmt.Errorf("relation: countby: need at least one key attribute")
	}
	kpos := make([]int, len(keyAttrs))
	for i, a := range keyAttrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: countby: unknown attribute %q", a)
		}
		kpos[i] = p
	}
	outSchema := append(append(Schema(nil), keyAttrs...), "count")
	if outSchema.IndexOf("count") != len(outSchema)-1 {
		return nil, fmt.Errorf("relation: countby: key attribute named %q collides with the count column", "count")
	}
	counts := make(map[string]int64)
	reps := make(map[string]Tuple)
	var order []string
	var buf []byte
	for _, t := range r.tuples {
		buf = appendKeyAt(buf[:0], t, kpos)
		if _, ok := counts[string(buf)]; !ok {
			k := string(buf)
			order = append(order, k)
			rep := make(Tuple, len(kpos))
			for i, p := range kpos {
				rep[i] = t[p]
			}
			reps[k] = rep
		}
		counts[string(buf)]++
	}
	out := &Relation{schema: outSchema}
	for _, k := range order {
		out.tuples = append(out.tuples, append(append(Tuple(nil), reps[k]...), counts[k]))
	}
	return out, nil
}

// MaxBy groups by the key attributes and keeps, per group, the tuple
// maximising the named numeric attribute (the dual of MinBy; the paper
// needs min for shortest paths, but longest-path-style analyses and
// tests use max).
func (r *Relation) MaxBy(valueAttr string, keyAttrs ...string) (*Relation, error) {
	neg, err := r.mapNumeric(valueAttr, func(v float64) float64 { return -v })
	if err != nil {
		return nil, err
	}
	m, err := neg.MinBy(valueAttr, keyAttrs...)
	if err != nil {
		return nil, err
	}
	return m.mapNumeric(valueAttr, func(v float64) float64 { return -v })
}

// mapNumeric returns a copy with fn applied to the named numeric
// attribute. int64 attributes are widened to float64.
func (r *Relation) mapNumeric(attr string, fn func(float64) float64) (*Relation, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return nil, fmt.Errorf("relation: unknown attribute %q", attr)
	}
	out := &Relation{schema: r.Schema()}
	for _, t := range r.tuples {
		v, err := numeric(t[i])
		if err != nil {
			return nil, err
		}
		nt := append(Tuple(nil), t...)
		nt[i] = fn(v)
		out.tuples = append(out.tuples, nt)
	}
	return out, nil
}

// OrderBy returns a copy sorted by the named attributes in order
// (ascending, numeric attributes numerically, others by encoded key).
// The sort is stable.
func (r *Relation) OrderBy(attrs ...string) (*Relation, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: orderby: need at least one attribute")
	}
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: orderby: unknown attribute %q", a)
		}
		pos[i] = p
	}
	out := r.Clone()
	sort.SliceStable(out.tuples, func(i, j int) bool {
		for _, p := range pos {
			a, b := out.tuples[i][p], out.tuples[j][p]
			if c := compareValues(a, b); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out, nil
}

// compareValues orders two values: numerics numerically when both are
// numeric, otherwise by encoded key.
func compareValues(a, b Value) int {
	fa, errA := numeric(a)
	fb, errB := numeric(b)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	}
	ka, kb := Tuple{a}.Key(), Tuple{b}.Key()
	switch {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	}
	return 0
}

// Limit returns the first n tuples (all of them if n exceeds the
// cardinality; error when n is negative).
func (r *Relation) Limit(n int) (*Relation, error) {
	if n < 0 {
		return nil, fmt.Errorf("relation: limit: negative n %d", n)
	}
	if n > len(r.tuples) {
		n = len(r.tuples)
	}
	out := &Relation{schema: r.Schema()}
	for _, t := range r.tuples[:n] {
		out.tuples = append(out.tuples, append(Tuple(nil), t...))
	}
	return out, nil
}

// Product returns the Cartesian product of r and s; schemas must be
// disjoint.
func (r *Relation) Product(s *Relation) (*Relation, error) {
	outSchema := append(Schema(nil), r.schema...)
	for _, a := range s.schema {
		if outSchema.IndexOf(a) >= 0 {
			return nil, fmt.Errorf("relation: product: attribute %q ambiguous; rename first", a)
		}
		outSchema = append(outSchema, a)
	}
	out := &Relation{schema: outSchema}
	for _, rt := range r.tuples {
		for _, st := range s.tuples {
			nt := make(Tuple, 0, len(rt)+len(st))
			nt = append(nt, rt...)
			nt = append(nt, st...)
			out.tuples = append(out.tuples, nt)
		}
	}
	return out, nil
}

// Intersect returns r ∩ s with set semantics.
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	if !r.schema.Equal(s.schema) {
		return nil, fmt.Errorf("relation: intersect: schema mismatch %v vs %v", r.schema, s.schema)
	}
	keep := make(map[string]struct{}, s.Len())
	var buf []byte
	for _, t := range s.tuples {
		buf = t.AppendKey(buf[:0])
		if _, ok := keep[string(buf)]; !ok {
			keep[string(buf)] = struct{}{}
		}
	}
	out := &Relation{schema: r.Schema()}
	seen := make(map[string]struct{})
	for _, t := range r.tuples {
		buf = t.AppendKey(buf[:0])
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		if _, ok := keep[string(buf)]; ok {
			seen[string(buf)] = struct{}{}
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}
