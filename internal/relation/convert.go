package relation

import (
	"fmt"

	"repro/internal/graph"
)

// EdgeSchema is the canonical schema of an edge relation: source node,
// destination node, and traversal cost. It is the shape of the paper's
// base relation R.
var EdgeSchema = Schema{"src", "dst", "cost"}

// FromEdges builds the edge relation of the given edges, one tuple per
// edge, with node IDs as int64 and weights as float64.
func FromEdges(edges []graph.Edge) *Relation {
	r := New(EdgeSchema...)
	for _, e := range edges {
		r.MustInsert(Tuple{int64(e.From), int64(e.To), e.Weight})
	}
	return r
}

// FromGraph builds the edge relation of an entire graph.
func FromGraph(g *graph.Graph) *Relation { return FromEdges(g.Edges()) }

// ToEdges converts an edge relation (schema src, dst, cost — names may
// differ, positions matter) back into a slice of graph edges.
func ToEdges(r *Relation) ([]graph.Edge, error) {
	if r.Arity() != 3 {
		return nil, fmt.Errorf("relation: ToEdges: want arity 3, got %d", r.Arity())
	}
	edges := make([]graph.Edge, 0, r.Len())
	for i, t := range r.Tuples() {
		src, ok1 := t[0].(int64)
		dst, ok2 := t[1].(int64)
		cost, ok3 := t[2].(float64)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("relation: ToEdges: tuple %d has types (%T, %T, %T), want (int64, int64, float64)", i, t[0], t[1], t[2])
		}
		edges = append(edges, graph.Edge{From: graph.NodeID(src), To: graph.NodeID(dst), Weight: cost})
	}
	return edges, nil
}

// NodeSet turns a list of node IDs into the value set accepted by
// SelectIn.
func NodeSet(ids []graph.NodeID) map[Value]struct{} {
	set := make(map[Value]struct{}, len(ids))
	for _, id := range ids {
		set[int64(id)] = struct{}{}
	}
	return set
}

// NodeKeySet interns a list of node IDs into the prebuilt probe set
// accepted by SelectInKeys — one encoding pass at construction instead
// of one per selection call.
func NodeKeySet(ids []graph.NodeID) *KeySet {
	vals := make([]Value, len(ids))
	for i, id := range ids {
		vals[i] = int64(id)
	}
	return NewKeySet(vals...)
}
