package relation

import (
	"bytes"
	"fmt"
)

// The operators below share tuple storage between input and output
// relations instead of copying: tuples are immutable once inserted
// (Insert copies, Tuples() is documented read-only), so a result
// relation referencing its operands' tuples is safe and saves one
// allocation per output tuple. Deep copies remain available via Clone.

// Predicate decides whether a tuple satisfies a selection condition.
type Predicate func(Tuple) bool

// Select returns the tuples of r satisfying pred, preserving order.
// The result shares tuple storage with r.
func (r *Relation) Select(pred Predicate) *Relation {
	out := &Relation{schema: r.Schema()}
	for _, t := range r.tuples {
		if pred(t) {
			out.tuples = append(out.tuples, t)
		}
	}
	return out
}

// SelectEq selects tuples whose named attribute equals v; this is the
// σ_attr=v of the algebra and the keyhole selection the disconnection
// sets induce on per-fragment subqueries.
func (r *Relation) SelectEq(attr string, v Value) (*Relation, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return nil, fmt.Errorf("relation: select: unknown attribute %q", attr)
	}
	key := appendValue(nil, v)
	var buf []byte
	return r.Select(func(t Tuple) bool {
		buf = appendValue(buf[:0], t[i])
		return bytes.Equal(buf, key)
	}), nil
}

// SelectIn selects tuples whose named attribute is a member of set; it
// models the "disconnection sets act as some sort of keyhole" selection
// of §2.2, where only paths through the DS nodes are examined.
//
// The probe set is interned on every call; callers that reuse one set
// across selections should build a KeySet once and use SelectInKeys.
func (r *Relation) SelectIn(attr string, set map[Value]struct{}) (*Relation, error) {
	return r.SelectInKeys(attr, NewKeySetFromMap(set))
}

// SelectInKeys selects tuples whose named attribute is a member of the
// prebuilt interned set — the repeated-selection form of SelectIn: the
// set is encoded once at construction, each call only probes.
func (r *Relation) SelectInKeys(attr string, set *KeySet) (*Relation, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return nil, fmt.Errorf("relation: select: unknown attribute %q", attr)
	}
	out := &Relation{schema: r.Schema()}
	var buf []byte
	var ok bool
	for _, t := range r.tuples {
		buf, ok = set.has(buf, t[i])
		if ok {
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}

// valueEqual compares two values, treating int64/float64 as distinct
// types (the engine does no implicit coercion).
func valueEqual(a, b Value) bool {
	return bytes.Equal(appendValue(nil, a), appendValue(nil, b))
}

// Project returns the projection of r onto the named attributes, in the
// given order, keeping bag semantics (duplicates preserved).
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: project: unknown attribute %q", a)
		}
		pos[i] = p
	}
	out := New(attrs...)
	for _, t := range r.tuples {
		nt := make(Tuple, len(pos))
		for i, p := range pos {
			nt[i] = t[p]
		}
		out.tuples = append(out.tuples, nt)
	}
	return out, nil
}

// Rename returns a relation with the same tuples and renamed
// attributes, sharing tuple storage.
func (r *Relation) Rename(newSchema ...string) (*Relation, error) {
	if len(newSchema) != len(r.schema) {
		return nil, fmt.Errorf("relation: rename: arity mismatch %d vs %d", len(newSchema), len(r.schema))
	}
	out := New(newSchema...)
	out.tuples = append([]Tuple(nil), r.tuples...)
	return out, nil
}

// Distinct removes duplicate tuples, keeping the first occurrence.
func (r *Relation) Distinct() *Relation {
	out := &Relation{schema: r.Schema()}
	seen := make(map[string]struct{}, len(r.tuples))
	var buf []byte
	for _, t := range r.tuples {
		buf = t.AppendKey(buf[:0])
		if _, ok := seen[string(buf)]; ok {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.tuples = append(out.tuples, t)
	}
	return out
}

// Union returns r ∪ s with set semantics (distinct tuples). Schemas
// must match exactly.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if !r.schema.Equal(s.schema) {
		return nil, fmt.Errorf("relation: union: schema mismatch %v vs %v", r.schema, s.schema)
	}
	out := &Relation{schema: r.Schema()}
	seen := make(map[string]struct{}, len(r.tuples)+len(s.tuples))
	var buf []byte
	for _, src := range []*Relation{r, s} {
		for _, t := range src.tuples {
			buf = t.AppendKey(buf[:0])
			if _, ok := seen[string(buf)]; ok {
				continue
			}
			seen[string(buf)] = struct{}{}
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}

// Difference returns r \ s with set semantics; it is the delta step of
// semi-naive evaluation (new tuples = derived \ known).
func (r *Relation) Difference(s *Relation) (*Relation, error) {
	if !r.schema.Equal(s.schema) {
		return nil, fmt.Errorf("relation: difference: schema mismatch %v vs %v", r.schema, s.schema)
	}
	drop := make(map[string]struct{}, len(s.tuples))
	var buf []byte
	for _, t := range s.tuples {
		buf = t.AppendKey(buf[:0])
		if _, ok := drop[string(buf)]; !ok {
			drop[string(buf)] = struct{}{}
		}
	}
	out := &Relation{schema: r.Schema()}
	seen := make(map[string]struct{})
	for _, t := range r.tuples {
		buf = t.AppendKey(buf[:0])
		if _, isDup := seen[string(buf)]; isDup {
			continue
		}
		if _, gone := drop[string(buf)]; gone {
			continue
		}
		seen[string(buf)] = struct{}{}
		out.tuples = append(out.tuples, t)
	}
	return out, nil
}

// Join computes the equi-join of r and s on the named attribute pairs
// (leftAttrs[i] = rightAttrs[i]) with a hash join: the smaller operand
// is built into a hash table and the larger probed, which is also how
// the final assembly joins of the disconnection set approach exploit
// their "relatively small operands" (§2.1). Probes encode into a reused
// scratch buffer, so only the build side materialises key strings.
//
// The output schema is r's attributes followed by s's attributes that
// are not join attributes; join attributes appear once, under their
// left-hand names.
func (r *Relation) Join(s *Relation, leftAttrs, rightAttrs []string) (*Relation, error) {
	if len(leftAttrs) != len(rightAttrs) || len(leftAttrs) == 0 {
		return nil, fmt.Errorf("relation: join: need equal non-empty attribute lists, got %d and %d", len(leftAttrs), len(rightAttrs))
	}
	lpos := make([]int, len(leftAttrs))
	for i, a := range leftAttrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: unknown left attribute %q", a)
		}
		lpos[i] = p
	}
	rpos := make([]int, len(rightAttrs))
	rjoin := make(map[int]struct{}, len(rightAttrs))
	for i, a := range rightAttrs {
		p := s.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: join: unknown right attribute %q", a)
		}
		rpos[i] = p
		rjoin[p] = struct{}{}
	}

	// Output schema: all of r, then s minus its join attributes.
	outSchema := append(Schema(nil), r.schema...)
	var rkeep []int
	for i, a := range s.schema {
		if _, isJoin := rjoin[i]; isJoin {
			continue
		}
		if outSchema.IndexOf(a) >= 0 {
			return nil, fmt.Errorf("relation: join: attribute %q ambiguous in output; rename first", a)
		}
		outSchema = append(outSchema, a)
		rkeep = append(rkeep, i)
	}

	out := &Relation{schema: outSchema}
	var buf []byte
	// Build on the smaller side, probe with the larger.
	if len(r.tuples) <= len(s.tuples) {
		table := make(map[string][]Tuple, len(r.tuples))
		for _, t := range r.tuples {
			buf = appendKeyAt(buf[:0], t, lpos)
			table[string(buf)] = append(table[string(buf)], t)
		}
		for _, st := range s.tuples {
			buf = appendKeyAt(buf[:0], st, rpos)
			for _, rt := range table[string(buf)] {
				out.tuples = append(out.tuples, combine(rt, st, rkeep))
			}
		}
	} else {
		table := make(map[string][]Tuple, len(s.tuples))
		for _, t := range s.tuples {
			buf = appendKeyAt(buf[:0], t, rpos)
			table[string(buf)] = append(table[string(buf)], t)
		}
		for _, rt := range r.tuples {
			buf = appendKeyAt(buf[:0], rt, lpos)
			for _, st := range table[string(buf)] {
				out.tuples = append(out.tuples, combine(rt, st, rkeep))
			}
		}
	}
	return out, nil
}

// combine concatenates a left tuple with the kept positions of a right
// tuple.
func combine(rt, st Tuple, rkeep []int) Tuple {
	nt := make(Tuple, 0, len(rt)+len(rkeep))
	nt = append(nt, rt...)
	for _, p := range rkeep {
		nt = append(nt, st[p])
	}
	return nt
}

// SemiJoin returns the tuples of r that join with at least one tuple of
// s on the given attributes. Semi-joins are the classic distributed
// query processing primitive for shipping small operands, which is what
// the disconnection set approach does with DS node lists.
func (r *Relation) SemiJoin(s *Relation, leftAttrs, rightAttrs []string) (*Relation, error) {
	if len(leftAttrs) != len(rightAttrs) || len(leftAttrs) == 0 {
		return nil, fmt.Errorf("relation: semijoin: need equal non-empty attribute lists")
	}
	lpos := make([]int, len(leftAttrs))
	for i, a := range leftAttrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: semijoin: unknown left attribute %q", a)
		}
		lpos[i] = p
	}
	rpos := make([]int, len(rightAttrs))
	for i, a := range rightAttrs {
		p := s.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: semijoin: unknown right attribute %q", a)
		}
		rpos[i] = p
	}
	keys := make(map[string]struct{}, len(s.tuples))
	var buf []byte
	for _, t := range s.tuples {
		buf = appendKeyAt(buf[:0], t, rpos)
		if _, ok := keys[string(buf)]; !ok {
			keys[string(buf)] = struct{}{}
		}
	}
	out := &Relation{schema: r.Schema()}
	for _, t := range r.tuples {
		buf = appendKeyAt(buf[:0], t, lpos)
		if _, ok := keys[string(buf)]; ok {
			out.tuples = append(out.tuples, t)
		}
	}
	return out, nil
}
