package relation

import "fmt"

// MinBy groups the relation by the named key attributes and keeps, per
// group, the tuple minimising the named numeric attribute. Ties keep
// the first tuple encountered (stable for a fixed input order).
//
// This is the aggregation the shortest-path fixpoint needs: among all
// derived paths sharing endpoints, only the cheapest survives to the
// next iteration, and the final assembly of the disconnection set
// approach "selects the shortest one among them" (§2.1).
func (r *Relation) MinBy(valueAttr string, keyAttrs ...string) (*Relation, error) {
	vi := r.schema.IndexOf(valueAttr)
	if vi < 0 {
		return nil, fmt.Errorf("relation: minby: unknown attribute %q", valueAttr)
	}
	if len(keyAttrs) == 0 {
		return nil, fmt.Errorf("relation: minby: need at least one key attribute")
	}
	kpos := make([]int, len(keyAttrs))
	for i, a := range keyAttrs {
		p := r.schema.IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: minby: unknown key attribute %q", a)
		}
		kpos[i] = p
	}
	type slot struct {
		order int
		tuple Tuple
		val   float64
	}
	best := make(map[string]*slot, len(r.tuples))
	var order []string
	var buf []byte
	for i, t := range r.tuples {
		v, err := numeric(t[vi])
		if err != nil {
			return nil, fmt.Errorf("relation: minby: tuple %d: %v", i, err)
		}
		buf = appendKeyAt(buf[:0], t, kpos)
		if s, ok := best[string(buf)]; !ok {
			k := string(buf)
			best[k] = &slot{order: len(order), tuple: t, val: v}
			order = append(order, k)
		} else if v < s.val {
			s.tuple, s.val = t, v
		}
	}
	out := &Relation{schema: r.Schema()}
	for _, k := range order {
		out.tuples = append(out.tuples, best[k].tuple)
	}
	return out, nil
}

// MinValue returns the minimum of the named numeric attribute over all
// tuples, and false if the relation is empty.
func (r *Relation) MinValue(attr string) (float64, bool, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return 0, false, fmt.Errorf("relation: minvalue: unknown attribute %q", attr)
	}
	found := false
	min := 0.0
	for _, t := range r.tuples {
		v, err := numeric(t[i])
		if err != nil {
			return 0, false, err
		}
		if !found || v < min {
			min, found = v, true
		}
	}
	return min, found, nil
}

// SumAttr returns the sum of the named numeric attribute.
func (r *Relation) SumAttr(attr string) (float64, error) {
	i := r.schema.IndexOf(attr)
	if i < 0 {
		return 0, fmt.Errorf("relation: sum: unknown attribute %q", attr)
	}
	total := 0.0
	for _, t := range r.tuples {
		v, err := numeric(t[i])
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// numeric converts an int64 or float64 value to float64.
func numeric(v Value) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	}
	return 0, fmt.Errorf("value %v (%T) is not numeric", v, v)
}
