package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCountBy(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 1}, [3]int64{1, 3, 1}, [3]int64{2, 3, 1})
	c, err := r.CountBy("src")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Schema().Equal(Schema{"src", "count"}) {
		t.Fatalf("schema = %v", c.Schema())
	}
	if c.Len() != 2 {
		t.Fatalf("groups = %d", c.Len())
	}
	if !c.Contains(Tuple{int64(1), int64(2)}) || !c.Contains(Tuple{int64(2), int64(1)}) {
		t.Errorf("counts = %v", c)
	}
	if _, err := r.CountBy(); err == nil {
		t.Error("no keys accepted")
	}
	if _, err := r.CountBy("ghost"); err == nil {
		t.Error("unknown key accepted")
	}
	bad := New("count", "x")
	bad.MustInsert(Tuple{int64(1), int64(2)})
	if _, err := bad.CountBy("count"); err == nil {
		t.Error("count-name collision accepted")
	}
}

func TestMaxBy(t *testing.T) {
	r := edgeRel([3]int64{1, 2, 3}, [3]int64{1, 2, 9}, [3]int64{1, 3, 4})
	m, err := r.MaxBy("cost", "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("MaxBy size = %d", m.Len())
	}
	if !m.Contains(Tuple{int64(1), int64(2), float64(9)}) {
		t.Errorf("MaxBy = %v", m)
	}
	if _, err := r.MaxBy("ghost", "src"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	r := edgeRel([3]int64{3, 1, 5}, [3]int64{1, 9, 2}, [3]int64{1, 2, 8})
	o, err := r.OrderBy("src", "cost")
	if err != nil {
		t.Fatal(err)
	}
	got := o.Tuples()
	if got[0][0] != int64(1) || got[0][2] != float64(2) {
		t.Errorf("first tuple = %v", got[0])
	}
	if got[2][0] != int64(3) {
		t.Errorf("last tuple = %v", got[2])
	}
	top, err := o.Limit(2)
	if err != nil || top.Len() != 2 {
		t.Errorf("Limit(2) = %v, %v", top, err)
	}
	all, err := o.Limit(100)
	if err != nil || all.Len() != 3 {
		t.Errorf("Limit(100) = %v, %v", all, err)
	}
	if _, err := o.Limit(-1); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := r.OrderBy(); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := r.OrderBy("ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestOrderByMixedTypes(t *testing.T) {
	r := New("v")
	r.MustInsert(Tuple{"b"})
	r.MustInsert(Tuple{"a"})
	o, err := r.OrderBy("v")
	if err != nil {
		t.Fatal(err)
	}
	if o.Tuples()[0][0] != "a" {
		t.Errorf("string order = %v", o.Tuples())
	}
}

func TestProduct(t *testing.T) {
	a := New("x")
	a.MustInsert(Tuple{int64(1)})
	a.MustInsert(Tuple{int64(2)})
	b := New("y")
	b.MustInsert(Tuple{"u"})
	p, err := a.Product(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || !p.Schema().Equal(Schema{"x", "y"}) {
		t.Errorf("product = %v", p)
	}
	if _, err := a.Product(a); err == nil {
		t.Error("ambiguous product accepted")
	}
}

func TestIntersect(t *testing.T) {
	a := edgeRel([3]int64{1, 2, 1}, [3]int64{2, 3, 1}, [3]int64{2, 3, 1})
	b := edgeRel([3]int64{2, 3, 1}, [3]int64{9, 9, 1})
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 1 || !i.Contains(Tuple{int64(2), int64(3), float64(1)}) {
		t.Errorf("intersect = %v", i)
	}
	if _, err := a.Intersect(New("x")); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestPropertySetAlgebra: A ∩ B == A \ (A \ B) with set semantics.
func TestPropertySetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Relation {
			r := New("a", "b")
			for i := 0; i < rng.Intn(15); i++ {
				r.MustInsert(Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
			}
			return r
		}
		a, b := mk(), mk()
		inter, err := a.Intersect(b)
		if err != nil {
			return false
		}
		diff, err := a.Difference(b)
		if err != nil {
			return false
		}
		alt, err := a.Distinct().Difference(diff)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(inter.Sort().Tuples(), alt.Sort().Tuples())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinMaxDual: MaxBy(v) == -MinBy(-v) already by
// construction; check against a direct scan instead.
func TestPropertyMinMaxDual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("k", "v")
		for i := 0; i < 1+rng.Intn(20); i++ {
			r.MustInsert(Tuple{int64(rng.Intn(3)), float64(rng.Intn(20))})
		}
		m, err := r.MaxBy("v", "k")
		if err != nil {
			return false
		}
		// Direct scan.
		best := make(map[int64]float64)
		for _, t := range r.Tuples() {
			k, v := t[0].(int64), t[1].(float64)
			if old, ok := best[k]; !ok || v > old {
				best[k] = v
			}
		}
		if m.Len() != len(best) {
			return false
		}
		for _, t := range m.Tuples() {
			if best[t[0].(int64)] != t[1].(float64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
