// Package relation implements a small in-memory relational algebra.
//
// The ICDE'93 paper frames transitive closure in the relational model:
// the base relation R stores the edges of a connection network, the
// recursive subqueries per fragment are relational fixpoints, and the
// final assembly phase of the disconnection set approach "is effectively
// a sequence of binary joins between a number of very small relations"
// (§2.1). This package supplies that substrate: relations with named
// attributes, selection, projection, hash join, union, difference,
// distinct and group-by aggregation, all deterministic for a fixed
// input order.
//
// Values are restricted to int64, float64, string and bool; attribute
// names are case-sensitive strings. Relations are bags unless Distinct
// is applied; the transitive-closure operators in package tc maintain
// set semantics themselves (as semi-naive evaluation requires).
package relation

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a single attribute value. Supported dynamic types are int64,
// float64, string and bool; Validate reports anything else.
type Value interface{}

// Tuple is an ordered list of attribute values matching a relation's
// schema.
type Tuple []Value

// Schema is an ordered list of attribute names.
type Schema []string

// IndexOf returns the position of attribute name, or -1.
func (s Schema) IndexOf(name string) int {
	for i, a := range s {
		if a == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas have identical names in identical
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Relation is a named bag of tuples over a schema.
type Relation struct {
	schema Schema
	tuples []Tuple
}

// New returns an empty relation with the given schema. It panics on an
// empty or duplicate attribute list — schema construction is a
// programming error, not a runtime condition.
func New(schema ...string) *Relation {
	if len(schema) == 0 {
		panic("relation: empty schema")
	}
	seen := make(map[string]struct{}, len(schema))
	for _, a := range schema {
		if _, dup := seen[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q", a))
		}
		seen[a] = struct{}{}
	}
	return &Relation{schema: append(Schema(nil), schema...)}
}

// Schema returns a copy of the relation's schema.
func (r *Relation) Schema() Schema { return append(Schema(nil), r.schema...) }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.schema) }

// Len returns the number of tuples (bag cardinality).
func (r *Relation) Len() int { return len(r.tuples) }

// Insert appends a tuple. It returns an error if the arity mismatches
// the schema or a value has an unsupported type.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.schema) {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(t), len(r.schema))
	}
	for i, v := range t {
		if !validValue(v) {
			return fmt.Errorf("relation: attribute %q has unsupported type %T", r.schema[i], v)
		}
	}
	r.tuples = append(r.tuples, append(Tuple(nil), t...))
	return nil
}

// MustInsert inserts and panics on error; for tests and literals.
func (r *Relation) MustInsert(t Tuple) {
	if err := r.Insert(t); err != nil {
		panic(err)
	}
}

// Tuples returns the tuples in insertion order. The slice and its tuples
// are owned by the relation; callers must not modify them.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.Schema(), tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		c.tuples[i] = append(Tuple(nil), t...)
	}
	return c
}

// validValue reports whether v has one of the supported dynamic types.
func validValue(v Value) bool {
	switch v.(type) {
	case int64, float64, string, bool:
		return true
	}
	return false
}

// Key renders the whole tuple into a string usable as a map key. Hot
// paths avoid this and use AppendKey with a reused scratch buffer (see
// keys.go); Key remains the convenient form for tests and one-offs.
func (t Tuple) Key() string {
	return string(t.AppendKey(nil))
}

// Contains reports whether the relation holds a tuple equal to t.
func (r *Relation) Contains(t Tuple) bool {
	key := t.AppendKey(nil)
	var buf []byte
	for _, u := range r.tuples {
		buf = u.AppendKey(buf[:0])
		if bytes.Equal(buf, key) {
			return true
		}
	}
	return false
}

// Sort orders the tuples lexicographically by their encoded keys, in
// place, and returns the relation. Deterministic output for printing
// and comparison in tests. Keys are encoded once per tuple, not per
// comparison.
func (r *Relation) Sort() *Relation {
	keys := make([]string, len(r.tuples))
	var buf []byte
	for i, t := range r.tuples {
		buf = t.AppendKey(buf[:0])
		keys[i] = string(buf)
	}
	sort.Sort(&byKey{tuples: r.tuples, keys: keys})
	return r
}

// byKey sorts tuples and their precomputed keys together.
type byKey struct {
	tuples []Tuple
	keys   []string
}

func (s *byKey) Len() int           { return len(s.tuples) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.tuples[i], s.tuples[j] = s.tuples[j], s.tuples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// String renders the relation as a compact table.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.schema, ", "))
	sb.WriteString(" (")
	sb.WriteString(strconv.Itoa(len(r.tuples)))
	sb.WriteString(" tuples)\n")
	for _, t := range r.tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprintf("%v", v)
		}
		sb.WriteString("  (")
		sb.WriteString(strings.Join(parts, ", "))
		sb.WriteString(")\n")
	}
	return sb.String()
}
