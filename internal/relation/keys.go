package relation

// This file is the interned-key layer of the algebra: every operator
// that hashes tuples (distinct, union, difference, join builds and
// probes, group-by) encodes them through the append-style functions
// below into a caller-owned scratch []byte, and probes maps with
// string(buf) — a conversion the Go compiler elides for map lookups.
// A key string is only materialised when it must be *stored* in a map
// (once per distinct key), which removes the per-tuple-per-iteration
// allocation storm of the previous strings.Builder encoder from the
// semi-naive hot loops.

import (
	"fmt"
	"strconv"
)

// appendValue appends the type-prefixed encoding of v to b, so that
// int64(1) and "1" never collide. It is the []byte twin of the old
// strings.Builder encoder and produces byte-identical keys.
func appendValue(b []byte, v Value) []byte {
	switch x := v.(type) {
	case int64:
		b = append(b, 'i')
		b = strconv.AppendInt(b, x, 10)
	case float64:
		b = append(b, 'f')
		b = strconv.AppendFloat(b, x, 'g', -1, 64)
	case string:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(x)), 10)
		b = append(b, ':')
		b = append(b, x...)
	case bool:
		b = append(b, 'b')
		if x {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	default:
		panic(fmt.Sprintf("relation: unsupported value type %T", v))
	}
	return append(b, '|')
}

// AppendKey appends the tuple's encoded key to b and returns the
// extended slice. Callers reuse one scratch buffer across tuples
// (b = t.AppendKey(b[:0])) to keep hash probes allocation-free.
func (t Tuple) AppendKey(b []byte) []byte {
	for _, v := range t {
		b = appendValue(b, v)
	}
	return b
}

// appendKeyAt appends the encoding of the projection of t onto pos.
func appendKeyAt(b []byte, t Tuple, pos []int) []byte {
	for _, p := range pos {
		b = appendValue(b, t[p])
	}
	return b
}

// KeySet is a prebuilt interned probe set for SelectInKeys and the
// other membership-pushing operators: the values are encoded once at
// construction, so a set reused across many selections (the
// disconnection-set entry and exit sets of query legs) never re-encodes
// its members per call — the fix for SelectIn rebuilding its key set on
// every invocation.
type KeySet struct {
	keys map[string]struct{}
}

// NewKeySet interns the given values into a probe set.
func NewKeySet(vals ...Value) *KeySet {
	s := &KeySet{keys: make(map[string]struct{}, len(vals))}
	var buf []byte
	for _, v := range vals {
		buf = appendValue(buf[:0], v)
		if _, ok := s.keys[string(buf)]; !ok {
			s.keys[string(buf)] = struct{}{}
		}
	}
	return s
}

// NewKeySetFromMap interns the members of a SelectIn-style value set.
func NewKeySetFromMap(set map[Value]struct{}) *KeySet {
	s := &KeySet{keys: make(map[string]struct{}, len(set))}
	var buf []byte
	for v := range set {
		buf = appendValue(buf[:0], v)
		s.keys[string(buf)] = struct{}{}
	}
	return s
}

// Len returns the number of distinct values in the set.
func (s *KeySet) Len() int { return len(s.keys) }

// Contains reports whether v is a member of the set.
func (s *KeySet) Contains(v Value) bool {
	var buf [24]byte
	b := appendValue(buf[:0], v)
	_, ok := s.keys[string(b)]
	return ok
}

// has probes with a caller-owned scratch buffer (no allocation).
func (s *KeySet) has(buf []byte, v Value) ([]byte, bool) {
	buf = appendValue(buf[:0], v)
	_, ok := s.keys[string(buf)]
	return buf, ok
}

// Dedup is a reusable tuple-identity set for delta iterations: the
// semi-naive fixpoints keep one Dedup of every known tuple alive across
// rounds instead of re-encoding the whole known relation per round
// (which is what Distinct/Difference/Union chains did).
type Dedup struct {
	seen map[string]struct{}
	buf  []byte
}

// NewDedup returns an empty tuple-identity set.
func NewDedup() *Dedup {
	return &Dedup{seen: make(map[string]struct{})}
}

// Add records t and reports whether it was new.
func (d *Dedup) Add(t Tuple) bool {
	d.buf = t.AppendKey(d.buf[:0])
	if _, ok := d.seen[string(d.buf)]; ok {
		return false
	}
	d.seen[string(d.buf)] = struct{}{}
	return true
}

// Has reports whether t was already added.
func (d *Dedup) Has(t Tuple) bool {
	d.buf = t.AppendKey(d.buf[:0])
	_, ok := d.seen[string(d.buf)]
	return ok
}

// Len returns the number of distinct tuples recorded.
func (d *Dedup) Len() int { return len(d.seen) }

// Filter returns the tuples of r not yet recorded, in first-occurrence
// order, recording them as a side effect. It is Distinct + Difference
// against the accumulated set in one pass; the result shares tuple
// storage with r (tuples are immutable once inserted).
func (d *Dedup) Filter(r *Relation) *Relation {
	out := &Relation{schema: r.Schema()}
	for _, t := range r.tuples {
		if d.Add(t) {
			out.tuples = append(out.tuples, t)
		}
	}
	return out
}

// Extend appends s's tuples to r in place (bag semantics, no
// deduplication), sharing tuple storage. Schemas must match. It is the
// in-place union the delta loops use after Dedup.Filter has already
// established disjointness.
func (r *Relation) Extend(s *Relation) error {
	if !r.schema.Equal(s.schema) {
		return fmt.Errorf("relation: extend: schema mismatch %v vs %v", r.schema, s.schema)
	}
	r.tuples = append(r.tuples, s.tuples...)
	return nil
}
