package relation

import (
	"testing"
)

// TestAppendKeyMatchesKey: the append encoder and Key produce
// byte-identical encodings for every supported type.
func TestAppendKeyMatchesKey(t *testing.T) {
	tuples := []Tuple{
		{int64(1), "x", 3.5, true},
		{int64(-42)},
		{""},
		{"1", int64(1)}, // must not collide with {int64(1), "1"}
		{false, 0.0},
	}
	for _, tu := range tuples {
		if got := string(tu.AppendKey(nil)); got != tu.Key() {
			t.Errorf("AppendKey(%v) = %q, Key = %q", tu, got, tu.Key())
		}
	}
	if (Tuple{"1", int64(1)}).Key() == (Tuple{int64(1), "1"}).Key() {
		t.Error("type prefixes failed to separate string and int encodings")
	}
}

// TestKeySetSelect: SelectInKeys equals SelectIn, and the prebuilt set
// answers membership without re-encoding its members.
func TestKeySetSelect(t *testing.T) {
	r := New("src", "dst")
	for i := int64(0); i < 10; i++ {
		r.MustInsert(Tuple{i, i + 1})
	}
	set := map[Value]struct{}{int64(2): {}, int64(5): {}, int64(9): {}}
	want, err := r.SelectIn("src", set)
	if err != nil {
		t.Fatal(err)
	}
	ks := NewKeySetFromMap(set)
	if ks.Len() != 3 {
		t.Errorf("Len = %d, want 3", ks.Len())
	}
	got, err := r.SelectInKeys("src", ks)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("SelectInKeys %d tuples, SelectIn %d", got.Len(), want.Len())
	}
	for i, tu := range got.Tuples() {
		if tu.Key() != want.Tuples()[i].Key() {
			t.Errorf("tuple %d differs: %v vs %v", i, tu, want.Tuples()[i])
		}
	}
	if !ks.Contains(int64(2)) || ks.Contains(int64(3)) {
		t.Error("Contains misreports membership")
	}
	if _, err := r.SelectInKeys("nope", ks); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestNewKeySetDedups: duplicate values intern once.
func TestNewKeySetDedups(t *testing.T) {
	ks := NewKeySet(int64(1), int64(1), "a", "a")
	if ks.Len() != 2 {
		t.Errorf("Len = %d, want 2", ks.Len())
	}
}

// TestDedupFilterExtend: Filter is Distinct+Difference in one pass and
// Extend appends in place, together reproducing the semi-naive delta
// step.
func TestDedupFilterExtend(t *testing.T) {
	d := NewDedup()
	a := New("x")
	a.MustInsert(Tuple{int64(1)})
	a.MustInsert(Tuple{int64(2)})
	a.MustInsert(Tuple{int64(1)}) // duplicate inside the batch
	first := d.Filter(a)
	if first.Len() != 2 || d.Len() != 2 {
		t.Fatalf("first filter: %d tuples, %d recorded; want 2, 2", first.Len(), d.Len())
	}
	b := New("x")
	b.MustInsert(Tuple{int64(2)}) // already known
	b.MustInsert(Tuple{int64(3)}) // new
	delta := d.Filter(b)
	if delta.Len() != 1 || delta.Tuples()[0][0] != int64(3) {
		t.Fatalf("second filter = %v, want just 3", delta)
	}
	if !d.Has(Tuple{int64(3)}) || d.Has(Tuple{int64(9)}) {
		t.Error("Has misreports")
	}
	if err := first.Extend(delta); err != nil {
		t.Fatal(err)
	}
	if first.Len() != 3 {
		t.Errorf("extended relation has %d tuples, want 3", first.Len())
	}
	bad := New("y")
	if err := first.Extend(bad); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestDedupAdd: Add reports first-sightings exactly once.
func TestDedupAdd(t *testing.T) {
	d := NewDedup()
	if !d.Add(Tuple{int64(1), "a"}) {
		t.Error("first Add returned false")
	}
	if d.Add(Tuple{int64(1), "a"}) {
		t.Error("second Add returned true")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

// TestSelectInKeysProbeAllocs: the per-tuple probe of a prebuilt set
// must not allocate — the point of interning the set once. The bound
// leaves room only for the result relation's slice growth.
func TestSelectInKeysProbeAllocs(t *testing.T) {
	r := New("src", "dst")
	for i := int64(0); i < 512; i++ {
		r.MustInsert(Tuple{i % 16, i})
	}
	ks := NewKeySet(int64(3))
	avg := testing.AllocsPerRun(20, func() {
		if _, err := r.SelectInKeys("src", ks); err != nil {
			t.Fatal(err)
		}
	})
	// 512 probed tuples; only the output relation (schema copy + tuple
	// slice growth) may allocate. 16 is generous headroom; the old
	// SelectIn re-interned the probe set every call and sat far above.
	if avg > 16 {
		t.Errorf("SelectInKeys allocates %.1f/op; probe loop is supposed to be allocation-free", avg)
	}
}

// TestDistinctSharesTuples: the rewritten operators share tuple
// storage rather than deep-copying (tuples are immutable), halving the
// allocations of the delta loops. Sharing is observable via Len-only
// behaviour, so just pin the allocation ceiling.
func TestDistinctSharesTuples(t *testing.T) {
	r := New("a", "b")
	for i := int64(0); i < 256; i++ {
		r.MustInsert(Tuple{i % 8, i % 4})
	}
	avg := testing.AllocsPerRun(20, func() {
		r.Distinct()
	})
	// 256 tuples, 32 distinct: the old copy-per-tuple implementation
	// allocated ≥ 256; the rewrite allocates the seen-map, its 32 stored
	// keys and the output slice only.
	if avg > 64 {
		t.Errorf("Distinct allocates %.1f/op, want the shared-tuple rewrite (< 64)", avg)
	}
}
