package fragment

import (
	"fmt"
	"sort"
	"strings"
)

// FragGraph is the fragmentation graph G' of §2.1: a node N_i per
// fragment G_i and an (undirected) edge E_ij for each non-empty
// disconnection set DS_ij.
type FragGraph struct {
	n   int
	adj map[int][]int
}

// FragmentationGraph builds G' from the fragmentation.
func (fr *Fragmentation) FragmentationGraph() *FragGraph {
	fg := &FragGraph{n: len(fr.frags), adj: make(map[int][]int)}
	for p := range fr.DisconnectionSets() {
		fg.adj[p.I] = append(fg.adj[p.I], p.J)
		fg.adj[p.J] = append(fg.adj[p.J], p.I)
	}
	for i := range fg.adj {
		sort.Ints(fg.adj[i])
	}
	return fg
}

// NumFragments returns the number of fragmentation-graph nodes.
func (fg *FragGraph) NumFragments() int { return fg.n }

// NumLinks returns the number of undirected fragmentation-graph edges
// (non-empty disconnection sets).
func (fg *FragGraph) NumLinks() int {
	total := 0
	for _, ns := range fg.adj {
		total += len(ns)
	}
	return total / 2
}

// Adjacent returns the fragments sharing a disconnection set with i.
func (fg *FragGraph) Adjacent(i int) []int { return fg.adj[i] }

// IsLooselyConnected reports whether G' is acyclic (a forest) — the
// paper's "loosely connected" property: "if the fragmentation graph is
// loosely connected, then it is easier to select fragments involved in
// the computation … there is only one chain of fragments" (§2.1).
func (fg *FragGraph) IsLooselyConnected() bool {
	// A forest has (#nodes − #components) edges; equivalently, no cycle
	// is found by DFS.
	seen := make([]bool, fg.n)
	for start := 0; start < fg.n; start++ {
		if seen[start] {
			continue
		}
		// Iterative DFS carrying the parent.
		type frame struct{ node, parent int }
		stack := []frame{{start, -1}}
		seen[start] = true
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, n := range fg.adj[f.node] {
				if n == f.parent {
					continue
				}
				if seen[n] {
					return false
				}
				seen[n] = true
				stack = append(stack, frame{n, f.node})
			}
		}
	}
	return true
}

// CycleCount returns the circuit rank |E| − |V| + #components of G':
// zero exactly when the fragmentation is loosely connected, and
// otherwise the number of independent cycles — the paper's "minimize
// the number of cycles" goal measured directly.
func (fg *FragGraph) CycleCount() int {
	seen := make([]bool, fg.n)
	comps := 0
	for start := 0; start < fg.n; start++ {
		if seen[start] {
			continue
		}
		comps++
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, n := range fg.adj[u] {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
	}
	return fg.NumLinks() - fg.n + comps
}

// Chains enumerates every simple path from fragment 'from' to fragment
// 'to' in G', each as a slice of fragment IDs including both endpoints,
// in deterministic order. For loosely connected fragmentations there is
// at most one chain; otherwise "it is required to consider all possible
// chains of fragments independently for solving the query" (§2.1).
//
// maxChains bounds the enumeration (0 means unlimited); complex
// fragmentation graphs can have exponentially many simple paths, which
// is exactly the problem parallel hierarchical evaluation addresses.
func (fg *FragGraph) Chains(from, to, maxChains int) ([][]int, error) {
	if from < 0 || from >= fg.n || to < 0 || to >= fg.n {
		return nil, fmt.Errorf("fragment: chain endpoints %d, %d out of range [0, %d)", from, to, fg.n)
	}
	if from == to {
		return [][]int{{from}}, nil
	}
	var chains [][]int
	onPath := make([]bool, fg.n)
	var path []int
	var dfs func(u int) bool // returns false when the bound is hit
	dfs = func(u int) bool {
		path = append(path, u)
		onPath[u] = true
		defer func() {
			path = path[:len(path)-1]
			onPath[u] = false
		}()
		if u == to {
			chains = append(chains, append([]int(nil), path...))
			return maxChains == 0 || len(chains) < maxChains
		}
		for _, n := range fg.adj[u] {
			if onPath[n] {
				continue
			}
			if !dfs(n) {
				return false
			}
		}
		return true
	}
	dfs(from)
	return chains, nil
}

// String renders the fragmentation graph as adjacency lists.
func (fg *FragGraph) String() string {
	var sb strings.Builder
	for i := 0; i < fg.n; i++ {
		fmt.Fprintf(&sb, "G%d:", i)
		for _, n := range fg.adj[i] {
			fmt.Fprintf(&sb, " G%d", n)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
