package fragment

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// The text format of a fragmentation assigns each edge to a fragment:
//
//	# comment
//	fragment <idx> <from> <to> <weight>
//
// The cmd/ tools pass fragmentations between tcfrag and tcquery in this
// format; the base graph travels separately in the graph text format.

// Write serialises the fragmentation's edge assignment.
func (fr *Fragmentation) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range fr.Fragments() {
		for _, e := range f.Edges {
			if _, err := fmt.Fprintf(bw, "fragment %d %d %d %g\n", f.ID, e.From, e.To, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a fragmentation over the given base graph from the text
// format produced by Write; the usual partition validation applies.
func Read(g *graph.Graph, r io.Reader) (*Fragmentation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sets := make(map[int][]graph.Edge)
	maxIdx := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "fragment" || len(fields) != 5 {
			return nil, fmt.Errorf("fragment: line %d: want %q, got %q", lineNo, "fragment <idx> <from> <to> <weight>", line)
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("fragment: line %d: bad fragment index %q", lineNo, fields[1])
		}
		from, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("fragment: line %d: bad from %q", lineNo, fields[2])
		}
		to, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("fragment: line %d: bad to %q", lineNo, fields[3])
		}
		wgt, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("fragment: line %d: bad weight %q", lineNo, fields[4])
		}
		sets[idx] = append(sets[idx], graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: wgt})
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	if err := sc.Err(); err != nil {
		// Truncated streams and over-long lines surface here; the line
		// counter points at where the scan stopped.
		return nil, fmt.Errorf("fragment: line %d: read: %v", lineNo+1, err)
	}
	ordered := make([][]graph.Edge, 0, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		if len(sets[i]) == 0 {
			return nil, fmt.Errorf("fragment: fragment %d has no edges", i)
		}
		ordered = append(ordered, sets[i])
	}
	return New(g, ordered)
}
