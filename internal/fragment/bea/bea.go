// Package bea implements the bond-energy fragmentation algorithm of
// ICDE'93 §3.2, the variant "that focuses on fragmenting a relation in
// such a way that the node intersections of fragments will be small".
//
// The algorithm is a variant of the classic bond-energy algorithm of
// McCormick, Schweitzer and White (paper reference [7]): the adjacency
// matrix of the graph (with a 1 diagonal) has its columns reordered so
// that closely related nodes become contiguous, forming clusters along
// the diagonal; the reordered matrix is then split into blocks of
// contiguous columns, choosing split points where few 1's fall outside
// the blocks — those outside 1's "are the connections with other
// fragments; their number indicates the size of the disconnection
// sets".
//
// The paper implements the threshold splitting rule ("it is split as
// soon as the number of connections to nodes outside the current block
// reaches the threshold", with a minimum-edges finetuning so fragments
// are not "too small"); the local-minimum rule it considered and
// rejected is also provided for the ablation experiments.
package bea

import (
	"fmt"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// Mode selects the split rule applied while scanning the reordered
// matrix left to right.
type Mode int

const (
	// ThresholdMode splits as soon as the outside-connection count of
	// the current block comes down to Options.Threshold (the paper's
	// choice). The rule is presented in §3.2 as the robust alternative
	// to splitting at every local minimum: a low outside count means
	// the block has become well separated from the rest of the matrix,
	// which on transportation graphs happens exactly at the sparse
	// cluster boundaries.
	ThresholdMode Mode = iota
	// LocalMinimumMode splits as soon as the outside-connection count
	// increases — "as optimizing to local minima usually turns out not
	// to be best" the paper rejected it, but it is kept for comparison.
	LocalMinimumMode
)

// Options configures the algorithm.
type Options struct {
	// Threshold is the outside-connection count at or below which the
	// current block is split off in ThresholdMode ("this threshold may
	// be supplied by the user"). Zero selects 3, which on the paper's
	// transportation graphs (2–3 inter-cluster connections per border)
	// cuts at the cluster boundaries.
	Threshold int
	// MinBlockEdges is the finetuning of §3.2: a split is deferred
	// until the current block contains at least this many (directed)
	// internal connections, avoiding fragments that are "too small".
	// Zero disables the finetuning.
	MinBlockEdges int
	// Mode selects the split rule.
	Mode Mode
	// Starts bounds how many starting columns the reordering phase
	// tries ("it has to be iterated over all the columns"); zero tries
	// all of them. Large graphs may cap this for speed.
	Starts int
}

// withDefaults validates and fills defaults.
func (o Options) withDefaults(g *graph.Graph) (Options, error) {
	if o.Threshold == 0 {
		o.Threshold = 3
	}
	if o.Threshold < 0 {
		return o, fmt.Errorf("bea: Threshold must be positive, got %d", o.Threshold)
	}
	if o.MinBlockEdges < 0 {
		return o, fmt.Errorf("bea: MinBlockEdges must be non-negative, got %d", o.MinBlockEdges)
	}
	if o.Starts < 0 {
		return o, fmt.Errorf("bea: Starts must be non-negative, got %d", o.Starts)
	}
	if o.Mode != ThresholdMode && o.Mode != LocalMinimumMode {
		return o, fmt.Errorf("bea: unknown mode %d", o.Mode)
	}
	return o, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Matrix is the adjacency matrix view the algorithm works on: Cols[i]
// is the node of column i, M[i][j] is 1 (true) iff nodes Cols[i] and
// Cols[j] are directly connected (in either direction) or i == j (the
// paper sets every M[i,i] to 1).
type Matrix struct {
	Cols []graph.NodeID
	M    [][]bool
}

// BuildMatrix constructs the adjacency matrix of g with columns in
// ascending node order.
func BuildMatrix(g *graph.Graph) *Matrix {
	cols := g.Nodes()
	idx := make(map[graph.NodeID]int, len(cols))
	for i, id := range cols {
		idx[id] = i
	}
	m := make([][]bool, len(cols))
	for i := range m {
		m[i] = make([]bool, len(cols))
		m[i][i] = true
	}
	for _, e := range g.Edges() {
		i, j := idx[e.From], idx[e.To]
		m[i][j] = true
		m[j][i] = true
	}
	return &Matrix{Cols: cols, M: m}
}

// InnerProduct returns the inner product of columns i and j — the bond
// of the bond-energy measure: Σ_k M[k][i]·M[k][j].
func (mx *Matrix) InnerProduct(i, j int) int {
	sum := 0
	for k := range mx.M {
		if mx.M[k][i] && mx.M[k][j] {
			sum++
		}
	}
	return sum
}

// bondTable precomputes all pairwise inner products.
func (mx *Matrix) bondTable() [][]int {
	n := len(mx.Cols)
	b := make([][]int, n)
	for i := 0; i < n; i++ {
		b[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := mx.InnerProduct(i, j)
			b[i][j], b[j][i] = v, v
		}
	}
	return b
}

// Reorder computes the bond-energy column ordering: starting from each
// candidate first column, it repeatedly inserts the (column, position)
// pair maximising the global measure — the sum of inner products of
// adjacent placed columns — and returns the best permutation found
// (column indices into mx.Cols) together with its measure.
//
// starts = 0 tries every column as the first placement, as the paper
// prescribes; otherwise the first 'starts' columns are tried.
func (mx *Matrix) Reorder(starts int) ([]int, int) {
	n := len(mx.Cols)
	if n == 0 {
		return nil, 0
	}
	bond := mx.bondTable()
	if starts <= 0 || starts > n {
		starts = n
	}
	var bestPerm []int
	bestMeasure := -1
	for s := 0; s < starts; s++ {
		perm, measure := greedyFrom(bond, n, s)
		if measure > bestMeasure {
			bestMeasure = measure
			bestPerm = perm
		}
	}
	return bestPerm, bestMeasure
}

// greedyFrom runs one greedy placement starting with column s and
// returns the permutation and its measure.
func greedyFrom(bond [][]int, n, s int) ([]int, int) {
	placed := make([]int, 1, n)
	placed[0] = s
	used := make([]bool, n)
	used[s] = true
	measure := 0
	for len(placed) < n {
		bestGain, bestCol, bestGap := -1<<62, -1, -1
		for c := 0; c < n; c++ {
			if used[c] {
				continue
			}
			// Gap g means inserting before placed[g]; g = len(placed)
			// appends at the right end.
			for g := 0; g <= len(placed); g++ {
				gain := insertionGain(bond, placed, c, g)
				if gain > bestGain {
					bestGain, bestCol, bestGap = gain, c, g
				}
			}
		}
		placed = append(placed, 0)
		copy(placed[bestGap+1:], placed[bestGap:])
		placed[bestGap] = bestCol
		used[bestCol] = true
		measure += bestGain
	}
	return placed, measure
}

// insertionGain is the change of the adjacency-bond measure when
// inserting column c at gap g of the placed sequence: the new bonds to
// its neighbours minus the bond the insertion breaks.
func insertionGain(bond [][]int, placed []int, c, g int) int {
	var left, right int = -1, -1
	if g > 0 {
		left = placed[g-1]
	}
	if g < len(placed) {
		right = placed[g]
	}
	gain := 0
	if left >= 0 {
		gain += bond[left][c]
	}
	if right >= 0 {
		gain += bond[c][right]
	}
	if left >= 0 && right >= 0 {
		gain -= bond[left][right]
	}
	return gain
}

// OutsideConnections counts, for the block of permutation positions
// [a, b), the 1's of the block's columns that fall outside the block's
// rows — the paper's measure of the connections between a candidate
// fragment and the rest of the graph (Fig. 5). The diagonal never
// contributes.
func (mx *Matrix) OutsideConnections(perm []int, a, b int) int {
	count := 0
	inBlock := make(map[int]bool, b-a)
	for p := a; p < b; p++ {
		inBlock[perm[p]] = true
	}
	for p := a; p < b; p++ {
		c := perm[p]
		for r := range mx.M {
			if mx.M[r][c] && r != c && !inBlock[r] {
				count++
			}
		}
	}
	return count
}

// insideConnections counts the off-diagonal 1's within the block — the
// "number of edges in the current block" of the finetuning rule.
func (mx *Matrix) insideConnections(perm []int, a, b int) int {
	count := 0
	inBlock := make(map[int]bool, b-a)
	for p := a; p < b; p++ {
		inBlock[perm[p]] = true
	}
	for p := a; p < b; p++ {
		c := perm[p]
		for r := range mx.M {
			if mx.M[r][c] && r != c && inBlock[r] {
				count++
			}
		}
	}
	return count
}

// SplitPoints scans the reordered matrix once from left to right and
// returns the block boundaries [0, s1, s2, …, n] per the configured
// split rule. ThresholdMode closes the block after the column that
// brought the outside count down to the threshold; LocalMinimumMode
// closes it before the column that made the count rise (the minimum
// itself stays in the block).
func SplitPoints(mx *Matrix, perm []int, opt Options) []int {
	n := len(perm)
	bounds := []int{0}
	start := 0
	prevOut := -1
	for i := 0; i < n; {
		out := mx.OutsideConnections(perm, start, i+1)
		switch opt.Mode {
		case ThresholdMode:
			if out <= opt.Threshold && i+1 < n &&
				(opt.MinBlockEdges == 0 || mx.insideConnections(perm, start, i+1) >= opt.MinBlockEdges) {
				bounds = append(bounds, i+1)
				start = i + 1
				prevOut = -1
				i++
				continue
			}
		case LocalMinimumMode:
			if prevOut >= 0 && out > prevOut && i > start &&
				(opt.MinBlockEdges == 0 || mx.insideConnections(perm, start, i) >= opt.MinBlockEdges) {
				bounds = append(bounds, i)
				start = i
				prevOut = -1
				continue // re-examine column i as the new block's first
			}
		}
		prevOut = out
		i++
	}
	return append(bounds, n)
}

// Fragment runs the full bond-energy pipeline on g: build the
// adjacency matrix, reorder by bond energy, split by the configured
// rule, and turn the node blocks into an edge partition. An edge
// between two blocks is assigned to the block of its earlier-placed
// endpoint; its later endpoint thereby joins both fragments' node sets
// and hence the disconnection set, which is exactly the outside-1's
// counting of the paper. Blocks that end up with no edges are dropped
// ("there is a slight variation in number of fragments possible").
func Fragment(g *graph.Graph, opt Options) (*fragment.Fragmentation, error) {
	opt, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("bea: graph has no edges")
	}
	mx := BuildMatrix(g)
	perm, _ := mx.Reorder(opt.Starts)
	bounds := SplitPoints(mx, perm, opt)

	// blockOf maps each node to its block index.
	blockOf := make(map[graph.NodeID]int, len(perm))
	for b := 0; b+1 < len(bounds); b++ {
		for p := bounds[b]; p < bounds[b+1]; p++ {
			blockOf[mx.Cols[perm[p]]] = b
		}
	}
	// posOf maps each node to its permutation position, to find the
	// earlier-placed endpoint of a cross edge.
	posOf := make(map[graph.NodeID]int, len(perm))
	for p, c := range perm {
		posOf[mx.Cols[c]] = p
	}

	sets := make([][]graph.Edge, len(bounds)-1)
	for _, e := range g.Edges() {
		b := blockOf[e.From]
		if posOf[e.To] < posOf[e.From] {
			b = blockOf[e.To]
		}
		sets[b] = append(sets[b], e)
	}
	// Drop empty blocks.
	nonEmpty := sets[:0]
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	return fragment.New(g, nonEmpty)
}
