package bea

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fig5Graph reconstructs the 6×6 example matrix of the paper's Fig. 5:
// symmetric connections 1-2, 2-3, 1-5, 2-5, 4-6 (and the 1 diagonal the
// algorithm adds itself). Grouping nodes 1-3 yields 2 connections
// outside the block, both with node 5; grouping 1-4 yields 3, with
// nodes 5 and 6.
func fig5Graph() *graph.Graph {
	g := graph.New()
	for i := 1; i <= 6; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{})
	}
	for _, p := range [][2]graph.NodeID{{1, 2}, {2, 3}, {1, 5}, {2, 5}, {4, 6}} {
		g.AddBoth(graph.Edge{From: p[0], To: p[1], Weight: 1})
	}
	return g
}

func TestFig5Example(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	// Identity permutation = the paper's original column order 1..6.
	perm := []int{0, 1, 2, 3, 4, 5}
	if got := mx.OutsideConnections(perm, 0, 3); got != 2 {
		t.Errorf("block {1,2,3}: outside connections = %d, want 2 (paper)", got)
	}
	if got := mx.OutsideConnections(perm, 0, 4); got != 3 {
		t.Errorf("block {1,2,3,4}: outside connections = %d, want 3 (paper)", got)
	}
}

func TestBuildMatrixDiagonalAndSymmetry(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	n := len(mx.Cols)
	if n != 6 {
		t.Fatalf("matrix size = %d", n)
	}
	for i := 0; i < n; i++ {
		if !mx.M[i][i] {
			t.Errorf("diagonal M[%d][%d] not set", i, i)
		}
		for j := 0; j < n; j++ {
			if mx.M[i][j] != mx.M[j][i] {
				t.Errorf("matrix not symmetric at (%d, %d)", i, j)
			}
		}
	}
}

func TestInnerProduct(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	// Columns 0 (node 1) and 1 (node 2): both have 1's in rows 1, 2
	// and 5 (nodes 1, 2, 5) → rows {0,1,4} for col0 = {1,2,5};
	// col1 = rows {0,1,2,4} = {1,2,3,5}. Common: rows 0, 1, 4 → 3.
	if got := mx.InnerProduct(0, 1); got != 3 {
		t.Errorf("InnerProduct(col1, col2) = %d, want 3", got)
	}
	// A column with itself: number of 1's in it.
	if got := mx.InnerProduct(0, 0); got != 3 {
		t.Errorf("InnerProduct(col1, col1) = %d, want 3", got)
	}
}

func TestReorderIsPermutation(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm, measure := mx.Reorder(0)
	if len(perm) != 6 {
		t.Fatalf("perm length = %d", len(perm))
	}
	seen := make([]bool, 6)
	for _, p := range perm {
		if p < 0 || p >= 6 || seen[p] {
			t.Fatalf("perm = %v is not a permutation", perm)
		}
		seen[p] = true
	}
	if measure <= 0 {
		t.Errorf("measure = %d, want positive", measure)
	}
}

func TestReorderClustersFig5(t *testing.T) {
	// In the best ordering, the {4, 6} pair (columns 3, 5) must be
	// adjacent: they bond with each other but with nothing else.
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm, _ := mx.Reorder(0)
	pos := make(map[int]int)
	for i, p := range perm {
		pos[p] = i
	}
	d := pos[3] - pos[5]
	if d != 1 && d != -1 {
		t.Errorf("columns of nodes 4 and 6 not adjacent in %v", perm)
	}
}

func TestReorderMeasureNotWorseWithMoreStarts(t *testing.T) {
	g, err := gen.General(gen.Defaults(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	mx := BuildMatrix(g)
	_, m1 := mx.Reorder(1)
	_, mAll := mx.Reorder(0)
	if mAll < m1 {
		t.Errorf("all-starts measure %d worse than single-start %d", mAll, m1)
	}
}

func TestReorderEmpty(t *testing.T) {
	mx := BuildMatrix(graph.New())
	perm, measure := mx.Reorder(0)
	if perm != nil || measure != 0 {
		t.Errorf("empty reorder = %v, %d", perm, measure)
	}
}

func TestSplitPointsThreshold(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm := []int{0, 1, 2, 3, 4, 5}
	// Threshold 2 with the identity order: block {1,2,3} reaches 2
	// outside connections at column 2 (index 1: {1,2} has 1-5,2-5,2-3 =
	// 3 outside already)… verify behaviour is a valid cover regardless.
	bounds := SplitPoints(mx, perm, Options{Threshold: 2, Mode: ThresholdMode})
	if bounds[0] != 0 || bounds[len(bounds)-1] != 6 {
		t.Fatalf("bounds = %v must start at 0 and end at n", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds = %v not strictly increasing", bounds)
		}
	}
}

func TestSplitPointsThresholdSemantics(t *testing.T) {
	// Threshold splitting closes a block when its outside count comes
	// DOWN to the threshold. With the identity order, the first column
	// (node 1, connections to 2 and 5) has outside count 2, so
	// threshold 2 splits immediately after it.
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm := []int{0, 1, 2, 3, 4, 5}
	bounds := SplitPoints(mx, perm, Options{Threshold: 2, Mode: ThresholdMode})
	if len(bounds) < 3 || bounds[1] != 1 {
		t.Errorf("bounds = %v, want first split after column 0", bounds)
	}
}

func TestSplitPointsMinBlockBlocksAllSplits(t *testing.T) {
	// An unreachable MinBlockEdges suppresses every split: one block.
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm := []int{0, 1, 2, 3, 4, 5}
	bounds := SplitPoints(mx, perm, Options{Threshold: 5, MinBlockEdges: 10000, Mode: ThresholdMode})
	if len(bounds) != 2 {
		t.Errorf("bounds = %v, want single block", bounds)
	}
}

func TestSplitPointsMinBlockEdges(t *testing.T) {
	g := fig5Graph()
	mx := BuildMatrix(g)
	perm := []int{0, 1, 2, 3, 4, 5}
	loose := SplitPoints(mx, perm, Options{Threshold: 1, Mode: ThresholdMode})
	tight := SplitPoints(mx, perm, Options{Threshold: 1, MinBlockEdges: 4, Mode: ThresholdMode})
	if len(tight) > len(loose) {
		t.Errorf("MinBlockEdges increased splits: %v vs %v", tight, loose)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := fig5Graph()
	for i, o := range []Options{
		{Threshold: -1},
		{MinBlockEdges: -1},
		{Starts: -2},
		{Mode: Mode(9)},
	} {
		if _, err := Fragment(g, o); err == nil {
			t.Errorf("case %d: Options %+v accepted", i, o)
		}
	}
}

func TestFragmentEmptyGraph(t *testing.T) {
	g := graph.New()
	g.AddNode(1, graph.Coord{})
	if _, err := Fragment(g, Options{Threshold: 1}); err == nil {
		t.Error("edgeless graph accepted")
	}
}

func TestFragmentFig5(t *testing.T) {
	g := fig5Graph()
	fr, err := Fragment(g, Options{Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range fr.Fragments() {
		total += f.Size()
	}
	if total != g.NumEdges() {
		t.Errorf("partition covers %d of %d edges", total, g.NumEdges())
	}
	// The {4,6} pair has no connection to the rest: whatever the split,
	// no disconnection set may contain node 4 or 6.
	for p, ds := range fr.DisconnectionSets() {
		for _, id := range ds {
			if id == 4 || id == 6 {
				t.Errorf("DS%v contains isolated-pair node %d", p, id)
			}
		}
	}
}

func TestFragmentSmallDisconnectionSets(t *testing.T) {
	// On a transportation graph, BEA's goal: DS should be small — close
	// to the number of border nodes per inter-cluster link.
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(15, 77)})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fragment(g, Options{Threshold: 6, MinBlockEdges: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := fragment.Measure(fr)
	if c.NumFragments < 2 {
		t.Fatalf("BEA produced %d fragments", c.NumFragments)
	}
	if c.DS > 8 {
		t.Errorf("DS = %v; bond energy should keep disconnection sets small", c.DS)
	}
}

func TestLocalMinimumModeProducesValidPartition(t *testing.T) {
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 2, Cluster: gen.Defaults(12, 9)})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fragment(g, Options{Mode: LocalMinimumMode, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range fr.Fragments() {
		total += f.Size()
	}
	if total != g.NumEdges() {
		t.Errorf("local-minimum partition covers %d of %d edges", total, g.NumEdges())
	}
}

// TestPropertyFragmentAlwaysPartitions: BEA always yields an exact edge
// partition on random connected graphs, for both modes.
func TestPropertyFragmentAlwaysPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.General(gen.Defaults(8+rng.Intn(18), seed))
		if err != nil || g.NumEdges() == 0 {
			return err == nil
		}
		for _, mode := range []Mode{ThresholdMode, LocalMinimumMode} {
			fr, err := Fragment(g, Options{Mode: mode, Threshold: 1 + rng.Intn(8)})
			if err != nil {
				return false
			}
			total := 0
			for _, f := range fr.Fragments() {
				total += f.Size()
			}
			if total != g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReorderPreservesMatrix: reordering never changes the
// underlying adjacency; OutsideConnections of the full range is 0.
func TestPropertyReorderPreservesMatrix(t *testing.T) {
	f := func(seed int64) bool {
		g, err := gen.General(gen.Defaults(6+int(seed%10+10)%10, seed))
		if err != nil {
			return false
		}
		mx := BuildMatrix(g)
		perm, _ := mx.Reorder(1)
		if len(perm) != len(mx.Cols) {
			return false
		}
		return mx.OutsideConnections(perm, 0, len(perm)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
