package fragment

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// twoCluster builds the simplest fragmentable graph: two triangles
// sharing node 2 ({0,1,2} and {2,3,4}).
func twoCluster() (*graph.Graph, [][]graph.Edge) {
	g := graph.New()
	left := []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	}
	right := []graph.Edge{
		{From: 2, To: 3, Weight: 1}, {From: 3, To: 4, Weight: 1}, {From: 4, To: 2, Weight: 1},
	}
	for _, e := range append(append([]graph.Edge{}, left...), right...) {
		g.AddEdge(e)
	}
	return g, [][]graph.Edge{left, right}
}

func TestNewValidPartition(t *testing.T) {
	g, sets := twoCluster()
	fr, err := New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != 2 {
		t.Fatalf("fragments = %d", fr.NumFragments())
	}
	if fr.Fragment(0).Size() != 3 || fr.Fragment(1).Size() != 3 {
		t.Error("fragment sizes wrong")
	}
	if !reflect.DeepEqual(fr.Fragment(0).Nodes(), []graph.NodeID{0, 1, 2}) {
		t.Errorf("fragment 0 nodes = %v", fr.Fragment(0).Nodes())
	}
}

func TestNewRejectsBadPartitions(t *testing.T) {
	g, sets := twoCluster()
	t.Run("nil graph", func(t *testing.T) {
		if _, err := New(nil, sets); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("no fragments", func(t *testing.T) {
		if _, err := New(g, nil); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("empty fragment", func(t *testing.T) {
		if _, err := New(g, [][]graph.Edge{sets[0], nil}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("missing edge", func(t *testing.T) {
		if _, err := New(g, [][]graph.Edge{sets[0], sets[1][:2]}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("duplicated edge", func(t *testing.T) {
		dup := append(append([]graph.Edge{}, sets[1]...), sets[0][0])
		if _, err := New(g, [][]graph.Edge{sets[0], dup}); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("foreign edge", func(t *testing.T) {
		foreign := append(append([]graph.Edge{}, sets[1]...), graph.Edge{From: 90, To: 91})
		if _, err := New(g, [][]graph.Edge{sets[0], foreign}); err == nil {
			t.Error("accepted")
		}
	})
}

func TestDisconnectionSets(t *testing.T) {
	g, sets := twoCluster()
	fr, err := New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	ds := fr.DisconnectionSets()
	if len(ds) != 1 {
		t.Fatalf("ds = %v", ds)
	}
	got := ds[Pair{I: 0, J: 1}]
	if !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Errorf("DS01 = %v, want [2]", got)
	}
	if !reflect.DeepEqual(fr.DisconnectionSet(1, 0), []graph.NodeID{2}) {
		t.Error("DisconnectionSet should normalise pair order")
	}
	if fr.DisconnectionSet(0, 0) != nil {
		t.Error("DS_ii should be empty")
	}
}

func TestFragmentsOfAndBorderNodes(t *testing.T) {
	g, sets := twoCluster()
	fr, _ := New(g, sets)
	if got := fr.FragmentsOf(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("FragmentsOf(2) = %v", got)
	}
	if got := fr.FragmentsOf(0); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("FragmentsOf(0) = %v", got)
	}
	if got := fr.FragmentsOf(99); got != nil {
		t.Errorf("FragmentsOf(unknown) = %v", got)
	}
	if got := fr.BorderNodes(0); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Errorf("BorderNodes(0) = %v", got)
	}
}

func TestMakePair(t *testing.T) {
	if MakePair(3, 1) != (Pair{I: 1, J: 3}) {
		t.Error("MakePair should normalise")
	}
}

// chainGraph builds a path of k unit fragments: fragment i is the single
// edge i->i+1, so DS_{i,i+1} = {i+1}.
func chainGraph(k int) (*graph.Graph, [][]graph.Edge) {
	g := graph.New()
	var sets [][]graph.Edge
	for i := 0; i < k; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
		g.AddEdge(e)
		sets = append(sets, []graph.Edge{e})
	}
	return g, sets
}

func TestFragmentationGraphChain(t *testing.T) {
	g, sets := chainGraph(4)
	fr, err := New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	fg := fr.FragmentationGraph()
	if fg.NumFragments() != 4 || fg.NumLinks() != 3 {
		t.Fatalf("G' = %d nodes, %d links", fg.NumFragments(), fg.NumLinks())
	}
	if !fg.IsLooselyConnected() || fg.CycleCount() != 0 {
		t.Error("chain should be loosely connected")
	}
	if got := fg.Adjacent(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Adjacent(1) = %v", got)
	}
	chains, err := fg.Chains(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || !reflect.DeepEqual(chains[0], []int{0, 1, 2, 3}) {
		t.Errorf("chains = %v", chains)
	}
}

// cycleFragmentation builds a ring of k single-edge fragments, whose
// fragmentation graph is a k-cycle.
func cycleFragmentation(k int) *Fragmentation {
	g := graph.New()
	var sets [][]graph.Edge
	for i := 0; i < k; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID((i + 1) % k), Weight: 1}
		g.AddEdge(e)
		sets = append(sets, []graph.Edge{e})
	}
	fr, err := New(g, sets)
	if err != nil {
		panic(err)
	}
	return fr
}

func TestFragmentationGraphCycle(t *testing.T) {
	fr := cycleFragmentation(4)
	fg := fr.FragmentationGraph()
	if fg.IsLooselyConnected() {
		t.Error("ring fragmentation reported loosely connected")
	}
	if fg.CycleCount() != 1 {
		t.Errorf("cycles = %d, want 1", fg.CycleCount())
	}
	chains, err := fg.Chains(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("ring should give 2 chains, got %v", chains)
	}
	// Bounded enumeration.
	chains, err = fg.Chains(0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Errorf("maxChains=1 returned %d chains", len(chains))
	}
}

func TestChainsSameFragment(t *testing.T) {
	fr := cycleFragmentation(3)
	chains, err := fr.FragmentationGraph().Chains(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 || !reflect.DeepEqual(chains[0], []int{1}) {
		t.Errorf("self chain = %v", chains)
	}
}

func TestChainsRangeErrors(t *testing.T) {
	fr := cycleFragmentation(3)
	fg := fr.FragmentationGraph()
	if _, err := fg.Chains(-1, 2, 0); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := fg.Chains(0, 5, 0); err == nil {
		t.Error("out-of-range to accepted")
	}
}

func TestChainsDisconnected(t *testing.T) {
	// Two separate single-edge fragments with no shared node.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 10, To: 11, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := fr.FragmentationGraph().Chains(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 0 {
		t.Errorf("chains across disconnected G' = %v", chains)
	}
}

func TestMeasureTwoCluster(t *testing.T) {
	g, sets := twoCluster()
	fr, _ := New(g, sets)
	c := Measure(fr)
	if c.F != 3 || c.AF != 0 {
		t.Errorf("F = %v, AF = %v, want 3, 0", c.F, c.AF)
	}
	if c.DS != 1 || c.ADS != 0 {
		t.Errorf("DS = %v, ADS = %v, want 1, 0", c.DS, c.ADS)
	}
	if !c.LooselyConnected || c.Cycles != 0 {
		t.Error("two-cluster should be loosely connected")
	}
	if c.NumFragments != 2 || c.NumDisconnectionSets != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestMeasureDeviation(t *testing.T) {
	// Fragments of sizes 1 and 3: F=2, AF = (|1-2|+|3-2|)/2 = 1.
	g := graph.New()
	a := []graph.Edge{{From: 0, To: 1, Weight: 1}}
	b := []graph.Edge{
		{From: 1, To: 2, Weight: 1}, {From: 2, To: 3, Weight: 1}, {From: 3, To: 1, Weight: 1},
	}
	for _, e := range append(append([]graph.Edge{}, a...), b...) {
		g.AddEdge(e)
	}
	fr, err := New(g, [][]graph.Edge{a, b})
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(fr)
	if c.F != 2 || c.AF != 1 {
		t.Errorf("F = %v, AF = %v, want 2, 1", c.F, c.AF)
	}
}

func TestMeasureSingleFragment(t *testing.T) {
	g := graph.New()
	e := graph.Edge{From: 0, To: 1, Weight: 1}
	g.AddEdge(e)
	fr, err := New(g, [][]graph.Edge{{e}})
	if err != nil {
		t.Fatal(err)
	}
	c := Measure(fr)
	if c.DS != 0 || c.NumDisconnectionSets != 0 {
		t.Errorf("single fragment DS stats = %+v", c)
	}
	if !c.LooselyConnected {
		t.Error("single fragment must be loosely connected")
	}
}

func TestAverage(t *testing.T) {
	cs := []Characteristics{
		{F: 2, DS: 1, AF: 0, ADS: 0, Cycles: 0, NumFragments: 2, NumDisconnectionSets: 1, LooselyConnected: true},
		{F: 4, DS: 3, AF: 2, ADS: 1, Cycles: 2, NumFragments: 4, NumDisconnectionSets: 3, LooselyConnected: false},
	}
	avg := Average(cs)
	if avg.F != 3 || avg.DS != 2 || avg.AF != 1 || avg.ADS != 0.5 {
		t.Errorf("avg = %+v", avg)
	}
	if avg.Cycles != 1 || avg.NumFragments != 3 || avg.NumDisconnectionSets != 2 {
		t.Errorf("avg counts = %+v", avg)
	}
	if avg.LooselyConnected {
		t.Error("majority not loose")
	}
	if got := Average(nil); got != (Characteristics{}) {
		t.Errorf("Average(nil) = %+v", got)
	}
}

func TestCharacteristicsString(t *testing.T) {
	c := Characteristics{F: 3, DS: 1, LooselyConnected: true}
	s := c.String()
	if s == "" || !contains(s, "F=3.0") || !contains(s, "loosely connected") {
		t.Errorf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSubgraphKeepsCoordinates(t *testing.T) {
	g, sets := twoCluster()
	g.AddNode(2, graph.Coord{X: 5, Y: 6})
	fr, _ := New(g, sets)
	sub := fr.Fragment(1).Subgraph(g)
	if c := sub.Coord(2); c.X != 5 || c.Y != 6 {
		t.Errorf("subgraph coord = %+v", c)
	}
	if sub.NumEdges() != 3 {
		t.Errorf("subgraph edges = %d", sub.NumEdges())
	}
}

// randomPartition splits a random graph's edges into k non-empty chunks
// round-robin; not a sensible fragmentation, but a valid partition.
func randomPartition(rng *rand.Rand, g *graph.Graph, k int) [][]graph.Edge {
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if k > len(edges) {
		k = len(edges)
	}
	sets := make([][]graph.Edge, k)
	for i, e := range edges {
		sets[i%k] = append(sets[i%k], e)
	}
	return sets
}

// TestPropertyPartitionInvariants: for any valid partition, fragment
// sizes sum to |E|, every DS_ij equals V_i ∩ V_j computed naively, and
// border nodes appear in ≥ 2 fragments.
func TestPropertyPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 4 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), graph.Coord{})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(graph.Edge{From: graph.NodeID(rng.Intn(i)), To: graph.NodeID(i), Weight: 1})
		}
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && !g.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
				g.AddEdge(graph.Edge{From: graph.NodeID(a), To: graph.NodeID(b), Weight: 1})
			}
		}
		k := 1 + rng.Intn(4)
		fr, err := New(g, randomPartition(rng, g, k))
		if err != nil {
			return false
		}
		total := 0
		for _, f := range fr.Fragments() {
			total += f.Size()
		}
		if total != g.NumEdges() {
			return false
		}
		// DS_ij = V_i ∩ V_j by definition.
		for p, ds := range fr.DisconnectionSets() {
			fi, fj := fr.Fragment(p.I), fr.Fragment(p.J)
			want := make(map[graph.NodeID]bool)
			for _, id := range fi.Nodes() {
				if fj.HasNode(id) {
					want[id] = true
				}
			}
			if len(want) != len(ds) {
				return false
			}
			for _, id := range ds {
				if !want[id] {
					return false
				}
			}
		}
		// Characteristics are internally consistent.
		c := Measure(fr)
		if c.NumFragments != fr.NumFragments() {
			return false
		}
		if math.IsNaN(c.F) || math.IsNaN(c.DS) || c.AF < 0 || c.ADS < 0 {
			return false
		}
		return c.LooselyConnected == (c.Cycles == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
