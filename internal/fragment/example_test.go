package fragment_test

import (
	"fmt"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// Example builds the paper's canonical situation by hand: two fragments
// sharing one border node, and reads off the disconnection set and the
// fragmentation graph.
func Example() {
	g := graph.New()
	left := []graph.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}}
	right := []graph.Edge{{From: 2, To: 3, Weight: 1}, {From: 3, To: 4, Weight: 1}}
	for _, e := range append(append([]graph.Edge{}, left...), right...) {
		g.AddEdge(e)
	}
	fr, err := fragment.New(g, [][]graph.Edge{left, right})
	if err != nil {
		panic(err)
	}
	fmt.Println("DS01:", fr.DisconnectionSet(0, 1))
	fmt.Println("loosely connected:", fr.FragmentationGraph().IsLooselyConnected())
	c := fragment.Measure(fr)
	fmt.Printf("F=%.0f DS=%.0f\n", c.F, c.DS)
	// Output:
	// DS01: [2]
	// loosely connected: true
	// F=2 DS=1
}

// ExampleFragGraph_Chains enumerates the fragment chains a query must
// consider.
func ExampleFragGraph_Chains() {
	g := graph.New()
	var sets [][]graph.Edge
	for i := 0; i < 3; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
		g.AddEdge(e)
		sets = append(sets, []graph.Edge{e})
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		panic(err)
	}
	chains, err := fr.FragmentationGraph().Chains(0, 2, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(chains)
	// Output: [[0 1 2]]
}
