// Package fragment defines the fragmentation model of the ICDE'93
// paper: a partition of the edge relation R into fragments R_i, the
// subgraphs G_i they induce, the disconnection sets DS_ij = V_i ∩ V_j,
// the fragmentation graph G' (one node per fragment, one edge per
// non-empty disconnection set), and the characteristics reported in
// Tables 1–3 (average fragment size F, average disconnection set size
// DS, and their average deviations AF and ADS).
//
// The three fragmentation algorithms of §3 live in the subpackages
// center, bea and linear; each produces a *Fragmentation that this
// package validates and measures.
package fragment

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Fragment is one element R_i of the partition: a set of edges plus the
// node set V_i they induce.
type Fragment struct {
	// ID is the fragment's index within its fragmentation.
	ID int
	// Edges are the fragment's edges in deterministic order.
	Edges []graph.Edge
	// nodes is the induced node set.
	nodes map[graph.NodeID]struct{}
}

// newFragment builds a fragment from its edge set.
func newFragment(id int, edges []graph.Edge) *Fragment {
	f := &Fragment{ID: id, Edges: append([]graph.Edge(nil), edges...)}
	sort.Slice(f.Edges, func(i, j int) bool {
		a, b := f.Edges[i], f.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	f.nodes = make(map[graph.NodeID]struct{})
	for _, e := range f.Edges {
		f.nodes[e.From] = struct{}{}
		f.nodes[e.To] = struct{}{}
	}
	return f
}

// Size returns the number of edges — the paper's fragment size measure
// ("the number of tuples in a fragment is a good indication for the
// workload of a processor", §2.2).
func (f *Fragment) Size() int { return len(f.Edges) }

// HasNode reports whether id belongs to the fragment's induced node
// set.
func (f *Fragment) HasNode(id graph.NodeID) bool {
	_, ok := f.nodes[id]
	return ok
}

// Nodes returns the induced node set in ascending order.
func (f *Fragment) Nodes() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	return graph.SortNodeIDs(ids)
}

// NumNodes returns |V_i|.
func (f *Fragment) NumNodes() int { return len(f.nodes) }

// EachNode calls fn for every node of the induced node set, in
// arbitrary order — the allocation-free counterpart of Nodes for bulk
// callers that do not need the sorted order.
func (f *Fragment) EachNode(fn func(graph.NodeID)) {
	for id := range f.nodes {
		fn(id)
	}
}

// Subgraph materialises G_i, copying coordinates from the base graph.
func (f *Fragment) Subgraph(base *graph.Graph) *graph.Graph {
	return base.Subgraph(f.Edges)
}

// Fragmentation is a validated partition of a graph's edges.
type Fragmentation struct {
	base  *graph.Graph
	frags []*Fragment
	// byNode maps each node to the (sorted) IDs of the fragments whose
	// induced node set contains it; nodes in ≥ 2 fragments are exactly
	// the disconnection-set nodes.
	byNode map[graph.NodeID][]int
}

// New validates that the edge sets form an exact partition of g's edges
// — every edge in exactly one fragment — and builds the Fragmentation.
// Empty edge sets are rejected: an empty fragment would be a processor
// with no work and a hole in the fragmentation graph.
func New(g *graph.Graph, edgeSets [][]graph.Edge) (*Fragmentation, error) {
	if g == nil {
		return nil, fmt.Errorf("fragment: nil base graph")
	}
	if len(edgeSets) == 0 {
		return nil, fmt.Errorf("fragment: no fragments")
	}
	// Multiset of the base edges.
	remaining := make(map[graph.Edge]int, g.NumEdges())
	for _, e := range g.Edges() {
		remaining[e]++
	}
	fr := &Fragmentation{base: g, byNode: make(map[graph.NodeID][]int)}
	for i, edges := range edgeSets {
		if len(edges) == 0 {
			return nil, fmt.Errorf("fragment: fragment %d is empty", i)
		}
		for _, e := range edges {
			if remaining[e] == 0 {
				return nil, fmt.Errorf("fragment: edge %v not in base graph or already assigned", e)
			}
			remaining[e]--
		}
		fr.frags = append(fr.frags, newFragment(i, edges))
	}
	for e, n := range remaining {
		if n > 0 {
			return nil, fmt.Errorf("fragment: edge %v not assigned to any fragment", e)
		}
	}
	for _, f := range fr.frags {
		for id := range f.nodes {
			fr.byNode[id] = append(fr.byNode[id], f.ID)
		}
	}
	for id := range fr.byNode {
		sort.Ints(fr.byNode[id])
	}
	return fr, nil
}

// Restore builds a Fragmentation from edge sets already known to
// partition g's edges — the trusted constructor for the binary
// snapshot loader, whose input carried a checksum and was written from
// a validated Fragmentation. It skips New's O(E) multiset partition
// check and newFragment's re-sort (snapshots store each fragment's
// edges in their deterministic order), and adopts the edge slices
// without copying. Empty inputs are still rejected; everything else is
// trusted.
func Restore(g *graph.Graph, edgeSets [][]graph.Edge) (*Fragmentation, error) {
	if g == nil {
		return nil, fmt.Errorf("fragment: nil base graph")
	}
	if len(edgeSets) == 0 {
		return nil, fmt.Errorf("fragment: no fragments")
	}
	fr := &Fragmentation{base: g, byNode: make(map[graph.NodeID][]int)}
	for i, edges := range edgeSets {
		if len(edges) == 0 {
			return nil, fmt.Errorf("fragment: fragment %d is empty", i)
		}
		f := &Fragment{ID: i, Edges: edges, nodes: make(map[graph.NodeID]struct{})}
		for _, e := range edges {
			f.nodes[e.From] = struct{}{}
			f.nodes[e.To] = struct{}{}
		}
		fr.frags = append(fr.frags, f)
	}
	for _, f := range fr.frags {
		for id := range f.nodes {
			fr.byNode[id] = append(fr.byNode[id], f.ID)
		}
	}
	for id := range fr.byNode {
		sort.Ints(fr.byNode[id])
	}
	return fr, nil
}

// Base returns the fragmented graph.
func (fr *Fragmentation) Base() *graph.Graph { return fr.base }

// NumFragments returns the number of fragments n.
func (fr *Fragmentation) NumFragments() int { return len(fr.frags) }

// Fragment returns fragment i.
func (fr *Fragmentation) Fragment(i int) *Fragment { return fr.frags[i] }

// Fragments returns all fragments in ID order.
func (fr *Fragmentation) Fragments() []*Fragment { return fr.frags }

// FragmentsOf returns the IDs of the fragments containing node id
// (ascending); nil if the node appears in none (isolated in the base
// graph).
func (fr *Fragmentation) FragmentsOf(id graph.NodeID) []int { return fr.byNode[id] }

// SharedNodes returns the set of nodes belonging to two or more
// fragments — the union of every disconnection set. A node outside the
// set has all of its base-graph edges inside its single fragment,
// which is what lets the site builder share the base adjacency lists
// for such nodes instead of re-deriving them.
func (fr *Fragmentation) SharedNodes() map[graph.NodeID]bool {
	shared := make(map[graph.NodeID]bool)
	for id, fs := range fr.byNode {
		if len(fs) > 1 {
			shared[id] = true
		}
	}
	return shared
}

// Pair identifies an unordered fragment pair with I < J.
type Pair struct{ I, J int }

// MakePair normalises a fragment pair to I < J.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{I: a, J: b}
}

// DisconnectionSets returns every non-empty DS_ij = V_i ∩ V_j as a
// sorted node list, keyed by the normalised pair. Complementary
// information in the disconnection set approach is precomputed exactly
// for these node sets.
func (fr *Fragmentation) DisconnectionSets() map[Pair][]graph.NodeID {
	ds := make(map[Pair][]graph.NodeID)
	for id, fs := range fr.byNode {
		for a := 0; a < len(fs); a++ {
			for b := a + 1; b < len(fs); b++ {
				p := Pair{I: fs[a], J: fs[b]}
				ds[p] = append(ds[p], id)
			}
		}
	}
	for p := range ds {
		graph.SortNodeIDs(ds[p])
	}
	return ds
}

// DisconnectionSet returns DS_ij (sorted), or nil if empty.
func (fr *Fragmentation) DisconnectionSet(a, b int) []graph.NodeID {
	return fr.DisconnectionSets()[MakePair(a, b)]
}

// BorderNodes returns the nodes of fragment i shared with any other
// fragment (the union of its disconnection sets), sorted.
func (fr *Fragmentation) BorderNodes(i int) []graph.NodeID {
	var ids []graph.NodeID
	for id, fs := range fr.byNode {
		if len(fs) < 2 {
			continue
		}
		for _, f := range fs {
			if f == i {
				ids = append(ids, id)
				break
			}
		}
	}
	return graph.SortNodeIDs(ids)
}
