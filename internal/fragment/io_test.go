package fragment

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestFragmentationWriteReadRoundTrip(t *testing.T) {
	g, sets := twoCluster()
	fr, err := New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFragments() != fr.NumFragments() {
		t.Fatalf("fragments = %d, want %d", back.NumFragments(), fr.NumFragments())
	}
	for i := 0; i < fr.NumFragments(); i++ {
		if !reflect.DeepEqual(back.Fragment(i).Edges, fr.Fragment(i).Edges) {
			t.Errorf("fragment %d differs after round trip", i)
		}
	}
}

func TestFragmentationReadErrors(t *testing.T) {
	g, _ := twoCluster()
	cases := []struct {
		name, input string
	}{
		{"bad directive", "frag 0 1 2 1\n"},
		{"missing fields", "fragment 0 1 2\n"},
		{"bad index", "fragment x 1 2 1\n"},
		{"negative index", "fragment -1 1 2 1\n"},
		{"bad from", "fragment 0 x 2 1\n"},
		{"bad to", "fragment 0 1 x 1\n"},
		{"bad weight", "fragment 0 1 2 w\n"},
		{"hole in indices", "fragment 0 0 1 1\nfragment 2 1 2 1\n"},
		{"foreign edge", "fragment 0 7 8 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(g, strings.NewReader(c.input)); err == nil {
				t.Errorf("Read(%q) succeeded", c.input)
			}
		})
	}
}

// errAfterReader yields its payload, then fails with a synthetic
// stream error.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestFragmentationReadErrorsReportLine: parse failures name the
// offending line.
func TestFragmentationReadErrorsReportLine(t *testing.T) {
	g, _ := twoCluster()
	_, err := Read(g, strings.NewReader("# header\nfragment 0 1 x 1\n"))
	if err == nil {
		t.Fatal("Read succeeded, want error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name line 2", err)
	}
}

// TestFragmentationReadStreamError: a reader failing mid-stream
// reports where the scan stopped alongside the underlying error.
func TestFragmentationReadStreamError(t *testing.T) {
	g, _ := twoCluster()
	boom := errors.New("synthetic stream failure")
	_, err := Read(g, &errAfterReader{data: []byte("fragment 0 1 2 1\n"), err: boom})
	if err == nil {
		t.Fatal("Read succeeded, want error")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), boom.Error()) {
		t.Errorf("error %q should name line 2 and the stream failure", err)
	}
}

func TestFragmentationReadCommentsAndBlanks(t *testing.T) {
	g := graph.New()
	e := graph.Edge{From: 1, To: 2, Weight: 1.5}
	g.AddEdge(e)
	in := "# header\n\nfragment 0 1 2 1.5\n"
	fr, err := Read(g, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != 1 || fr.Fragment(0).Size() != 1 {
		t.Errorf("fr = %v fragments", fr.NumFragments())
	}
}

// TestPropertyFragIORoundTrip: any valid partition survives a
// write/read cycle bit-exactly.
func TestPropertyFragIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), graph.Coord{})
		}
		for i := 1; i < n; i++ {
			g.AddEdge(graph.Edge{
				From: graph.NodeID(rng.Intn(i)), To: graph.NodeID(i),
				Weight: float64(1+rng.Intn(9)) / 2,
			})
		}
		fr, err := New(g, randomPartition(rng, g, 1+rng.Intn(3)))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := fr.Write(&buf); err != nil {
			return false
		}
		back, err := Read(g, &buf)
		if err != nil {
			return false
		}
		if back.NumFragments() != fr.NumFragments() {
			return false
		}
		for i := 0; i < fr.NumFragments(); i++ {
			if !reflect.DeepEqual(back.Fragment(i).Edges, fr.Fragment(i).Edges) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
