package auto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(15, seed)})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChooseValidation(t *testing.T) {
	g := testGraph(t, 1)
	if _, err := Choose(nil, 4, DefaultWeights(), 1); err == nil {
		t.Error("nil graph accepted")
	}
	empty := graph.New()
	empty.AddNode(1, graph.Coord{})
	if _, err := Choose(empty, 4, DefaultWeights(), 1); err == nil {
		t.Error("edgeless graph accepted")
	}
	if _, err := Choose(g, 0, DefaultWeights(), 1); err == nil {
		t.Error("zero fragments accepted")
	}
	if _, err := Choose(g, 4, Weights{DS: -1}, 1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Choose(g, 4, Weights{}, 1); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestChooseReturnsAllThreeSorted(t *testing.T) {
	g := testGraph(t, 3)
	cands, err := Choose(g, 4, DefaultWeights(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score < cands[i-1].Score {
			t.Errorf("candidates not sorted: %v", cands)
		}
	}
	names := map[string]bool{}
	for _, c := range cands {
		names[c.Name] = true
		if c.Fragmentation == nil {
			t.Errorf("%s: nil fragmentation", c.Name)
		}
		if math.IsNaN(c.Score) || c.Score < 0 {
			t.Errorf("%s: score = %v", c.Name, c.Score)
		}
	}
	for _, want := range []string{"center-based", "bond-energy", "linear"} {
		if !names[want] {
			t.Errorf("missing candidate %q", want)
		}
	}
}

func TestWeightsSteerTheChoice(t *testing.T) {
	// Pure-DS weighting must pick the candidate with the smallest DS;
	// pure-cycles weighting one with zero cycles (linear qualifies by
	// construction).
	g := testGraph(t, 7)
	dsBest, err := Best(g, 4, Weights{DS: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Choose(g, 4, Weights{DS: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		if c.C.DS < dsBest.C.DS {
			t.Errorf("DS weighting picked %s (DS %.1f) over %s (DS %.1f)",
				dsBest.Name, dsBest.C.DS, c.Name, c.C.DS)
		}
	}
	cycBest, err := Best(g, 4, Weights{Cycles: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cycBest.C.Cycles != 0 {
		t.Errorf("cycles weighting picked %s with %d cycles", cycBest.Name, cycBest.C.Cycles)
	}
}

func TestChooseFiltersDegenerateCandidates(t *testing.T) {
	// On a 3-cluster ring every cluster has 4 external connections, so
	// BEA's default threshold 3 never splits — a single-fragment
	// candidate that must not win (it provides no parallelism).
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 3, Cluster: gen.Defaults(12, 9)})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Choose(g, 3, DefaultWeights(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.C.NumFragments == 1 {
			t.Errorf("degenerate single-fragment candidate %s survived", c.Name)
		}
	}
}

func TestDefaultWeights(t *testing.T) {
	w := DefaultWeights()
	if w.DS <= w.Balance || w.DS <= w.Cycles {
		t.Errorf("default weights should lean on DS (§4.2.3): %+v", w)
	}
}

// TestPropertyBestIsParetoReasonable: the winner never loses on every
// single goal to another candidate (it cannot be strictly dominated,
// since a dominated candidate scores worse on every term).
func TestPropertyBestIsParetoReasonable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2 + rng.Intn(3),
			Cluster:  gen.Defaults(8+rng.Intn(6), seed),
		})
		if err != nil {
			return false
		}
		cands, err := Choose(g, 3, DefaultWeights(), seed)
		if err != nil {
			return false
		}
		best := cands[0]
		relBal := func(c Candidate) float64 {
			if c.C.F == 0 {
				return 0
			}
			return c.C.AF / c.C.F
		}
		for _, c := range cands[1:] {
			if c.C.DS < best.C.DS-1e-9 &&
				relBal(c) < relBal(best)-1e-9 &&
				c.C.Cycles < best.C.Cycles {
				return false // strictly dominated winner
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
