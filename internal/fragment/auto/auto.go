// Package auto chooses a fragmentation by running every §3 algorithm
// and scoring the candidates against the paper's three (conflicting)
// design goals — small disconnection sets, balanced fragment sizes, and
// an acyclic fragmentation graph (§2.2).
//
// The paper's conclusion leaves the choice open: "It may well be the
// case that the actual algorithm to be used for data fragmentation
// depends on the type of graph that is considered, and on the specific
// characteristics of the underlying database system." This package
// operationalises that: the database system's characteristics become a
// weight vector, the type of graph is handled by measuring actual
// candidates rather than predicting.
package auto

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/graph"
)

// Weights expresses how much the deployment cares about each §2.2
// goal. Weights need not sum to one; only ratios matter. Zero weights
// ignore a goal entirely.
type Weights struct {
	// DS penalises large disconnection sets (selectivity of the
	// per-fragment searches; favoured when the query optimiser lacks
	// good selection pushing).
	DS float64
	// Balance penalises unequal fragment sizes (processor idling;
	// "if the underlying database system has a good support of
	// pipelining … the issue of fragment size may become less
	// relevant").
	Balance float64
	// Cycles penalises cyclic fragmentation graphs (chain-enumeration
	// cost; irrelevant when parallel hierarchical evaluation is
	// available).
	Cycles float64
}

// DefaultWeights reflects the paper's own §4.2.3 lean: "we believe that
// small disconnection sets will be the main factor".
func DefaultWeights() Weights { return Weights{DS: 0.5, Balance: 0.3, Cycles: 0.2} }

// Candidate is one evaluated fragmentation.
type Candidate struct {
	// Name identifies the producing algorithm.
	Name string
	// Fragmentation is the produced partition.
	Fragmentation *fragment.Fragmentation
	// C is its measured characteristics.
	C fragment.Characteristics
	// Score is the weighted, candidate-normalised badness; lower wins.
	Score float64
}

// Choose runs the three algorithms (center-based with distributed
// centers, bond-energy, linear) on g, measures each result, and returns
// the candidates sorted best-first under the weights. Metrics are
// normalised across the candidate set (value / max), making the score
// dimensionless and graph-size independent.
func Choose(g *graph.Graph, numFragments int, w Weights, seed int64) ([]Candidate, error) {
	if g == nil || g.NumEdges() == 0 {
		return nil, fmt.Errorf("auto: graph must have edges")
	}
	if numFragments <= 0 {
		return nil, fmt.Errorf("auto: numFragments must be positive, got %d", numFragments)
	}
	if w.DS < 0 || w.Balance < 0 || w.Cycles < 0 {
		return nil, fmt.Errorf("auto: weights must be non-negative, got %+v", w)
	}
	if w.DS+w.Balance+w.Cycles == 0 {
		return nil, fmt.Errorf("auto: at least one weight must be positive")
	}

	var cands []Candidate
	if fr, err := center.Fragment(g, center.Options{
		NumFragments: numFragments, Distributed: true, Seed: seed,
	}); err == nil {
		cands = append(cands, Candidate{Name: "center-based", Fragmentation: fr})
	}
	if fr, err := bea.Fragment(g, bea.Options{Threshold: 3}); err == nil {
		cands = append(cands, Candidate{Name: "bond-energy", Fragmentation: fr})
	}
	if res, err := linear.Fragment(g, linear.Options{NumFragments: numFragments}); err == nil {
		cands = append(cands, Candidate{Name: "linear", Fragmentation: res.Fragmentation})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("auto: no algorithm produced a fragmentation")
	}
	for i := range cands {
		cands[i].C = fragment.Measure(cands[i].Fragmentation)
	}
	// A single-fragment result offers no parallelism at all — the whole
	// point of fragmenting (§2.1). Drop such degenerate candidates when
	// the caller asked for more, unless nothing else remains.
	if numFragments > 1 {
		kept := cands[:0]
		for _, c := range cands {
			if c.C.NumFragments > 1 {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			cands = kept
		}
	}

	// Normalise each metric by the candidate maximum so weights compare
	// like against like. Balance uses AF/F (relative deviation); DS the
	// mean set size; Cycles the circuit rank.
	var maxDS, maxBal, maxCyc float64
	rel := func(c fragment.Characteristics) (ds, bal, cyc float64) {
		ds = c.DS
		if c.F > 0 {
			bal = c.AF / c.F
		}
		cyc = float64(c.Cycles)
		return
	}
	for _, c := range cands {
		ds, bal, cyc := rel(c.C)
		maxDS = math.Max(maxDS, ds)
		maxBal = math.Max(maxBal, bal)
		maxCyc = math.Max(maxCyc, cyc)
	}
	norm := func(v, max float64) float64 {
		if max == 0 {
			return 0
		}
		return v / max
	}
	// A mild penalty for missing the requested fragment count keeps the
	// parallelism degree comparable across candidates (BEA and linear
	// control their counts only indirectly).
	wSum := w.DS + w.Balance + w.Cycles
	for i := range cands {
		ds, bal, cyc := rel(cands[i].C)
		miss := math.Abs(float64(cands[i].C.NumFragments-numFragments)) / float64(numFragments)
		cands[i].Score = w.DS*norm(ds, maxDS) + w.Balance*norm(bal, maxBal) +
			w.Cycles*norm(cyc, maxCyc) + 0.25*wSum*miss
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Score < cands[j].Score })
	return cands, nil
}

// Best is Choose returning only the winner.
func Best(g *graph.Graph, numFragments int, w Weights, seed int64) (Candidate, error) {
	cands, err := Choose(g, numFragments, w, seed)
	if err != nil {
		return Candidate{}, err
	}
	return cands[0], nil
}
