package fragment

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzRead feeds arbitrary text to the fragmentation parser over a
// fixed base graph: it must never panic, and anything it accepts must
// be a valid partition (New validates internally, so acceptance implies
// the invariants hold; we re-check the edge count anyway).
func FuzzRead(f *testing.F) {
	f.Add("fragment 0 0 1 1\nfragment 1 1 2 1\n")
	f.Add("# comment\nfragment 0 0 1 1\nfragment 0 1 2 1\n")
	f.Add("fragment 0 9 9 9\n")
	f.Add("fragment -1 0 1 1\n")
	f.Add("garbage\n")
	base := graph.New()
	base.AddEdge(graph.Edge{From: 0, To: 1, Weight: 1})
	base.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	f.Fuzz(func(t *testing.T, input string) {
		fr, err := Read(base, strings.NewReader(input))
		if err != nil {
			return
		}
		total := 0
		for _, frag := range fr.Fragments() {
			total += frag.Size()
		}
		if total != base.NumEdges() {
			t.Fatalf("accepted partition covers %d of %d edges", total, base.NumEdges())
		}
	})
}
