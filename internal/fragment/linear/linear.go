// Package linear implements the linear fragmentation algorithm of
// ICDE'93 §3.3 (Fig. 7), which "fragments a graph in such a way that
// the fragmentation graph is guaranteed to be acyclic (i.e., loosely
// connected)".
//
// The algorithm assumes topological information (node coordinates) and
// sweeps the graph from one extreme end to the other: it starts from a
// group of start nodes with the smallest x-coordinates, accumulates all
// edges adjacent to the current boundary wave by wave, and closes the
// fragment when its edge count reaches the threshold |E|/f; the nodes
// on the boundary at that moment form the disconnection set DS_k(k+1)
// and seed the next fragment. Disconnection sets may become large and
// fragment sizes unbalanced — that is the documented price of the
// acyclicity guarantee (Tables 1 and 3).
//
// The choice of start nodes matters (Fig. 8: sweeping a wide graph
// along its long axis gives smaller disconnection sets than across);
// Options.Axis and Options.StartNodes expose that choice.
package linear

import (
	"fmt"
	"sort"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// Axis selects the sweep direction.
type Axis int

const (
	// XAxis starts from the nodes with the smallest x-coordinates (the
	// paper's choice: "we have chosen to start at the leftmost side").
	XAxis Axis = iota
	// YAxis starts from the smallest y-coordinates — the "starting at
	// the top and going down" alternative of Fig. 8.
	YAxis
)

// Options configures the algorithm.
type Options struct {
	// NumFragments is the f of the threshold |E|/f.
	NumFragments int
	// StartCount is the s of "s nodes with smallest x-coordinates".
	// Zero selects 1.
	StartCount int
	// Axis selects the sweep direction (ignored when StartNodes are
	// given).
	Axis Axis
	// StartNodes overrides start-node selection ("for actual
	// applications we might ask the user to provide us with the start
	// nodes").
	StartNodes []graph.NodeID
}

// withDefaults validates and fills defaults.
func (o Options) withDefaults(g *graph.Graph) (Options, error) {
	if o.NumFragments <= 0 {
		return o, fmt.Errorf("linear: NumFragments must be positive, got %d", o.NumFragments)
	}
	if g.NumEdges() == 0 {
		return o, fmt.Errorf("linear: graph has no edges")
	}
	if o.StartCount == 0 {
		o.StartCount = 1
	}
	if o.StartCount < 0 {
		return o, fmt.Errorf("linear: StartCount must be positive, got %d", o.StartCount)
	}
	if o.Axis != XAxis && o.Axis != YAxis {
		return o, fmt.Errorf("linear: unknown axis %d", o.Axis)
	}
	for _, s := range o.StartNodes {
		if !g.HasNode(s) {
			return o, fmt.Errorf("linear: start node %d not in graph", s)
		}
	}
	return o, nil
}

// StartNodes returns the s nodes of g with the smallest coordinate on
// the chosen axis (ties by the other axis, then by ID), the default
// start group of the algorithm.
func StartNodes(g *graph.Graph, s int, axis Axis) []graph.NodeID {
	ids := g.Nodes()
	key := func(id graph.NodeID) (float64, float64) {
		c := g.Coord(id)
		if axis == YAxis {
			return c.Y, c.X
		}
		return c.X, c.Y
	}
	sort.SliceStable(ids, func(i, j int) bool {
		pi, si := key(ids[i])
		pj, sj := key(ids[j])
		if pi != pj {
			return pi < pj
		}
		if si != sj {
			return si < sj
		}
		return ids[i] < ids[j]
	})
	if s > len(ids) {
		s = len(ids)
	}
	return ids[:s]
}

// Result carries the fragmentation together with the boundary sets the
// algorithm recorded — DS_k(k+1) in the paper's notation — which the
// tests check against the node-intersection definition.
type Result struct {
	Fragmentation *fragment.Fragmentation
	// Boundaries[k] is the start_n set recorded when fragment k was
	// closed (empty for the last fragment).
	Boundaries [][]graph.NodeID
}

// Fragment runs the linear fragmentation algorithm.
//
// Deviation from the pseudo-code, documented: if the boundary wave dies
// out (no adjacent edges remain) while edges are left — a disconnected
// remainder, which Fig. 7 does not treat — the sweep restarts within
// the current fragment from the remaining node with the smallest
// coordinate on the sweep axis, preserving both termination and the
// acyclicity invariant (the restart node has never been part of any
// fragment).
func Fragment(g *graph.Graph, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	threshold := g.NumEdges() / opt.NumFragments
	if threshold < 1 {
		threshold = 1
	}

	remaining := make(map[graph.Edge]struct{}, g.NumEdges())
	incident := make(map[graph.NodeID][]graph.Edge)
	for _, e := range g.Edges() {
		remaining[e] = struct{}{}
		incident[e.From] = append(incident[e.From], e)
		if e.To != e.From {
			incident[e.To] = append(incident[e.To], e)
		}
	}

	startN := opt.StartNodes
	if len(startN) == 0 {
		startN = StartNodes(g, opt.StartCount, opt.Axis)
	}

	var sets [][]graph.Edge
	var boundaries [][]graph.NodeID
	for len(remaining) > 0 {
		var ek []graph.Edge
		vk := make(map[graph.NodeID]struct{})
		for len(ek) < threshold && len(remaining) > 0 {
			// new_e := edges adjacent to the current start_n.
			var newE []graph.Edge
			for _, s := range startN {
				for _, e := range incident[s] {
					if _, ok := remaining[e]; ok {
						delete(remaining, e)
						newE = append(newE, e)
					}
				}
			}
			if len(newE) == 0 {
				if len(remaining) == 0 {
					break
				}
				// Disconnected remainder: restart the sweep from the
				// smallest remaining node on the axis.
				startN = []graph.NodeID{restartNode(g, remaining, opt.Axis)}
				continue
			}
			// start_n := endpoints of new_e not already in V_k.
			nextSet := make(map[graph.NodeID]struct{})
			for _, e := range newE {
				for _, v := range [2]graph.NodeID{e.From, e.To} {
					if _, in := vk[v]; !in {
						if _, already := contains(startN, v); !already {
							nextSet[v] = struct{}{}
						}
					}
				}
			}
			// V_k grows by the swept start nodes and the new endpoints.
			for _, s := range startN {
				vk[s] = struct{}{}
			}
			for v := range nextSet {
				vk[v] = struct{}{}
			}
			// Hold the wave: the next start_n are the fresh endpoints
			// only (nodes whose incident edges have not been swept).
			startN = sortedKeys(nextSet)
			ek = append(ek, newE...)
		}
		if len(ek) > 0 {
			sets = append(sets, ek)
			boundaries = append(boundaries, append([]graph.NodeID(nil), startN...))
		}
	}
	if len(boundaries) > 0 {
		boundaries[len(boundaries)-1] = nil // last fragment has no successor
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		return nil, err
	}
	return &Result{Fragmentation: fr, Boundaries: boundaries}, nil
}

// contains reports whether ids contains v.
func contains(ids []graph.NodeID, v graph.NodeID) (int, bool) {
	for i, id := range ids {
		if id == v {
			return i, true
		}
	}
	return -1, false
}

// sortedKeys returns the keys of set in ascending order.
func sortedKeys(set map[graph.NodeID]struct{}) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	return graph.SortNodeIDs(ids)
}

// restartNode picks the remaining-edge endpoint with the smallest
// coordinate on the sweep axis (continuing the left-to-right scan).
func restartNode(g *graph.Graph, remaining map[graph.Edge]struct{}, axis Axis) graph.NodeID {
	var best graph.NodeID
	bestSet := false
	better := func(a, b graph.NodeID) bool {
		ca, cb := g.Coord(a), g.Coord(b)
		pa, pb := ca.X, cb.X
		sa, sb := ca.Y, cb.Y
		if axis == YAxis {
			pa, pb = ca.Y, cb.Y
			sa, sb = ca.X, cb.X
		}
		if pa != pb {
			return pa < pb
		}
		if sa != sb {
			return sa < sb
		}
		return a < b
	}
	for e := range remaining {
		for _, v := range [2]graph.NodeID{e.From, e.To} {
			if !bestSet || better(v, best) {
				best, bestSet = v, true
			}
		}
	}
	return best
}
