package linear

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

// stripe builds a horizontal path 0-1-2-…-(n-1) with coordinates along
// the x axis, symmetric edges.
func stripe(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{X: float64(i), Y: 0})
	}
	for i := 0; i+1 < n; i++ {
		g.AddBoth(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1})
	}
	return g
}

func TestOptionsValidation(t *testing.T) {
	g := stripe(5)
	for i, o := range []Options{
		{NumFragments: 0},
		{NumFragments: -2},
		{NumFragments: 2, StartCount: -1},
		{NumFragments: 2, Axis: Axis(7)},
		{NumFragments: 2, StartNodes: []graph.NodeID{99}},
	} {
		if _, err := Fragment(g, o); err == nil {
			t.Errorf("case %d: Options %+v accepted", i, o)
		}
	}
	empty := graph.New()
	empty.AddNode(0, graph.Coord{})
	if _, err := Fragment(empty, Options{NumFragments: 1}); err == nil {
		t.Error("edgeless graph accepted")
	}
}

func TestStartNodes(t *testing.T) {
	g := graph.New()
	g.AddNode(1, graph.Coord{X: 5, Y: 0})
	g.AddNode(2, graph.Coord{X: 1, Y: 9})
	g.AddNode(3, graph.Coord{X: 1, Y: 2})
	g.AddNode(4, graph.Coord{X: 8, Y: 1})
	got := StartNodes(g, 2, XAxis)
	// Smallest x is 1 (nodes 2, 3); tie broken by y: node 3 first.
	if !reflect.DeepEqual(got, []graph.NodeID{3, 2}) {
		t.Errorf("StartNodes X = %v, want [3 2]", got)
	}
	gotY := StartNodes(g, 1, YAxis)
	if !reflect.DeepEqual(gotY, []graph.NodeID{1}) {
		t.Errorf("StartNodes Y = %v, want [1]", gotY)
	}
	if all := StartNodes(g, 100, XAxis); len(all) != 4 {
		t.Errorf("oversized s returned %d nodes", len(all))
	}
}

func TestStripeSweep(t *testing.T) {
	// A 9-node path into 2 fragments: threshold = 16/2 = 8 directed
	// edges; the sweep from node 0 closes fragment 1 mid-path.
	g := stripe(9)
	res, err := Fragment(g, Options{NumFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fragmentation
	if fr.NumFragments() != 2 {
		t.Fatalf("fragments = %d, want 2", fr.NumFragments())
	}
	c := fragment.Measure(fr)
	if !c.LooselyConnected {
		t.Error("linear fragmentation must be loosely connected")
	}
	// On a path the boundary is a single node.
	if c.DS != 1 {
		t.Errorf("DS = %v, want 1", c.DS)
	}
}

func TestBoundariesMatchDisconnectionSets(t *testing.T) {
	g := stripe(12)
	res, err := Fragment(g, Options{NumFragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fragmentation
	if len(res.Boundaries) != fr.NumFragments() {
		t.Fatalf("boundaries = %d, fragments = %d", len(res.Boundaries), fr.NumFragments())
	}
	for k := 0; k+1 < fr.NumFragments(); k++ {
		ds := fr.DisconnectionSet(k, k+1)
		if !reflect.DeepEqual(res.Boundaries[k], ds) {
			t.Errorf("boundary[%d] = %v, DS = %v", k, res.Boundaries[k], ds)
		}
	}
	if res.Boundaries[fr.NumFragments()-1] != nil {
		t.Error("last fragment should have no boundary")
	}
}

func TestExplicitStartNodes(t *testing.T) {
	g := stripe(9)
	// Start from the right end: fragment 0 must contain the rightmost
	// edge.
	res, err := Fragment(g, Options{NumFragments: 2, StartNodes: []graph.NodeID{8}})
	if err != nil {
		t.Fatal(err)
	}
	f0 := res.Fragmentation.Fragment(0)
	if !f0.HasNode(8) {
		t.Error("fragment 0 should start at node 8")
	}
	if f0.HasNode(0) {
		t.Error("fragment 0 should not reach the far end")
	}
}

func TestChainStructure(t *testing.T) {
	// Every DS connects consecutive fragments only: G' is a path.
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(15, 31)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fragment(g, Options{NumFragments: 4})
	if err != nil {
		t.Fatal(err)
	}
	for p := range res.Fragmentation.DisconnectionSets() {
		if p.J != p.I+1 {
			t.Errorf("non-consecutive disconnection set %v", p)
		}
	}
}

func TestDisconnectedGraphRestarts(t *testing.T) {
	g := stripe(5)
	// Far-away separate component.
	g.AddNode(100, graph.Coord{X: 50, Y: 0})
	g.AddNode(101, graph.Coord{X: 51, Y: 0})
	g.AddBoth(graph.Edge{From: 100, To: 101, Weight: 1})
	res, err := Fragment(g, Options{NumFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range res.Fragmentation.Fragments() {
		total += f.Size()
	}
	if total != g.NumEdges() {
		t.Errorf("disconnected graph: %d of %d edges assigned", total, g.NumEdges())
	}
	if !res.Fragmentation.FragmentationGraph().IsLooselyConnected() {
		t.Error("restart broke acyclicity")
	}
}

func TestSingleFragment(t *testing.T) {
	g := stripe(5)
	res, err := Fragment(g, Options{NumFragments: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragmentation.NumFragments() != 1 {
		t.Errorf("fragments = %d, want 1", res.Fragmentation.NumFragments())
	}
}

func TestMoreFragmentsThanEdges(t *testing.T) {
	g := graph.New()
	g.AddNode(0, graph.Coord{X: 0})
	g.AddNode(1, graph.Coord{X: 1})
	g.AddEdge(graph.Edge{From: 0, To: 1, Weight: 1})
	res, err := Fragment(g, Options{NumFragments: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragmentation.NumFragments() != 1 {
		t.Errorf("fragments = %d, want 1", res.Fragmentation.NumFragments())
	}
}

// wideEllipse builds the Fig. 8 scenario: a graph 4× wider than tall —
// a grid of width w and height h with symmetric edges.
func wideEllipse(w, h int) *graph.Graph {
	g := graph.New()
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(id(x, y), graph.Coord{X: float64(x), Y: float64(y)})
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddBoth(graph.Edge{From: id(x, y), To: id(x+1, y), Weight: 1})
			}
			if y+1 < h {
				g.AddBoth(graph.Edge{From: id(x, y), To: id(x, y+1), Weight: 1})
			}
		}
	}
	return g
}

func TestFig8AxisChoiceMatters(t *testing.T) {
	// Sweeping a wide grid along x cuts across the short dimension
	// (boundary ≈ h nodes); sweeping along y cuts across the long one
	// (boundary ≈ w nodes). The paper's Fig. 8 point: x is better.
	// The start group spans the full extreme end of the graph (the
	// paper's "group of start nodes located on an extreme end"): the
	// left column for the x-sweep, the top row for the y-sweep.
	g := wideEllipse(20, 5)
	resX, err := Fragment(g, Options{NumFragments: 3, Axis: XAxis, StartCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	resY, err := Fragment(g, Options{NumFragments: 3, Axis: YAxis, StartCount: 20})
	if err != nil {
		t.Fatal(err)
	}
	dsX := fragment.Measure(resX.Fragmentation).DS
	dsY := fragment.Measure(resY.Fragmentation).DS
	if dsX >= dsY {
		t.Errorf("DS along x = %v, along y = %v; x-sweep should win on a wide graph", dsX, dsY)
	}
}

// TestPropertyAcyclicAndComplete: the central §3.3 guarantee — for any
// random graph the fragmentation graph is acyclic, and the edge
// partition is exact.
func TestPropertyAcyclicAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.General(gen.Defaults(8+rng.Intn(25), seed))
		if err != nil || g.NumEdges() == 0 {
			return err == nil
		}
		k := 1 + rng.Intn(5)
		res, err := Fragment(g, Options{NumFragments: k, StartCount: 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		fr := res.Fragmentation
		total := 0
		for _, f := range fr.Fragments() {
			total += f.Size()
		}
		if total != g.NumEdges() {
			return false
		}
		return fr.FragmentationGraph().IsLooselyConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoFragmentSkipsLevels: DS pairs are consecutive, matching
// the linear chain intuition of Fig. 6 (restarts may split the chain,
// but never create skip links).
func TestPropertyNoFragmentSkipsLevels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2 + rng.Intn(3),
			Cluster:  gen.Defaults(8+rng.Intn(8), seed),
		})
		if err != nil {
			return false
		}
		res, err := Fragment(g, Options{NumFragments: 2 + rng.Intn(4)})
		if err != nil {
			return false
		}
		for p := range res.Fragmentation.DisconnectionSets() {
			if p.J != p.I+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
