package fragment

import (
	"fmt"
	"math"
	"strings"
)

// Characteristics are the fragmentation quality measures of §4.2: "the
// characteristics of the fragmentations that we show are: average size
// of the fragments F (i.e., number of edges), average size of the
// disconnection sets DS (i.e., number of nodes), average deviation AF
// from F, and average deviation ADS from DS."
type Characteristics struct {
	// NumFragments is the number of fragments produced.
	NumFragments int
	// NumDisconnectionSets is the number of non-empty DS_ij.
	NumDisconnectionSets int
	// F is the mean fragment size in edges.
	F float64
	// DS is the mean disconnection set size in nodes.
	DS float64
	// AF is the mean absolute deviation of fragment sizes from F.
	AF float64
	// ADS is the mean absolute deviation of DS sizes from DS.
	ADS float64
	// Cycles is the circuit rank of the fragmentation graph; zero means
	// loosely connected.
	Cycles int
	// LooselyConnected records Cycles == 0.
	LooselyConnected bool
	// MaxDiameter is the largest fragment diameter in hops — the §2.2
	// workload measure: "the number of iterations depends on the
	// diameter of a fragment".
	MaxDiameter int
	// MeanDiameter is the mean fragment diameter.
	MeanDiameter float64
}

// Measure computes the characteristics of a fragmentation.
func Measure(fr *Fragmentation) Characteristics {
	var c Characteristics
	c.NumFragments = fr.NumFragments()
	sizes := make([]float64, 0, c.NumFragments)
	var diamSum float64
	for _, f := range fr.Fragments() {
		sizes = append(sizes, float64(f.Size()))
		d := f.Subgraph(fr.Base()).Diameter()
		diamSum += float64(d)
		if d > c.MaxDiameter {
			c.MaxDiameter = d
		}
	}
	c.MeanDiameter = diamSum / float64(c.NumFragments)
	c.F, c.AF = meanAndDeviation(sizes)
	dsSizes := make([]float64, 0)
	for _, ds := range fr.DisconnectionSets() {
		dsSizes = append(dsSizes, float64(len(ds)))
	}
	c.NumDisconnectionSets = len(dsSizes)
	c.DS, c.ADS = meanAndDeviation(dsSizes)
	fg := fr.FragmentationGraph()
	c.Cycles = fg.CycleCount()
	c.LooselyConnected = c.Cycles == 0
	return c
}

// meanAndDeviation returns the mean and the mean absolute deviation of
// xs ("average deviation" in the paper's tables). Empty input yields
// zeros.
func meanAndDeviation(xs []float64) (mean, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		dev += math.Abs(x - mean)
	}
	dev /= float64(len(xs))
	return mean, dev
}

// Average combines the characteristics of repeated experiments into
// their per-field means, as the paper's tables do over batches of
// random graphs. Boolean fields report the majority; Cycles the mean
// rounded to nearest.
func Average(cs []Characteristics) Characteristics {
	if len(cs) == 0 {
		return Characteristics{}
	}
	var out Characteristics
	var cyc, frags, dsn, maxDiam float64
	loose := 0
	for _, c := range cs {
		out.F += c.F
		out.DS += c.DS
		out.AF += c.AF
		out.ADS += c.ADS
		out.MeanDiameter += c.MeanDiameter
		maxDiam += float64(c.MaxDiameter)
		cyc += float64(c.Cycles)
		frags += float64(c.NumFragments)
		dsn += float64(c.NumDisconnectionSets)
		if c.LooselyConnected {
			loose++
		}
	}
	n := float64(len(cs))
	out.F /= n
	out.DS /= n
	out.AF /= n
	out.ADS /= n
	out.MeanDiameter /= n
	out.MaxDiameter = int(math.Round(maxDiam / n))
	out.Cycles = int(math.Round(cyc / n))
	out.NumFragments = int(math.Round(frags / n))
	out.NumDisconnectionSets = int(math.Round(dsn / n))
	out.LooselyConnected = loose*2 > len(cs)
	return out
}

// String renders the characteristics as one paper-style table row.
func (c Characteristics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "F=%.1f DS=%.1f AF=%.1f ADS=%.2f", c.F, c.DS, c.AF, c.ADS)
	fmt.Fprintf(&sb, " fragments=%d ds=%d cycles=%d", c.NumFragments, c.NumDisconnectionSets, c.Cycles)
	if c.LooselyConnected {
		sb.WriteString(" (loosely connected)")
	}
	return sb.String()
}
