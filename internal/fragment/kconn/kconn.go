// Package kconn implements the graph-theoretic fragmentation analysis
// the ICDE'93 paper tried first and rejected (§3): "investigating the
// k-connectivity of a graph (this is the smallest number of
// node-distinct paths between any pair of nodes from the graph). The
// nodes whose removal would increase the k-connectivity of the graph
// were marked as 'relevant' nodes, with the idea that a number of them
// could be selected to form disconnection sets."
//
// The paper reports two failure modes, both reproducible with this
// package (see the ablation benchmark): cycles in the fragmentation
// graph let k-connectivity be "influenced by paths taking detours
// through other fragments", and the computation is expensive — every
// node pair needs a max-flow, so the analysis costs O(n²) flow
// computations against the near-linear §3 algorithms.
//
// Connectivity is computed over the undirected view of the graph
// (transportation networks are symmetric), via Menger's theorem: the
// number of node-distinct paths between s and t equals the max flow in
// the node-split unit-capacity network.
package kconn

import (
	"math"

	"repro/internal/graph"
)

// NodeDisjointPaths returns the maximum number of node-distinct paths
// between s and t in the undirected view of g (interior nodes distinct;
// a direct edge counts as one path). It returns 0 if either node is
// missing or the nodes are equal.
func NodeDisjointPaths(g *graph.Graph, s, t graph.NodeID) int {
	if s == t || !g.HasNode(s) || !g.HasNode(t) {
		return 0
	}
	f := newFlow(g, s, t)
	return f.maxFlow()
}

// KConnectivity returns the smallest number of node-distinct paths over
// all node pairs — the paper's informal definition. A disconnected
// graph has k-connectivity 0; a single node has 0 by convention.
func KConnectivity(g *graph.Graph) int {
	nodes := g.Nodes()
	if len(nodes) < 2 {
		return 0
	}
	min := math.MaxInt
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if k := NodeDisjointPaths(g, nodes[i], nodes[j]); k < min {
				min = k
				if min == 0 {
					return 0
				}
			}
		}
	}
	return min
}

// componentConnectivity is KConnectivity restricted to pairs within the
// same weakly connected component; isolated components of one node are
// ignored. It captures "how well connected the graph is once split" —
// the quantity that rises when a separator node is removed.
func componentConnectivity(g *graph.Graph) int {
	min := math.MaxInt
	for _, comp := range g.ConnectedComponents() {
		for i := 0; i < len(comp); i++ {
			for j := i + 1; j < len(comp); j++ {
				if k := NodeDisjointPaths(g, comp[i], comp[j]); k < min {
					min = k
					if min == 0 {
						return 0
					}
				}
			}
		}
	}
	if min == math.MaxInt {
		return 0
	}
	return min
}

// RelevantNodes returns the nodes whose removal increases the
// (within-component) k-connectivity of the graph — the candidate
// disconnection-set members of the rejected approach. On the archetypal
// transportation graph (dense clusters joined through few border
// nodes) these are exactly the border nodes: removing one leaves the
// dense, well-connected clusters.
func RelevantNodes(g *graph.Graph) []graph.NodeID {
	baseline := KConnectivity(g)
	var relevant []graph.NodeID
	for _, v := range g.Nodes() {
		if componentConnectivity(without(g, v)) > baseline {
			relevant = append(relevant, v)
		}
	}
	return relevant
}

// without returns a copy of g with node v (and its incident edges)
// removed.
func without(g *graph.Graph, v graph.NodeID) *graph.Graph {
	out := graph.New()
	for _, id := range g.Nodes() {
		if id != v {
			out.AddNode(id, g.Coord(id))
		}
	}
	for _, e := range g.Edges() {
		if e.From != v && e.To != v {
			out.AddEdge(e)
		}
	}
	return out
}

// --- unit-capacity max flow on the node-split network ---

// flow is an Edmonds-Karp solver over the split network: node v
// becomes v_in (2v) → v_out (2v+1) with capacity 1 (∞ for s and t);
// each undirected edge {u, w} becomes u_out→w_in and w_out→u_in with
// capacity 1.
type flow struct {
	n    int
	s, t int
	cap  map[[2]int]int
	adj  map[int][]int
}

// newFlow builds the split network for s→t connectivity in g.
func newFlow(g *graph.Graph, s, t graph.NodeID) *flow {
	idx := make(map[graph.NodeID]int)
	for i, id := range g.Nodes() {
		idx[id] = i
	}
	f := &flow{
		n:   2 * len(idx),
		s:   2*idx[s] + 1, // source leaves from s_out
		t:   2 * idx[t],   // sink is t_in
		cap: make(map[[2]int]int),
		adj: make(map[int][]int),
	}
	addArc := func(u, v, c int) {
		if _, ok := f.cap[[2]int{u, v}]; !ok {
			f.adj[u] = append(f.adj[u], v)
			f.adj[v] = append(f.adj[v], u)
		}
		f.cap[[2]int{u, v}] += c
	}
	const inf = 1 << 30
	for id, i := range idx {
		c := 1
		if id == s || id == t {
			c = inf
		}
		addArc(2*i, 2*i+1, c)
	}
	seen := make(map[[2]graph.NodeID]bool)
	for _, e := range g.Edges() {
		a, b := e.From, e.To
		if a == b {
			continue
		}
		key := [2]graph.NodeID{a, b}
		if a > b {
			key = [2]graph.NodeID{b, a}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		u, v := idx[a], idx[b]
		addArc(2*u+1, 2*v, 1)
		addArc(2*v+1, 2*u, 1)
	}
	return f
}

// maxFlow runs BFS augmentation until no path remains.
func (f *flow) maxFlow() int {
	total := 0
	for {
		// BFS for an augmenting path in the residual network.
		parent := make(map[int]int, f.n)
		parent[f.s] = f.s
		queue := []int{f.s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range f.adj[u] {
				if _, seen := parent[v]; !seen && f.cap[[2]int{u, v}] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
			if _, ok := parent[f.t]; ok {
				break
			}
		}
		if _, ok := parent[f.t]; !ok {
			return total
		}
		// Bottleneck along the path.
		bottleneck := math.MaxInt
		for v := f.t; v != f.s; v = parent[v] {
			u := parent[v]
			if c := f.cap[[2]int{u, v}]; c < bottleneck {
				bottleneck = c
			}
		}
		for v := f.t; v != f.s; v = parent[v] {
			u := parent[v]
			f.cap[[2]int{u, v}] -= bottleneck
			f.cap[[2]int{v, u}] += bottleneck
		}
		total += bottleneck
	}
}
