package kconn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// clique adds a symmetric clique over the given nodes.
func clique(g *graph.Graph, ids ...graph.NodeID) {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			g.AddBoth(graph.Edge{From: ids[i], To: ids[j], Weight: 1})
		}
	}
}

// ringGraph builds the symmetric n-cycle.
func ringGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddBoth(graph.Edge{From: graph.NodeID(i), To: graph.NodeID((i + 1) % n), Weight: 1})
	}
	return g
}

func TestNodeDisjointPathsBasics(t *testing.T) {
	g := ringGraph(6)
	if k := NodeDisjointPaths(g, 0, 3); k != 2 {
		t.Errorf("ring opposite pair = %d, want 2", k)
	}
	if k := NodeDisjointPaths(g, 0, 0); k != 0 {
		t.Errorf("self pair = %d, want 0", k)
	}
	if k := NodeDisjointPaths(g, 0, 99); k != 0 {
		t.Errorf("missing node = %d, want 0", k)
	}
}

func TestNodeDisjointPathsClique(t *testing.T) {
	g := graph.New()
	clique(g, 0, 1, 2, 3, 4)
	// K5: between any pair there are 4 node-distinct paths (the direct
	// edge plus one through each other node).
	if k := NodeDisjointPaths(g, 0, 4); k != 4 {
		t.Errorf("K5 pair = %d, want 4", k)
	}
}

func TestNodeDisjointPathsBridge(t *testing.T) {
	// Two triangles joined through a single cut node 10.
	g := graph.New()
	clique(g, 0, 1, 10)
	clique(g, 10, 20, 21)
	if k := NodeDisjointPaths(g, 0, 20); k != 1 {
		t.Errorf("across cut node = %d, want 1", k)
	}
	if k := NodeDisjointPaths(g, 0, 1); k != 2 {
		t.Errorf("within triangle = %d, want 2", k)
	}
}

func TestKConnectivity(t *testing.T) {
	if k := KConnectivity(ringGraph(5)); k != 2 {
		t.Errorf("ring = %d, want 2", k)
	}
	g := graph.New()
	clique(g, 0, 1, 2, 3)
	if k := KConnectivity(g); k != 3 {
		t.Errorf("K4 = %d, want 3", k)
	}
	// Disconnected graph.
	g.AddNode(99, graph.Coord{})
	if k := KConnectivity(g); k != 0 {
		t.Errorf("disconnected = %d, want 0", k)
	}
	// Trivial graphs.
	if KConnectivity(graph.New()) != 0 {
		t.Error("empty graph should have k = 0")
	}
}

func TestRelevantNodesCutVertex(t *testing.T) {
	// Two K4s sharing only the cut node 10: the paper's intuition says
	// 10 is the relevant node — removing it leaves two well-connected
	// cliques.
	g := graph.New()
	clique(g, 0, 1, 2, 10)
	clique(g, 10, 20, 21, 22)
	got := RelevantNodes(g)
	if !reflect.DeepEqual(got, []graph.NodeID{10}) {
		t.Errorf("relevant nodes = %v, want [10]", got)
	}
}

func TestRelevantNodesCliqueHasNone(t *testing.T) {
	g := graph.New()
	clique(g, 0, 1, 2, 3, 4)
	// Removing any node of K5 leaves K4 with connectivity 3 == K5's 4−1
	// < 4... K5 baseline is 4; K4 connectivity is 3, which does not
	// increase it, so no node is relevant.
	if got := RelevantNodes(g); got != nil {
		t.Errorf("relevant nodes of K5 = %v, want none", got)
	}
}

func TestRelevantNodesOnIdealTransportationGraph(t *testing.T) {
	// The rejected approach's intended behaviour, on the idealised
	// transportation graph it was designed around: two uniformly dense
	// clusters (K5s) joined by a single inter-cluster edge 0–10. The
	// border nodes 0 and 10 are exactly the relevant nodes.
	g := graph.New()
	clique(g, 0, 1, 2, 3, 4)
	clique(g, 10, 11, 12, 13, 14)
	g.AddBoth(graph.Edge{From: 0, To: 10, Weight: 1})
	got := RelevantNodes(g)
	if !reflect.DeepEqual(got, []graph.NodeID{0, 10}) {
		t.Errorf("relevant nodes = %v, want [0 10]", got)
	}
}

func TestRelevantNodesBrittleOnRandomClusters(t *testing.T) {
	// The paper's complaint made executable: on *generated* clusters —
	// which contain their own low-degree nodes and bridges — the
	// analysis typically finds no relevant nodes at all, because
	// removing a border node does not raise the minimum connectivity
	// above the baseline set by the weakest intra-cluster pair. ("Even
	// for 'simple' graphs as depicted in Fig. 3 we would run into
	// problems.")
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 2,
		Cluster:  gen.Defaults(8, 5),
		Links:    []gen.ClusterLink{{A: 0, B: 1, Edges: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k := KConnectivity(g); k != 1 {
		t.Skipf("unexpected baseline connectivity %d", k)
	}
	if got := RelevantNodes(g); len(got) != 0 {
		// Not an error — just not the documented brittleness; make the
		// outcome visible either way.
		t.Logf("random clusters did yield relevant nodes: %v", got)
	}
}

// TestPropertyMengerBounds: for random graphs, the number of
// node-disjoint paths is at most min(deg(s), deg(t)) and at least 1
// when s and t are in the same component.
func TestPropertyMengerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.General(gen.Defaults(6+rng.Intn(8), seed))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			s := nodes[rng.Intn(len(nodes))]
			u := nodes[rng.Intn(len(nodes))]
			if s == u {
				continue
			}
			k := NodeDisjointPaths(g, s, u)
			ds, du := g.Grade(s), g.Grade(u)
			bound := ds
			if du < bound {
				bound = du
			}
			if k > bound {
				return false
			}
			if _, reach := g.Reachable(s)[u]; reach && k < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertySymmetry: node-disjoint path counts are symmetric on the
// undirected view.
func TestPropertySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.General(gen.Defaults(6+rng.Intn(6), seed))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		s := nodes[rng.Intn(len(nodes))]
		u := nodes[rng.Intn(len(nodes))]
		return NodeDisjointPaths(g, s, u) == NodeDisjointPaths(g, u, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
