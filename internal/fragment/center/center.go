// Package center implements the center-based fragmentation algorithm of
// ICDE'93 §3.1 (Fig. 4), which "focuses on achieving a balanced
// workload": centers — gravity points of the graph selected by a status
// score (Hoede's social-network status, paper reference [9]) — seed the
// fragments, which then grow by repeatedly absorbing adjacent edges.
//
// Both scheduling variants of the paper are provided: RoundRobin (one
// edge-addition per fragment per turn, the variant shown in Fig. 4,
// balancing the number of additions and hence the fragment diameter)
// and SmallestFirst ("the fragment with the least number of edges is
// chosen for expansion until another fragment becomes the smallest",
// balancing the tuple count).
//
// Center selection likewise comes in the paper's two flavours: the
// original random choice among high-status candidates — which §4.2.1
// found can pick centers "quite close to each other", inflating
// disconnection sets — and the distributed-centers refinement that uses
// node coordinates to keep centers apart (Table 2).
package center

import (
	"fmt"
	"math/rand"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// Variant selects the growth schedule.
type Variant int

const (
	// RoundRobin performs one edge addition per fragment in turn — the
	// Fig. 4 variant, balancing fragment diameters.
	RoundRobin Variant = iota
	// SmallestFirst always grows the fragment with the fewest edges —
	// the variant balancing fragment sizes (tuple counts).
	SmallestFirst
)

// Options configures the algorithm.
type Options struct {
	// NumFragments is the number of centers and hence fragments ("may
	// depend on factors such as the number of processors available").
	NumFragments int
	// A is the attenuation factor a < 1 of the status score. Zero
	// selects 0.5.
	A float64
	// Depth is the status-score horizon (the paper truncates at 3).
	// Zero selects 3.
	Depth int
	// CandidatePool is the size of the high-status candidate group
	// centers are drawn from. Zero selects 12·NumFragments (capped at
	// the node count): large enough that every region of the graph
	// contributes candidates, which the distributed refinement needs —
	// a pool that concentrates in the densest cluster leaves other
	// clusters centerless no matter how the pool is spread.
	CandidatePool int
	// Distributed enables the §4.2.1 refinement: centers are chosen
	// from the candidate pool greedily maximising their mutual
	// Euclidean distance instead of at random.
	Distributed bool
	// Variant selects the growth schedule.
	Variant Variant
	// Seed drives the random center choice (ignored when Distributed
	// is set or Centers are given).
	Seed int64
	// Centers overrides center selection entirely (the "application
	// semantics" case: one center per country of the railway network).
	Centers []graph.NodeID
}

// withDefaults validates and fills in defaults.
func (o Options) withDefaults(g *graph.Graph) (Options, error) {
	if o.NumFragments <= 0 {
		return o, fmt.Errorf("center: NumFragments must be positive, got %d", o.NumFragments)
	}
	if g.NumNodes() < o.NumFragments {
		return o, fmt.Errorf("center: graph has %d nodes, cannot seed %d fragments", g.NumNodes(), o.NumFragments)
	}
	if g.NumEdges() < o.NumFragments {
		return o, fmt.Errorf("center: graph has %d edges, cannot fill %d fragments", g.NumEdges(), o.NumFragments)
	}
	if o.A == 0 {
		o.A = 0.5
	}
	if o.A < 0 || o.A >= 1 {
		return o, fmt.Errorf("center: attenuation a must be in (0, 1), got %g", o.A)
	}
	if o.Depth == 0 {
		o.Depth = 3
	}
	if o.Depth < 0 {
		return o, fmt.Errorf("center: Depth must be non-negative, got %d", o.Depth)
	}
	if o.CandidatePool == 0 {
		o.CandidatePool = 12 * o.NumFragments
		if o.CandidatePool > g.NumNodes() {
			o.CandidatePool = g.NumNodes()
		}
	}
	if o.CandidatePool < o.NumFragments {
		return o, fmt.Errorf("center: CandidatePool %d smaller than NumFragments %d", o.CandidatePool, o.NumFragments)
	}
	if len(o.Centers) != 0 && len(o.Centers) != o.NumFragments {
		return o, fmt.Errorf("center: %d explicit centers given for %d fragments", len(o.Centers), o.NumFragments)
	}
	for _, c := range o.Centers {
		if !g.HasNode(c) {
			return o, fmt.Errorf("center: explicit center %d not in graph", c)
		}
	}
	return o, nil
}

// SelectCenters determines the centers per the configured strategy:
// explicit list, distributed (coordinate-spread) selection, or the
// original random draw from the high-status candidate pool.
func SelectCenters(g *graph.Graph, opt Options) ([]graph.NodeID, error) {
	opt, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if len(opt.Centers) > 0 {
		return append([]graph.NodeID(nil), opt.Centers...), nil
	}
	candidates := g.TopByStatus(opt.CandidatePool, opt.A, opt.Depth)
	if opt.Distributed {
		return spreadCenters(g, candidates, opt.NumFragments), nil
	}
	// Original behaviour: "select the centers at random from a group of
	// possible centers".
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(len(candidates))
	centers := make([]graph.NodeID, opt.NumFragments)
	for i := 0; i < opt.NumFragments; i++ {
		centers[i] = candidates[perm[i]]
	}
	return centers, nil
}

// spreadCenters picks n centers from the candidates (ordered best
// status first) greedily maximising the minimum pairwise Euclidean
// distance: the first candidate is the highest-status node, each
// subsequent pick is the candidate farthest from all already-chosen
// centers. This "makes sure that the selected nodes would not be too
// close together" (§4.2.1).
func spreadCenters(g *graph.Graph, candidates []graph.NodeID, n int) []graph.NodeID {
	centers := []graph.NodeID{candidates[0]}
	remaining := append([]graph.NodeID(nil), candidates[1:]...)
	for len(centers) < n {
		bestIdx, bestDist := -1, -1.0
		for i, c := range remaining {
			minD := -1.0
			for _, ch := range centers {
				d := g.EuclideanDistance(c, ch)
				if minD < 0 || d < minD {
					minD = d
				}
			}
			if minD > bestDist {
				bestDist, bestIdx = minD, i
			}
		}
		centers = append(centers, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return centers
}

// Fragment runs the center-based algorithm and returns the resulting
// fragmentation.
//
// Following Fig. 4: fragment i is initialised with center c_i and the
// edges adjacent to it; then fragments repeatedly absorb the remaining
// edges adjacent to their node sets, scheduled per the Variant. If a
// whole scheduling round adds no edge while edges remain (the rest of
// the graph is not adjacent to any fragment — possible for disconnected
// graphs, which the paper's pseudo-code does not treat), the smallest
// fragment is reseeded with an arbitrary remaining edge so the
// algorithm always terminates with a complete partition.
func Fragment(g *graph.Graph, opt Options) (*fragment.Fragmentation, error) {
	opt, err := opt.withDefaults(g)
	if err != nil {
		return nil, err
	}
	centers, err := SelectCenters(g, opt)
	if err != nil {
		return nil, err
	}
	n := opt.NumFragments

	// Remaining edges, with a per-node incidence index for fast
	// frontier expansion.
	remaining := make(map[graph.Edge]struct{}, g.NumEdges())
	incident := make(map[graph.NodeID][]graph.Edge)
	for _, e := range g.Edges() {
		remaining[e] = struct{}{}
		incident[e.From] = append(incident[e.From], e)
		if e.To != e.From {
			incident[e.To] = append(incident[e.To], e)
		}
	}

	frags := make([][]graph.Edge, n)
	nodes := make([]map[graph.NodeID]struct{}, n)
	for i := range nodes {
		nodes[i] = make(map[graph.NodeID]struct{})
	}
	// frontier tracks the nodes of fragment k whose incident edges have
	// not been swept since the node joined.
	frontier := make([][]graph.NodeID, n)

	claim := func(k int, e graph.Edge) {
		delete(remaining, e)
		frags[k] = append(frags[k], e)
		for _, v := range [2]graph.NodeID{e.From, e.To} {
			if _, ok := nodes[k][v]; !ok {
				nodes[k][v] = struct{}{}
				frontier[k] = append(frontier[k], v)
			}
		}
	}

	// Initialisation: V_i := {c_i}; E_i := edges adjacent to c_i.
	// Edges adjacent to several centers go to the lowest-numbered
	// fragment (the pseudo-code's E := E \ ∪E_i implies some tie
	// resolution).
	for i, c := range centers {
		nodes[i][c] = struct{}{}
		frontier[i] = append(frontier[i], c)
		for _, e := range incident[c] {
			if _, ok := remaining[e]; ok {
				claim(i, e)
			}
		}
	}

	// grow adds to fragment k every remaining edge adjacent to its node
	// set (one "addition of edges — in fact, a relational join between
	// intermediate result and the relation modeling the graph").
	grow := func(k int) int {
		added := 0
		sweep := frontier[k]
		frontier[k] = nil
		for _, v := range sweep {
			for _, e := range incident[v] {
				if _, ok := remaining[e]; ok {
					claim(k, e)
					added++
				}
			}
		}
		return added
	}

	switch opt.Variant {
	case RoundRobin:
		for len(remaining) > 0 {
			addedThisRound := 0
			for k := 0; k < n && len(remaining) > 0; k++ {
				addedThisRound += grow(k)
			}
			if addedThisRound == 0 && len(remaining) > 0 {
				reseed(frags, remaining, claim)
			}
		}
	case SmallestFirst:
		for len(remaining) > 0 {
			k := smallest(frags)
			if grow(k) == 0 {
				// The smallest fragment cannot grow; try the others
				// before reseeding.
				grew := false
				for j := 0; j < n && len(remaining) > 0; j++ {
					if j != k && grow(j) > 0 {
						grew = true
						break
					}
				}
				if !grew && len(remaining) > 0 {
					reseed(frags, remaining, claim)
				}
			}
		}
	default:
		return nil, fmt.Errorf("center: unknown variant %d", opt.Variant)
	}

	// Centers that sit adjacent to each other can leave a fragment
	// empty: all edges around its center were claimed by lower-numbered
	// fragments during initialisation, and growth never started. The
	// pseudo-code of Fig. 4 does not treat this; we restore the
	// requested fragment count by moving one edge at a time from the
	// largest fragment (a deviation documented in DESIGN.md — the
	// alternative, dropping the fragment, would silently reduce the
	// parallelism degree).
	for {
		empty := -1
		for i, fr := range frags {
			if len(fr) == 0 {
				empty = i
				break
			}
		}
		if empty < 0 {
			break
		}
		donor := 0
		for i := 1; i < n; i++ {
			if len(frags[i]) > len(frags[donor]) {
				donor = i
			}
		}
		if len(frags[donor]) < 2 {
			return nil, fmt.Errorf("center: cannot fill fragment %d: too few edges", empty)
		}
		last := len(frags[donor]) - 1
		frags[empty] = append(frags[empty], frags[donor][last])
		frags[donor] = frags[donor][:last]
	}

	return fragment.New(g, frags)
}

// smallest returns the index of the fragment with the fewest edges
// (lowest index on ties).
func smallest(frags [][]graph.Edge) int {
	best := 0
	for i := 1; i < len(frags); i++ {
		if len(frags[i]) < len(frags[best]) {
			best = i
		}
	}
	return best
}

// reseed assigns one arbitrary remaining edge (the smallest by edge
// order, for determinism) to the smallest fragment, restarting growth
// in a disconnected region.
func reseed(frags [][]graph.Edge, remaining map[graph.Edge]struct{},
	claim func(int, graph.Edge)) {
	var pick graph.Edge
	first := true
	for e := range remaining {
		if first || less(e, pick) {
			pick, first = e, false
		}
	}
	claim(smallest(frags), pick)
}

// less orders edges deterministically.
func less(a, b graph.Edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Weight < b.Weight
}
