package center

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

// dumbbell builds two dense 5-cliques joined by one symmetric bridge
// edge: the obvious 2-fragmentation splits at the bridge.
func dumbbell() *graph.Graph {
	g := graph.New()
	addClique := func(first int) {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddBoth(graph.Edge{
					From: graph.NodeID(first + i), To: graph.NodeID(first + j), Weight: 1,
				})
			}
		}
	}
	addClique(0)
	addClique(10)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{X: float64(i), Y: 0})
		g.AddNode(graph.NodeID(10+i), graph.Coord{X: 100 + float64(i), Y: 0})
	}
	g.AddBoth(graph.Edge{From: 4, To: 10, Weight: 1})
	return g
}

func TestOptionsValidation(t *testing.T) {
	g := dumbbell()
	cases := []Options{
		{NumFragments: 0},
		{NumFragments: -1},
		{NumFragments: 100},                             // more fragments than nodes
		{NumFragments: 2, A: 1.5},                       // a must be < 1
		{NumFragments: 2, A: -0.5},                      // a must be > 0
		{NumFragments: 2, Depth: -1},                    //
		{NumFragments: 2, CandidatePool: 1},             // pool < fragments
		{NumFragments: 2, Centers: []graph.NodeID{1}},   // wrong center count
		{NumFragments: 1, Centers: []graph.NodeID{999}}, // unknown center
	}
	for i, o := range cases {
		if _, err := Fragment(g, o); err == nil {
			t.Errorf("case %d: Options %+v accepted", i, o)
		}
	}
}

func TestFragmentTooFewEdges(t *testing.T) {
	g := graph.New()
	g.AddNode(0, graph.Coord{})
	g.AddNode(1, graph.Coord{})
	g.AddNode(2, graph.Coord{})
	g.AddEdge(graph.Edge{From: 0, To: 1, Weight: 1})
	if _, err := Fragment(g, Options{NumFragments: 2}); err == nil {
		t.Error("2 fragments from 1 edge accepted")
	}
}

func TestExplicitCentersDumbbell(t *testing.T) {
	g := dumbbell()
	fr, err := Fragment(g, Options{NumFragments: 2, Centers: []graph.NodeID{0, 14}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != 2 {
		t.Fatalf("fragments = %d", fr.NumFragments())
	}
	c := fragment.Measure(fr)
	// Two 5-cliques of 20 directed edges each plus a 2-edge bridge:
	// balanced growth should land near 21 ± a few.
	if c.AF > 6 {
		t.Errorf("AF = %v; explicit opposite centers should balance", c.AF)
	}
	// The disconnection set should be small (the bridge region).
	if c.DS > 4 {
		t.Errorf("DS = %v; dumbbell should have a small disconnection set", c.DS)
	}
}

func TestSelectCentersDistributedSpreads(t *testing.T) {
	g := dumbbell()
	centers, err := SelectCenters(g, Options{NumFragments: 2, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	// The two cliques are 100 apart; distributed centers must not both
	// come from the same clique.
	if (centers[0] < 10) == (centers[1] < 10) {
		t.Errorf("distributed centers %v are in the same clique", centers)
	}
}

func TestSelectCentersExplicitPassThrough(t *testing.T) {
	g := dumbbell()
	want := []graph.NodeID{3, 12}
	got, err := SelectCenters(g, Options{NumFragments: 2, Centers: want})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 12 {
		t.Errorf("centers = %v, want %v", got, want)
	}
}

func TestSelectCentersSeedDeterminism(t *testing.T) {
	g := dumbbell()
	a, err := SelectCenters(g, Options{NumFragments: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SelectCenters(g, Options{NumFragments: 2, Seed: 7})
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("same seed, different centers: %v vs %v", a, b)
	}
}

func TestVariantsProduceValidPartitions(t *testing.T) {
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(15, 5)})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{RoundRobin, SmallestFirst} {
		fr, err := Fragment(g, Options{NumFragments: 4, Variant: v, Distributed: true})
		if err != nil {
			t.Fatalf("variant %d: %v", v, err)
		}
		total := 0
		for _, f := range fr.Fragments() {
			total += f.Size()
		}
		if total != g.NumEdges() {
			t.Errorf("variant %d: partition covers %d of %d edges", v, total, g.NumEdges())
		}
	}
}

func TestUnknownVariant(t *testing.T) {
	g := dumbbell()
	if _, err := Fragment(g, Options{NumFragments: 2, Variant: Variant(99)}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSmallestFirstBalancesSizes(t *testing.T) {
	// On a transportation graph, SmallestFirst should produce a size
	// balance at least as good as leaving everything to one fragment.
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(20, 21)})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Fragment(g, Options{NumFragments: 4, Variant: SmallestFirst, Distributed: true})
	if err != nil {
		t.Fatal(err)
	}
	c := fragment.Measure(fr)
	if c.AF > c.F {
		t.Errorf("AF = %v exceeds F = %v; sizes wildly unbalanced", c.AF, c.F)
	}
}

func TestDisconnectedGraphReseeds(t *testing.T) {
	// Two components, 2 fragments with both centers in one component:
	// the reseed path must still assign every edge.
	g := graph.New()
	g.AddBoth(graph.Edge{From: 0, To: 1, Weight: 1})
	g.AddBoth(graph.Edge{From: 1, To: 2, Weight: 1})
	g.AddBoth(graph.Edge{From: 10, To: 11, Weight: 1})
	fr, err := Fragment(g, Options{NumFragments: 2, Centers: []graph.NodeID{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range fr.Fragments() {
		total += f.Size()
	}
	if total != g.NumEdges() {
		t.Errorf("disconnected graph: %d of %d edges assigned", total, g.NumEdges())
	}
}

func TestDistributedCentersImproveDeviation(t *testing.T) {
	// The Table 2 effect: on transportation graphs, distributed centers
	// should (on average) reduce the fragment-size deviation versus
	// random high-status centers.
	var randAF, distAF float64
	const trials = 6
	for s := int64(0); s < trials; s++ {
		g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(20, 300+s)})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Fragment(g, Options{NumFragments: 4, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Fragment(g, Options{NumFragments: 4, Distributed: true})
		if err != nil {
			t.Fatal(err)
		}
		randAF += fragment.Measure(r).AF
		distAF += fragment.Measure(d).AF
	}
	if distAF > randAF*1.05 {
		t.Errorf("distributed centers AF sum = %v worse than random = %v", distAF, randAF)
	}
}

// TestPropertyAlwaysExactPartition: for random graphs, both variants
// always produce an exact edge partition with the requested fragment
// count (fragment.New validates partitions internally, so success of
// Fragment is itself the assertion; we re-verify coverage anyway).
func TestPropertyAlwaysExactPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := gen.Defaults(10+rng.Intn(20), seed)
		g, err := gen.General(cfg)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(3)
		if g.NumEdges() < k {
			return true
		}
		for _, v := range []Variant{RoundRobin, SmallestFirst} {
			fr, err := Fragment(g, Options{NumFragments: k, Variant: v, Seed: seed})
			if err != nil {
				return false
			}
			if fr.NumFragments() != k {
				return false
			}
			total := 0
			for _, f := range fr.Fragments() {
				total += f.Size()
			}
			if total != g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAdjacentCentersStillFillAllFragments(t *testing.T) {
	// Regression for the empty-fragment case: centers on adjacent nodes
	// of a tiny graph, where initialisation claims every edge around
	// both centers for fragment 0.
	g := graph.New()
	g.AddBoth(graph.Edge{From: 0, To: 1, Weight: 1})
	g.AddBoth(graph.Edge{From: 1, To: 2, Weight: 1})
	fr, err := Fragment(g, Options{NumFragments: 2, Centers: []graph.NodeID{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.NumFragments() != 2 {
		t.Fatalf("fragments = %d, want 2", fr.NumFragments())
	}
	for _, f := range fr.Fragments() {
		if f.Size() == 0 {
			t.Error("empty fragment survived")
		}
	}
}
