package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/graph"
)

// AblationRow is one parameter setting of an ablation sweep.
type AblationRow struct {
	// Setting describes the parameter value.
	Setting string
	// C is the averaged characteristics under that setting.
	C fragment.Characteristics
}

// Ablation is a parameter sweep over one design choice.
type Ablation struct {
	// Title names the swept choice.
	Title string
	// Rows are the settings.
	Rows []AblationRow
}

// Format renders the sweep.
func (a *Ablation) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", a.Title)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "setting\tF\tDS\tAF\tADS\tfrags\tcycles")
	for _, r := range a.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t%d\n",
			r.Setting, r.C.F, r.C.DS, r.C.AF, r.C.ADS, r.C.NumFragments, r.C.Cycles)
	}
	tw.Flush()
	return sb.String()
}

// sweep applies a family of parameterised algorithms to a common graph
// batch.
func sweep(graphs []*graph.Graph, settings []string,
	run func(setting int, g *graph.Graph) (*fragment.Fragmentation, error)) (*Ablation, error) {
	a := &Ablation{}
	for si, label := range settings {
		var cs []fragment.Characteristics
		for gi, g := range graphs {
			fr, err := run(si, g)
			if err != nil {
				return nil, fmt.Errorf("bench: setting %q graph %d: %v", label, gi, err)
			}
			cs = append(cs, fragment.Measure(fr))
		}
		a.Rows = append(a.Rows, AblationRow{Setting: label, C: fragment.Average(cs)})
	}
	return a, nil
}

// AblationBEAThreshold sweeps the bond-energy split threshold on
// transportation graphs — the user knob §3.2 leaves open.
func AblationBEAThreshold(trials int, seed int64) (*Ablation, error) {
	graphs, _, err := transportationBatch(trials, 4, 15, 4.5, seed)
	if err != nil {
		return nil, err
	}
	thresholds := []int{2, 4, 6, 10, 16}
	labels := make([]string, len(thresholds))
	for i, th := range thresholds {
		labels[i] = fmt.Sprintf("threshold=%d", th)
	}
	a, err := sweep(graphs, labels, func(si int, g *graph.Graph) (*fragment.Fragmentation, error) {
		return bea.Fragment(g, bea.Options{Threshold: thresholds[si], MinBlockEdges: 10})
	})
	if err != nil {
		return nil, err
	}
	a.Title = "Ablation: bond-energy split threshold (transportation graphs, 4×15 nodes)"
	return a, nil
}

// AblationBEAMode compares the paper's threshold rule against the
// local-minimum rule it considered and rejected.
func AblationBEAMode(trials int, seed int64) (*Ablation, error) {
	graphs, _, err := transportationBatch(trials, 4, 15, 4.5, seed)
	if err != nil {
		return nil, err
	}
	modes := []bea.Mode{bea.ThresholdMode, bea.LocalMinimumMode}
	labels := []string{"threshold (paper)", "local minimum"}
	a, err := sweep(graphs, labels, func(si int, g *graph.Graph) (*fragment.Fragmentation, error) {
		return bea.Fragment(g, bea.Options{Mode: modes[si], Threshold: 5, MinBlockEdges: 10})
	})
	if err != nil {
		return nil, err
	}
	a.Title = "Ablation: bond-energy split rule"
	return a, nil
}

// AblationCenterVariant compares the two growth schedules of the
// center-based algorithm (§3.1's "the algorithm is adaptable").
func AblationCenterVariant(trials int, seed int64) (*Ablation, error) {
	graphs, _, err := transportationBatch(trials, 4, 20, 4.5, seed)
	if err != nil {
		return nil, err
	}
	variants := []center.Variant{center.RoundRobin, center.SmallestFirst}
	labels := []string{"round-robin (diameter)", "smallest-first (size)"}
	a, err := sweep(graphs, labels, func(si int, g *graph.Graph) (*fragment.Fragmentation, error) {
		return center.Fragment(g, center.Options{
			NumFragments: 4, Variant: variants[si], Distributed: true,
		})
	})
	if err != nil {
		return nil, err
	}
	a.Title = "Ablation: center-based growth schedule"
	return a, nil
}

// AblationCenterPool sweeps the candidate pool size of random center
// selection — larger pools admit lower-status centers.
func AblationCenterPool(trials int, seed int64) (*Ablation, error) {
	graphs, _, err := transportationBatch(trials, 4, 20, 4.5, seed)
	if err != nil {
		return nil, err
	}
	pools := []int{4, 8, 16, 32}
	labels := make([]string, len(pools))
	for i, p := range pools {
		labels[i] = fmt.Sprintf("pool=%d", p)
	}
	a, err := sweep(graphs, labels, func(si int, g *graph.Graph) (*fragment.Fragmentation, error) {
		return center.Fragment(g, center.Options{
			NumFragments: 4, CandidatePool: pools[si], Seed: seed,
		})
	})
	if err != nil {
		return nil, err
	}
	a.Title = "Ablation: center candidate pool size (random selection)"
	return a, nil
}

// AblationLinearStartCount sweeps the number of start nodes s of the
// linear algorithm.
func AblationLinearStartCount(trials int, seed int64) (*Ablation, error) {
	graphs, _, err := transportationBatch(trials, 4, 15, 4.5, seed)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 3, 6, 10}
	labels := make([]string, len(counts))
	for i, c := range counts {
		labels[i] = fmt.Sprintf("s=%d", c)
	}
	a, err := sweep(graphs, labels, func(si int, g *graph.Graph) (*fragment.Fragmentation, error) {
		res, err := linearFragment(g, 4, counts[si])
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	a.Title = "Ablation: linear fragmentation start-node count"
	return a, nil
}

// linearFragment adapts the linear package to the sweep signature.
func linearFragment(g *graph.Graph, frags, startCount int) (*fragment.Fragmentation, error) {
	alg := Linear(frags, startCount)
	return alg.Run(g, 0)
}
