package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/pkg/tcq"
)

// ClusterPoint is one row of the cluster experiment: the same load
// pass against a 1-node or a multi-node deployment, cold or warm.
type ClusterPoint struct {
	// Nodes is the deployment size (1 = the single-node baseline).
	Nodes int `json:"nodes"`
	// Pass labels the row: "cold" or "warm".
	Pass string `json:"pass"`
	// Requests and Parallel describe the load.
	Requests int `json:"requests"`
	Parallel int `json:"parallel"`
	// QPS is the measured throughput, P50/P99 latency percentiles
	// (nanoseconds in the JSON artifact, as Go renders time.Duration).
	QPS float64       `json:"qps"`
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// HitRate is the coordinator's leg-cache hit rate over the pass.
	HitRate float64 `json:"hit_rate"`
	// Errors and Mismatches count failures (both must be zero).
	Errors     int `json:"errors"`
	Mismatches int `json:"mismatches"`
}

// ClusterResult is the whole cluster experiment — the measured cost
// and benefit of sharding leg execution across real HTTP nodes versus
// running everything in one process.
type ClusterResult struct {
	// Grid and Fragments describe the deployment input.
	Grid      string `json:"grid"`
	Fragments int    `json:"fragments"`
	// Engine is the per-request engine of every pass.
	Engine string         `json:"engine"`
	Points []ClusterPoint `json:"points"`
}

// Format renders the experiment as a table.
func (r *ClusterResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster serving on a %s grid, %d fragments (%s): 1-node baseline vs multi-node scatter-gather\n",
		r.Grid, r.Fragments, r.Engine)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tpass\treq\tworkers\tQPS\tp50\tp99\thit rate\terrors")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.1f\t%v\t%v\t%.1f%%\t%d\n",
			p.Nodes, p.Pass, p.Requests, p.Parallel, p.QPS,
			p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond),
			100*p.HitRate, p.Errors+p.Mismatches)
	}
	tw.Flush()
	sb.WriteString("Multi-node pays one HTTP round trip per remote leg cold; warm replays absorb it in the owners' leg caches.\n")
	return sb.String()
}

// Cluster measures what multi-node deployment costs and buys: the same
// random workload against a 1-node deployment and a 3-node in-process
// cluster wired over real loopback HTTP, cold and warm. Cold passes
// price the scatter-gather round trips; warm passes show the cache
// working set concentrating on the owners (the paper's locality
// argument for placing each fragment's work at one site).
func Cluster(queries int, seed int64) (*ClusterResult, error) {
	const (
		w, h      = 32, 32
		fragments = 8
		parallel  = 8
		engine    = "dijkstra"
	)
	if queries <= 0 {
		queries = 50
	}
	res := &ClusterResult{Grid: fmt.Sprintf("%dx%d", w, h), Fragments: fragments, Engine: engine}
	for _, nodes := range []int{1, 3} {
		urls, cleanup, err := deployCluster(w, h, fragments, nodes, seed)
		if err != nil {
			return nil, err
		}
		for _, pass := range []string{"cold", "warm"} {
			rep, err := server.RunLoad(server.LoadConfig{
				BaseURLs:        urls,
				Requests:        queries,
				Parallel:        parallel,
				Nodes:           w * h,
				Engine:          engine,
				Seed:            seed,
				ExpectReachable: true,
			})
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("cluster %d-node %s: %v", nodes, pass, err)
			}
			res.Points = append(res.Points, ClusterPoint{
				Nodes:      nodes,
				Pass:       pass,
				Requests:   rep.Requests,
				Parallel:   parallel,
				QPS:        rep.QPS,
				P50:        rep.P50,
				P99:        rep.P99,
				HitRate:    rep.HitRate,
				Errors:     rep.Errors,
				Mismatches: rep.Mismatches,
			})
		}
		cleanup()
	}
	return res, nil
}

// delegatingHandler lets the HTTP listeners start before the servers
// they route to exist (peer URLs feed the coordinators that build the
// servers).
type delegatingHandler struct {
	h atomic.Pointer[http.Handler]
}

func (d *delegatingHandler) set(h http.Handler) { d.h.Store(&h) }

func (d *delegatingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := d.h.Load()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

// deployCluster boots nodes identical stores behind loopback HTTP
// servers, wired into one membership (nodes == 1 deploys the plain
// single-node baseline with no coordinator).
func deployCluster(w, h, fragments, nodes int, seed int64) ([]string, func(), error) {
	handlers := make([]*delegatingHandler, nodes)
	https := make([]*httptest.Server, nodes)
	var peers []cluster.Node
	for i := 0; i < nodes; i++ {
		handlers[i] = &delegatingHandler{}
		https[i] = httptest.NewServer(handlers[i])
		peers = append(peers, cluster.Node{ID: string(rune('a' + i)), URL: https[i].URL})
	}
	var servers []*server.Server
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
		for _, ts := range https {
			ts.Close()
		}
	}
	for i := 0; i < nodes; i++ {
		g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.1, Seed: seed})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		fr, err := linear.Fragment(g, linear.Options{NumFragments: fragments})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		ds, err := tcq.NewDataset(fr.Fragmentation, tcq.BuildOptions{})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		cfg := server.Config{CacheCapacity: 4096}
		if nodes > 1 {
			coord, err := cluster.New(cluster.Config{NodeID: peers[i].ID, Peers: peers})
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			cfg.Cluster = coord
		}
		srv, err := server.NewDataset(ds, cfg)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		handlers[i].set(srv.Handler())
	}
	urls := make([]string, nodes)
	for i, ts := range https {
		urls[i] = ts.URL
	}
	return urls, cleanup, nil
}
