// Package bench is the experiment harness reproducing every table and
// measured claim of the ICDE'93 paper. Each experiment generates
// batches of random graphs with the §4.1 generator, fragments them with
// the §3 algorithms, and reports the paper's characteristics (F, DS,
// AF, ADS) or the derived performance quantities (speedup, iteration
// counts). cmd/tcbench and the repository-root benchmarks both drive
// this package.
package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Row is one line of a characteristics table.
type Row struct {
	// Algorithm is the paper's row label.
	Algorithm string
	// C is the averaged characteristics.
	C fragment.Characteristics
	// PaperF…PaperADS hold the original paper numbers for side-by-side
	// display; negative values mean "not reported".
	PaperF, PaperDS, PaperAF, PaperADS float64
}

// Table is a reproduced characteristics table.
type Table struct {
	// Title and Note describe the experiment.
	Title, Note string
	// Rows are the algorithm rows.
	Rows []Row
	// AvgEdges is the measured average edge count of the generated
	// graphs (the paper reports it in the table caption).
	AvgEdges float64
	// Trials is the number of random graphs averaged.
	Trials int
}

// Format renders the table in the paper's layout, with the paper's
// numbers alongside where known.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n", t.Note)
	}
	fmt.Fprintf(&sb, "(averaged over %d random graphs, avg |E| = %.1f)\n", t.Trials, t.AvgEdges)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "Algorithm\tF\tDS\tAF\tADS\tfrags\tcycles\tpaper(F DS AF ADS)")
	for _, r := range t.Rows {
		paper := "—"
		if r.PaperF >= 0 {
			paper = fmt.Sprintf("%.1f %.1f %.1f %.2f", r.PaperF, r.PaperDS, r.PaperAF, r.PaperADS)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t%d\t%s\n",
			r.Algorithm, r.C.F, r.C.DS, r.C.AF, r.C.ADS,
			r.C.NumFragments, r.C.Cycles, paper)
	}
	tw.Flush()
	return sb.String()
}

// Algorithm is a named fragmentation strategy applied to a graph.
type Algorithm struct {
	// Name is the row label.
	Name string
	// Run fragments the graph.
	Run func(g *graph.Graph, seed int64) (*fragment.Fragmentation, error)
}

// CenterBased returns the §3.1 algorithm with random high-status
// centers (the original Table 1 behaviour).
func CenterBased(frags int) Algorithm {
	return Algorithm{
		Name: "center-based",
		Run: func(g *graph.Graph, seed int64) (*fragment.Fragmentation, error) {
			return center.Fragment(g, center.Options{NumFragments: frags, Seed: seed})
		},
	}
}

// DistributedCenters returns the §4.2.1 refinement using coordinates to
// spread the centers.
func DistributedCenters(frags int) Algorithm {
	return Algorithm{
		Name: "distributed centers",
		Run: func(g *graph.Graph, seed int64) (*fragment.Fragmentation, error) {
			return center.Fragment(g, center.Options{NumFragments: frags, Distributed: true})
		},
	}
}

// BondEnergy returns the §3.2 algorithm with the given split threshold
// and minimum block size.
func BondEnergy(threshold, minBlockEdges, starts int) Algorithm {
	return Algorithm{
		Name: "bond-energy",
		Run: func(g *graph.Graph, seed int64) (*fragment.Fragmentation, error) {
			return bea.Fragment(g, bea.Options{
				Threshold:     threshold,
				MinBlockEdges: minBlockEdges,
				Starts:        starts,
			})
		},
	}
}

// Linear returns the §3.3 algorithm.
func Linear(frags, startCount int) Algorithm {
	return Algorithm{
		Name: "linear",
		Run: func(g *graph.Graph, seed int64) (*fragment.Fragmentation, error) {
			res, err := linear.Fragment(g, linear.Options{NumFragments: frags, StartCount: startCount})
			if err != nil {
				return nil, err
			}
			return res.Fragmentation, nil
		},
	}
}

// runCharacteristics applies each algorithm to each generated graph and
// averages the characteristics.
func runCharacteristics(graphs []*graph.Graph, algs []Algorithm, seed int64) ([]Row, error) {
	rows := make([]Row, 0, len(algs))
	for _, alg := range algs {
		var cs []fragment.Characteristics
		for i, g := range graphs {
			fr, err := alg.Run(g, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("bench: %s on graph %d: %v", alg.Name, i, err)
			}
			cs = append(cs, fragment.Measure(fr))
		}
		rows = append(rows, Row{
			Algorithm: alg.Name,
			C:         fragment.Average(cs),
			PaperF:    -1, PaperDS: -1, PaperAF: -1, PaperADS: -1,
		})
	}
	return rows, nil
}

// transportationBatch generates 'trials' transportation graphs with the
// given cluster layout and average-degree target.
func transportationBatch(trials, clusters, perCluster int, degree float64, seed int64) ([]*graph.Graph, float64, error) {
	var graphs []*graph.Graph
	total := 0
	for i := 0; i < trials; i++ {
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: clusters,
			Cluster:  gen.DefaultsWithDegree(perCluster, degree, seed+int64(i)*101),
		})
		if err != nil {
			return nil, 0, err
		}
		graphs = append(graphs, g)
		total += g.NumEdges()
	}
	return graphs, float64(total) / float64(trials), nil
}

// generalBatch generates 'trials' general graphs.
func generalBatch(trials, nodes int, degree float64, seed int64) ([]*graph.Graph, float64, error) {
	var graphs []*graph.Graph
	total := 0
	for i := 0; i < trials; i++ {
		g, err := gen.General(gen.DefaultsWithDegree(nodes, degree, seed+int64(i)*101))
		if err != nil {
			return nil, 0, err
		}
		graphs = append(graphs, g)
		total += g.NumEdges()
	}
	return graphs, float64(total) / float64(trials), nil
}

// setPaper attaches the paper's reported numbers to the row with the
// given algorithm name.
func setPaper(rows []Row, name string, f, ds, af, ads float64) {
	for i := range rows {
		if rows[i].Algorithm == name {
			rows[i].PaperF, rows[i].PaperDS, rows[i].PaperAF, rows[i].PaperADS = f, ds, af, ads
		}
	}
}

// Table1 reproduces Table 1: fragmentation characteristics of the three
// algorithms on transportation graphs of 4 clusters × 25 nodes (paper:
// avg 429 edges, avg 2.25 inter-cluster edges; BEA DS = 2.4, linear DS
// = 13.3).
func Table1(trials int, seed int64) (*Table, error) {
	graphs, avgEdges, err := transportationBatch(trials, 4, 25, 4.5, seed)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		CenterBased(4),
		BondEnergy(3, 0, 0),
		Linear(4, 1),
	}
	rows, err := runCharacteristics(graphs, algs, seed)
	if err != nil {
		return nil, err
	}
	// Table 1 of the paper is partially garbled in the available scan;
	// the legible facts are DS(bond-energy) = 2.4 and DS(linear) = 13.3
	// with large AF for both, and better balance for center-based.
	setPaper(rows, "bond-energy", -1, 2.4, -1, -1)
	setPaper(rows, "linear", -1, 13.3, -1, -1)
	return &Table{
		Title:    "Table 1: fragmentation characteristics, transportation graphs (4 clusters × 25 nodes)",
		Note:     "paper: avg 429 edges, 2.25 inter-cluster edges; only the DS column survives legibly in the scan",
		Rows:     rows,
		AvgEdges: avgEdges,
		Trials:   trials,
	}, nil
}

// Table2 reproduces Table 2: center-based with and without distributed
// centers on transportation graphs of 4 clusters × 150 nodes (paper:
// 3167 edges; DS 69.5→4.3, AF 636.3→12.4, ADS 13.8→2.9 at F 791.8).
func Table2(trials int, seed int64) (*Table, error) {
	graphs, avgEdges, err := transportationBatch(trials, 4, 150, 5.25, seed)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		CenterBased(4),
		DistributedCenters(4),
	}
	rows, err := runCharacteristics(graphs, algs, seed)
	if err != nil {
		return nil, err
	}
	setPaper(rows, "center-based", 791.8, 69.5, 636.3, 13.8)
	setPaper(rows, "distributed centers", 791.8, 4.3, 12.4, 2.9)
	return &Table{
		Title:    "Table 2: center selection with and without coordinates (4 clusters × 150 nodes)",
		Note:     "paper: 3167 edges; distributed centers cut DS 69.5→4.3 and AF 636.3→12.4",
		Rows:     rows,
		AvgEdges: avgEdges,
		Trials:   trials,
	}, nil
}

// Table3 reproduces Table 3: all four algorithm variants on general
// graphs of 100 nodes (paper: 279.5 edges; BEA DS 5.4 / AF 88.4; linear
// DS 35.8; center 18.1/40.2; distributed 18.9/34.7).
func Table3(trials int, seed int64) (*Table, error) {
	graphs, avgEdges, err := generalBatch(trials, 100, 2.8, seed)
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{
		CenterBased(4),
		DistributedCenters(4),
		BondEnergy(3, 0, 0),
		Linear(4, 1),
	}
	rows, err := runCharacteristics(graphs, algs, seed)
	if err != nil {
		return nil, err
	}
	setPaper(rows, "center-based", 77, 18.1, 40.2, 8.8)
	setPaper(rows, "distributed centers", 77, 18.9, 34.7, 5.9)
	setPaper(rows, "bond-energy", 93.2, 5.4, 88.4, 2.1)
	setPaper(rows, "linear", 111.8, 35.8, 42.1, 1.25)
	return &Table{
		Title:    "Table 3: fragmentation characteristics, general graphs (100 nodes)",
		Note:     "paper: 279.5 edges on average",
		Rows:     rows,
		AvgEdges: avgEdges,
		Trials:   trials,
	}, nil
}
