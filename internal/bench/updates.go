package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
)

// UpdatesPoint is one mixed-workload serving measurement: a parallel
// load pass with a given fraction of write transactions interleaved.
type UpdatesPoint struct {
	// Pass labels the row: "read-only" or "mixed".
	Pass string `json:"pass"`
	// WriteRate is the configured write fraction of the pass.
	WriteRate float64 `json:"write_rate"`
	// Requests and Writes count what was actually fired.
	Requests int `json:"requests"`
	Writes   int `json:"writes"`
	// QPS is the measured throughput, P50/P95/P99 the query latency
	// percentiles (reads only — writes are tracked separately).
	QPS float64       `json:"qps"`
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// WriteP50/WriteP99 are the write-transaction latency percentiles.
	WriteP50 time.Duration `json:"write_p50_ns"`
	WriteP99 time.Duration `json:"write_p99_ns"`
	// Errors and Mismatches count failures (both must be zero).
	Errors     int `json:"errors"`
	Mismatches int `json:"mismatches"`
}

// UpdatesResult is the whole mixed read/write experiment: the
// incremental-rebuild micro-measurement plus the serving-layer
// latency comparison with and without sustained writes.
type UpdatesResult struct {
	// Grid and Fragments describe the deployment; Procs is GOMAXPROCS
	// at run time (on a single CPU, reads and writes contend for the
	// core even though readers never block on locks, so the latency
	// ratio below is only meaningful with Procs > 1).
	Grid      string `json:"grid"`
	Fragments int    `json:"fragments"`
	Procs     int    `json:"gomaxprocs"`

	// FullBuild is the from-scratch preprocessing time of the
	// deployment; IncrementalApply the time one single-fragment batch
	// takes through the copy-on-write path on the same deployment.
	FullBuild        time.Duration `json:"full_build_ns"`
	IncrementalApply time.Duration `json:"incremental_apply_ns"`
	// SitesRebuilt/SitesShared report the incremental batch's rebuild
	// scope — shared > 0 is the whole point.
	SitesRebuilt int `json:"sites_rebuilt"`
	SitesShared  int `json:"sites_shared"`

	// Points holds the read-only baseline and the mixed pass.
	Points []UpdatesPoint `json:"points"`
	// P99Ratio is mixed read p99 over read-only read p99 — the
	// non-blocking-readers acceptance metric (≤ 2 is the PR bar).
	P99Ratio float64 `json:"p99_ratio"`
}

// Format renders the experiment as a table.
func (r *UpdatesResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batched updates on a %s grid, %d fragments, GOMAXPROCS %d (copy-on-write swap, non-blocking readers)\n",
		r.Grid, r.Fragments, r.Procs)
	fmt.Fprintf(&sb, "preprocessing: full build %v; incremental single-fragment batch %v (%d site(s) rebuilt, %d shared)\n",
		r.FullBuild.Round(time.Millisecond), r.IncrementalApply.Round(time.Millisecond),
		r.SitesRebuilt, r.SitesShared)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\twrite rate\treq\twrites\tQPS\tread p50\tread p95\tread p99\twrite p50\twrite p99\terrors")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%d\t%d\t%.1f\t%v\t%v\t%v\t%v\t%v\t%d\n",
			p.Pass, 100*p.WriteRate, p.Requests, p.Writes, p.QPS,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond),
			p.WriteP50.Round(time.Microsecond), p.WriteP99.Round(time.Microsecond),
			p.Errors+p.Mismatches)
	}
	tw.Flush()
	fmt.Fprintf(&sb, "read p99 under sustained fragment-local writes / read-only baseline: %.2fx (acceptance bar: <= 2x)\n", r.P99Ratio)
	return sb.String()
}

// Updates measures the write path end to end: (1) the incremental
// copy-on-write Apply against a from-scratch Build on the same
// deployment — single-fragment updates must no longer trigger
// whole-store preprocessing — and (2) read latency with and without a
// sustained write mix through the live HTTP server, demonstrating that
// snapshot-pinned readers do not block on writers.
func Updates(queries int, seed int64) (*UpdatesResult, error) {
	const (
		w, h      = 32, 32
		fragments = 4
		parallel  = 8
		writeRate = 0.15
	)
	if queries <= 0 {
		queries = 150
	}
	res := &UpdatesResult{Grid: fmt.Sprintf("%dx%d", w, h), Fragments: fragments, Procs: runtime.GOMAXPROCS(0)}

	g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.1, Seed: seed})
	if err != nil {
		return nil, err
	}
	fr, err := linear.Fragment(g, linear.Options{NumFragments: fragments})
	if err != nil {
		return nil, err
	}

	// 1. Incremental vs full preprocessing on the same deployment.
	t0 := time.Now()
	st, err := dsa.Build(fr.Fragmentation, dsa.Options{})
	if err != nil {
		return nil, err
	}
	res.FullBuild = time.Since(t0)
	// One heavy in-fragment edge: answer-invariant, single fragment
	// touched.
	f0 := fr.Fragmentation.Fragment(0).Nodes()
	t0 = time.Now()
	_, stats, err := st.Apply(context.Background(), []dsa.EdgeOp{{
		Kind: dsa.OpInsert, Frag: 0,
		Edge: graph.Edge{From: f0[0], To: f0[len(f0)-1], Weight: 1e9},
	}})
	if err != nil {
		return nil, fmt.Errorf("updates: incremental apply: %v", err)
	}
	res.IncrementalApply = time.Since(t0)
	res.SitesRebuilt = len(stats.SitesRebuilt)
	res.SitesShared = stats.SitesShared

	// 2. Serving-layer latency with and without a sustained write mix.
	srv, err := server.New(st, server.Config{CacheCapacity: 4096})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A warm-up pass fills the leg cache so both measured passes see
	// comparable cache behaviour.
	if _, err := server.RunLoad(server.LoadConfig{
		BaseURL: ts.URL, Requests: queries, Parallel: parallel,
		Nodes: w * h, Seed: seed, ExpectReachable: true,
	}); err != nil {
		return nil, fmt.Errorf("updates warm-up: %v", err)
	}

	// Fragment-local write edges: both endpoints already belong to the
	// fragment, so each write is the single-fragment update the paper's
	// scenario implies (a country editing its own network) and stays on
	// the incremental fast path. The cross-fragment pass leaves
	// WriteEdges empty: random endpoints drag foreign nodes into
	// fragment 0 and force the full complementary recomputation — the
	// honest worst case, reported but not the acceptance metric.
	var localEdges [][3]int
	for i := 0; i < fragments; i++ {
		fn := fr.Fragmentation.Fragment(i).Nodes()
		localEdges = append(localEdges, [3]int{i, int(fn[0]), int(fn[len(fn)-1])})
	}

	for _, p := range []struct {
		pass  string
		rate  float64
		edges [][3]int
	}{
		{"read-only", 0, nil},
		{"mixed fragment-local", writeRate, localEdges},
		{"mixed cross-fragment", writeRate, nil},
	} {
		rep, err := server.RunLoad(server.LoadConfig{
			BaseURL:         ts.URL,
			Requests:        queries,
			Parallel:        parallel,
			Nodes:           w * h,
			Seed:            seed,
			ExpectReachable: true,
			WriteRate:       p.rate,
			WriteEdges:      p.edges,
		})
		if err != nil {
			return nil, fmt.Errorf("updates %s: %v", p.pass, err)
		}
		res.Points = append(res.Points, UpdatesPoint{
			Pass:       p.pass,
			WriteRate:  p.rate,
			Requests:   rep.Requests,
			Writes:     rep.Writes,
			QPS:        rep.QPS,
			P50:        rep.P50,
			P95:        rep.P95,
			P99:        rep.P99,
			WriteP50:   rep.WriteP50,
			WriteP99:   rep.WriteP99,
			Errors:     rep.Errors,
			Mismatches: rep.Mismatches,
		})
	}
	if base := res.Points[0].P99; base > 0 {
		res.P99Ratio = float64(res.Points[1].P99) / float64(base)
	}
	return res, nil
}
