package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// EnginePoint is one row of the local-engine shoot-out: both engines
// answer the same entry-set-restricted reachability subquery on the
// same grid graph — the exact shape of a fragment leg.
type EnginePoint struct {
	// Width and Height are the grid dimensions.
	Width, Height int
	// Nodes and Edges describe the graph.
	Nodes, Edges int
	// SemiNaive and Bitset are the measured wall-clock times.
	SemiNaive, Bitset time.Duration
	// SemiNaiveStats and BitsetStats report each engine's own work
	// units (relational derived tuples vs. component bits).
	SemiNaiveStats, BitsetStats tc.Stats
	// Agree reports whether the two engines produced identical pair
	// sets (always checked; a disagreement is a bug).
	Agree bool
}

// Speedup is the semi-naive / bitset wall-clock ratio.
func (p EnginePoint) Speedup() float64 {
	if p.Bitset <= 0 {
		return 0
	}
	return float64(p.SemiNaive) / float64(p.Bitset)
}

// EnginesResult is the full engine sweep.
type EnginesResult struct {
	Points  []EnginePoint
	Sources int
}

// Format renders the sweep as a table.
func (r *EnginesResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Local closure engines on grid graphs (%d-source restricted reachability)\n", r.Sources)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "grid\tnodes\tedges\tseminaive\tbitset\tspeedup\titer-sn\titer-bs\tagree")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%dx%d\t%d\t%d\t%v\t%v\t%.1fx\t%d\t%d\t%v\n",
			p.Width, p.Height, p.Nodes, p.Edges,
			p.SemiNaive.Round(time.Microsecond), p.Bitset.Round(time.Microsecond),
			p.Speedup(), p.SemiNaiveStats.Iterations, p.BitsetStats.Iterations, p.Agree)
	}
	tw.Flush()
	return sb.String()
}

// Engines measures the per-leg engines against each other on grid
// graphs of increasing size (the Fig. 8 lattice family): the semi-naive
// relational fixpoint with the entry set pushed as a selection
// (tc.ReachableFrom, what dsa.EngineSemiNaive runs per leg) versus the
// bitset-parallel kernel (tc.BitsetReachableFrom, dsa.EngineBitset).
// Grids are symmetric, so the whole lattice is one strongly connected
// component — the regime where the condensation-based kernel collapses
// diameter-many relational rounds into a handful of bit rows.
func Engines(sources int, seed int64) (*EnginesResult, error) {
	if sources <= 0 {
		sources = 2
	}
	res := &EnginesResult{Sources: sources}
	for _, dim := range [][2]int{{16, 16}, {32, 32}, {64, 64}} {
		g, err := gen.Grid(gen.GridConfig{Width: dim[0], Height: dim[1], DiagonalProb: 0.1, Seed: seed})
		if err != nil {
			return nil, err
		}
		rel := relation.FromGraph(g)
		nodes := g.Nodes()
		rng := rand.New(rand.NewSource(seed + int64(dim[0])))
		srcs := make([]graph.NodeID, sources)
		for i := range srcs {
			srcs[i] = nodes[rng.Intn(len(nodes))]
		}

		t0 := time.Now()
		snRel, snStats, err := tc.ReachableFrom(rel, srcs)
		if err != nil {
			return nil, err
		}
		snTook := time.Since(t0)

		t1 := time.Now()
		bsRel, bsStats, err := tc.BitsetReachableFrom(rel, srcs)
		if err != nil {
			return nil, err
		}
		bsTook := time.Since(t1)

		res.Points = append(res.Points, EnginePoint{
			Width: dim[0], Height: dim[1],
			Nodes: g.NumNodes(), Edges: g.NumEdges(),
			SemiNaive: snTook, Bitset: bsTook,
			SemiNaiveStats: snStats, BitsetStats: bsStats,
			Agree: samePairs(snRel, bsRel),
		})
	}
	return res, nil
}

// samePairs reports whether two (src, dst) relations hold the same
// tuple set.
func samePairs(a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	seen := make(map[string]struct{}, a.Len())
	for _, t := range a.Tuples() {
		seen[t.Key()] = struct{}{}
	}
	for _, t := range b.Tuples() {
		if _, ok := seen[t.Key()]; !ok {
			return false
		}
	}
	return true
}
