package bench

import (
	"strings"
	"testing"
)

// The experiment harness is itself what regenerates the paper's
// numbers, so these tests assert the qualitative *shape* of each table
// and claim — who wins which column — on small batches. The full-size
// runs live in the repository-root benchmarks and cmd/tcbench.

func rowByName(t *testing.T, tbl *Table, name string) Row {
	t.Helper()
	for _, r := range tbl.Rows {
		if r.Algorithm == name {
			return r
		}
	}
	t.Fatalf("table has no row %q", name)
	return Row{}
}

func TestTable1Shape(t *testing.T) {
	tbl, err := Table1(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	bea := rowByName(t, tbl, "bond-energy")
	lin := rowByName(t, tbl, "linear")
	cen := rowByName(t, tbl, "center-based")
	// §4.2.3: bond-energy has the smallest disconnection sets, linear
	// the largest; linear is acyclic.
	if !(bea.C.DS < cen.C.DS && cen.C.DS < lin.C.DS) {
		t.Errorf("DS order wrong: bea %.1f, center %.1f, linear %.1f", bea.C.DS, cen.C.DS, lin.C.DS)
	}
	if lin.C.Cycles != 0 {
		t.Errorf("linear cycles = %d, want 0", lin.C.Cycles)
	}
	// Bond-energy pays with fragment-size variance.
	if bea.C.AF <= cen.C.AF {
		t.Errorf("bond-energy AF %.1f should exceed center-based %.1f", bea.C.AF, cen.C.AF)
	}
	// The generator is in the paper's regime (429 edges reported).
	if tbl.AvgEdges < 300 || tbl.AvgEdges > 560 {
		t.Errorf("avg edges = %.1f, want near 429", tbl.AvgEdges)
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, err := Table2(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	cen := rowByName(t, tbl, "center-based")
	dist := rowByName(t, tbl, "distributed centers")
	// The §4.2.1 refinement: a considerable improvement in both DS and
	// fragment balance (paper: DS 69.5→4.3, AF 636→12.4).
	if dist.C.DS >= cen.C.DS/2 {
		t.Errorf("distributed DS %.1f not well below center %.1f", dist.C.DS, cen.C.DS)
	}
	if dist.C.AF >= cen.C.AF/2 {
		t.Errorf("distributed AF %.1f not well below center %.1f", dist.C.AF, cen.C.AF)
	}
	// Equal F by construction (same partitioned edge count).
	if dist.C.F != cen.C.F {
		t.Errorf("F differs: %v vs %v", dist.C.F, cen.C.F)
	}
	if tbl.AvgEdges < 2200 || tbl.AvgEdges > 4200 {
		t.Errorf("avg edges = %.1f, want near 3167", tbl.AvgEdges)
	}
}

func TestTable3Shape(t *testing.T) {
	tbl, err := Table3(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	bea := rowByName(t, tbl, "bond-energy")
	lin := rowByName(t, tbl, "linear")
	cen := rowByName(t, tbl, "center-based")
	if bea.C.DS >= cen.C.DS || bea.C.DS >= lin.C.DS {
		t.Errorf("bond-energy DS %.1f should be the smallest (center %.1f, linear %.1f)",
			bea.C.DS, cen.C.DS, lin.C.DS)
	}
	if lin.C.DS <= cen.C.DS {
		t.Errorf("linear DS %.1f should be the largest (center %.1f)", lin.C.DS, cen.C.DS)
	}
	if lin.C.Cycles != 0 {
		t.Errorf("linear cycles = %d, want 0", lin.C.Cycles)
	}
	if bea.C.AF <= cen.C.AF {
		t.Errorf("bond-energy AF %.1f should exceed center %.1f", bea.C.AF, cen.C.AF)
	}
	if tbl.AvgEdges < 200 || tbl.AvgEdges > 400 {
		t.Errorf("avg edges = %.1f, want near 279.5", tbl.AvgEdges)
	}
}

func TestTableFormat(t *testing.T) {
	tbl, err := Table1(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Format()
	for _, want := range []string{"Table 1", "Algorithm", "bond-energy", "linear", "center-based"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q:\n%s", want, s)
		}
	}
}

func TestSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup sweep is slow")
	}
	r, err := Speedup(40, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("points = %v", r.Points)
	}
	// §2.1: speed-up grows with the fragment count; all chain sites are
	// used.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.Speedup <= first.Speedup {
		t.Errorf("speedup not growing: %v", r.Points)
	}
	if last.Speedup < 2 {
		t.Errorf("8-fragment speedup = %.2f, want ≥ 2", last.Speedup)
	}
	if last.AvgSitesUsed < float64(last.Fragments)-0.5 {
		t.Errorf("chain queries should use every site: %v", last)
	}
	if !strings.Contains(r.Format(), "speedup") {
		t.Error("Format() missing header")
	}
}

func TestIterationsShape(t *testing.T) {
	r, err := Iterations(4, 15, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Fatalf("points = %v", r.Points)
	}
	// Fragmenting reduces per-site iterations below the global count.
	base := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.Fragments > 1 && p.MaxSiteIterations >= base.GlobalIterations {
			t.Errorf("fragments=%d: site iterations %.1f not below global %.1f",
				p.Fragments, p.MaxSiteIterations, base.GlobalIterations)
		}
	}
	if !strings.Contains(r.Format(), "iterations") {
		t.Error("Format() missing header")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.AlongDS >= r.AcrossDS {
		t.Errorf("along-axis DS %.1f should beat across-axis %.1f", r.AlongDS, r.AcrossDS)
	}
	if !strings.Contains(r.Format(), "Fig. 8") {
		t.Error("Format() missing header")
	}
}

func TestPHEShape(t *testing.T) {
	r, err := PHE(6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	last := r.Points[len(r.Points)-1]
	// At 5 fully linked clusters, exhaustive enumeration considers many
	// more chains than hierarchical routing.
	if last.DSAChains <= last.PHEChains {
		t.Errorf("DSA chains %.1f should exceed PHE chains %.1f", last.DSAChains, last.PHEChains)
	}
	// Hierarchical answers are real paths: never cheaper than the
	// exhaustive optimum (ratio ≥ 1 up to float noise).
	for _, p := range r.Points {
		if p.CostRatio < 0.999 {
			t.Errorf("cost ratio %v < 1", p.CostRatio)
		}
	}
	if !strings.Contains(r.Format(), "hierarchical") {
		t.Error("Format() missing header")
	}
}

func TestAblationsRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(int, int64) (*Ablation, error)
	}{
		{"bea-threshold", AblationBEAThreshold},
		{"bea-mode", AblationBEAMode},
		{"center-variant", AblationCenterVariant},
		{"center-pool", AblationCenterPool},
		{"linear-start", AblationLinearStartCount},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.fn(2, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) < 2 {
				t.Fatalf("rows = %v", a.Rows)
			}
			if !strings.Contains(a.Format(), "Ablation") {
				t.Error("Format() missing header")
			}
		})
	}
}

func TestImpactShape(t *testing.T) {
	r, err := Impact(3, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	byName := make(map[string]ImpactRow)
	for _, row := range r.Rows {
		byName[row.Algorithm] = row
		if row.MeanParallel <= 0 || row.Utilization <= 0 {
			t.Errorf("%s: no performance measured: %+v", row.Algorithm, row)
		}
	}
	bea, lin := byName["bond-energy"], byName["linear"]
	// The §4.2.3 conjecture: small disconnection sets are the main
	// performance factor — bond-energy (smallest DS) must beat linear
	// (largest DS) on parallel time and traffic.
	if bea.MeanParallel >= lin.MeanParallel {
		t.Errorf("bond-energy %v not faster than linear %v", bea.MeanParallel, lin.MeanParallel)
	}
	if bea.TuplesShipped >= lin.TuplesShipped {
		t.Errorf("bond-energy traffic %v not below linear %v", bea.TuplesShipped, lin.TuplesShipped)
	}
	if bea.CompFacts >= lin.CompFacts {
		t.Errorf("bond-energy comp facts %d not below linear %d", bea.CompFacts, lin.CompFacts)
	}
	if !strings.Contains(r.Format(), "Which characteristic") {
		t.Error("Format() missing header")
	}
}

func TestAmortizeShape(t *testing.T) {
	r, err := Amortize(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Fatalf("points = %v", r.Points)
	}
	for _, p := range r.Points {
		if p.PrepTime <= 0 || p.PrepFacts <= 0 {
			t.Errorf("prep not charged: %+v", p)
		}
		if p.SavingsPerQuery <= 0 || p.BreakEvenQueries <= 0 {
			t.Errorf("no savings measured: %+v", p)
		}
	}
	// Larger graphs amortise faster: savings grow superlinearly while
	// prep grows linearly.
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.BreakEvenQueries > first.BreakEvenQueries {
		t.Errorf("break-even grew with graph size: %v", r.Points)
	}
	if !strings.Contains(r.Format(), "amortized") {
		t.Error("Format() missing header")
	}
}

func TestKConnCostShape(t *testing.T) {
	r, err := KConnCost(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 2 {
		t.Fatalf("points = %v", r.Points)
	}
	// The rejected analysis must be far more expensive than any §3
	// algorithm on the largest graph, and its cost must grow with the
	// graph.
	last := r.Points[len(r.Points)-1]
	if last.KConn <= 10*last.Center || last.KConn <= 10*last.Linear {
		t.Errorf("k-connectivity cost %v not clearly dominating %v/%v", last.KConn, last.Center, last.Linear)
	}
	if r.Points[0].KConn >= last.KConn {
		t.Errorf("k-connectivity cost not growing: %v", r.Points)
	}
	if !strings.Contains(r.Format(), "k-connectivity") {
		t.Error("Format() missing header")
	}
}

func TestAlgorithmConstructors(t *testing.T) {
	// Every constructor yields a runnable algorithm on a small graph.
	graphs, _, err := transportationBatch(1, 2, 10, 4.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{
		CenterBased(2), DistributedCenters(2), BondEnergy(3, 0, 4), Linear(2, 1),
	} {
		fr, err := alg.Run(graphs[0], 7)
		if err != nil {
			t.Errorf("%s: %v", alg.Name, err)
			continue
		}
		if fr.NumFragments() < 1 {
			t.Errorf("%s: no fragments", alg.Name)
		}
	}
}

func TestServingShape(t *testing.T) {
	r, err := Serving(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 engines x cold/warm)", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Errors != 0 || p.Mismatches != 0 {
			t.Errorf("%s/%s: %d errors, %d mismatches", p.Engine, p.Pass, p.Errors, p.Mismatches)
		}
		if p.Pass == "cold" && p.HitRate != 0 {
			// A cold cache can still hit within a pass (duplicate legs
			// across concurrent queries), so only assert the warm side.
			continue
		}
		if p.Pass == "warm" && p.HitRate == 0 {
			t.Errorf("%s warm pass: hit rate 0", p.Engine)
		}
	}
	if !strings.Contains(r.Format(), "hit rate") {
		t.Error("Format missing hit-rate column")
	}
}
