package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/phe"
	"repro/internal/sim"
)

// SpeedupPoint is one row of the §2.1 linear speed-up experiment.
type SpeedupPoint struct {
	// Fragments is the number of fragments/sites.
	Fragments int
	// Speedup is the simulated sequential/parallel ratio, averaged over
	// the query batch.
	Speedup float64
	// CentralizedRatio compares the parallel elapsed time against a
	// single processor evaluating the unfragmented graph.
	CentralizedRatio float64
	// CentralizedSeqRatio compares the *sequential* disconnection-set
	// evaluation (one processor executing all legs) against the
	// unfragmented baseline — the paper's parenthetical "(Also in a
	// centralized environment it performs better than other
	// algorithms.)": the keyhole selections make even the one-machine
	// fragmented evaluation cheaper on long-chain queries.
	CentralizedSeqRatio float64
	// AvgSitesUsed is the mean number of sites a query touched.
	AvgSitesUsed float64
}

// SpeedupResult is the full sweep.
type SpeedupResult struct {
	Points  []SpeedupPoint
	Queries int
}

// Format renders the sweep as a table.
func (r *SpeedupResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Speed-up of the disconnection set approach (simulated, %d queries per point)\n", r.Queries)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "fragments\tspeedup\tvs-centralized\t1-cpu-dsa-vs-centralized\tavg sites/query")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.1f\n",
			p.Fragments, p.Speedup, p.CentralizedRatio, p.CentralizedSeqRatio, p.AvgSitesUsed)
	}
	tw.Flush()
	return sb.String()
}

// Speedup measures the simulated speedup of the disconnection set
// approach in the paper's chain scenario (§2.1: "along a chain of
// length n, query processing is performed in parallel at each
// computer"): for each fragment count k it builds a transportation
// graph of k clusters linked in a path, fragments it per cluster, and
// runs shortest-path queries from the first cluster to the last, so
// every site holds one leg of the chain. The same cost model charges
// the parallel pipeline, the single-processor sum of the same legs, and
// the centralized evaluation of the unfragmented graph.
//
// perCluster controls the per-site workload; the paper's speed-up claim
// assumes fragments large enough that local computation dominates the
// (millisecond-scale) messages, so use ≥ 50 nodes per cluster.
func Speedup(perCluster, queries int, seed int64) (*SpeedupResult, error) {
	res := &SpeedupResult{Queries: queries}
	for _, frags := range []int{2, 4, 6, 8} {
		// Path-linked clusters, one fragment each.
		links := make([]gen.ClusterLink, 0, frags-1)
		for i := 0; i+1 < frags; i++ {
			links = append(links, gen.ClusterLink{A: i, B: i + 1, Edges: 2})
		}
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: frags,
			Cluster:  gen.Defaults(perCluster, seed),
			Links:    links,
		})
		if err != nil {
			return nil, err
		}
		fr, _, err := clusterFragmentation(g, frags, perCluster)
		if err != nil {
			return nil, err
		}
		store, err := dsa.Build(fr, dsa.Options{})
		if err != nil {
			return nil, err
		}
		cluster, err := sim.New(store, sim.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(frags)))
		first := store.Fragmentation().Fragment(0).Nodes()
		last := store.Fragmentation().Fragment(frags - 1).Nodes()
		var speedupSum, centralSum, centralSeqSum, sitesSum float64
		counted := 0
		for q := 0; q < queries; q++ {
			src := first[rng.Intn(len(first))]
			dst := last[rng.Intn(len(last))]
			rep, err := cluster.Run(src, dst, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			if !rep.Reachable || rep.ParallelElapsed == 0 || rep.SequentialElapsed == 0 {
				continue
			}
			central, err := cluster.CentralizedElapsed(src, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			speedupSum += rep.Speedup
			centralSum += float64(central) / float64(rep.ParallelElapsed)
			centralSeqSum += float64(central) / float64(rep.SequentialElapsed)
			sitesSum += float64(rep.SitesUsed)
			counted++
		}
		if counted == 0 {
			continue
		}
		res.Points = append(res.Points, SpeedupPoint{
			Fragments:           frags,
			Speedup:             speedupSum / float64(counted),
			CentralizedRatio:    centralSum / float64(counted),
			CentralizedSeqRatio: centralSeqSum / float64(counted),
			AvgSitesUsed:        sitesSum / float64(counted),
		})
	}
	return res, nil
}

// clusterFragmentation fragments a transportation graph along its
// cluster structure: intra-cluster edges go to the cluster's fragment
// and every inter-cluster edge to the lower-numbered endpoint's
// fragment, so adjacent clusters share their border nodes (non-empty
// disconnection sets) without a separate highway fragment. It returns
// the fragmentation and the cluster count actually used.
func clusterFragmentation(g *graph.Graph, clusters, perCluster int) (*fragment.Fragmentation, int, error) {
	clusterOf := func(id graph.NodeID) int { return int(id) / perCluster }
	sets := make([][]graph.Edge, clusters)
	for _, e := range g.Edges() {
		c := clusterOf(e.From)
		if d := clusterOf(e.To); d < c {
			c = d
		}
		sets[c] = append(sets[c], e)
	}
	var nonEmpty [][]graph.Edge
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	fr, err := fragment.New(g, nonEmpty)
	if err != nil {
		return nil, 0, err
	}
	return fr, len(nonEmpty), nil
}

// IterationsPoint is one row of the reduced-iterations experiment.
type IterationsPoint struct {
	// Fragments is the fragment count.
	Fragments int
	// GlobalIterations is the semi-naive iteration count of the
	// unfragmented source query (≈ graph diameter).
	GlobalIterations float64
	// MaxSiteIterations is the largest per-site iteration count in the
	// fragmented evaluation (≈ fragment diameter).
	MaxSiteIterations float64
}

// IterationsResult is the full sweep.
type IterationsResult struct {
	Points  []IterationsPoint
	Queries int
}

// Format renders the sweep.
func (r *IterationsResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fixpoint iterations: unfragmented vs per-fragment (%d queries per point)\n", r.Queries)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "fragments\tglobal iters\tmax site iters")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\n", p.Fragments, p.GlobalIterations, p.MaxSiteIterations)
	}
	tw.Flush()
	return sb.String()
}

// Iterations verifies §2.1's claim that fragmenting the graph reduces
// the number of fixpoint iterations per site: "the number of iterations
// required before reaching a fixpoint is given by the maximum diameter
// of the graph; if the graph is fragmented in n fragments G_i of equal
// size, the diameter of each subgraph is highly reduced."
func Iterations(clusters, perCluster, queries int, seed int64) (*IterationsResult, error) {
	res := &IterationsResult{Queries: queries}
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: clusters,
		Cluster:  gen.Defaults(perCluster, seed),
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := g.Nodes()
	queriesSrc := make([]graph.NodeID, queries)
	queriesDst := make([]graph.NodeID, queries)
	for q := range queriesSrc {
		queriesSrc[q] = nodes[rng.Intn(len(nodes))]
		queriesDst[q] = nodes[rng.Intn(len(nodes))]
	}
	for _, frags := range []int{1, 2, 4, 8} {
		lr, err := linear.Fragment(g, linear.Options{NumFragments: frags})
		if err != nil {
			return nil, err
		}
		store, err := dsa.Build(lr.Fragmentation, dsa.Options{})
		if err != nil {
			return nil, err
		}
		var globalSum, siteSum float64
		counted := 0
		for q := 0; q < queries; q++ {
			src, dst := queriesSrc[q], queriesDst[q]
			r, err := store.Query(src, dst, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			if !r.Reachable {
				continue
			}
			maxIter := 0
			for _, w := range r.PerSite {
				if w.Stats.Iterations > maxIter {
					maxIter = w.Stats.Iterations
				}
			}
			global, err := globalIterations(g, src)
			if err != nil {
				return nil, err
			}
			globalSum += float64(global)
			siteSum += float64(maxIter)
			counted++
		}
		if counted == 0 {
			continue
		}
		res.Points = append(res.Points, IterationsPoint{
			Fragments:         lr.Fragmentation.NumFragments(),
			GlobalIterations:  globalSum / float64(counted),
			MaxSiteIterations: siteSum / float64(counted),
		})
	}
	return res, nil
}

// globalIterations counts the semi-naive iterations of an unfragmented
// source-restricted query.
func globalIterations(g *graph.Graph, src graph.NodeID) (int, error) {
	// One-fragment store: the whole graph at one site.
	fr, err := fragment.New(g, [][]graph.Edge{g.Edges()})
	if err != nil {
		return 0, err
	}
	st, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		return 0, err
	}
	lr, err := st.ExecuteLeg(dsa.Leg{SiteID: 0, Entry: []graph.NodeID{src}, Exit: g.Nodes()}, dsa.EngineSemiNaive)
	if err != nil {
		return 0, err
	}
	return lr.Stats.Iterations, nil
}

// Fig8Result compares sweep axes on a wide grid (the paper's Fig. 8:
// two ways of starting a fragmentation).
type Fig8Result struct {
	// AlongDS / AcrossDS are the average disconnection set sizes when
	// sweeping along the long axis vs across it.
	AlongDS, AcrossDS float64
	Trials            int
}

// Format renders the comparison.
func (r *Fig8Result) Format() string {
	return fmt.Sprintf(
		"Fig. 8: linear fragmentation start choice on a wide graph (%d trials)\n"+
			"sweep along long axis:  DS = %.1f\nsweep across long axis: DS = %.1f\n",
		r.Trials, r.AlongDS, r.AcrossDS)
}

// Fig8 reproduces the Fig. 8 effect on wide grid graphs: starting the
// linear sweep on the short side (moving along the long axis) yields
// much smaller disconnection sets than starting on the long side.
func Fig8(trials int, seed int64) (*Fig8Result, error) {
	res := &Fig8Result{Trials: trials}
	const w, h = 24, 6
	for trial := 0; trial < trials; trial++ {
		g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.1, Seed: seed + int64(trial)})
		if err != nil {
			return nil, err
		}
		along, err := linear.Fragment(g, linear.Options{NumFragments: 3, Axis: linear.XAxis, StartCount: h})
		if err != nil {
			return nil, err
		}
		across, err := linear.Fragment(g, linear.Options{NumFragments: 3, Axis: linear.YAxis, StartCount: w})
		if err != nil {
			return nil, err
		}
		res.AlongDS += fragment.Measure(along.Fragmentation).DS
		res.AcrossDS += fragment.Measure(across.Fragmentation).DS
	}
	res.AlongDS /= float64(trials)
	res.AcrossDS /= float64(trials)
	return res, nil
}

// PHEPoint compares exhaustive chain enumeration against hierarchical
// routing on a clustered graph whose clusters are densely
// interconnected (complex fragmentation graph).
type PHEPoint struct {
	// Clusters is the cluster count.
	Clusters int
	// DSAChains / PHEChains are the average chains considered per
	// query.
	DSAChains, PHEChains float64
	// CostRatio is avg(PHE cost / DSA cost) over reachable queries — 1.0
	// means the hierarchical restriction lost nothing.
	CostRatio float64
}

// PHEResult is the sweep over cluster counts.
type PHEResult struct {
	Points  []PHEPoint
	Queries int
}

// Format renders the comparison.
func (r *PHEResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel hierarchical evaluation vs exhaustive chains (%d queries per point)\n", r.Queries)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "clusters\tDSA chains\tPHE chains\tPHE/DSA cost")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.3f\n", p.Clusters, p.DSAChains, p.PHEChains, p.CostRatio)
	}
	tw.Flush()
	return sb.String()
}

// PHE runs the §5 extension experiment. For each cluster count it
// builds one transportation graph with a fully linked cluster topology
// ("the fragmentation graph becomes very complex and contains many
// routes from one fragment to another") and deploys it twice:
//
//   - exhaustive DSA over the cluster fragmentation, whose
//     fragmentation graph is the complete graph on the clusters —
//     chain enumeration grows super-exponentially with the cluster
//     count;
//   - PHE over the highway fragmentation of the same graph (all
//     inter-cluster edges in one high-speed fragment), where routing is
//     constant-size.
//
// It reports the chains each strategy considered and the answer-quality
// ratio.
func PHE(queries int, seed int64) (*PHEResult, error) {
	res := &PHEResult{Queries: queries}
	for _, clusters := range []int{3, 4, 5} {
		per := 10
		var links []gen.ClusterLink
		for i := 0; i < clusters; i++ {
			for j := i + 1; j < clusters; j++ {
				links = append(links, gen.ClusterLink{A: i, B: j, Edges: 2})
			}
		}
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: clusters,
			Cluster:  gen.Defaults(per, seed+int64(clusters)),
			Links:    links,
		})
		if err != nil {
			return nil, err
		}
		// Exhaustive side: cluster fragmentation with cross edges kept
		// in the endpoint clusters — complete fragmentation graph.
		frFull, _, err := clusterFragmentation(g, clusters, per)
		if err != nil {
			return nil, err
		}
		full, err := dsa.Build(frFull, dsa.Options{})
		if err != nil {
			return nil, err
		}
		// Hierarchical side: highway fragmentation of the same graph.
		frStar, highway, err := phe.SplitByCluster(g, clusters, func(id graph.NodeID) int {
			return int(id) / per
		})
		if err != nil {
			return nil, err
		}
		starStore, err := dsa.Build(frStar, dsa.Options{})
		if err != nil {
			return nil, err
		}
		hier, err := phe.New(starStore, highway)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		nodes := g.Nodes()
		var dsaChains, pheChains, ratioSum float64
		counted := 0
		for q := 0; q < queries; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			fullRes, err := full.Query(src, dst, dsa.EngineDijkstra)
			if err != nil {
				return nil, err
			}
			h, err := hier.Query(src, dst, dsa.EngineDijkstra)
			if err != nil {
				return nil, err
			}
			if !fullRes.Reachable || !h.Reachable || fullRes.Cost == 0 {
				continue
			}
			dsaChains += float64(fullRes.ChainsConsidered)
			pheChains += float64(h.ChainsConsidered)
			ratioSum += h.Cost / fullRes.Cost
			counted++
		}
		if counted == 0 {
			continue
		}
		res.Points = append(res.Points, PHEPoint{
			Clusters:  clusters,
			DSAChains: dsaChains / float64(counted),
			PHEChains: pheChains / float64(counted),
			CostRatio: ratioSum / float64(counted),
		})
	}
	return res, nil
}
