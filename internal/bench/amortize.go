package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dsa"
	"repro/internal/gen"
	"repro/internal/sim"
)

// AmortizePoint is one graph size of the preprocessing-amortisation
// analysis.
type AmortizePoint struct {
	// Nodes and Edges describe the graph.
	Nodes, Edges int
	// PrepTime is the simulated cost of building the complementary
	// information: one full-graph single-source search per distinct
	// border node, charged under the same cost model as the queries.
	PrepTime time.Duration
	// PrepFacts is the number of complementary facts stored.
	PrepFacts int
	// SavingsPerQuery is the simulated time a parallel fragmented query
	// saves over the centralized evaluation, averaged over the batch.
	SavingsPerQuery time.Duration
	// BreakEvenQueries is PrepTime / SavingsPerQuery rounded up: the
	// number of queries after which fragmenting has paid for itself
	// under the simulated cost model. Zero when queries save nothing.
	BreakEvenQueries int
}

// AmortizeResult is the sweep.
type AmortizeResult struct {
	Points  []AmortizePoint
	Queries int
}

// Format renders the analysis.
func (r *AmortizeResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Preprocessing amortisation (§2.1: \"pre-processing costs may be amortized over many queries\"; %d queries per point)\n", r.Queries)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tedges\tprep time\tcomp facts\tsavings/query\tbreak-even queries")
	for _, p := range r.Points {
		be := "-"
		if p.BreakEvenQueries > 0 {
			be = fmt.Sprintf("%d", p.BreakEvenQueries)
		}
		fmt.Fprintf(tw, "%d\t%d\t%v\t%d\t%v\t%s\n",
			p.Nodes, p.Edges,
			p.PrepTime.Round(time.Microsecond), p.PrepFacts,
			p.SavingsPerQuery.Round(time.Microsecond), be)
	}
	tw.Flush()
	return sb.String()
}

// Amortize quantifies the paper's cost/benefit statement: the one-time
// complementary-information build against the per-query advantage of
// fragmented parallel evaluation, on chain transportation graphs of
// growing size.
func Amortize(queries int, seed int64) (*AmortizeResult, error) {
	res := &AmortizeResult{Queries: queries}
	for _, per := range []int{25, 50, 75} {
		const clusters = 4
		links := make([]gen.ClusterLink, 0, clusters-1)
		for i := 0; i+1 < clusters; i++ {
			links = append(links, gen.ClusterLink{A: i, B: i + 1, Edges: 2})
		}
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: clusters,
			Cluster:  gen.Defaults(per, seed),
			Links:    links,
		})
		if err != nil {
			return nil, err
		}
		fr, _, err := clusterFragmentation(g, clusters, per)
		if err != nil {
			return nil, err
		}
		store, err := dsa.Build(fr, dsa.Options{})
		if err != nil {
			return nil, err
		}
		model := sim.DefaultCostModel()
		// Simulated preprocessing charge: each of the DijkstraRuns
		// global searches settles every node and relaxes every edge.
		prepTuples := store.Preprocessing().DijkstraRuns * (g.NumNodes() + g.NumEdges())
		prepTime := time.Duration(float64(prepTuples) / model.TupleRate * float64(time.Second))
		cluster, err := sim.New(store, model)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(per)))
		first := fr.Fragment(0).Nodes()
		last := fr.Fragment(fr.NumFragments() - 1).Nodes()
		var savings time.Duration
		counted := 0
		for q := 0; q < queries; q++ {
			src := first[rng.Intn(len(first))]
			dst := last[rng.Intn(len(last))]
			rep, err := cluster.Run(src, dst, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			if !rep.Reachable {
				continue
			}
			central, err := cluster.CentralizedElapsed(src, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			if central > rep.ParallelElapsed {
				savings += central - rep.ParallelElapsed
			}
			counted++
		}
		p := AmortizePoint{
			Nodes:     g.NumNodes(),
			Edges:     g.NumEdges(),
			PrepTime:  prepTime,
			PrepFacts: store.Preprocessing().PairsStored,
		}
		if counted > 0 {
			p.SavingsPerQuery = savings / time.Duration(counted)
			if p.SavingsPerQuery > 0 {
				p.BreakEvenQueries = int((prepTime + p.SavingsPerQuery - 1) / p.SavingsPerQuery)
			}
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
