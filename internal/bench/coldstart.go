package bench

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// ColdstartResult compares the two boot paths at road-network scale:
// text (parse the graph and fragmentation, run the preprocessing
// searches) versus snapshot (mmap a TCSF image). The JSON field names
// are pinned by the CI coldstart gate.
type ColdstartResult struct {
	// Nodes and DirectedEdges describe the generated road network.
	Nodes         int `json:"nodes"`
	DirectedEdges int `json:"directed_edges"`
	// Fragments is the fragmentation size (one per city).
	Fragments int `json:"fragments"`
	// SnapshotBytes is the TCSF image size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// ParseSeconds is the text path's parse time (graph +
	// fragmentation files), BuildSeconds its preprocessing time.
	ParseSeconds float64 `json:"parse_seconds"`
	BuildSeconds float64 `json:"build_seconds"`
	// SaveSeconds is the one-time snapshot write.
	SaveSeconds float64 `json:"save_seconds"`
	// LoadSeconds is the snapshot path's full cold start.
	LoadSeconds float64 `json:"load_seconds"`
	// Speedup is (parse+build)/load — the claim the CI gate pins.
	Speedup float64 `json:"speedup"`
	// VerifiedQueries counts the random pairs whose connectivity and
	// cost matched exactly between the built and the loaded store.
	VerifiedQueries int `json:"verified_queries"`
}

// Format renders the comparison.
func (r *ColdstartResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cold start: text parse+build vs TCSF snapshot load\n")
	fmt.Fprintf(&sb, "road network: %d nodes, %d directed edges, %d fragments\n",
		r.Nodes, r.DirectedEdges, r.Fragments)
	fmt.Fprintf(&sb, "  text path:     parse %.3fs + build %.3fs = %.3fs\n",
		r.ParseSeconds, r.BuildSeconds, r.ParseSeconds+r.BuildSeconds)
	fmt.Fprintf(&sb, "  snapshot path: load %.3fs (image %.1f MiB, saved in %.3fs)\n",
		r.LoadSeconds, float64(r.SnapshotBytes)/(1<<20), r.SaveSeconds)
	fmt.Fprintf(&sb, "  speedup: %.1fx, %d query answers verified identical\n",
		r.Speedup, r.VerifiedQueries)
	return sb.String()
}

// Coldstart measures both boot paths on a generated road network of at
// least targetEdges directed edges, then verifies verifyQueries random
// connectivity+cost answers agree exactly between the freshly built
// and the snapshot-loaded store. Everything happens in a temp dir so
// the disk round trip is real (write text files, read them back).
func Coldstart(targetEdges, verifyQueries int, seed int64) (*ColdstartResult, error) {
	if targetEdges <= 0 {
		return nil, fmt.Errorf("coldstart: targetEdges must be positive, got %d", targetEdges)
	}
	dir, err := os.MkdirTemp("", "coldstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := gen.RoadConfigForEdges(targetEdges, seed)
	g, sets, err := gen.RoadNetwork(cfg)
	if err != nil {
		return nil, err
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		return nil, err
	}
	graphPath := filepath.Join(dir, "road.graph")
	fragPath := filepath.Join(dir, "road.frags")
	if err := writeText(graphPath, g.Write); err != nil {
		return nil, err
	}
	if err := writeText(fragPath, fr.Write); err != nil {
		return nil, err
	}
	res := &ColdstartResult{
		Nodes:         g.NumNodes(),
		DirectedEdges: g.NumEdges(),
		Fragments:     fr.NumFragments(),
	}

	// Text path: parse both files, then preprocess.
	start := time.Now()
	g2, err := readGraphFile(graphPath)
	if err != nil {
		return nil, err
	}
	fr2, err := readFragFile(g2, fragPath)
	if err != nil {
		return nil, err
	}
	res.ParseSeconds = time.Since(start).Seconds()
	start = time.Now()
	built, err := tcq.BuildStore(fr2, tcq.BuildOptions{})
	if err != nil {
		return nil, err
	}
	res.BuildSeconds = time.Since(start).Seconds()
	ds, err := tcq.OpenDataset(built)
	if err != nil {
		return nil, err
	}

	// Snapshot path: save once, cold-load.
	tcsPath := filepath.Join(dir, "road.tcs")
	start = time.Now()
	n, err := tcq.SaveSnapshot(tcsPath, ds.Snapshot())
	if err != nil {
		return nil, err
	}
	res.SaveSeconds = time.Since(start).Seconds()
	res.SnapshotBytes = n
	start = time.Now()
	cold, err := tcq.LoadSnapshot(tcsPath)
	if err != nil {
		return nil, err
	}
	res.LoadSeconds = time.Since(start).Seconds()
	if res.LoadSeconds > 0 {
		res.Speedup = (res.ParseSeconds + res.BuildSeconds) / res.LoadSeconds
	}

	// Oracle: random pairs must answer identically on both stores.
	rng := rand.New(rand.NewSource(seed))
	builtSt, coldSt := ds.Snapshot().Store(), cold.Snapshot().Store()
	for i := 0; i < verifyQueries; i++ {
		src := graph.NodeID(rng.Intn(res.Nodes))
		tgt := graph.NodeID(rng.Intn(res.Nodes))
		want, err := builtSt.Query(src, tgt, dsa.EngineDijkstra)
		if err != nil {
			return nil, err
		}
		got, err := coldSt.Query(src, tgt, dsa.EngineDijkstra)
		if err != nil {
			return nil, err
		}
		if want.Reachable != got.Reachable || want.Cost != got.Cost {
			return nil, fmt.Errorf("coldstart: answer drift on %d→%d: built (%v, %g), loaded (%v, %g)",
				src, tgt, want.Reachable, want.Cost, got.Reachable, got.Cost)
		}
		res.VerifiedQueries++
	}
	return res, nil
}

// writeText streams one text artifact to disk through a buffered
// writer, fsync included — the parse timing must read from a real
// file.
func writeText(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readGraphFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(bufio.NewReaderSize(f, 1<<20))
}

func readFragFile(g *graph.Graph, path string) (*fragment.Fragmentation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fragment.Read(g, bufio.NewReaderSize(f, 1<<20))
}
