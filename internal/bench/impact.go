package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/sim"
)

// ImpactRow relates one algorithm's fragmentation characteristics to
// the query performance it actually delivers.
type ImpactRow struct {
	// Algorithm is the fragmentation strategy.
	Algorithm string
	// DS, AF and Cycles are the averaged §2.2 characteristics.
	DS, AF float64
	Cycles int
	// MeanParallel is the mean simulated parallel query time.
	MeanParallel time.Duration
	// Utilization is the mean processor utilization during phase 1.
	Utilization float64
	// TuplesShipped is the mean assembly traffic per query.
	TuplesShipped float64
	// CompFacts is the complementary-information volume.
	CompFacts int
}

// ImpactResult is the §5 follow-up experiment: the paper closes with
// "these experiments [on the PRISMA machine] will show which of the
// characteristics identified here is of main importance when striving
// for an optimal parallel evaluation of transitive closure queries" —
// this is that experiment, on the simulated machine.
type ImpactResult struct {
	Rows    []ImpactRow
	Queries int
	Graphs  int
}

// Format renders the comparison.
func (r *ImpactResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Which characteristic matters? (§5 follow-up; %d graphs × %d queries, simulated cluster)\n", r.Graphs, r.Queries)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tDS\tAF\tcycles\tmean parallel\tutilization\ttuples shipped\tcomp facts")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%d\t%v\t%.2f\t%.1f\t%d\n",
			row.Algorithm, row.DS, row.AF, row.Cycles,
			row.MeanParallel.Round(time.Microsecond),
			row.Utilization, row.TuplesShipped, row.CompFacts)
	}
	tw.Flush()
	sb.WriteString("small DS → little complementary information and assembly traffic;\n")
	sb.WriteString("small AF → high utilization; both shape the parallel time.\n")
	return sb.String()
}

// Impact runs the characteristic-impact experiment: the same
// transportation graphs fragmented by each §3 algorithm, the same query
// batch on the simulated cluster, performance side by side with the
// characteristics that are supposed to predict it.
func Impact(graphs, queries int, seed int64) (*ImpactResult, error) {
	res := &ImpactResult{Queries: queries, Graphs: graphs}
	algs := []Algorithm{
		DistributedCenters(4),
		BondEnergy(3, 0, 8),
		Linear(4, 1),
	}
	type acc struct {
		ds, af, util, shipped float64
		cycles, comp, counted int
		parallel              time.Duration
	}
	accs := make([]acc, len(algs))
	for gi := 0; gi < graphs; gi++ {
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 4,
			Cluster:  gen.Defaults(20, seed+int64(gi)*131),
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(gi)))
		nodes := g.Nodes()
		batch := make([]sim.QueryPair, queries)
		for q := range batch {
			batch[q] = sim.QueryPair{
				Source: nodes[rng.Intn(len(nodes))],
				Target: nodes[rng.Intn(len(nodes))],
			}
		}
		for ai, alg := range algs {
			fr, err := alg.Run(g, seed+int64(gi))
			if err != nil {
				return nil, fmt.Errorf("bench: impact: %s: %v", alg.Name, err)
			}
			c := fragment.Measure(fr)
			store, err := dsa.Build(fr, dsa.Options{MaxChains: 64})
			if err != nil {
				return nil, err
			}
			cluster, err := sim.New(store, sim.DefaultCostModel())
			if err != nil {
				return nil, err
			}
			rep, err := cluster.RunBatch(batch, dsa.EngineSemiNaive)
			if err != nil {
				return nil, err
			}
			a := &accs[ai]
			a.ds += c.DS
			a.af += c.AF
			a.cycles += c.Cycles
			a.comp += store.Preprocessing().PairsStored
			if rep.Answered > 0 {
				a.parallel += rep.TotalParallel / time.Duration(rep.Answered)
				a.util += rep.Utilization
				a.shipped += float64(rep.TuplesShipped) / float64(rep.Answered)
				a.counted++
			}
		}
	}
	for ai, alg := range algs {
		a := accs[ai]
		row := ImpactRow{
			Algorithm: alg.Name,
			DS:        a.ds / float64(graphs),
			AF:        a.af / float64(graphs),
			Cycles:    a.cycles / graphs,
			CompFacts: a.comp / graphs,
		}
		if a.counted > 0 {
			row.MeanParallel = a.parallel / time.Duration(a.counted)
			row.Utilization = a.util / float64(a.counted)
			row.TuplesShipped = a.shipped / float64(a.counted)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
