package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/kconn"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
)

// KConnPoint is one graph size of the rejected-approach cost
// comparison.
type KConnPoint struct {
	// Nodes is the graph size.
	Nodes int
	// KConn is the time of the k-connectivity relevant-node analysis.
	KConn time.Duration
	// Center, BEA, Linear are the times of the three §3 algorithms on
	// the same graph.
	Center, BEA, Linear time.Duration
}

// KConnResult is the sweep.
type KConnResult struct {
	Points []KConnPoint
}

// Format renders the comparison.
func (r *KConnResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Cost of the rejected k-connectivity analysis vs the §3 algorithms\n")
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tk-connectivity\tcenter\tbond-energy\tlinear")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\n",
			p.Nodes,
			p.KConn.Round(time.Millisecond),
			p.Center.Round(time.Millisecond),
			p.BEA.Round(time.Millisecond),
			p.Linear.Round(time.Millisecond))
	}
	tw.Flush()
	return sb.String()
}

// KConnCost substantiates §3's dismissal of the graph-theoretic
// approach: "algorithms like this are very computation intensive, as
// all possible combinations of nodes and paths have to be taken into
// account." RelevantNodes costs O(n) removals × O(n²) pairs × one max
// flow each, versus the near-linear growth algorithms.
func KConnCost(seed int64) (*KConnResult, error) {
	res := &KConnResult{}
	for _, per := range []int{6, 9, 12} {
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2,
			Cluster:  gen.Defaults(per, seed),
		})
		if err != nil {
			return nil, err
		}
		p := KConnPoint{Nodes: g.NumNodes()}

		t0 := time.Now()
		kconn.RelevantNodes(g)
		p.KConn = time.Since(t0)

		t0 = time.Now()
		if _, err := center.Fragment(g, center.Options{NumFragments: 2, Distributed: true}); err != nil {
			return nil, err
		}
		p.Center = time.Since(t0)

		t0 = time.Now()
		if _, err := bea.Fragment(g, bea.Options{Threshold: 3}); err != nil {
			return nil, err
		}
		p.BEA = time.Since(t0)

		t0 = time.Now()
		if _, err := linear.Fragment(g, linear.Options{NumFragments: 2}); err != nil {
			return nil, err
		}
		p.Linear = time.Since(t0)

		res.Points = append(res.Points, p)
	}
	return res, nil
}
