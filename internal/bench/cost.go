package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// CostPoint is one row of the cost-engine shoot-out: both engines
// answer the same entry-set-restricted shortest-path cost subquery on
// the same grid graph — the exact shape of a fragment leg of the
// paper's headline cost workload.
type CostPoint struct {
	// Width and Height are the grid dimensions.
	Width, Height int
	// Nodes and Edges describe the graph.
	Nodes, Edges int
	// SemiNaive and Dense are the measured wall-clock times.
	SemiNaive, Dense time.Duration
	// SemiNaiveStats and DenseStats report each engine's own work units
	// (relational derived tuples vs. successful relaxations).
	SemiNaiveStats, DenseStats tc.Stats
	// Agree reports whether the two engines produced the same (src,
	// dst) pairs with costs equal to 1e-9 (always checked; a
	// disagreement is a bug).
	Agree bool
}

// Speedup is the semi-naive / dense wall-clock ratio.
func (p CostPoint) Speedup() float64 {
	if p.Dense <= 0 {
		return 0
	}
	return float64(p.SemiNaive) / float64(p.Dense)
}

// CostResult is the full cost-engine sweep.
type CostResult struct {
	Points  []CostPoint
	Sources int
}

// Format renders the sweep as a table.
func (r *CostResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cost-query engines on grid graphs (%d-source restricted shortest-path cost)\n", r.Sources)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "grid\tnodes\tedges\tseminaive\tdense\tspeedup\titer-sn\titer-dn\tagree")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%dx%d\t%d\t%d\t%v\t%v\t%.1fx\t%d\t%d\t%v\n",
			p.Width, p.Height, p.Nodes, p.Edges,
			p.SemiNaive.Round(time.Microsecond), p.Dense.Round(time.Microsecond),
			p.Speedup(), p.SemiNaiveStats.Iterations, p.DenseStats.Iterations, p.Agree)
	}
	tw.Flush()
	return sb.String()
}

// Cost measures the cost-capable per-leg engines against each other on
// grid graphs of increasing size: the semi-naive relational min-cost
// fixpoint with the entry set pushed as a selection (tc.ShortestFrom,
// what dsa.EngineSemiNaive runs per leg) versus the dense CSR +
// level-synchronous Bellman-Ford kernel (tc.DenseCostFrom,
// dsa.EngineDense). The companion of Engines for the cost workload the
// paper's introduction opens with ("the cost of the shortest path
// between A and B").
func Cost(sources int, seed int64) (*CostResult, error) {
	if sources <= 0 {
		sources = 2
	}
	res := &CostResult{Sources: sources}
	for _, dim := range [][2]int{{16, 16}, {32, 32}, {64, 64}} {
		g, err := gen.Grid(gen.GridConfig{Width: dim[0], Height: dim[1], DiagonalProb: 0.1, Seed: seed})
		if err != nil {
			return nil, err
		}
		rel := relation.FromGraph(g)
		nodes := g.Nodes()
		rng := rand.New(rand.NewSource(seed + int64(dim[0])))
		srcs := make([]graph.NodeID, sources)
		for i := range srcs {
			srcs[i] = nodes[rng.Intn(len(nodes))]
		}

		t0 := time.Now()
		snRel, snStats, err := tc.ShortestFrom(rel, srcs)
		if err != nil {
			return nil, err
		}
		snTook := time.Since(t0)

		t1 := time.Now()
		dnRel, dnStats, err := tc.DenseCostFrom(rel, srcs)
		if err != nil {
			return nil, err
		}
		dnTook := time.Since(t1)

		res.Points = append(res.Points, CostPoint{
			Width: dim[0], Height: dim[1],
			Nodes: g.NumNodes(), Edges: g.NumEdges(),
			SemiNaive: snTook, Dense: dnTook,
			SemiNaiveStats: snStats, DenseStats: dnStats,
			Agree: sameCosts(snRel, dnRel),
		})
	}
	return res, nil
}

// sameCosts reports whether two (src, dst, cost) relations hold the
// same pair set with costs equal to within 1e-9 (float path sums can
// differ in the last bits between equally cheap paths).
func sameCosts(a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	costs := make(map[string]float64, a.Len())
	var buf []byte
	for _, t := range a.Tuples() {
		buf = relation.Tuple{t[0], t[1]}.AppendKey(buf[:0])
		costs[string(buf)] = t[2].(float64)
	}
	for _, t := range b.Tuples() {
		buf = relation.Tuple{t[0], t[1]}.AppendKey(buf[:0])
		c, ok := costs[string(buf)]
		if !ok || math.Abs(c-t[2].(float64)) > 1e-9 {
			return false
		}
	}
	return true
}
