package bench

import "testing"

func TestColdstartSmallSmoke(t *testing.T) {
	r, err := Coldstart(5000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DirectedEdges < 5000 || r.VerifiedQueries != 10 {
		t.Fatalf("%+v", r)
	}
	t.Log(r.Format())
}
