package bench

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/server"
)

// ServingPoint is one row of the serving experiment: a load-generator
// pass against a live server, cold (empty leg cache) or warm (the same
// workload replayed).
type ServingPoint struct {
	// Engine is the per-request engine.
	Engine string
	// Pass labels the row: "cold" or "warm".
	Pass string
	// Requests and Parallel describe the load.
	Requests, Parallel int
	// QPS is the measured throughput, P50/P95/P99 the latency
	// percentiles.
	QPS           float64
	P50, P95, P99 time.Duration
	// HitRate is the leg-cache hit rate of the pass.
	HitRate float64
	// Errors and Mismatches count failures (both must be zero).
	Errors, Mismatches int
}

// ServingResult is the whole serving experiment.
type ServingResult struct {
	// Grid and Fragments describe the deployment.
	Grid      string
	Fragments int
	Points    []ServingPoint
}

// Format renders the experiment as a table.
func (r *ServingResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Concurrent serving on a %s grid, %d fragments (leg-result cache cold vs warm)\n",
		r.Grid, r.Fragments)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tpass\treq\tworkers\tQPS\tp50\tp95\tp99\thit rate\terrors")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%v\t%v\t%v\t%.1f%%\t%d\n",
			p.Engine, p.Pass, p.Requests, p.Parallel, p.QPS,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
			p.P99.Round(time.Microsecond), 100*p.HitRate, p.Errors+p.Mismatches)
	}
	tw.Flush()
	return sb.String()
}

// Serving measures the query-serving layer the way the load generator
// does in CI, but in-process: deploy a grid store behind the HTTP
// server, fire a parallel random workload with a cold leg cache, then
// replay the identical workload warm. The warm pass quantifies what
// cross-query memoization of per-site searches buys — the serving-layer
// analogue of the paper's amortization argument for precomputed
// complementary information.
func Serving(queries int, seed int64) (*ServingResult, error) {
	const (
		w, h      = 32, 32
		fragments = 4
		parallel  = 8
	)
	if queries <= 0 {
		queries = 50
	}
	res := &ServingResult{Grid: fmt.Sprintf("%dx%d", w, h), Fragments: fragments}
	for _, engName := range []string{"dijkstra", "seminaive"} {
		g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.1, Seed: seed})
		if err != nil {
			return nil, err
		}
		fr, err := linear.Fragment(g, linear.Options{NumFragments: fragments})
		if err != nil {
			return nil, err
		}
		st, err := dsa.Build(fr.Fragmentation, dsa.Options{})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(st, server.Config{CacheCapacity: 4096})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		for _, pass := range []string{"cold", "warm"} {
			rep, err := server.RunLoad(server.LoadConfig{
				BaseURL:         ts.URL,
				Requests:        queries,
				Parallel:        parallel,
				Nodes:           w * h,
				Engine:          engName,
				Seed:            seed,
				ExpectReachable: true,
			})
			if err != nil {
				ts.Close()
				srv.Close()
				return nil, fmt.Errorf("serving %s %s: %v", engName, pass, err)
			}
			res.Points = append(res.Points, ServingPoint{
				Engine:     engName,
				Pass:       pass,
				Requests:   rep.Requests,
				Parallel:   parallel,
				QPS:        rep.QPS,
				P50:        rep.P50,
				P95:        rep.P95,
				P99:        rep.P99,
				HitRate:    rep.HitRate,
				Errors:     rep.Errors,
				Mismatches: rep.Mismatches,
			})
		}
		ts.Close()
		srv.Close()
	}
	return res, nil
}
