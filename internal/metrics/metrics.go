// Package metrics is a zero-dependency Prometheus exposition-format
// exporter for the serving layer: counters, gauges and fixed-bucket
// histograms whose hot-path updates are single atomic operations, a
// registry that renders them in the text format Prometheus scrapes
// (https://prometheus.io/docs/instrumenting/exposition_formats/), and
// an http.Handler for GET /metrics.
//
// The package exists so the server can be instrumented without pulling
// client_golang (the container bakes no new dependencies): the subset
// implemented here — counter, gauge, histogram, const labels via the
// *Vec families, callback collectors for values owned by another
// structure — is exactly what the tcserver dashboards and the CI SLO
// gates consume.
//
// Hot-path cost: Counter.Inc and Gauge.Inc are one atomic add;
// Histogram.Observe is a branch-free bucket walk plus two atomic adds
// and one CAS loop for the float sum. Vec lookups take a read lock on
// the family's child map; instrument sites that run per-request should
// resolve their child once (With) and reuse it when the label values
// are static.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the TYPE line vocabulary of the exposition format.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; counters only
// go up — use a Gauge for values that fall).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores float64 bits
// atomically so Set can carry non-integral values (ratios, seconds).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative in
// the exposition output (le="x" counts observations <= x), but stored
// per-bucket so Observe touches exactly one bucket counter.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    Gauge // float64 CAS accumulator
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the owning bucket — the same estimate
// Prometheus's histogram_quantile computes, so the CI gates and the
// dashboards agree. Returns 0 with no observations; observations above
// the last finite bound clamp to that bound (the +Inf bucket has no
// upper edge to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket: clamp
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets is the default latency bucket layout in seconds: 100µs to
// 10s, roughly logarithmic — wide enough for a cache-hit point query
// and a cross-fragment epoch rebuild on the same axis.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// family is one registered metric name: TYPE, HELP, the label schema,
// and the children keyed by their label values.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu       sync.RWMutex
	children map[string]*child

	// fn, when set, makes the family a callback collector: its single
	// unlabeled sample is read at scrape time from a value owned
	// elsewhere (a cache's counters, a dataset's epoch).
	fn func() float64

	buckets []float64 // histogram families only
}

// child is one labeled instance of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds the registered families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate or invalid name —
// metric registration is init-time wiring, where a loud failure beats
// a silently shadowed series.
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		children: make(map[string]*child),
		buckets:  buckets,
		fn:       fn,
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil, nil)
	return f.getOrCreate(nil).counter
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil, nil)
	return f.getOrCreate(nil).gauge
}

// Histogram registers and returns an unlabeled histogram over the
// given ascending bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil, checkBuckets(name, buckets), nil)
	return f.getOrCreate(nil).hist
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for monotonic values owned by another structure.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil, fn)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs labels", name))
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: GaugeVec %q needs labels", name))
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil, nil)}
}

// HistogramVec registers a labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs labels", name))
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, checkBuckets(name, buckets), nil)}
}

// checkBuckets validates ascending bounds, defaulting nil.
func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending at %d", name, i))
		}
	}
	return buckets
}

// CounterVec is a counter family addressed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on
// first use). The value count must match the registered label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.getOrCreate(labelValues).counter
}

// GaugeVec is a gauge family addressed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.getOrCreate(labelValues).gauge
}

// HistogramVec is a histogram family addressed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.getOrCreate(labelValues).hist
}

// getOrCreate resolves one labeled child, creating it under the write
// lock on first use. The fast path is a read-locked map hit.
func (f *family) getOrCreate(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case typeCounter:
		c.counter = &Counter{}
	case typeGauge:
		c.gauge = &Gauge{}
	case typeHistogram:
		c.hist = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c
}

// WritePrometheus renders every registered family in exposition text
// format, families in registration order, children sorted by label
// values for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family.
func (f *family) write(w io.Writer) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return err
	}
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	for _, c := range children {
		if err := f.writeChild(w, c); err != nil {
			return err
		}
	}
	return nil
}

// writeChild renders one labeled instance.
func (f *family) writeChild(w io.Writer, c *child) error {
	base := labelString(f.labels, c.labelValues, "", "")
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, c.counter.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatValue(c.gauge.Value()))
		return err
	case typeHistogram:
		h := c.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := labelString(f.labels, c.labelValues, "le", formatValue(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		le := labelString(f.labels, c.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, h.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...}, optionally appending one extra
// label (the histogram's le), or "" with no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraName, extraValue)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a float sample the way Prometheus expects:
// integral values without an exponent, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP string per the format (backslash and
// newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
// %q in labelString adds the quotes and escapes " and \, so only the
// newline needs mapping to the format's \n.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", "\\n")
}

// Snapshot flattens every current sample into a name{labels} -> value
// map: the /stats embedding and the machine-readable half of the
// tcload SLO report. Histograms contribute their _sum and _count plus
// per-quantile estimates under synthetic {q="..."} series.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		f.mu.RLock()
		for _, c := range f.children {
			base := f.name + labelString(f.labels, c.labelValues, "", "")
			switch f.typ {
			case typeCounter:
				out[base] = float64(c.counter.Value())
			case typeGauge:
				out[base] = c.gauge.Value()
			case typeHistogram:
				out[f.name+"_sum"+labelString(f.labels, c.labelValues, "", "")] = c.hist.Sum()
				out[f.name+"_count"+labelString(f.labels, c.labelValues, "", "")] = float64(c.hist.Count())
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
