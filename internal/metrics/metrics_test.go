package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket (le is <=), one just
// above lands in the next, and values above the last finite bound go
// to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.0000001, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // (≤1)=0.5,1  (1,2]=1.0..,2  (2,5]=5  (>5)=5.0..,100
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: got %d observations, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 5 + 5.0000001 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}

	// Cumulative rendering: le="2" must count everything ≤ 2.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 4`,
		`h_bucket{le="5"} 5`,
		`h_bucket{le="+Inf"} 7`,
		`h_count 7`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestHistogramQuantile checks the interpolated estimate against a
// known distribution and the +Inf clamp.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in (0, 10]
	}
	// Rank 50 of 100 inside the (0,10] bucket → 10 * 0.5.
	if q := h.Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Errorf("p50 = %v, want 5", q)
	}
	h.Observe(1000) // +Inf bucket
	if q := h.Quantile(1); q != 40 {
		t.Errorf("p100 with overflow = %v, want clamp to 40", q)
	}
	empty := r.Histogram("e", "", []float64{1})
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

// TestConcurrentIncrements hammers every metric kind from many
// goroutines; run under -race this is the data-race proof, and the
// totals prove no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.5, 1})
	cv := r.CounterVec("cv", "", "worker")
	hv := r.HistogramVec("hv", "", []float64{1, 2}, "mode")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := []string{"cost", "connectivity"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.75)
				cv.With("w").Inc()
				hv.With(mode).Observe(1.5)
				// Interleave scrapes with the increments.
				if i%1000 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if math.Abs(h.Sum()-0.75*total) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), 0.75*total)
	}
	if cv.With("w").Value() != total {
		t.Errorf("countervec = %d, want %d", cv.With("w").Value(), total)
	}
	if n := hv.With("cost").Count() + hv.With("connectivity").Count(); n != total {
		t.Errorf("histogramvec count = %d, want %d", n, total)
	}
}

// TestExpositionGolden freezes the full rendered format — HELP/TYPE
// lines, label rendering, sorted children, func collectors, histogram
// suffixes — against a golden string.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tc_requests_total", "Requests served.")
	c.Add(3)
	g := r.Gauge("tc_inflight", "In-flight requests.")
	g.Set(2.5)
	cv := r.CounterVec("tc_errors_total", "Errors by endpoint.", "endpoint")
	cv.With("/v1/query").Add(1)
	cv.With("/stats").Add(4)
	r.GaugeFunc("tc_epoch", "Current epoch.", func() float64 { return 7 })
	h := r.Histogram("tc_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP tc_requests_total Requests served.
# TYPE tc_requests_total counter
tc_requests_total 3
# HELP tc_inflight In-flight requests.
# TYPE tc_inflight gauge
tc_inflight 2.5
# HELP tc_errors_total Errors by endpoint.
# TYPE tc_errors_total counter
tc_errors_total{endpoint="/stats"} 4
tc_errors_total{endpoint="/v1/query"} 1
# HELP tc_epoch Current epoch.
# TYPE tc_epoch gauge
tc_epoch 7
# HELP tc_lat_seconds Latency.
# TYPE tc_lat_seconds histogram
tc_lat_seconds_bucket{le="0.1"} 1
tc_lat_seconds_bucket{le="1"} 2
tc_lat_seconds_bucket{le="+Inf"} 3
tc_lat_seconds_sum 5.55
tc_lat_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("exposition drifted.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestParseRoundTrip feeds WritePrometheus output to ParseText and
// checks the samples survive, including labeled and histogram series.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help with \\ backslash").Add(42)
	r.CounterVec("b_total", "", "engine", "mode").With("dense", "cost").Add(9)
	h := r.Histogram("lat", "", []float64{0.5})
	h.Observe(0.25)
	g := r.Gauge("inf_gauge", "")
	g.Set(math.Inf(1))

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText on our own output: %v", err)
	}
	checks := map[string]float64{
		"a_total":                             42,
		`b_total{engine="dense",mode="cost"}`: 9,
		`lat_bucket{le="0.5"}`:                1,
		`lat_bucket{le="+Inf"}`:               1,
		"lat_sum":                             0.25,
		"lat_count":                           1,
	}
	for k, want := range checks {
		if v, ok := got[k]; !ok || v != want {
			t.Errorf("parsed[%q] = %v (present %v), want %v", k, v, ok, want)
		}
	}
	if !math.IsInf(got["inf_gauge"], 1) {
		t.Errorf("inf_gauge = %v, want +Inf", got["inf_gauge"])
	}
}

// TestParseRejectsMalformed: the parser is the CI well-formedness
// check, so it must reject broken lines rather than skip them.
func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"bad name 1\n",
		`unterminated{x="y 1` + "\n",
		`unquoted{x=y} 1` + "\n",
		"name 1 2 3\n",
		"name notanumber\n",
		"",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
}

// TestSnapshot checks the flattened map the /stats embedding uses.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(5)
	r.GaugeFunc("fn_gauge", "", func() float64 { return 1.25 })
	h := r.HistogramVec("lat", "", []float64{1}, "mode")
	h.With("cost").Observe(0.5)

	snap := r.Snapshot()
	if snap["c_total"] != 5 {
		t.Errorf("c_total = %v, want 5", snap["c_total"])
	}
	if snap["fn_gauge"] != 1.25 {
		t.Errorf("fn_gauge = %v, want 1.25", snap["fn_gauge"])
	}
	if snap[`lat_count{mode="cost"}`] != 1 || snap[`lat_sum{mode="cost"}`] != 0.5 {
		t.Errorf("histogram snapshot = %v", snap)
	}
}

// TestDuplicateRegistrationPanics: shadowed series fail loudly.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "")
}
