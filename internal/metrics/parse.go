package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseText parses Prometheus exposition text into a flat
// name{labels} -> value map, the inverse of WritePrometheus for
// scalar samples. It is the scrape half of the tcload SLO report (and
// the CI check that /metrics stays well-formed): a line that is
// neither a comment nor a valid sample is an error.
//
// Label sets are preserved verbatim (including the histogram series'
// le="..."), so callers look samples up by the exact rendered key,
// e.g. `tc_legcache_hits_total` or
// `tc_query_duration_seconds_count{engine="dense",mode="cost"}`.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %v", lineNo, err)
		}
		out[key] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("metrics: no samples")
	}
	return out, nil
}

// parseSample splits one sample line into its series key and value.
// The format is NAME[{labels}] VALUE [TIMESTAMP]; we reject anything
// that deviates, because a malformed exporter is exactly what the CI
// check exists to catch.
func parseSample(line string) (string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd <= 0 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	if !validName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	key := name
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels := rest[:end+1]
		if err := checkLabels(labels); err != nil {
			return "", 0, fmt.Errorf("%v in %q", err, line)
		}
		key = name + labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("want 'value [timestamp]' after series in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return key, v, nil
}

// checkLabels validates a {k="v",...} rendering without unescaping —
// the keys keep the wire form.
func checkLabels(s string) error {
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	if body == "" {
		return nil
	}
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq <= 0 || !validName(body[:eq]) {
			return fmt.Errorf("bad label name")
		}
		body = body[eq+1:]
		if len(body) < 2 || body[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		// Find the closing quote, honouring escapes.
		i := 1
		for i < len(body) {
			if body[i] == '\\' {
				i += 2
				continue
			}
			if body[i] == '"' {
				break
			}
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated label value")
		}
		body = body[i+1:]
		if body == "" {
			return nil
		}
		if body[0] != ',' {
			return fmt.Errorf("bad label separator")
		}
		body = body[1:]
	}
	return nil
}

// parseValue parses a sample value including the format's infinity
// spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
