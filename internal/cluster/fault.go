package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Deterministic fault injection for the chaos rig and tests: a
// FaultTransport decorates any Transport with a scripted sequence of
// per-RPC behaviors — no wall-clock randomness, so a given script
// produces the same failure pattern on every run. The tcserver
// -fault-script flag wires it around the HTTP transport; tests wrap
// in-process transports directly.

// FaultAction is one scripted behavior applied to an RPC.
type FaultAction int

const (
	// FaultOK passes the RPC through untouched.
	FaultOK FaultAction = iota
	// FaultDown fails the RPC immediately with ErrPeerDown, without
	// calling the underlying transport.
	FaultDown
	// FaultTimeout fails the RPC with ErrPeerTimeout after waiting out
	// the RPC context (deterministic: the ctx deadline, not a sleep,
	// decides when).
	FaultTimeout
	// FaultSlow delays the RPC by the step's Delay, then passes it
	// through (fails with ErrPeerTimeout first if the ctx expires).
	FaultSlow
)

// FaultStep is one entry of a peer's fault script.
type FaultStep struct {
	// Action is the behavior applied while this step is active.
	Action FaultAction
	// Count is how many RPCs consume this step; < 0 means forever.
	Count int
	// Delay is the added latency for FaultSlow steps.
	Delay time.Duration
}

// FaultScript maps peer IDs to their step sequences. A peer exhausts
// its steps in order; RPCs beyond the last step pass through clean.
type FaultScript map[string][]FaultStep

// ParseFaultScript parses the -fault-script grammar:
//
//	peer:step[,step...][;peer:step[,step...]]...
//
// where each step is one of ok | down | timeout | slow=DURATION,
// optionally suffixed *N (repeat N times) or * (repeat forever), e.g.
//
//	"b:down*8,ok" — peer b: first 8 RPCs fail as down, then healthy
//	"c:slow=100ms*2,timeout,ok" — two slow RPCs, one timeout, then healthy
func ParseFaultScript(s string) (FaultScript, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty fault script: %w", ErrBadConfig)
	}
	script := FaultScript{}
	for _, peerPart := range strings.Split(s, ";") {
		peerPart = strings.TrimSpace(peerPart)
		if peerPart == "" {
			continue
		}
		peer, stepsStr, ok := strings.Cut(peerPart, ":")
		peer = strings.TrimSpace(peer)
		if !ok || peer == "" {
			return nil, fmt.Errorf("cluster: bad fault script entry %q (want peer:steps): %w", peerPart, ErrBadConfig)
		}
		if _, dup := script[peer]; dup {
			return nil, fmt.Errorf("cluster: duplicate fault script peer %q: %w", peer, ErrBadConfig)
		}
		var steps []FaultStep
		for _, stepStr := range strings.Split(stepsStr, ",") {
			stepStr = strings.TrimSpace(stepStr)
			if stepStr == "" {
				continue
			}
			step, err := parseFaultStep(stepStr)
			if err != nil {
				return nil, err
			}
			steps = append(steps, step)
		}
		if len(steps) == 0 {
			return nil, fmt.Errorf("cluster: fault script peer %q has no steps: %w", peer, ErrBadConfig)
		}
		script[peer] = steps
	}
	if len(script) == 0 {
		return nil, fmt.Errorf("cluster: empty fault script: %w", ErrBadConfig)
	}
	return script, nil
}

func parseFaultStep(s string) (FaultStep, error) {
	step := FaultStep{Count: 1}
	if base, rep, ok := strings.Cut(s, "*"); ok {
		s = strings.TrimSpace(base)
		rep = strings.TrimSpace(rep)
		if rep == "" {
			step.Count = -1
		} else {
			n, err := strconv.Atoi(rep)
			if err != nil || n <= 0 {
				return FaultStep{}, fmt.Errorf("cluster: bad fault step repeat %q (want *N or *): %w", rep, ErrBadConfig)
			}
			step.Count = n
		}
	}
	switch {
	case s == "ok":
		step.Action = FaultOK
	case s == "down":
		step.Action = FaultDown
	case s == "timeout":
		step.Action = FaultTimeout
	case strings.HasPrefix(s, "slow="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "slow="))
		if err != nil || d < 0 {
			return FaultStep{}, fmt.Errorf("cluster: bad fault step delay %q: %w", s, ErrBadConfig)
		}
		step.Action = FaultSlow
		step.Delay = d
	default:
		return FaultStep{}, fmt.Errorf("cluster: bad fault step %q (want ok|down|timeout|slow=DUR): %w", s, ErrBadConfig)
	}
	return step, nil
}

// FaultTransport wraps a Transport, consuming one scripted step per
// RPC (leg and update alike). Safe for concurrent use; concurrent RPCs
// consume steps in arrival order under a mutex.
type FaultTransport struct {
	inner Transport
	peer  string

	mu    sync.Mutex
	steps []FaultStep
}

// NewFaultTransport wraps inner with peer's step sequence from script.
// If the script has no entry for peer the transport passes through
// untouched (zero overhead beyond a nil check).
func NewFaultTransport(inner Transport, peer string, script FaultScript) *FaultTransport {
	return &FaultTransport{inner: inner, peer: peer, steps: append([]FaultStep(nil), script[peer]...)}
}

// next consumes and returns the current step, or an implicit FaultOK
// once the script is exhausted.
func (f *FaultTransport) next() FaultStep {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.steps) > 0 {
		s := &f.steps[0]
		if s.Count < 0 {
			return *s
		}
		if s.Count > 0 {
			s.Count--
			return *s
		}
		f.steps = f.steps[1:]
	}
	return FaultStep{Action: FaultOK}
}

// apply enforces one step before an RPC, returning a non-nil error if
// the RPC must fail without reaching the inner transport.
func (f *FaultTransport) apply(ctx context.Context, step FaultStep) error {
	switch step.Action {
	case FaultDown:
		return fmt.Errorf("cluster: %w: injected fault (peer %s)", ErrPeerDown, f.peer)
	case FaultTimeout:
		<-ctx.Done()
		return fmt.Errorf("cluster: %w: injected fault (peer %s)", ErrPeerTimeout, f.peer)
	case FaultSlow:
		if err := sleepCtx(ctx, step.Delay); err != nil {
			return fmt.Errorf("cluster: %w: injected slow fault outlived deadline (peer %s)", ErrPeerTimeout, f.peer)
		}
	}
	return nil
}

// ExecuteLeg implements Transport.
func (f *FaultTransport) ExecuteLeg(ctx context.Context, req *LegRequest) (*LegResponse, error) {
	if err := f.apply(ctx, f.next()); err != nil {
		return nil, err
	}
	return f.inner.ExecuteLeg(ctx, req)
}

// ForwardUpdate implements Transport.
func (f *FaultTransport) ForwardUpdate(ctx context.Context, req *UpdateRequest) (*UpdateAck, error) {
	if err := f.apply(ctx, f.next()); err != nil {
		return nil, err
	}
	return f.inner.ForwardUpdate(ctx, req)
}
