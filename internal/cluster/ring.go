package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the membership: every node
// contributes VirtualNodes points, and a site is owned by the first
// point clockwise of the site's own hash. The construction is fully
// deterministic in the membership (ID set + vnode count), so every
// node of the cluster computes the identical site→node table without
// any coordination traffic — the property the whole routing layer
// rests on. Consistency buys the usual bound: adding or removing one
// node remaps only the sites whose arcs it held, so peer leg caches
// keep most of their working set across membership edits.
type ring struct {
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a hash position and the index of the
// owning node in the coordinator's sorted membership.
type ringPoint struct {
	hash uint64
	node int
}

func newRing(nodes []Node, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for i, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n.ID, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so the table
		// stays identical on every member.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// owner returns the membership index owning the site.
func (r *ring) owner(site int) int {
	h := hash64(fmt.Sprintf("site/%d", site))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}

// hash64 is FNV-1a with an avalanche finalizer. FNV alone is stable
// across processes and Go releases (unlike maphash, which is what lets
// every node derive the same ring) but clusters badly on the short,
// near-identical keys the ring feeds it — "a#0" and "a#1" differ only
// in their final rounds, so their high bits (which decide ring
// position) stay correlated and whole nodes can end up owning nothing.
// The murmur3-style finalizer is a fixed bijection that spreads that
// correlation across all 64 bits while keeping the hash deterministic.
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
