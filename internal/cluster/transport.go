package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// ForwardedHeader marks a /v1/update request as a coordinator fan-out:
// the receiving peer applies the batch locally and must NOT forward it
// again (the loop guard of the write path).
const ForwardedHeader = "X-TC-Forwarded"

// maxErrorBody bounds how much of a peer error response is read while
// looking for its typed error envelope.
const maxErrorBody = 1 << 20

// Transport executes cluster RPCs against one peer node. The one
// production implementation is HTTPTransport; tests substitute
// in-process fakes to exercise the error taxonomy without sockets.
type Transport interface {
	// ExecuteLeg runs one leg computation on the peer at the request's
	// pinned epoch.
	ExecuteLeg(ctx context.Context, req *LegRequest) (*LegResponse, error)
	// ForwardUpdate applies an update batch on the peer (marked
	// forwarded, so the peer does not fan it out again) and returns the
	// epoch the peer landed on.
	ForwardUpdate(ctx context.Context, req *UpdateRequest) (*UpdateAck, error)
}

// LegRequest is the wire form of one remote leg execution: the
// memoizable (site, entry set, engine) triple plus the coordinator's
// pinned epoch — the coherence token the peer must match.
type LegRequest struct {
	Site   int     `json:"site"`
	Entry  []int64 `json:"entry"`
	Engine string  `json:"engine"`
	Epoch  uint64  `json:"epoch"`
}

// EntryNodes converts the wire entry set back to node IDs.
func (r *LegRequest) EntryNodes() []graph.NodeID {
	out := make([]graph.NodeID, len(r.Entry))
	for i, n := range r.Entry {
		out[i] = graph.NodeID(n)
	}
	return out
}

// NewLegRequest builds the wire form from an executor's leg.
func NewLegRequest(site int, entry []graph.NodeID, engine string, epoch uint64) *LegRequest {
	wire := make([]int64, len(entry))
	for i, n := range entry {
		wire[i] = int64(n)
	}
	return &LegRequest{Site: site, Entry: wire, Engine: engine, Epoch: epoch}
}

// LegResponse is the wire form of an executed leg: the full
// (src, dst, cost) fact relation in columnar layout — the paper's
// complementary-cost table, the only payload that crosses the wire —
// plus the peer's cache verdict and fixpoint stats.
type LegResponse struct {
	// Epoch echoes the generation the facts were computed on.
	Epoch uint64 `json:"epoch"`
	// CacheHit reports the peer answered from its leg cache.
	CacheHit bool `json:"cache_hit"`
	// Src, Dst, Cost are the fact columns; all three must have equal
	// length.
	Src  []int64   `json:"src"`
	Dst  []int64   `json:"dst"`
	Cost []float64 `json:"cost"`
	// Iterations, DerivedTuples, ResultTuples are the peer's tc.Stats.
	Iterations    int `json:"iterations"`
	DerivedTuples int `json:"derived_tuples"`
	ResultTuples  int `json:"result_tuples"`
}

// NewLegResponse flattens an executed leg relation onto the wire.
func NewLegResponse(epoch uint64, hit bool, rel *relation.Relation, stats tc.Stats) *LegResponse {
	tuples := rel.Tuples()
	resp := &LegResponse{
		Epoch:         epoch,
		CacheHit:      hit,
		Src:           make([]int64, len(tuples)),
		Dst:           make([]int64, len(tuples)),
		Cost:          make([]float64, len(tuples)),
		Iterations:    stats.Iterations,
		DerivedTuples: stats.DerivedTuples,
		ResultTuples:  stats.ResultTuples,
	}
	for i, t := range tuples {
		resp.Src[i] = t[0].(int64)
		resp.Dst[i] = t[1].(int64)
		resp.Cost[i] = t[2].(float64)
	}
	return resp
}

// Facts rebuilds the leg fact relation. Column-length mismatches are a
// protocol violation and return ErrBadPeerResponse.
func (r *LegResponse) Facts() (*relation.Relation, tc.Stats, error) {
	if len(r.Src) != len(r.Dst) || len(r.Src) != len(r.Cost) {
		return nil, tc.Stats{}, fmt.Errorf("cluster: %w: fact columns of unequal length (%d src, %d dst, %d cost)",
			ErrBadPeerResponse, len(r.Src), len(r.Dst), len(r.Cost))
	}
	rel := relation.New("src", "dst", "cost")
	for i := range r.Src {
		rel.MustInsert(relation.Tuple{r.Src[i], r.Dst[i], r.Cost[i]})
	}
	stats := tc.Stats{Iterations: r.Iterations, DerivedTuples: r.DerivedTuples, ResultTuples: r.ResultTuples}
	return rel, stats, nil
}

// UpdateOp is one typed mutation of a fanned-out update batch. The
// field shape (and JSON tags) matches the /v1/update wire op exactly,
// so forwarding is a re-serialisation of the same transaction.
type UpdateOp struct {
	Op       string  `json:"op"`
	Fragment int     `json:"fragment"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Weight   float64 `json:"weight"`
}

// UpdateRequest is the fanned-out transaction body.
type UpdateRequest struct {
	Ops []UpdateOp `json:"ops"`
}

// UpdateAck is a peer's answer to a forwarded update: the epoch it
// landed on. Coherence requires every peer to ack the same epoch.
type UpdateAck struct {
	Epoch uint64 `json:"epoch"`
}

// peerError is the /v1 error envelope as read off a peer.
type peerError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// codeToErr maps the stable /v1 error codes a peer may answer with
// back onto this side's typed sentinels, so an error that crossed the
// wire still satisfies the same errors.Is checks as a local one.
var codeToErr = map[string]error{
	"epoch_skew":       ErrEpochSkew,
	"peer_down":        ErrPeerDown,
	"peer_timeout":     ErrPeerTimeout,
	"unknown_site":     dsa.ErrUnknownSite,
	"unknown_node":     dsa.ErrUnknownNode,
	"unknown_engine":   dsa.ErrUnknownEngine,
	"engine_mismatch":  dsa.ErrEngineMismatch,
	"problem_mismatch": dsa.ErrProblemMismatch,
	"negative_weight":  dsa.ErrNegativeWeight,
	"edge_not_found":   dsa.ErrEdgeNotFound,
	"empty_fragment":   dsa.ErrEmptyFragment,
	"canceled":         dsa.ErrCanceled,
}

// HTTPTransport speaks the /v1 JSON protocol to one peer tcserver:
// POST {peer}/v1/leg for leg execution, POST {peer}/v1/update (with
// ForwardedHeader set) for update fan-out.
type HTTPTransport struct {
	node   Node
	client *http.Client
}

// NewHTTPTransport builds the production transport for one peer. The
// timeout bounds each RPC end to end (dial, write, read).
func NewHTTPTransport(node Node, timeout time.Duration) *HTTPTransport {
	return &HTTPTransport{node: node, client: &http.Client{Timeout: timeout}}
}

// ExecuteLeg implements Transport.
func (t *HTTPTransport) ExecuteLeg(ctx context.Context, req *LegRequest) (*LegResponse, error) {
	var resp LegResponse
	if err := t.post(ctx, "/v1/leg", req, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ForwardUpdate implements Transport.
func (t *HTTPTransport) ForwardUpdate(ctx context.Context, req *UpdateRequest) (*UpdateAck, error) {
	var ack UpdateAck
	hdr := http.Header{ForwardedHeader: []string{"1"}}
	if err := t.post(ctx, "/v1/update", req, hdr, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// post runs one JSON round trip and maps every failure mode onto the
// typed taxonomy: transport errors become ErrPeerDown/ErrPeerTimeout,
// peer error envelopes are translated back through their stable codes,
// and anything outside the protocol becomes ErrBadPeerResponse.
func (t *HTTPTransport) post(ctx context.Context, path string, body any, hdr http.Header, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: peer %s: encode %s request: %w", t.node.ID, path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.node.URL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("cluster: peer %s: %w", t.node.ID, err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return t.classify(path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return t.peerErr(path, resp)
	}
	err = json.NewDecoder(resp.Body).Decode(out)
	// Drain whatever the decoder left (it stops at the end of the JSON
	// value): a body closed with bytes unread kills the keep-alive
	// connection, and every subsequent RPC pays a fresh TCP handshake.
	io.Copy(io.Discard, resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: %w: peer %s %s: undecodable 200 body: %v", ErrBadPeerResponse, t.node.ID, path, err)
	}
	return nil
}

// classify maps a round-trip failure onto the typed taxonomy. The
// caller's own cancellation stays ErrCanceled (the query was abandoned,
// the peer is not at fault); deadline expiry — the RPC budget or a
// net-level timeout — is ErrPeerTimeout; everything else that kept the
// response from arriving is ErrPeerDown.
func (t *HTTPTransport) classify(path string, err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("cluster: peer %s %s: %w (%w)", t.node.ID, path, dsa.ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("cluster: %w: peer %s %s: %v", ErrPeerTimeout, t.node.ID, path, err)
	}
	var netErr net.Error
	if errors.As(err, &netErr) && netErr.Timeout() {
		return fmt.Errorf("cluster: %w: peer %s %s: %v", ErrPeerTimeout, t.node.ID, path, err)
	}
	return fmt.Errorf("cluster: %w: peer %s %s: %v", ErrPeerDown, t.node.ID, path, err)
}

// peerErr translates a non-200 peer response back into a typed error
// via the envelope's stable code.
func (t *HTTPTransport) peerErr(path string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	// Drain past the limit so the connection stays reusable (see post).
	io.Copy(io.Discard, resp.Body)
	var env peerError
	if err := json.Unmarshal(raw, &env); err != nil || env.Code == "" {
		return fmt.Errorf("cluster: %w: peer %s %s answered HTTP %d outside the protocol: %.200s",
			ErrBadPeerResponse, t.node.ID, path, resp.StatusCode, raw)
	}
	sentinel, ok := codeToErr[env.Code]
	if !ok {
		return fmt.Errorf("cluster: %w: peer %s %s refused with unknown code %q: %s",
			ErrBadPeerResponse, t.node.ID, path, env.Code, env.Error)
	}
	return fmt.Errorf("cluster: %w: peer %s %s: %s", sentinel, t.node.ID, path, env.Error)
}
