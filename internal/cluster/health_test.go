package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dsa"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/tc"
)

// fakeClock is a manually advanced time source — the injected clock
// that makes breaker open→half-open transitions deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

var errDown = fmt.Errorf("dial: %w", ErrPeerDown)

func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(BreakerConfig{FailureThreshold: 3, OpenInterval: 2 * time.Second, HalfOpenProbes: 1}, clk.Now)

	// Closed: failures below the threshold keep passing traffic, and a
	// success resets the consecutive count.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused RPC %d", i)
		}
		b.Record(errDown)
	}
	b.Record(nil) // reset
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after reset = %v, want closed", got)
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused RPC %d", i)
		}
		b.Record(errDown)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed traffic inside the open interval")
	}

	// The open interval elapses: exactly one half-open probe is granted.
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the open interval")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe grant = %v, want half_open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker granted a second probe (budget 1)")
	}

	// The probe fails: immediately open again, for a fresh interval.
	b.Record(errDown)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clk.Advance(time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker allowed traffic after only half the interval")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second half-open probe")
	}

	// The probe succeeds: closed, traffic flows.
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.Record(nil)
}

func TestBreakerNeutralOutcomeReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenInterval: time.Second, HalfOpenProbes: 1}, clk.Now)
	b.Allow()
	b.Record(errDown) // trip
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe granted")
	}
	// The probe's caller canceled: that says nothing about the peer —
	// stay half-open, but release the token so the next RPC can probe.
	b.Record(fmt.Errorf("rpc: %w", context.Canceled))
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after neutral probe = %v, want half_open", got)
	}
	if !b.Allow() {
		t.Fatal("probe token not released after neutral outcome")
	}
}

func TestBreakerProtocolErrorsDoNotTrip(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenInterval: time.Second, HalfOpenProbes: 1}, clk.Now)
	// A peer that answers wrongly is alive: epoch skew, bad responses
	// and application errors must not open the breaker.
	for _, err := range []error{
		fmt.Errorf("peer: %w", ErrEpochSkew),
		fmt.Errorf("peer: %w", ErrBadPeerResponse),
		fmt.Errorf("peer: %w", dsa.ErrUnknownSite),
	} {
		b.Allow()
		b.Record(err)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state after %v = %v, want closed", err, got)
		}
	}
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want rpcOutcome
	}{
		{nil, outcomeSuccess},
		{errDown, outcomeFailure},
		{fmt.Errorf("deadline: %w", ErrPeerTimeout), outcomeFailure},
		{fmt.Errorf("rpc: %w (%w)", dsa.ErrCanceled, context.Canceled), outcomeNeutral},
		{fmt.Errorf("peer: %w", ErrEpochSkew), outcomeSuccess},
		{fmt.Errorf("peer: %w", ErrBadPeerResponse), outcomeSuccess},
		// Breaker-open refusals wrap ErrPeerDown, but they never reach
		// Record (no RPC happened) — classification still counts them as
		// failures if they ever did.
		{fmt.Errorf("x: %w (%w)", ErrBreakerOpen, ErrPeerDown), outcomeFailure},
	}
	for _, tt := range cases {
		if got := classifyOutcome(tt.err); got != tt.want {
			t.Errorf("classifyOutcome(%v) = %v, want %v", tt.err, got, tt.want)
		}
	}
}

func TestFallbackEligible(t *testing.T) {
	eligible := []error{
		fmt.Errorf("dial: %w", ErrPeerDown),
		fmt.Errorf("deadline: %w", ErrPeerTimeout),
		fmt.Errorf("x: %w (%w)", ErrBreakerOpen, ErrPeerDown),
	}
	for _, err := range eligible {
		if !FallbackEligible(err) {
			t.Errorf("FallbackEligible(%v) = false, want true", err)
		}
	}
	ineligible := []error{
		nil,
		fmt.Errorf("peer: %w", ErrEpochSkew),
		fmt.Errorf("peer: %w", ErrBadPeerResponse),
		fmt.Errorf("rpc: %w", context.Canceled),
	}
	for _, err := range ineligible {
		if FallbackEligible(err) {
			t.Errorf("FallbackEligible(%v) = true, want false", err)
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	cfg := RetryConfig{BaseBackoff: 25 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}.withDefaults()
	want := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond}
	for i, w := range want {
		if got := cfg.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// scriptedLegTransport answers a valid empty leg at the requested
// epoch, counting calls — the healthy inner transport fault tests wrap.
type scriptedLegTransport struct {
	mu    sync.Mutex
	calls int
}

func (s *scriptedLegTransport) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptedLegTransport) ExecuteLeg(ctx context.Context, req *LegRequest) (*LegResponse, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return NewLegResponse(req.Epoch, false, relation.New("src", "dst", "cost"), tc.Stats{}), nil
}

func (s *scriptedLegTransport) ForwardUpdate(ctx context.Context, req *UpdateRequest) (*UpdateAck, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return &UpdateAck{}, nil
}

// newResilientPair builds a 2-node coordinator ("a" self, "b" remote)
// whose transport to b is inner wrapped in script, with instant
// deterministic retries (no jitter, no sleeping) and an injected
// clock. Returns the coordinator, a site owned by b, and the clock.
func newResilientPair(t *testing.T, inner Transport, script FaultScript, mutate func(cfg *Config)) (*Coordinator, int, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg := Config{
		NodeID: "a",
		Peers: []Node{
			{ID: "a", URL: "http://a.invalid:1"},
			{ID: "b", URL: "http://b.invalid:1"},
		},
		Timeout: time.Second,
		Clock:   clk.Now,
		NewTransport: func(n Node) Transport {
			if script != nil {
				return NewFaultTransport(inner, n.ID, script)
			}
			return inner
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	for site := 0; site < 1024; site++ {
		if !c.IsLocal(site) {
			return c, site, clk
		}
	}
	t.Fatal("ring assigned every site to a")
	return nil, 0, nil
}

func TestExecuteLegRetriesTransientFailure(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, err := ParseFaultScript("b:down*2,ok")
	if err != nil {
		t.Fatal(err)
	}
	c, site, _ := newResilientPair(t, inner, script, nil)
	reg := metrics.NewRegistry()
	c.Register(reg)

	// Two injected failures, third attempt (the default budget) lands.
	_, _, _, err = c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 0)
	if err != nil {
		t.Fatalf("leg with 2 transient failures and 3 attempts: %v", err)
	}
	if got := inner.count(); got != 1 {
		t.Errorf("inner transport saw %d calls, want 1 (faults short-circuit)", got)
	}
	snap := reg.Snapshot()
	if got := snap[`tc_cluster_leg_retries_total{peer="b"}`]; got != 2 {
		t.Errorf("retry counter = %v, want 2", got)
	}
	if got := snap[`tc_peer_rpc_errors_total{peer="b",code="peer_down"}`]; got != 2 {
		t.Errorf("error counter = %v, want 2", got)
	}
	if got := snap[`tc_peer_rpc_success_total{peer="b"}`]; got != 1 {
		t.Errorf("success counter = %v, want 1", got)
	}
}

func TestExecuteLegExhaustsRetryBudget(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, _ := ParseFaultScript("b:down*")
	c, site, _ := newResilientPair(t, inner, script, func(cfg *Config) {
		cfg.Breaker.FailureThreshold = 100 // keep the breaker out of this test
	})
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 0)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("exhausted retries = %v, want ErrPeerDown", err)
	}
	if got := inner.count(); got != 0 {
		t.Errorf("inner transport saw %d calls, want 0", got)
	}
}

func TestExecuteLegDoesNotRetryProtocolErrors(t *testing.T) {
	// A peer echoing the wrong epoch is answering — retrying would just
	// repeat the coherence violation. One attempt, typed error out.
	calls := 0
	inner := transportFunc{
		leg: func(ctx context.Context, req *LegRequest) (*LegResponse, error) {
			calls++
			return NewLegResponse(req.Epoch+7, false, relation.New("src", "dst", "cost"), tc.Stats{}), nil
		},
	}
	c, site, _ := newResilientPair(t, inner, nil, nil)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 0)
	if !errors.Is(err, ErrEpochSkew) {
		t.Fatalf("wrong-epoch echo = %v, want ErrEpochSkew", err)
	}
	if calls != 1 {
		t.Errorf("epoch-skew leg was attempted %d times, want 1", calls)
	}
}

// transportFunc adapts closures to Transport.
type transportFunc struct {
	leg func(context.Context, *LegRequest) (*LegResponse, error)
	upd func(context.Context, *UpdateRequest) (*UpdateAck, error)
}

func (f transportFunc) ExecuteLeg(ctx context.Context, req *LegRequest) (*LegResponse, error) {
	return f.leg(ctx, req)
}

func (f transportFunc) ForwardUpdate(ctx context.Context, req *UpdateRequest) (*UpdateAck, error) {
	return f.upd(ctx, req)
}

func TestBreakerTripsAndRecoversThroughCoordinator(t *testing.T) {
	inner := &scriptedLegTransport{}
	// 6 failures: enough to exhaust one 3-attempt leg call (3 failures)
	// and trip the threshold-3 breaker; then healthy forever.
	script, _ := ParseFaultScript("b:down*3,ok*")
	c, site, clk := newResilientPair(t, inner, script, func(cfg *Config) {
		cfg.Breaker = BreakerConfig{FailureThreshold: 3, OpenInterval: 2 * time.Second, HalfOpenProbes: 1}
	})
	reg := metrics.NewRegistry()
	c.Register(reg)
	ctx := context.Background()

	// First call burns its whole retry budget on injected failures and
	// trips the breaker.
	if _, _, _, err := c.ExecuteLeg(ctx, site, nil, "dijkstra", 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("first leg = %v, want ErrPeerDown", err)
	}
	if got := c.health.State("b"); got != BreakerOpen {
		t.Fatalf("breaker after retry exhaustion = %v, want open", got)
	}

	// While open: fail-fast refusal, typed both ways, transport untouched.
	_, _, _, err := c.ExecuteLeg(ctx, site, nil, "dijkstra", 0)
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, ErrPeerDown) {
		t.Fatalf("open-breaker leg = %v, want ErrBreakerOpen wrapping ErrPeerDown", err)
	}
	if got := inner.count(); got != 0 {
		t.Fatalf("open breaker let %d RPCs through", got)
	}

	// Open interval elapses: the next leg is the half-open probe, the
	// script is healthy now, so it closes the breaker and serves.
	clk.Advance(2 * time.Second)
	if _, _, _, err := c.ExecuteLeg(ctx, site, nil, "dijkstra", 0); err != nil {
		t.Fatalf("post-recovery leg: %v", err)
	}
	if got := c.health.State("b"); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if got := inner.count(); got != 1 {
		t.Errorf("recovered peer saw %d RPCs, want 1", got)
	}

	snap := reg.Snapshot()
	if got := snap[`tc_peer_breaker_state{peer="b"}`]; got != float64(BreakerClosed) {
		t.Errorf("breaker state gauge = %v, want %v", got, float64(BreakerClosed))
	}
	for _, to := range []string{"open", "half_open", "closed"} {
		key := fmt.Sprintf(`tc_peer_breaker_transitions_total{peer="b",to=%q}`, to)
		if snap[key] < 1 {
			t.Errorf("transition counter %s = %v, want >= 1", key, snap[key])
		}
	}
	if states := c.BreakerStates(); states["b"] != "closed" {
		t.Errorf("BreakerStates = %v, want b closed", states)
	}
	if c.Degraded() {
		t.Error("Degraded() = true with every breaker closed")
	}
}
