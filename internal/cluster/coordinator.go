package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/tc"
)

// This file is the coordinator's execution side: shipping one leg to
// its remote owner and fanning an update transaction out to every
// peer, both instrumented per peer. The scatter half of scatter-gather
// lives in the serving layer (it owns the plan and the merge); the
// coordinator owns everything that crosses the wire.

// clusterMetrics instruments the transport seam. All handles are
// created lazily by Register — a coordinator without a registry (unit
// tests, bare library use) runs unobserved at zero cost.
type clusterMetrics struct {
	// rpcLatency is tc_peer_rpc_duration_seconds{peer,rpc}: wall-clock
	// latency of each peer round trip, by peer ID and RPC kind
	// (leg | update).
	rpcLatency *metrics.HistogramVec
	// rpcErrors is tc_peer_rpc_errors_total{peer,code}: failed round
	// trips by peer and typed failure code.
	rpcErrors *metrics.CounterVec
	// legFanout is tc_leg_fanout_total{peer}: legs shipped to each
	// remote owner.
	legFanout *metrics.CounterVec
	// rpcSuccess is tc_peer_rpc_success_total{peer}: successful round
	// trips by peer — the reconvergence signal the chaos gate watches
	// after a restarted node's breaker closes.
	rpcSuccess *metrics.CounterVec
	// legsLocal is tc_legs_local_total: legs this node owned and
	// executed in-process.
	legsLocal *metrics.Counter
	// updateFanout is tc_update_fanout_total{peer}: update transactions
	// forwarded to each peer.
	updateFanout *metrics.CounterVec
	// legRetries is tc_cluster_leg_retries_total{peer}: leg RPC retry
	// attempts beyond the first, by peer.
	legRetries *metrics.CounterVec
	// legFallback is tc_cluster_leg_fallback_total{peer}: remote-owned
	// legs executed locally in degraded mode because their owner was
	// unreachable, by owner.
	legFallback *metrics.CounterVec
	// breakerState is tc_peer_breaker_state{peer}: each peer breaker's
	// current position (0 closed, 1 half-open, 2 open).
	breakerState *metrics.GaugeVec
	// breakerTransitions is tc_peer_breaker_transitions_total{peer,to}:
	// breaker state changes, by peer and destination state.
	breakerTransitions *metrics.CounterVec
}

// Register creates the coordinator's metric families in reg — called
// once by the serving layer at deploy time, before traffic.
func (c *Coordinator) Register(reg *metrics.Registry) {
	m := &clusterMetrics{}
	m.rpcLatency = reg.HistogramVec("tc_peer_rpc_duration_seconds",
		"Peer RPC round-trip latency, by peer and RPC kind.",
		nil, "peer", "rpc")
	m.rpcErrors = reg.CounterVec("tc_peer_rpc_errors_total",
		"Failed peer RPCs, by peer and typed failure code.", "peer", "code")
	m.legFanout = reg.CounterVec("tc_leg_fanout_total",
		"Legs shipped to remote owners, by peer.", "peer")
	m.rpcSuccess = reg.CounterVec("tc_peer_rpc_success_total",
		"Successful peer RPC round trips, by peer.", "peer")
	m.legsLocal = reg.Counter("tc_legs_local_total",
		"Legs owned and executed by this node in-process.")
	m.updateFanout = reg.CounterVec("tc_update_fanout_total",
		"Update transactions forwarded to peers, by peer.", "peer")
	m.legRetries = reg.CounterVec("tc_cluster_leg_retries_total",
		"Leg RPC retry attempts beyond the first, by peer.", "peer")
	m.legFallback = reg.CounterVec("tc_cluster_leg_fallback_total",
		"Remote-owned legs executed locally in degraded mode, by owner.", "peer")
	m.breakerState = reg.GaugeVec("tc_peer_breaker_state",
		"Peer circuit-breaker state (0 closed, 1 half-open, 2 open).", "peer")
	m.breakerTransitions = reg.CounterVec("tc_peer_breaker_transitions_total",
		"Peer circuit-breaker state transitions, by peer and new state.", "peer", "to")
	c.m = m
	for _, n := range c.nodes {
		if n.ID != c.self.ID {
			m.breakerState.With(n.ID).Set(float64(BreakerClosed))
		}
	}
	c.health.setOnChange(func(peer string, state BreakerState) {
		m.breakerState.With(peer).Set(float64(state))
		m.breakerTransitions.With(peer, state.String()).Inc()
	})
}

// LocalLeg records one leg this node owned and ran in-process — the
// local side of the fan-out ratio.
func (c *Coordinator) LocalLeg() {
	if c.m != nil {
		c.m.legsLocal.Inc()
	}
}

// observeRPC records one peer round trip: it always feeds the
// breaker (health tracking runs even unobserved) and, when a registry
// is wired, the per-peer metrics.
func (c *Coordinator) observeRPC(peer, rpc string, took time.Duration, err error) {
	c.health.Record(peer, err)
	if c.m == nil {
		return
	}
	c.m.rpcLatency.With(peer, rpc).Observe(took.Seconds())
	if err != nil {
		c.m.rpcErrors.With(peer, errCode(err)).Inc()
	} else {
		c.m.rpcSuccess.With(peer).Inc()
	}
}

// errCode is the bounded label vocabulary of rpcErrors. Breaker-open
// refusals are checked first: they wrap ErrPeerDown for taxonomy
// compatibility but deserve their own label.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, ErrPeerTimeout):
		return "peer_timeout"
	case errors.Is(err, ErrPeerDown):
		return "peer_down"
	case errors.Is(err, ErrEpochSkew):
		return "epoch_skew"
	case errors.Is(err, ErrBadPeerResponse):
		return "bad_peer_response"
	}
	return "other"
}

// FallbackLeg records one remote-owned leg for site executed locally
// in degraded mode — the serving layer calls this after a successful
// local fallback so degradation is visible, never silent.
func (c *Coordinator) FallbackLeg(site int) {
	if c.m != nil {
		c.m.legFallback.With(c.Owner(site).ID).Inc()
	}
}

// ExecuteLeg ships one leg to the site's remote owner at the pinned
// epoch and rebuilds the returned fact relation. The site must not be
// local (the caller routes local sites through its own executor). A
// peer answering from a different generation than it was asked for is
// an ErrEpochSkew — the response echo is the coherence check.
//
// Legs are pure epoch-pinned reads, so transport failures (peer
// down/timeout) are retried up to the configured attempt budget with
// exponential backoff + full jitter, all inside the caller's ctx
// deadline. The owner's circuit breaker gates every attempt: an open
// breaker refuses immediately with an error that matches both
// ErrBreakerOpen and ErrPeerDown, letting the serving layer fall back
// to local execution without a new error path.
func (c *Coordinator) ExecuteLeg(ctx context.Context, site int, entry []graph.NodeID, engine string, epoch uint64) (*relation.Relation, tc.Stats, bool, error) {
	owner := c.Owner(site)
	t := c.transports[owner.ID]
	if t == nil {
		//tcvet:ignore typederr API-misuse guard caught before any RPC; it never crosses the wire
		return nil, tc.Stats{}, false, fmt.Errorf("cluster: site %d is owned locally by %s; remote execution is for remote owners", site, c.self.ID)
	}
	req := NewLegRequest(site, entry, engine, epoch)
	var lastErr error
	for attempt := 1; attempt <= c.retry.Attempts; attempt++ {
		if attempt > 1 {
			if err := c.sleep(ctx, c.jitter(c.retry.backoff(attempt-1))); err != nil {
				break // caller's deadline consumed the retry budget
			}
			if c.m != nil {
				c.m.legRetries.With(owner.ID).Inc()
			}
		}
		if !c.health.Allow(owner.ID) {
			lastErr = fmt.Errorf("cluster: %w (%w): peer %s refusing leg for site %d until the open interval elapses",
				ErrBreakerOpen, ErrPeerDown, owner.ID, site)
			break // retrying against an open breaker is pointless
		}
		rpcCtx, cancel := context.WithTimeout(ctx, c.timeout)
		start := time.Now() //tcvet:ignore injectedclock latency stamp around the RPC — measurement, not control flow
		resp, err := t.ExecuteLeg(rpcCtx, req)
		cancel()
		c.observeRPC(owner.ID, "leg", time.Since(start), err)
		if err != nil {
			lastErr = err
			if !retryable(err) {
				return nil, tc.Stats{}, false, err
			}
			continue
		}
		if resp.Epoch != epoch {
			return nil, tc.Stats{}, false, fmt.Errorf("cluster: %w: peer %s answered leg for site %d at epoch %d, want %d",
				ErrEpochSkew, owner.ID, site, resp.Epoch, epoch)
		}
		rel, stats, err := resp.Facts()
		if err != nil {
			return nil, tc.Stats{}, false, err
		}
		if c.m != nil {
			c.m.legFanout.With(owner.ID).Inc()
		}
		return rel, stats, resp.CacheHit, nil
	}
	return nil, tc.Stats{}, false, lastErr
}

// PeerAck is one peer's acknowledgement of a fanned-out update.
type PeerAck struct {
	// Node is the acking peer's ID.
	Node string `json:"node"`
	// Epoch is the generation the peer landed on.
	Epoch uint64 `json:"epoch"`
}

// FanOutUpdate forwards one applied update transaction to every peer
// in parallel and verifies the coherent epoch swap: each peer must ack
// exactly wantEpoch (the epoch the local apply produced — every node
// replays the same batch sequence, so generations advance in
// lockstep). Any transport failure or diverging ack surfaces as a
// typed error; the returned acks cover the peers that answered, for
// the response's audit trail. On error the cluster must be considered
// incoherent until a retry (or operator intervention) converges it —
// subsequent cross-node reads will fail with ErrEpochSkew rather than
// mix generations.
func (c *Coordinator) FanOutUpdate(ctx context.Context, ops []UpdateOp, wantEpoch uint64) ([]PeerAck, error) {
	peers := make([]Node, 0, len(c.transports))
	for _, n := range c.nodes {
		if n.ID != c.self.ID {
			peers = append(peers, n)
		}
	}
	acks := make([]PeerAck, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := c.transports[peer.ID]
			rpcCtx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			start := time.Now() //tcvet:ignore injectedclock latency stamp around the RPC — measurement, not control flow
			ack, err := t.ForwardUpdate(rpcCtx, &UpdateRequest{Ops: ops})
			if err == nil && ack.Epoch != wantEpoch {
				err = fmt.Errorf("cluster: %w: peer %s acked update at epoch %d, want %d",
					ErrEpochSkew, peer.ID, ack.Epoch, wantEpoch)
			}
			c.observeRPC(peer.ID, "update", time.Since(start), err)
			if err != nil {
				errs[i] = err
				return
			}
			if c.m != nil {
				c.m.updateFanout.With(peer.ID).Inc()
			}
			acks[i] = PeerAck{Node: peer.ID, Epoch: ack.Epoch}
		}()
	}
	wg.Wait()
	good := acks[:0]
	for i := range acks {
		if errs[i] == nil {
			good = append(good, acks[i])
		}
	}
	return good, errors.Join(errs...)
}
