package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/tc"
)

// This file is the coordinator's execution side: shipping one leg to
// its remote owner and fanning an update transaction out to every
// peer, both instrumented per peer. The scatter half of scatter-gather
// lives in the serving layer (it owns the plan and the merge); the
// coordinator owns everything that crosses the wire.

// clusterMetrics instruments the transport seam. All handles are
// created lazily by Register — a coordinator without a registry (unit
// tests, bare library use) runs unobserved at zero cost.
type clusterMetrics struct {
	// rpcLatency is tc_peer_rpc_duration_seconds{peer,rpc}: wall-clock
	// latency of each peer round trip, by peer ID and RPC kind
	// (leg | update).
	rpcLatency *metrics.HistogramVec
	// rpcErrors is tc_peer_rpc_errors_total{peer,code}: failed round
	// trips by peer and typed failure code.
	rpcErrors *metrics.CounterVec
	// legFanout is tc_leg_fanout_total{peer}: legs shipped to each
	// remote owner.
	legFanout *metrics.CounterVec
	// legsLocal is tc_legs_local_total: legs this node owned and
	// executed in-process.
	legsLocal *metrics.Counter
	// updateFanout is tc_update_fanout_total{peer}: update transactions
	// forwarded to each peer.
	updateFanout *metrics.CounterVec
}

// Register creates the coordinator's metric families in reg — called
// once by the serving layer at deploy time, before traffic.
func (c *Coordinator) Register(reg *metrics.Registry) {
	m := &clusterMetrics{}
	m.rpcLatency = reg.HistogramVec("tc_peer_rpc_duration_seconds",
		"Peer RPC round-trip latency, by peer and RPC kind.",
		nil, "peer", "rpc")
	m.rpcErrors = reg.CounterVec("tc_peer_rpc_errors_total",
		"Failed peer RPCs, by peer and typed failure code.", "peer", "code")
	m.legFanout = reg.CounterVec("tc_leg_fanout_total",
		"Legs shipped to remote owners, by peer.", "peer")
	m.legsLocal = reg.Counter("tc_legs_local_total",
		"Legs owned and executed by this node in-process.")
	m.updateFanout = reg.CounterVec("tc_update_fanout_total",
		"Update transactions forwarded to peers, by peer.", "peer")
	c.m = m
}

// LocalLeg records one leg this node owned and ran in-process — the
// local side of the fan-out ratio.
func (c *Coordinator) LocalLeg() {
	if c.m != nil {
		c.m.legsLocal.Inc()
	}
}

// observeRPC records one peer round trip.
func (c *Coordinator) observeRPC(peer, rpc string, took time.Duration, err error) {
	if c.m == nil {
		return
	}
	c.m.rpcLatency.With(peer, rpc).Observe(took.Seconds())
	if err != nil {
		c.m.rpcErrors.With(peer, errCode(err)).Inc()
	}
}

// errCode is the bounded label vocabulary of rpcErrors.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrPeerTimeout):
		return "peer_timeout"
	case errors.Is(err, ErrPeerDown):
		return "peer_down"
	case errors.Is(err, ErrEpochSkew):
		return "epoch_skew"
	case errors.Is(err, ErrBadPeerResponse):
		return "bad_peer_response"
	}
	return "other"
}

// ExecuteLeg ships one leg to the site's remote owner at the pinned
// epoch and rebuilds the returned fact relation. The site must not be
// local (the caller routes local sites through its own executor). A
// peer answering from a different generation than it was asked for is
// an ErrEpochSkew — the response echo is the coherence check.
func (c *Coordinator) ExecuteLeg(ctx context.Context, site int, entry []graph.NodeID, engine string, epoch uint64) (*relation.Relation, tc.Stats, bool, error) {
	owner := c.Owner(site)
	t := c.transports[owner.ID]
	if t == nil {
		return nil, tc.Stats{}, false, fmt.Errorf("cluster: site %d is owned locally by %s; remote execution is for remote owners", site, c.self.ID)
	}
	rpcCtx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	start := time.Now()
	resp, err := t.ExecuteLeg(rpcCtx, NewLegRequest(site, entry, engine, epoch))
	c.observeRPC(owner.ID, "leg", time.Since(start), err)
	if err != nil {
		return nil, tc.Stats{}, false, err
	}
	if resp.Epoch != epoch {
		return nil, tc.Stats{}, false, fmt.Errorf("cluster: %w: peer %s answered leg for site %d at epoch %d, want %d",
			ErrEpochSkew, owner.ID, site, resp.Epoch, epoch)
	}
	rel, stats, err := resp.Facts()
	if err != nil {
		return nil, tc.Stats{}, false, err
	}
	if c.m != nil {
		c.m.legFanout.With(owner.ID).Inc()
	}
	return rel, stats, resp.CacheHit, nil
}

// PeerAck is one peer's acknowledgement of a fanned-out update.
type PeerAck struct {
	// Node is the acking peer's ID.
	Node string `json:"node"`
	// Epoch is the generation the peer landed on.
	Epoch uint64 `json:"epoch"`
}

// FanOutUpdate forwards one applied update transaction to every peer
// in parallel and verifies the coherent epoch swap: each peer must ack
// exactly wantEpoch (the epoch the local apply produced — every node
// replays the same batch sequence, so generations advance in
// lockstep). Any transport failure or diverging ack surfaces as a
// typed error; the returned acks cover the peers that answered, for
// the response's audit trail. On error the cluster must be considered
// incoherent until a retry (or operator intervention) converges it —
// subsequent cross-node reads will fail with ErrEpochSkew rather than
// mix generations.
func (c *Coordinator) FanOutUpdate(ctx context.Context, ops []UpdateOp, wantEpoch uint64) ([]PeerAck, error) {
	peers := make([]Node, 0, len(c.transports))
	for _, n := range c.nodes {
		if n.ID != c.self.ID {
			peers = append(peers, n)
		}
	}
	acks := make([]PeerAck, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := c.transports[peer.ID]
			rpcCtx, cancel := context.WithTimeout(ctx, c.timeout)
			defer cancel()
			start := time.Now()
			ack, err := t.ForwardUpdate(rpcCtx, &UpdateRequest{Ops: ops})
			if err == nil && ack.Epoch != wantEpoch {
				err = fmt.Errorf("cluster: %w: peer %s acked update at epoch %d, want %d",
					ErrEpochSkew, peer.ID, ack.Epoch, wantEpoch)
			}
			c.observeRPC(peer.ID, "update", time.Since(start), err)
			if err != nil {
				errs[i] = err
				return
			}
			if c.m != nil {
				c.m.updateFanout.With(peer.ID).Inc()
			}
			acks[i] = PeerAck{Node: peer.ID, Epoch: ack.Epoch}
		}()
	}
	wg.Wait()
	good := acks[:0]
	for i := range acks {
		if errs[i] == nil {
			good = append(good, acks[i])
		}
	}
	return good, errors.Join(errs...)
}
