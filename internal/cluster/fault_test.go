package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseFaultScript(t *testing.T) {
	script, err := ParseFaultScript("b:down*8,ok;c:slow=100ms*2,timeout,ok*")
	if err != nil {
		t.Fatal(err)
	}
	wantB := []FaultStep{{Action: FaultDown, Count: 8}, {Action: FaultOK, Count: 1}}
	wantC := []FaultStep{
		{Action: FaultSlow, Count: 2, Delay: 100 * time.Millisecond},
		{Action: FaultTimeout, Count: 1},
		{Action: FaultOK, Count: -1},
	}
	if len(script["b"]) != len(wantB) {
		t.Fatalf("peer b: %d steps, want %d", len(script["b"]), len(wantB))
	}
	for i, s := range script["b"] {
		if s != wantB[i] {
			t.Errorf("peer b step %d = %+v, want %+v", i, s, wantB[i])
		}
	}
	for i, s := range script["c"] {
		if s != wantC[i] {
			t.Errorf("peer c step %d = %+v, want %+v", i, s, wantC[i])
		}
	}
}

func TestParseFaultScriptRejects(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"b",               // no colon
		":down",           // empty peer
		"b:",              // no steps
		"b:explode",       // unknown action
		"b:down*0",        // zero repeat
		"b:down*-2",       // negative repeat
		"b:slow=verymuch", // bad duration
		"b:down;b:ok",     // duplicate peer
	}
	for _, s := range bad {
		if _, err := ParseFaultScript(s); err == nil {
			t.Errorf("ParseFaultScript(%q) accepted, want error", s)
		}
	}
}

func TestFaultTransportConsumesScript(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, _ := ParseFaultScript("b:down*2,slow=0ms,ok")
	ft := NewFaultTransport(inner, "b", script)
	ctx := context.Background()
	req := NewLegRequest(0, nil, "dijkstra", 0)

	for i := 0; i < 2; i++ {
		if _, err := ft.ExecuteLeg(ctx, req); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("scripted RPC %d = %v, want ErrPeerDown", i, err)
		}
	}
	// slow=0ms passes through, then ok, then the script is exhausted —
	// all subsequent RPCs pass through clean.
	for i := 0; i < 3; i++ {
		if _, err := ft.ExecuteLeg(ctx, req); err != nil {
			t.Fatalf("post-fault RPC %d: %v", i, err)
		}
	}
	if got := inner.count(); got != 3 {
		t.Errorf("inner transport saw %d calls, want 3", got)
	}
}

func TestFaultTransportTimeoutRespectsContext(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, _ := ParseFaultScript("b:timeout")
	ft := NewFaultTransport(inner, "b", script)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := ft.ExecuteLeg(ctx, NewLegRequest(0, nil, "dijkstra", 0))
	if !errors.Is(err, ErrPeerTimeout) {
		t.Fatalf("injected timeout = %v, want ErrPeerTimeout", err)
	}
	if got := inner.count(); got != 0 {
		t.Errorf("inner transport saw %d calls, want 0", got)
	}
}

func TestFaultTransportNoEntryPassesThrough(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, _ := ParseFaultScript("c:down*")
	ft := NewFaultTransport(inner, "b", script) // b has no script entry
	if _, err := ft.ExecuteLeg(context.Background(), NewLegRequest(0, nil, "dijkstra", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.ForwardUpdate(context.Background(), &UpdateRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := inner.count(); got != 2 {
		t.Errorf("inner transport saw %d calls, want 2", got)
	}
}

func TestFaultTransportAppliesUpdates(t *testing.T) {
	inner := &scriptedLegTransport{}
	script, _ := ParseFaultScript("b:down")
	ft := NewFaultTransport(inner, "b", script)
	if _, err := ft.ForwardUpdate(context.Background(), &UpdateRequest{}); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("scripted update = %v, want ErrPeerDown", err)
	}
	if _, err := ft.ForwardUpdate(context.Background(), &UpdateRequest{}); err != nil {
		t.Fatal(err)
	}
}
