// Package cluster makes leg execution location-transparent: a static
// membership of tcserver nodes, a consistent-hash ring assigning every
// site (fragment) an owning node, and an HTTP/JSON transport that
// ships leg computations to their owners. It is the paper's
// distribution model made real — fragments are worked on by different
// sites and only the small (entry, exit, cost) complementary tables
// cross the wire — layered behind the serving layer's executor so a
// query fans its site route across the cluster and assembles the legs
// exactly as it would locally.
//
// Deployment model: every node builds the identical store from the
// identical input (same graph + fragmentation, same update batch
// sequence), so the ring shards *work* — CPU and leg-cache locality —
// not data. Site i's legs always execute on owner(i), which therefore
// accumulates the complete cache working set for its sites instead of
// every node caching everything. Updates fan out to every peer and the
// epoch is the coherence token: each leg RPC carries the coordinator's
// pinned epoch, and a peer that cannot serve that generation answers
// with a typed epoch-skew refusal instead of silently mixing
// generations.
package cluster

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Node is one tcserver process of a static cluster membership.
type Node struct {
	// ID is the node's stable name (the -node-id flag).
	ID string `json:"id"`
	// URL is the node's base HTTP address, e.g. http://10.0.0.1:8642.
	URL string `json:"url"`
}

// ParsePeers parses a static membership list of the -peers flag form
// "a=http://host1:8642,b=http://host2:8642". IDs and URLs must be
// non-empty and unique; URLs must be absolute http(s) addresses.
func ParsePeers(s string) ([]Node, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peer list: %w", ErrBadConfig)
	}
	var nodes []Node
	seenID := map[string]bool{}
	seenURL := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url): %w", part, ErrBadConfig)
		}
		u, err := url.Parse(addr)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad peer URL %q (want http(s)://host:port): %w", addr, ErrBadConfig)
		}
		if seenID[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q: %w", id, ErrBadConfig)
		}
		if seenURL[addr] {
			return nil, fmt.Errorf("cluster: duplicate peer URL %q: %w", addr, ErrBadConfig)
		}
		seenID[id] = true
		seenURL[addr] = true
		nodes = append(nodes, Node{ID: id, URL: strings.TrimRight(addr, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list: %w", ErrBadConfig)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes, nil
}

// Config describes one node's view of the cluster.
type Config struct {
	// NodeID names this node; it must appear in Peers.
	NodeID string
	// Peers is the full static membership, this node included.
	Peers []Node
	// VirtualNodes is the ring points per node (default 64): enough for
	// an even site spread across a handful of nodes while keeping the
	// ring tiny.
	VirtualNodes int
	// Timeout bounds each peer RPC (default 5s).
	Timeout time.Duration
	// Breaker tunes the per-peer circuit breakers; zero fields take
	// defaults (trip after 5 consecutive failures, 2s open interval,
	// 1 half-open probe).
	Breaker BreakerConfig
	// Retry tunes leg-read retries; zero fields take defaults (3 total
	// attempts, 25ms base backoff doubling to a 250ms cap, full jitter).
	Retry RetryConfig
	// Clock supplies the breakers' time source; nil selects time.Now.
	// Tests inject a fake clock to drive open→half-open transitions
	// without sleeping.
	Clock func() time.Time
	// NewTransport builds the transport for one peer; nil selects the
	// HTTP/JSON transport. Tests inject in-process transports here.
	NewTransport func(Node) Transport
}

// Coordinator is one node's routing + fan-out brain: the membership,
// the site→node ring and one transport per peer. It is immutable after
// New and safe for concurrent use.
type Coordinator struct {
	self       Node
	nodes      []Node // sorted by ID, self included
	ring       *ring
	transports map[string]Transport // remote peers only
	timeout    time.Duration
	health     *health
	retry      RetryConfig
	jitter     func(time.Duration) time.Duration // tests pin this
	sleep      func(context.Context, time.Duration) error
	m          *clusterMetrics
}

// New validates the membership and builds the coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured: %w", ErrBadConfig)
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //tcvet:ignore injectedclock the default wiring that SELECTS the wall clock when none is injected
	}
	nodes := append([]Node(nil), cfg.Peers...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	c := &Coordinator{
		nodes:      nodes,
		ring:       newRing(nodes, cfg.VirtualNodes),
		transports: make(map[string]Transport),
		timeout:    cfg.Timeout,
		retry:      cfg.Retry.withDefaults(),
		jitter:     fullJitter,
		sleep:      sleepCtx,
	}
	selfIdx := -1
	for i, n := range nodes {
		if i > 0 && nodes[i-1].ID == n.ID {
			return nil, fmt.Errorf("cluster: duplicate peer id %q: %w", n.ID, ErrBadConfig)
		}
		if n.ID == cfg.NodeID {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, fmt.Errorf("cluster: node id %q not in peer list: %w", cfg.NodeID, ErrBadConfig)
	}
	c.self = nodes[selfIdx]
	newTransport := cfg.NewTransport
	if newTransport == nil {
		newTransport = func(n Node) Transport { return NewHTTPTransport(n, cfg.Timeout) }
	}
	for _, n := range nodes {
		if n.ID != c.self.ID {
			c.transports[n.ID] = newTransport(n)
		}
	}
	c.health = newHealth(nodes, c.self.ID, cfg.Breaker, cfg.Clock)
	return c, nil
}

// Self returns this node's membership entry.
func (c *Coordinator) Self() Node { return c.self }

// Nodes returns the full membership, sorted by ID.
func (c *Coordinator) Nodes() []Node { return append([]Node(nil), c.nodes...) }

// Owner returns the node the ring assigns site to.
func (c *Coordinator) Owner(site int) Node { return c.nodes[c.ring.owner(site)] }

// IsLocal reports whether this node owns site's legs.
func (c *Coordinator) IsLocal(site int) bool { return c.Owner(site).ID == c.self.ID }

// BreakerStates snapshots every remote peer's circuit-breaker state —
// the /stats and /readyz health view.
func (c *Coordinator) BreakerStates() map[string]string { return c.health.States() }

// Degraded reports whether any peer's breaker is not closed — the
// /readyz verdict: the node still answers correctly (legs fall back
// locally) but is running without its full cluster.
func (c *Coordinator) Degraded() bool {
	for _, state := range c.health.States() {
		if state != BreakerClosed.String() {
			return true
		}
	}
	return false
}

// Placement maps every site of [0, sites) to its owning node ID —
// the routing table view served at /stats and logged at startup.
func (c *Coordinator) Placement(sites int) map[string][]int {
	out := make(map[string][]int, len(c.nodes))
	for _, n := range c.nodes {
		out[n.ID] = []int{}
	}
	for s := 0; s < sites; s++ {
		id := c.Owner(s).ID
		out[id] = append(out[id], s)
	}
	return out
}
