package cluster

import (
	"testing"
)

func nodes3() []Node {
	return []Node{
		{ID: "a", URL: "http://h1:8642"},
		{ID: "b", URL: "http://h2:8642"},
		{ID: "c", URL: "http://h3:8642"},
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("b=http://h2:8642, a=http://h1:8642 ,c=http://h3:8642/")
	if err != nil {
		t.Fatal(err)
	}
	want := nodes3()
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(nodes), len(want))
	}
	// Sorted by ID, trailing slash trimmed.
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d: got %+v, want %+v", i, nodes[i], want[i])
		}
	}
}

func TestParsePeersRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"  ,  ",
		"a=",
		"=http://h1:8642",
		"noequals",
		"a=ftp://h1:8642",
		"a=h1:8642",
		"a=http://",
		"a=http://h1:8642,a=http://h2:8642",
		"a=http://h1:8642,b=http://h1:8642",
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted, want error", bad)
		}
	}
}

func TestNewValidatesMembership(t *testing.T) {
	if _, err := New(Config{NodeID: "zz", Peers: nodes3()}); err == nil {
		t.Error("New accepted a node ID outside the membership")
	}
	if _, err := New(Config{NodeID: "a"}); err == nil {
		t.Error("New accepted an empty membership")
	}
	dup := append(nodes3(), Node{ID: "a", URL: "http://h4:8642"})
	if _, err := New(Config{NodeID: "a", Peers: dup}); err == nil {
		t.Error("New accepted a duplicate node ID")
	}
}

// TestRingDeterministic is the property the routing layer rests on:
// every member derives the identical site→node table from the shared
// membership, with no coordination traffic.
func TestRingDeterministic(t *testing.T) {
	var coords []*Coordinator
	for _, id := range []string{"a", "b", "c"} {
		c, err := New(Config{NodeID: id, Peers: nodes3()})
		if err != nil {
			t.Fatal(err)
		}
		coords = append(coords, c)
	}
	for site := 0; site < 512; site++ {
		owner := coords[0].Owner(site)
		for _, c := range coords[1:] {
			if got := c.Owner(site); got != owner {
				t.Fatalf("site %d: node %s routes to %s, node %s routes to %s",
					site, coords[0].Self().ID, owner.ID, c.Self().ID, got.ID)
			}
		}
	}
}

// TestRingSpread checks the vnode count is high enough that a
// smoke-scale site range lands on every node — a cluster where one
// member owns nothing is a misconfigured deployment, not sharding.
func TestRingSpread(t *testing.T) {
	c, err := New(Config{NodeID: "a", Peers: nodes3()})
	if err != nil {
		t.Fatal(err)
	}
	const sites = 64
	placement := c.Placement(sites)
	total := 0
	for _, n := range c.Nodes() {
		owned := placement[n.ID]
		if len(owned) == 0 {
			t.Errorf("node %s owns no sites of %d", n.ID, sites)
		}
		total += len(owned)
	}
	if total != sites {
		t.Fatalf("placement covers %d sites, want %d", total, sites)
	}
	// Placement and Owner must agree: the /stats routing table is the
	// table queries actually route by.
	for _, n := range c.Nodes() {
		for _, s := range placement[n.ID] {
			if got := c.Owner(s).ID; got != n.ID {
				t.Errorf("placement says node %s owns site %d, Owner says %s", n.ID, s, got)
			}
		}
	}
}

func TestIsLocal(t *testing.T) {
	c, err := New(Config{NodeID: "b", Peers: nodes3()})
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 64; site++ {
		if got, want := c.IsLocal(site), c.Owner(site).ID == "b"; got != want {
			t.Errorf("site %d: IsLocal %v, owner %s", site, got, c.Owner(site).ID)
		}
	}
}
