package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"testing"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// newPair builds a two-node coordinator whose single remote peer "b"
// is the given HTTP server, and returns a site the ring routes to b —
// the shape every transport test needs: a leg that must cross the
// wire.
func newPair(t *testing.T, peerURL string, timeout time.Duration) (*Coordinator, int) {
	t.Helper()
	c, err := New(Config{
		NodeID: "a",
		Peers: []Node{
			{ID: "a", URL: "http://local.invalid:1"},
			{ID: "b", URL: peerURL},
		},
		Timeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 1024; site++ {
		if c.Owner(site).ID == "b" {
			return c, site
		}
	}
	t.Fatal("ring assigned no site to peer b in 1024 tries")
	return nil, 0
}

func legFacts(t *testing.T) *relation.Relation {
	t.Helper()
	rel := relation.New("src", "dst", "cost")
	rel.MustInsert(relation.Tuple{int64(1), int64(2), 3.5})
	rel.MustInsert(relation.Tuple{int64(2), int64(4), 1.0})
	return rel
}

func TestLegResponseRoundTrip(t *testing.T) {
	stats := tc.Stats{Iterations: 2, DerivedTuples: 5, ResultTuples: 2}
	resp := NewLegResponse(7, true, legFacts(t), stats)
	rel, gotStats, err := resp.Facts()
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != stats {
		t.Errorf("stats %+v, want %+v", gotStats, stats)
	}
	if got, want := len(rel.Tuples()), 2; got != want {
		t.Errorf("rebuilt %d tuples, want %d", got, want)
	}
}

func TestLegResponseBadColumns(t *testing.T) {
	resp := &LegResponse{Src: []int64{1, 2}, Dst: []int64{3}, Cost: []float64{1, 2}}
	if _, _, err := resp.Facts(); !errors.Is(err, ErrBadPeerResponse) {
		t.Errorf("unequal columns: got %v, want ErrBadPeerResponse", err)
	}
}

// TestExecuteLegRoundTrip drives one leg RPC through the real HTTP
// transport end to end and checks the request wire form the peer sees.
func TestExecuteLegRoundTrip(t *testing.T) {
	stats := tc.Stats{Iterations: 3, DerivedTuples: 9, ResultTuples: 2}
	var gotReq LegRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/leg" {
			t.Errorf("peer saw path %s, want /v1/leg", r.URL.Path)
		}
		if err := json.NewDecoder(r.Body).Decode(&gotReq); err != nil {
			t.Error(err)
		}
		json.NewEncoder(w).Encode(NewLegResponse(gotReq.Epoch, true, legFacts(t), stats))
	}))
	defer srv.Close()
	c, site := newPair(t, srv.URL, time.Second)

	rel, gotStats, hit, err := c.ExecuteLeg(context.Background(), site, []graph.NodeID{10, 11}, "dijkstra", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || gotStats != stats || len(rel.Tuples()) != 2 {
		t.Errorf("got hit=%v stats=%+v tuples=%d", hit, gotStats, len(rel.Tuples()))
	}
	if gotReq.Site != site || gotReq.Engine != "dijkstra" || gotReq.Epoch != 42 ||
		len(gotReq.Entry) != 2 || gotReq.Entry[0] != 10 || gotReq.Entry[1] != 11 {
		t.Errorf("peer saw request %+v", gotReq)
	}
}

func TestExecuteLegRefusesLocalSite(t *testing.T) {
	c, err := New(Config{NodeID: "a", Peers: []Node{{ID: "a", URL: "http://h1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.ExecuteLeg(context.Background(), 0, nil, "dijkstra", 1); err == nil {
		t.Error("ExecuteLeg accepted a locally-owned site")
	}
}

// TestPeerDown: a peer that refuses connections is ErrPeerDown — the
// distinct typed failure the caller needs to tell an outage from a
// slow node or a coherence violation.
func TestPeerDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens there anymore
	c, site := newPair(t, url, time.Second)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 1)
	if !errors.Is(err, ErrPeerDown) {
		t.Errorf("closed peer: got %v, want ErrPeerDown", err)
	}
	if errors.Is(err, ErrPeerTimeout) || errors.Is(err, ErrEpochSkew) {
		t.Errorf("closed peer error %v satisfies an unrelated sentinel", err)
	}
}

// TestPeerTimeout: a peer that answers slower than the RPC budget is
// ErrPeerTimeout, not ErrPeerDown.
func TestPeerTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	// LIFO: unblock the handler before Close waits for it.
	defer srv.Close()
	defer close(block)
	c, site := newPair(t, srv.URL, 50*time.Millisecond)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 1)
	if !errors.Is(err, ErrPeerTimeout) {
		t.Errorf("slow peer: got %v, want ErrPeerTimeout", err)
	}
	if errors.Is(err, ErrPeerDown) {
		t.Errorf("slow peer error %v also satisfies ErrPeerDown", err)
	}
}

// TestCallerCanceled: the caller abandoning the query is its own
// cancellation, not a peer fault.
func TestCallerCanceled(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	// LIFO: unblock the handler before Close waits for it.
	defer srv.Close()
	defer close(block)
	c, site := newPair(t, srv.URL, time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	_, _, _, err := c.ExecuteLeg(ctx, site, nil, "dijkstra", 1)
	if !errors.Is(err, dsa.ErrCanceled) {
		t.Errorf("canceled caller: got %v, want dsa.ErrCanceled", err)
	}
	if errors.Is(err, ErrPeerDown) || errors.Is(err, ErrPeerTimeout) {
		t.Errorf("canceled caller error %v blames the peer", err)
	}
}

// TestEpochSkewEnvelope: a peer refusing an unservable epoch with the
// 409 envelope maps back to ErrEpochSkew through the wire.
func TestEpochSkewEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(peerError{Error: "cannot serve epoch 3", Code: "epoch_skew"})
	}))
	defer srv.Close()
	c, site := newPair(t, srv.URL, time.Second)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 3)
	if !errors.Is(err, ErrEpochSkew) {
		t.Errorf("409 epoch_skew: got %v, want ErrEpochSkew", err)
	}
}

// TestEpochEchoMismatch: a peer that answers 200 but from a different
// generation than asked violates coherence — the response echo check.
func TestEpochEchoMismatch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(NewLegResponse(99, false, legFacts(t), tc.Stats{}))
	}))
	defer srv.Close()
	c, site := newPair(t, srv.URL, time.Second)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 3)
	if !errors.Is(err, ErrEpochSkew) {
		t.Errorf("wrong-epoch echo: got %v, want ErrEpochSkew", err)
	}
}

// TestMalformedPeerResponses: every way a peer can answer outside the
// protocol is ErrBadPeerResponse, never silent garbage.
func TestMalformedPeerResponses(t *testing.T) {
	cases := map[string]http.HandlerFunc{
		"garbage 200": func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("<html>not json</html>"))
		},
		"unequal fact columns": func(w http.ResponseWriter, r *http.Request) {
			var req LegRequest
			json.NewDecoder(r.Body).Decode(&req)
			json.NewEncoder(w).Encode(&LegResponse{Epoch: req.Epoch, Src: []int64{1}, Dst: []int64{}, Cost: []float64{2}})
		},
		"error without envelope": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		},
		"unknown error code": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(peerError{Error: "??", Code: "no_such_code"})
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(handler)
			defer srv.Close()
			c, site := newPair(t, srv.URL, time.Second)
			_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 5)
			if !errors.Is(err, ErrBadPeerResponse) {
				t.Errorf("got %v, want ErrBadPeerResponse", err)
			}
		})
	}
}

// TestPeerErrorCodeMapping: typed /v1 refusals survive the wire — the
// peer's unknown_site is the caller's dsa.ErrUnknownSite.
func TestPeerErrorCodeMapping(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(peerError{Error: "no site 77", Code: "unknown_site"})
	}))
	defer srv.Close()
	c, site := newPair(t, srv.URL, time.Second)
	_, _, _, err := c.ExecuteLeg(context.Background(), site, nil, "dijkstra", 1)
	if !errors.Is(err, dsa.ErrUnknownSite) {
		t.Errorf("unknown_site over the wire: got %v, want dsa.ErrUnknownSite", err)
	}
}

// TestForwardUpdate: the fan-out marks requests with the loop guard,
// acks with the peer's landed epoch, and flags divergent acks as
// epoch skew.
func TestForwardUpdate(t *testing.T) {
	var sawForwarded bool
	var gotOps []UpdateOp
	ackEpoch := uint64(2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/update" {
			t.Errorf("fan-out hit %s, want /v1/update", r.URL.Path)
		}
		sawForwarded = r.Header.Get(ForwardedHeader) != ""
		var req UpdateRequest
		json.NewDecoder(r.Body).Decode(&req)
		gotOps = req.Ops
		json.NewEncoder(w).Encode(UpdateAck{Epoch: ackEpoch})
	}))
	defer srv.Close()
	c, _ := newPair(t, srv.URL, time.Second)

	ops := []UpdateOp{{Op: "insert", Fragment: 1, From: 2, To: 3, Weight: 4}}
	acks, err := c.FanOutUpdate(context.Background(), ops, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sawForwarded {
		t.Error("fan-out request lacked the forwarded loop-guard header")
	}
	if len(gotOps) != 1 || gotOps[0] != ops[0] {
		t.Errorf("peer saw ops %+v, want %+v", gotOps, ops)
	}
	if len(acks) != 1 || acks[0] != (PeerAck{Node: "b", Epoch: 2}) {
		t.Errorf("acks %+v", acks)
	}

	// A peer landing on a different epoch than the local apply is a
	// coherence violation.
	ackEpoch = 9
	if _, err := c.FanOutUpdate(context.Background(), ops, 2); !errors.Is(err, ErrEpochSkew) {
		t.Errorf("divergent ack: got %v, want ErrEpochSkew", err)
	}
}

// TestHTTPTransportReusesConnections: the transport must drain response
// bodies before close, or every RPC pays a fresh TCP handshake. The
// JSON decoder stops at the end of the value — the encoder's trailing
// newline (and any padding) stays unread — so without the explicit
// drain the keep-alive connection is torn down. httptrace's GotConn
// reports whether each request rode an existing connection.
func TestHTTPTransportReusesConnections(t *testing.T) {
	facts := legFacts(t)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/leg":
			w.Header().Set("Content-Type", "application/json")
			// Encoder appends '\n'; pad further so a non-draining client
			// provably leaves bytes behind.
			_ = json.NewEncoder(w).Encode(NewLegResponse(0, false, facts, tc.Stats{}))
			w.Write([]byte("    \n"))
		case "/v1/update":
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(peerError{Error: "skew", Code: "epoch_skew"})
			w.Write([]byte("    \n"))
		}
	}))
	defer hs.Close()

	tr := NewHTTPTransport(Node{ID: "b", URL: hs.URL}, time.Second)
	conns, reused := 0, 0
	trace := &httptrace.ClientTrace{GotConn: func(info httptrace.GotConnInfo) {
		conns++
		if info.Reused {
			reused++
		}
	}}
	ctx := httptrace.WithClientTrace(context.Background(), trace)

	const rpcs = 6
	for i := 0; i < rpcs; i++ {
		if _, err := tr.ExecuteLeg(ctx, NewLegRequest(0, nil, "dijkstra", 0)); err != nil {
			t.Fatalf("leg %d: %v", i, err)
		}
	}
	// The error path (peerErr) must drain too.
	for i := 0; i < 2; i++ {
		if _, err := tr.ForwardUpdate(ctx, &UpdateRequest{}); !errors.Is(err, ErrEpochSkew) {
			t.Fatalf("update %d: %v, want ErrEpochSkew", i, err)
		}
	}
	if conns != rpcs+2 {
		t.Fatalf("GotConn fired %d times for %d RPCs", conns, rpcs+2)
	}
	if reused != conns-1 {
		t.Errorf("%d of %d RPCs reused a connection, want %d (bodies not drained?)", reused, conns, conns-1)
	}
}
