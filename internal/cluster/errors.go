package cluster

import "errors"

// Typed errors of the transport seam, following the repo's convention:
// sentinels are rooted in the layer that first detects the condition
// and re-exported by pkg/tcq, so errors.Is works identically whether a
// caller holds the facade or this package. Each failure mode of a peer
// RPC maps to exactly one sentinel — the distinction is what lets
// callers (and the /v1 error codes) tell a dead peer from a slow one
// from a coherence violation.
var (
	// ErrPeerDown reports a peer that could not be reached at all:
	// connection refused, DNS failure, connection reset mid-request.
	ErrPeerDown = errors.New("cluster peer down")
	// ErrPeerTimeout reports a peer that accepted the connection but did
	// not answer within the RPC deadline.
	ErrPeerTimeout = errors.New("cluster peer timeout")
	// ErrEpochSkew reports an epoch-coherence violation: a peer could
	// not serve the requested store generation (a leg RPC pinned to an
	// epoch the peer no longer — or does not yet — hold), or an update
	// fan-out left peers on diverging epochs. Cross-node reads fail with
	// this instead of silently mixing generations.
	ErrEpochSkew = errors.New("cluster epoch skew")
	// ErrBadPeerResponse reports a peer that answered outside the
	// protocol: an undecodable body, mismatched fact columns, or an
	// error envelope this node cannot interpret.
	ErrBadPeerResponse = errors.New("bad cluster peer response")
	// ErrBreakerOpen reports a leg refused locally because the owner's
	// circuit breaker is open: the peer failed repeatedly and is inside
	// its quiet interval. Errors carrying this sentinel also match
	// ErrPeerDown, so callers that only know the PR 7 taxonomy (502
	// mapping, fallback eligibility) need no new case.
	ErrBreakerOpen = errors.New("cluster peer breaker open")
	// ErrBadConfig reports invalid cluster configuration: a malformed
	// -peers or -fault-script flag, or a membership New refuses to
	// build. It never crosses the wire — it fails process startup —
	// but wrapping it keeps every error this package returns matchable
	// with errors.Is.
	ErrBadConfig = errors.New("bad cluster configuration")
)

// FallbackEligible reports whether a leg error permits degraded-mode
// local fallback: the owner is unreachable (down/timeout/breaker
// open). Protocol errors — epoch skew, bad responses — never qualify;
// they signal bugs or incoherence that local execution would mask.
func FallbackEligible(err error) bool {
	return errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, ErrPeerDown) ||
		errors.Is(err, ErrPeerTimeout)
}
