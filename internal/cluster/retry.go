package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Bounded retries for idempotent leg reads. Update fan-out stays
// single-shot: retrying a write after an ambiguous failure could
// double-apply on a peer that processed the first attempt, and the
// epoch-echo coherence check depends on exactly-once forwarding.
// Legs are pure reads pinned to an epoch — replaying one is free.

// RetryConfig tunes leg-read retries.
type RetryConfig struct {
	// Attempts is the total number of tries per leg, first included
	// (default 3, i.e. up to two retries). 1 disables retries.
	Attempts int
	// BaseBackoff is the pre-jitter backoff before the first retry
	// (default 25ms); it doubles per retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the pre-jitter backoff (default 250ms).
	MaxBackoff time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	return c
}

// backoff returns the pre-jitter delay before the retry-th retry
// (1-based): BaseBackoff doubled per step, capped at MaxBackoff.
func (c RetryConfig) backoff(retry int) time.Duration {
	d := c.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= c.MaxBackoff {
			return c.MaxBackoff
		}
	}
	if d > c.MaxBackoff {
		return c.MaxBackoff
	}
	return d
}

// retryable reports whether a leg RPC error is worth another attempt.
// Only transport-level failures qualify: protocol errors (epoch skew,
// bad response) and caller cancellation would fail identically again.
func retryable(err error) bool {
	return classifyOutcome(err) == outcomeFailure
}

// jitterFunc applies full jitter: a uniform draw from [0, d]. Full
// jitter (vs equal or decorrelated) maximally de-synchronizes the
// retry herd when many queries hit the same dead owner at once.
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(jitterSource.Int63n(int64(d) + 1))
}

// jitterSource is a dedicated, locked PRNG so fullJitter never
// contends with other rand users and tests can't perturb it.
var jitterSource = rand.New(&lockedRandSource{src: rand.NewSource(1)})

type lockedRandSource struct {
	mu  sync.Mutex
	src rand.Source
}

func (s *lockedRandSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedRandSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// sleepCtx waits for d or until ctx is done, whichever comes first,
// returning ctx.Err() if the context won. Retry backoff always goes
// through this so a caller's deadline bounds the whole retry budget.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
