package cluster

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Per-peer health tracking: a classic circuit breaker (closed → open →
// half-open) fed by every RPC outcome through observeRPC. The breaker
// protects two things at once — the coordinator, which stops burning
// its latency budget on a peer that is demonstrably down, and the
// peer, which gets a quiet open-interval to recover instead of a
// thundering herd of retries the moment it limps back. All timing goes
// through an injected clock so tests drive transitions deterministically.

// BreakerState is a breaker's position in the closed → open →
// half-open cycle. The zero value is Closed (healthy).
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits a bounded number of probe RPCs after the
	// open interval; one success closes the breaker, one failure
	// re-opens it.
	BreakerHalfOpen
	// BreakerOpen refuses traffic until the open interval elapses.
	BreakerOpen
)

// String returns the state's metric/stats label.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-peer circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the consecutive transport-failure count
	// (ErrPeerDown / ErrPeerTimeout) that trips a closed breaker
	// (default 5). Protocol-level errors — epoch skew, bad responses —
	// prove the peer is alive and never count.
	FailureThreshold int
	// OpenInterval is how long a tripped breaker refuses traffic before
	// admitting half-open probes (default 2s).
	OpenInterval time.Duration
	// HalfOpenProbes is the number of concurrent probe RPCs admitted in
	// half-open state (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenInterval <= 0 {
		c.OpenInterval = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// rpcOutcome classifies one RPC result for the breaker.
type rpcOutcome int

const (
	// outcomeSuccess: the peer answered. Protocol errors (epoch skew,
	// bad response, application errors) land here too — a peer that
	// answers wrongly is alive, and tripping the breaker on it would
	// convert a coherence bug into silent local fallback.
	outcomeSuccess rpcOutcome = iota
	// outcomeFailure: the peer is unreachable or unresponsive.
	outcomeFailure
	// outcomeNeutral: the caller gave up (ctx canceled); says nothing
	// about the peer.
	outcomeNeutral
)

// classifyOutcome maps an RPC error to its breaker outcome. Order
// matters: a caller-canceled ctx can also look like a timeout, so
// neutral is checked first via the transport's classification (which
// already distinguishes ctx.Canceled from deadline expiry).
func classifyOutcome(err error) rpcOutcome {
	switch {
	case err == nil:
		return outcomeSuccess
	case errors.Is(err, context.Canceled):
		return outcomeNeutral
	case errors.Is(err, ErrPeerDown), errors.Is(err, ErrPeerTimeout):
		return outcomeFailure
	}
	return outcomeSuccess
}

// breaker is one peer's circuit breaker. All fields are guarded by mu;
// the clock is injected for deterministic tests.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	clock    func() time.Time
	onChange func(state BreakerState) // called under mu; nil until Register

	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probes   int       // in-flight probes while half-open
}

func newBreaker(cfg BreakerConfig, clock func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), clock: clock}
}

func (b *breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(to)
	}
}

// Allow reports whether an RPC to this peer may proceed. In open state
// it flips to half-open once the open interval has elapsed; in
// half-open it grants up to HalfOpenProbes concurrent probe tokens.
// Every allowed RPC must be matched by exactly one Record call.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cfg.OpenInterval {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probes = 1
		return true
	case BreakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
	return true
}

// Record feeds one RPC outcome back. Failures count toward the trip
// threshold while closed and re-open a half-open breaker immediately;
// a successful half-open probe closes it. Neutral outcomes (caller
// canceled) only release the probe token. Outcomes that straggle in
// after the breaker re-opened are ignored — they describe RPCs
// launched under an older state.
func (b *breaker) Record(err error) {
	out := classifyOutcome(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		switch out {
		case outcomeSuccess:
			b.failures = 0
		case outcomeFailure:
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.trip()
			}
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		switch out {
		case outcomeSuccess:
			b.failures = 0
			b.probes = 0
			b.transition(BreakerClosed)
		case outcomeFailure:
			b.trip()
		}
	case BreakerOpen:
		// Straggler from before the trip: nothing to learn.
	}
}

// trip opens the breaker and stamps the open interval. Caller holds mu.
func (b *breaker) trip() {
	b.failures = 0
	b.probes = 0
	b.openedAt = b.clock()
	b.transition(BreakerOpen)
}

// State returns the breaker's current state, surfacing an elapsed open
// interval as half-open-eligible open (the transition itself only
// happens on the next Allow, keeping state changes single-sourced).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// health is the coordinator's per-peer breaker registry, primed with
// every remote peer at New so lookups are lock-free reads of an
// immutable map.
type health struct {
	breakers map[string]*breaker
}

func newHealth(peers []Node, self string, cfg BreakerConfig, clock func() time.Time) *health {
	h := &health{breakers: make(map[string]*breaker)}
	for _, n := range peers {
		if n.ID != self {
			h.breakers[n.ID] = newBreaker(cfg, clock)
		}
	}
	return h
}

// Allow reports whether an RPC to peer may proceed right now.
func (h *health) Allow(peer string) bool {
	b := h.breakers[peer]
	if b == nil {
		return true
	}
	return b.Allow()
}

// Record feeds an RPC outcome into peer's breaker.
func (h *health) Record(peer string, err error) {
	if b := h.breakers[peer]; b != nil {
		b.Record(err)
	}
}

// State returns peer's breaker state (closed for unknown peers).
func (h *health) State(peer string) BreakerState {
	if b := h.breakers[peer]; b != nil {
		return b.State()
	}
	return BreakerClosed
}

// setOnChange installs a state-transition hook on every breaker —
// called once by Register, before traffic, to wire metrics.
func (h *health) setOnChange(fn func(peer string, state BreakerState)) {
	for id, b := range h.breakers {
		id := id
		b.mu.Lock()
		b.onChange = func(s BreakerState) { fn(id, s) }
		b.mu.Unlock()
	}
}

// States snapshots every peer's breaker state — the /stats and /readyz
// view.
func (h *health) States() map[string]string {
	out := make(map[string]string, len(h.breakers))
	for id, b := range h.breakers {
		out[id] = b.State().String()
	}
	return out
}
