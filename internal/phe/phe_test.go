package phe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

// starStore builds a transportation graph fragmented by cluster with an
// inter-cluster highway fragment, and the hierarchy over it.
func starStore(t testing.TB, seed int64, clusters, perCluster int) (*Hierarchy, *graph.Graph) {
	t.Helper()
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: clusters,
		Cluster:  gen.Defaults(perCluster, seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, highway, err := SplitByCluster(g, clusters, func(id graph.NodeID) int {
		return int(id) / perCluster
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(st, highway)
	if err != nil {
		t.Fatal(err)
	}
	return h, g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("nil store accepted")
	}
	h, _ := starStore(t, 1, 3, 8)
	if _, err := New(h.Store(), -1); err == nil {
		t.Error("negative highway accepted")
	}
	if _, err := New(h.Store(), 99); err == nil {
		t.Error("out-of-range highway accepted")
	}
}

func TestSplitByClusterValidation(t *testing.T) {
	g := graph.New()
	g.AddBoth(graph.Edge{From: 0, To: 1, Weight: 1})
	if _, _, err := SplitByCluster(g, 0, func(graph.NodeID) int { return 0 }); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, _, err := SplitByCluster(g, 2, func(graph.NodeID) int { return 5 }); err == nil {
		t.Error("out-of-range clusterOf accepted")
	}
	// All edges intra-cluster: no highway possible.
	if _, _, err := SplitByCluster(g, 2, func(graph.NodeID) int { return 0 }); err == nil {
		t.Error("missing highway accepted")
	}
}

func TestSplitByClusterStructure(t *testing.T) {
	h, g := starStore(t, 5, 4, 10)
	fr := h.Store().Fragmentation()
	if fr.NumFragments() != 5 {
		t.Fatalf("fragments = %d, want 4 clusters + highway", fr.NumFragments())
	}
	// The highway fragment holds exactly the inter-cluster edges.
	inter := 0
	for _, e := range g.Edges() {
		if int(e.From)/10 != int(e.To)/10 {
			inter++
		}
	}
	if got := fr.Fragment(h.Highway()).Size(); got != inter {
		t.Errorf("highway size = %d, want %d", got, inter)
	}
	// Star fragmentation graph: loosely connected.
	if !fr.FragmentationGraph().IsLooselyConnected() {
		t.Error("cluster/highway split should be a star (acyclic)")
	}
	conn, total := h.Coverage()
	if conn != total || total != 4 {
		t.Errorf("coverage = %d/%d, want 4/4", conn, total)
	}
}

func TestChainsRouting(t *testing.T) {
	h, _ := starStore(t, 9, 3, 8)
	fr := h.Store().Fragmentation()
	// Interior nodes of clusters 0 and 1 (not on the highway).
	interior := func(cluster int) graph.NodeID {
		for _, id := range fr.Fragment(cluster).Nodes() {
			if len(fr.FragmentsOf(id)) == 1 {
				return id
			}
		}
		t.Fatalf("cluster %d has no interior node", cluster)
		return 0
	}
	a, b := interior(0), interior(1)
	chains, err := h.Chains(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("chains = %v, want exactly one", chains)
	}
	want := []int{0, h.Highway(), 1}
	for i, f := range want {
		if chains[0][i] != f {
			t.Fatalf("chain = %v, want %v", chains[0], want)
		}
	}
	// Same-fragment route.
	same, err := h.Chains(a, interior(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 1 || len(same[0]) != 1 || same[0][0] != 0 {
		t.Errorf("same-cluster chains = %v", same)
	}
}

func TestChainsIsolatedErrors(t *testing.T) {
	h, g := starStore(t, 13, 3, 8)
	g.AddNode(999, graph.Coord{})
	if _, err := h.Chains(999, 0); err == nil {
		t.Error("isolated source accepted")
	}
	if _, err := h.Chains(0, 999); err == nil {
		t.Error("isolated target accepted")
	}
}

func TestQueryMatchesGlobal(t *testing.T) {
	h, g := starStore(t, 17, 4, 10)
	nodes := g.Nodes()
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 10; q++ {
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		res, err := h.Query(src, dst, dsa.EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		want := g.Distance(src, dst)
		if res.Reachable != !math.IsInf(want, 1) {
			t.Fatalf("reachability mismatch for %d→%d", src, dst)
		}
		if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
			t.Errorf("cost %d→%d = %v, want %v", src, dst, res.Cost, want)
		}
	}
}

func TestQueryBoundedChains(t *testing.T) {
	// Even with many clusters, PHE considers at most a handful of
	// chains — the whole point versus exhaustive enumeration.
	h, g := starStore(t, 21, 5, 8)
	nodes := g.Nodes()
	res, err := h.Query(nodes[0], nodes[len(nodes)-1], dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainsConsidered > 4 {
		t.Errorf("chains considered = %d, want ≤ 4", res.ChainsConsidered)
	}
}

// TestPropertyPHEMatchesGlobalOnStar: on cluster/highway splits (star
// G'), PHE is exact for random graphs and queries.
func TestPropertyPHEMatchesGlobalOnStar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clusters := 2 + rng.Intn(3)
		per := 6 + rng.Intn(6)
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: clusters,
			Cluster:  gen.Defaults(per, seed),
		})
		if err != nil {
			return false
		}
		fr, highway, err := SplitByCluster(g, clusters, func(id graph.NodeID) int {
			return int(id) / per
		})
		if err != nil {
			return false
		}
		st, err := dsa.Build(fr, dsa.Options{})
		if err != nil {
			return false
		}
		h, err := New(st, highway)
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 3; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			res, err := h.Query(src, dst, dsa.EngineDijkstra)
			if err != nil {
				return false
			}
			want := g.Distance(src, dst)
			if res.Reachable != !math.IsInf(want, 1) {
				return false
			}
			if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestQueryNoHierarchicalRoute(t *testing.T) {
	// Path of four single-edge fragments F0-F1-F2-F3 with the highway
	// declared at F0: F1 and F3 are not adjacent, F3 does not touch the
	// highway, so PHE finds no route — even though the nodes are
	// globally connected. This is the documented price of hierarchical
	// routing on a topology that lacks a real high-speed fragment.
	g := graph.New()
	var sets [][]graph.Edge
	for i := 0; i < 4; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
		g.AddEdge(e)
		sets = append(sets, []graph.Edge{e})
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, total := h.Coverage()
	if conn != 1 || total != 3 {
		t.Fatalf("coverage = %d/%d, want 1/3", conn, total)
	}
	// Node 1 is in F0/F1, node 4 in F3: no hierarchical route.
	res, err := h.Query(1, 4, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Error("PHE found a route it should not have")
	}
	if res.ChainsConsidered != 0 {
		t.Errorf("chains considered = %d, want 0", res.ChainsConsidered)
	}
	// Direct adjacency still routes: node 1 (F0/F1) to node 3 (F2/F3)
	// via the F1-F2 adjacency... F1={1,2}, F3 edge {3,4}: node 3 is in
	// F2 and F3; F1 and F2 are adjacent.
	res2, err := h.Query(1, 3, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Reachable || res2.Cost != 2 {
		t.Errorf("adjacent-fragment query = %+v, want cost 2", res2)
	}
}

func TestQueryHighwayEndpointChains(t *testing.T) {
	// Queries whose endpoint lives in the highway fragment itself use
	// the two-element highway chains.
	h, g := starStore(t, 31, 3, 8)
	fr := h.Store().Fragmentation()
	highwayNodes := fr.Fragment(h.Highway()).Nodes()
	var interior graph.NodeID
	found := false
	for _, id := range fr.Fragment(0).Nodes() {
		if len(fr.FragmentsOf(id)) == 1 {
			interior, found = id, true
			break
		}
	}
	if !found {
		t.Skip("no interior node")
	}
	src := highwayNodes[0]
	res, err := h.Query(src, interior, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Distance(src, interior)
	if res.Reachable && res.Cost != want {
		t.Errorf("cost = %v, global = %v", res.Cost, want)
	}
}

// TestConnectedMatchesGlobal: hierarchical Connected agrees with global
// reachability on star fragmentations, for every engine including the
// connectivity-only bitset kernel.
func TestConnectedMatchesGlobal(t *testing.T) {
	h, g := starStore(t, 11, 3, 10)
	nodes := g.Nodes()
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 8; q++ {
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		_, want := g.Reachable(src)[dst]
		if src == dst {
			want = true
		}
		for _, engine := range []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineBitset} {
			got, err := h.Connected(src, dst, engine)
			if err != nil {
				t.Fatalf("Connected(%d, %d, %v): %v", src, dst, engine, err)
			}
			if got != want {
				t.Errorf("Connected(%d, %d, %v) = %v, want %v", src, dst, engine, got, want)
			}
		}
	}
}

// TestQueryRefusesBitsetEngine: Query is a cost query and must refuse
// the connectivity-only engine.
func TestQueryRefusesBitsetEngine(t *testing.T) {
	h, g := starStore(t, 13, 3, 8)
	nodes := g.Nodes()
	if _, err := h.Query(nodes[0], nodes[len(nodes)-1], dsa.EngineBitset); err == nil {
		t.Error("Query accepted the connectivity-only bitset engine")
	}
}
