// Package phe implements parallel hierarchical evaluation, the
// extension of the disconnection set approach the ICDE'93 paper points
// to in §5 (developed in Houtsma, Cacace and Ceri, PDIS'91, paper
// reference [12]): when the fragmentation graph "becomes very complex
// and contains many routes from one fragment to another", chain
// enumeration explodes; PHE avoids it with a designated 'high-speed
// network' — "a separate fragment that mandatorily has to be traversed
// when going to a non-adjacent fragment".
//
// Routing becomes trivial: same fragment → one site; adjacent fragments
// → the two-fragment chain; anything else → source fragment, highway,
// target fragment. When the highway is the only inter-cluster glue (the
// SplitByCluster construction), the fragmentation graph is a star —
// acyclic — and answers remain exact; when clusters are also directly
// interconnected, PHE trades the exhaustive chain search for a bounded
// plan whose answer is an upper bound realised by an actual path.
package phe

import (
	"fmt"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
)

// Hierarchy wraps a disconnection-set store with a designated
// high-speed fragment.
type Hierarchy struct {
	store   *dsa.Store
	highway int
}

// New builds a hierarchy over store with the given fragment as the
// high-speed network. Every other fragment should share a disconnection
// set with the highway for full routability; fragments that do not are
// reachable only as same-fragment or directly adjacent queries.
func New(store *dsa.Store, highway int) (*Hierarchy, error) {
	if store == nil {
		return nil, fmt.Errorf("phe: nil store")
	}
	n := store.Fragmentation().NumFragments()
	if highway < 0 || highway >= n {
		return nil, fmt.Errorf("phe: highway fragment %d out of range [0, %d)", highway, n)
	}
	return &Hierarchy{store: store, highway: highway}, nil
}

// Store returns the wrapped store.
func (h *Hierarchy) Store() *dsa.Store { return h.store }

// Highway returns the high-speed fragment ID.
func (h *Hierarchy) Highway() int { return h.highway }

// Coverage reports how many non-highway fragments share a disconnection
// set with the highway, out of the total number of non-highway
// fragments.
func (h *Hierarchy) Coverage() (connected, total int) {
	fr := h.store.Fragmentation()
	for i := 0; i < fr.NumFragments(); i++ {
		if i == h.highway {
			continue
		}
		total++
		if len(fr.DisconnectionSet(i, h.highway)) > 0 {
			connected++
		}
	}
	return connected, total
}

// Chains computes the hierarchical routes for a query: per (source
// fragment, target fragment) pair — same fragment, direct adjacency, or
// via the highway. The result never exceeds |frags(source)|·|frags(target)|
// chains of length ≤ 3, independent of the fragmentation graph's
// complexity.
func (h *Hierarchy) Chains(source, target graph.NodeID) ([][]int, error) {
	fr := h.store.Fragmentation()
	srcFrags := fr.FragmentsOf(source)
	dstFrags := fr.FragmentsOf(target)
	if len(srcFrags) == 0 {
		return nil, fmt.Errorf("phe: source node %d is isolated", source)
	}
	if len(dstFrags) == 0 {
		return nil, fmt.Errorf("phe: target node %d is isolated", target)
	}
	seen := make(map[string]struct{})
	var chains [][]int
	add := func(c []int) {
		k := fmt.Sprint(c)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		chains = append(chains, c)
	}
	for _, fs := range srcFrags {
		for _, ft := range dstFrags {
			switch {
			case fs == ft:
				add([]int{fs})
			case len(fr.DisconnectionSet(fs, ft)) > 0:
				add([]int{fs, ft})
			case fs == h.highway && len(fr.DisconnectionSet(h.highway, ft)) > 0:
				add([]int{h.highway, ft})
			case ft == h.highway && len(fr.DisconnectionSet(fs, h.highway)) > 0:
				add([]int{fs, h.highway})
			case len(fr.DisconnectionSet(fs, h.highway)) > 0 && len(fr.DisconnectionSet(h.highway, ft)) > 0:
				add([]int{fs, h.highway, ft})
			}
		}
	}
	return chains, nil
}

// Query answers a shortest-path query with hierarchical routing,
// executing per-site legs in parallel.
func (h *Hierarchy) Query(source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	if engine == dsa.EngineBitset {
		return nil, fmt.Errorf("phe: %w: engine bitset computes connectivity only; use Connected", dsa.ErrEngineMismatch)
	}
	chains, err := h.Chains(source, target)
	if err != nil {
		return nil, err
	}
	if len(chains) == 0 {
		// No hierarchical route: report unreachable-under-PHE.
		plan, err := h.store.NewPlan(source, source) // trivial valid plan
		if err != nil {
			return nil, err
		}
		res, err := h.store.RunPlan(plan, engine, false)
		if err != nil {
			return nil, err
		}
		res.Target = target
		res.Reachable = false
		res.Cost = inf()
		res.BestChain = nil
		res.ChainsConsidered = 0
		return res, nil
	}
	return h.runChains(source, target, chains, engine)
}

// Connected reports whether target is reachable from source along the
// hierarchical routes, with any local engine — including the
// connectivity-only dsa.EngineBitset, whose per-leg facts carry
// presence markers instead of costs. Like Query, the answer is exact
// when the highway is the only inter-cluster glue.
func (h *Hierarchy) Connected(source, target graph.NodeID, engine dsa.Engine) (bool, error) {
	chains, err := h.Chains(source, target)
	if err != nil {
		return false, err
	}
	if len(chains) == 0 {
		return false, nil
	}
	res, err := h.runChains(source, target, chains, engine)
	if err != nil {
		return false, err
	}
	return res.Reachable, nil
}

// QueryNamed is Query with the engine given by name (anything
// dsa.ParseEngine accepts) — the bridge for callers that stay free of
// internal/dsa imports, like the tcquery CLI handing over a
// planner-resolved engine.
func (h *Hierarchy) QueryNamed(source, target graph.NodeID, engine string) (*dsa.Result, error) {
	eng, err := dsa.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	return h.Query(source, target, eng)
}

// ConnectedNamed is Connected with the engine given by name — see
// QueryNamed.
func (h *Hierarchy) ConnectedNamed(source, target graph.NodeID, engine string) (bool, error) {
	eng, err := dsa.ParseEngine(engine)
	if err != nil {
		return false, err
	}
	return h.Connected(source, target, eng)
}

// runChains plans the given hierarchical chains and executes them with
// per-site legs in parallel — the shared back half of Query and
// Connected.
func (h *Hierarchy) runChains(source, target graph.NodeID, chains [][]int, engine dsa.Engine) (*dsa.Result, error) {
	plan, err := h.store.PlanChains(source, target, chains)
	if err != nil {
		return nil, err
	}
	return h.store.RunPlan(plan, engine, true)
}

// inf returns +Inf without importing math in two places.
func inf() float64 { return graph.Inf }

// SplitByCluster builds the canonical hierarchical fragmentation of a
// transportation graph: intra-cluster edges form one fragment per
// cluster and every inter-cluster edge goes into the high-speed
// fragment (the paper's image of "local train networks per region and
// fast intercity trains connecting the regions"). clusterOf assigns
// each node to its cluster in [0, clusters). The returned highway index
// is the last fragment. Clusters with no internal edges are skipped;
// an error is returned if there are no inter-cluster edges to form the
// highway.
func SplitByCluster(g *graph.Graph, clusters int, clusterOf func(graph.NodeID) int) (*fragment.Fragmentation, int, error) {
	if clusters <= 0 {
		return nil, 0, fmt.Errorf("phe: clusters must be positive, got %d", clusters)
	}
	sets := make([][]graph.Edge, clusters)
	var highway []graph.Edge
	for _, e := range g.Edges() {
		cf, ct := clusterOf(e.From), clusterOf(e.To)
		if cf < 0 || cf >= clusters || ct < 0 || ct >= clusters {
			return nil, 0, fmt.Errorf("phe: clusterOf out of range for edge %v (%d, %d)", e, cf, ct)
		}
		if cf == ct {
			sets[cf] = append(sets[cf], e)
		} else {
			highway = append(highway, e)
		}
	}
	if len(highway) == 0 {
		return nil, 0, fmt.Errorf("phe: no inter-cluster edges to form the high-speed fragment")
	}
	var nonEmpty [][]graph.Edge
	for _, s := range sets {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	nonEmpty = append(nonEmpty, highway)
	fr, err := fragment.New(g, nonEmpty)
	if err != nil {
		return nil, 0, err
	}
	return fr, fr.NumFragments() - 1, nil
}
