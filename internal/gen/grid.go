package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GridConfig parameterises the rectangular grid family used by the
// Fig. 8 experiment (the paper's wide-ellipse sketch): a W×H lattice
// with symmetric unit edges plus optional random diagonal shortcuts so
// the structure is not perfectly regular.
type GridConfig struct {
	// Width and Height are the lattice dimensions in nodes.
	Width, Height int
	// DiagonalProb adds, per cell, a diagonal shortcut with this
	// probability.
	DiagonalProb float64
	// Seed drives the diagonal placement.
	Seed int64
}

// Grid generates the lattice. Node (x, y) has ID y·Width+x and
// coordinates (x, y), so the linear fragmentation algorithm's axis
// sweeps align with the lattice.
func Grid(cfg GridConfig) (*graph.Graph, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("gen: grid dimensions must be positive, got %d×%d", cfg.Width, cfg.Height)
	}
	if cfg.DiagonalProb < 0 || cfg.DiagonalProb > 1 {
		return nil, fmt.Errorf("gen: DiagonalProb must be in [0, 1], got %g", cfg.DiagonalProb)
	}
	g := graph.New()
	rng := rand.New(rand.NewSource(cfg.Seed))
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*cfg.Width + x) }
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			g.AddNode(id(x, y), graph.Coord{X: float64(x), Y: float64(y)})
		}
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			if x+1 < cfg.Width {
				g.AddBoth(graph.Edge{From: id(x, y), To: id(x+1, y), Weight: 1})
			}
			if y+1 < cfg.Height {
				g.AddBoth(graph.Edge{From: id(x, y), To: id(x, y+1), Weight: 1})
			}
			if x+1 < cfg.Width && y+1 < cfg.Height && rng.Float64() < cfg.DiagonalProb {
				g.AddBoth(graph.Edge{From: id(x, y), To: id(x+1, y+1), Weight: 1})
			}
		}
	}
	return g, nil
}
