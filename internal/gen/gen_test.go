package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEdgeProbability(t *testing.T) {
	// Decays with distance, scales with c1, clamps to [0,1].
	p0 := EdgeProbability(100, 0.1, 10, 0)
	p5 := EdgeProbability(100, 0.1, 10, 5)
	if p0 != 1.0 {
		t.Errorf("P(d=0) = %v, want clamp to 1 (100/100 e^0 = 1)", p0)
	}
	if p5 >= p0 {
		t.Errorf("probability should decay with distance: P(0)=%v, P(5)=%v", p0, p5)
	}
	want := 100.0 / 100.0 * math.Exp(-0.5)
	if math.Abs(p5-want) > 1e-12 {
		t.Errorf("P(5) = %v, want %v", p5, want)
	}
	if EdgeProbability(1e9, 0, 10, 0) != 1 {
		t.Error("probability should clamp to 1")
	}
}

func TestGeneralValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0},
		{Nodes: 5, Extent: -1},
		{Nodes: 5, C1: -1},
		{Nodes: 5, C2: -1},
	}
	for _, c := range cases {
		if _, err := General(c); err == nil {
			t.Errorf("General(%+v) accepted", c)
		}
	}
}

func TestGeneralDeterministic(t *testing.T) {
	cfg := Defaults(30, 42)
	g1, err := General(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := General(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() || g1.NumNodes() != g2.NumNodes() {
		t.Errorf("same seed produced different graphs: %v vs %v", g1, g2)
	}
}

func TestGeneralSeedChangesGraph(t *testing.T) {
	a, _ := General(Defaults(30, 1))
	b, _ := General(Defaults(30, 2))
	if a.NumEdges() == b.NumEdges() && len(a.Edges()) > 0 {
		// Edge counts can coincide; compare the actual edge sets.
		ae, be := a.Edges(), b.Edges()
		same := len(ae) == len(be)
		if same {
			for i := range ae {
				if ae[i] != be[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGeneralSymmetric(t *testing.T) {
	g, err := General(Defaults(25, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("edge %v has no reverse", e)
		}
	}
}

func TestGeneralConnected(t *testing.T) {
	g, err := General(Defaults(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("EnsureConnected graph has %d components", len(comps))
	}
}

func TestGeneralCoordinatesWithinExtent(t *testing.T) {
	cfg := Defaults(30, 9)
	cfg.Extent = 50
	g, err := General(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.Nodes() {
		c := g.Coord(id)
		if c.X < 0 || c.X >= 50 || c.Y < 0 || c.Y >= 50 {
			t.Fatalf("node %d at %+v outside extent", id, c)
		}
	}
}

func TestGeneralUnitWeights(t *testing.T) {
	cfg := Defaults(20, 5)
	cfg.UnitWeights = true
	g, err := General(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Weight != 1 {
			t.Fatalf("unit-weight edge has weight %v", e.Weight)
		}
	}
}

func TestGeneralEdgeWeightsAreDistances(t *testing.T) {
	g, err := General(Defaults(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		want := g.EuclideanDistance(e.From, e.To)
		if want == 0 {
			want = 1
		}
		if math.Abs(e.Weight-want) > 1e-9 {
			t.Fatalf("edge %v weight != distance %v", e, want)
		}
	}
}

func TestDefaultLinks(t *testing.T) {
	if DefaultLinks(1) != nil {
		t.Error("single cluster should have no links")
	}
	l2 := DefaultLinks(2)
	if len(l2) != 1 {
		t.Errorf("DefaultLinks(2) = %v, want one link", l2)
	}
	l4 := DefaultLinks(4)
	if len(l4) != 4 {
		t.Errorf("DefaultLinks(4) = %v, want cycle of 4", l4)
	}
	total := 0
	for _, l := range l4 {
		total += l.Edges
	}
	if avg := float64(total) / 4; math.Abs(avg-2.25) > 1e-9 {
		t.Errorf("average link edges = %v, want 2.25 (paper §4.2.1)", avg)
	}
}

func TestTransportationValidation(t *testing.T) {
	base := Defaults(10, 1)
	cases := []TransportConfig{
		{Clusters: 0, Cluster: base},
		{Clusters: 2, Cluster: Config{Nodes: 0}},
		{Clusters: 2, Cluster: base, Links: []ClusterLink{{A: 0, B: 5, Edges: 1}}},
		{Clusters: 2, Cluster: base, Links: []ClusterLink{{A: 0, B: 0, Edges: 1}}},
		{Clusters: 2, Cluster: base, Links: []ClusterLink{{A: 0, B: 1, Edges: 0}}},
		{Clusters: 2, Cluster: base, Gap: -1},
	}
	for i, c := range cases {
		if _, err := Transportation(c); err == nil {
			t.Errorf("case %d: Transportation(%+v) accepted", i, c)
		}
	}
}

func TestTransportationStructure(t *testing.T) {
	cfg := TransportConfig{Clusters: 4, Cluster: Defaults(25, 11)}
	g, err := Transportation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", g.NumNodes())
	}
	// Count inter-cluster edges: they should be exactly the link spec
	// (4 links of 2+2+2+3 = 9 symmetric connections = 18 directed edges).
	cluster := func(id graph.NodeID) int { return int(id) / 25 }
	inter := 0
	for _, e := range g.Edges() {
		if cluster(e.From) != cluster(e.To) {
			inter++
		}
	}
	if inter != 18 {
		t.Errorf("inter-cluster directed edges = %d, want 18", inter)
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("transportation graph has %d components, want 1", len(comps))
	}
}

func TestTransportationClusterDensity(t *testing.T) {
	// Inside a cluster, connectivity must be much higher than between
	// clusters — the defining property of transportation graphs (§3).
	g, err := Transportation(TransportConfig{Clusters: 4, Cluster: Defaults(25, 13)})
	if err != nil {
		t.Fatal(err)
	}
	cluster := func(id graph.NodeID) int { return int(id) / 25 }
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if cluster(e.From) == cluster(e.To) {
			intra++
		} else {
			inter++
		}
	}
	if intra < 10*inter {
		t.Errorf("intra = %d, inter = %d; clusters should dominate", intra, inter)
	}
}

func TestTransportationEdgeCountNearPaper(t *testing.T) {
	// The paper's Table 1 graphs: 4 clusters of 25 nodes, average 429
	// edges. Our defaults should land in the same regime (roughly
	// 300-600 directed edges) so the reproduced characteristics are
	// comparable.
	total := 0
	const trials = 5
	for s := int64(0); s < trials; s++ {
		g, err := Transportation(TransportConfig{Clusters: 4, Cluster: Defaults(25, 100+s)})
		if err != nil {
			t.Fatal(err)
		}
		total += g.NumEdges()
	}
	avg := float64(total) / trials
	if avg < 250 || avg > 700 {
		t.Errorf("average edges = %v, want within [250, 700] (paper: 429)", avg)
	}
}

func TestTransportationBorderPairsDistinct(t *testing.T) {
	// Each link's endpoints are used at most once, so DS nodes are
	// distinct.
	cfg := TransportConfig{
		Clusters: 2,
		Cluster:  Defaults(20, 17),
		Links:    []ClusterLink{{A: 0, B: 1, Edges: 3}},
	}
	g, err := Transportation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster := func(id graph.NodeID) int { return int(id) / 20 }
	seen := make(map[graph.NodeID]int)
	for _, e := range g.Edges() {
		if cluster(e.From) != cluster(e.To) {
			seen[e.From]++
			seen[e.To]++
		}
	}
	// 3 symmetric links = 6 directed edges; each endpoint appears twice
	// (once as From, once as To).
	if len(seen) != 6 {
		t.Errorf("border nodes = %d, want 6 distinct", len(seen))
	}
	for id, n := range seen {
		if n != 2 {
			t.Errorf("border node %d appears %d times, want 2", id, n)
		}
	}
}

func TestTransportationTooManyLinkEdges(t *testing.T) {
	cfg := TransportConfig{
		Clusters: 2,
		Cluster:  Config{Nodes: 2, C1: 0, C2: 0, Seed: 1},
		Links:    []ClusterLink{{A: 0, B: 1, Edges: 5}},
	}
	if _, err := Transportation(cfg); err == nil {
		t.Error("impossible link edge count accepted")
	}
}

// TestPropertyLocalEdgesDominate: with strong distance decay, generated
// edges are biased toward short distances — the defining behaviour of
// the probability function.
func TestPropertyLocalEdgesDominate(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{Nodes: 40, C1: 40 * 40 * 0.4, C2: 0.15, Extent: 100, Seed: seed}
		g, err := General(cfg)
		if err != nil || g.NumEdges() == 0 {
			return err == nil // empty graphs are fine, just unhelpful
		}
		// Average edge length must be well below the average pairwise
		// distance (~52 for uniform points in a 100-square).
		var sum float64
		for _, e := range g.Edges() {
			sum += g.EuclideanDistance(e.From, e.To)
		}
		avgEdge := sum / float64(g.NumEdges())
		var pairSum float64
		var pairs int
		nodes := g.Nodes()
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				pairSum += g.EuclideanDistance(nodes[i], nodes[j])
				pairs++
			}
		}
		avgPair := pairSum / float64(pairs)
		return avgEdge < avgPair
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNodeIDRanges(t *testing.T) {
	// Cluster i owns exactly the IDs [i*n, (i+1)*n).
	f := func(seed int64) bool {
		cfg := TransportConfig{Clusters: 3, Cluster: Defaults(8, seed)}
		g, err := Transportation(cfg)
		if err != nil {
			return false
		}
		if g.NumNodes() != 24 {
			return false
		}
		for _, id := range g.Nodes() {
			if id < 0 || id >= 24 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGridValidation(t *testing.T) {
	for _, cfg := range []GridConfig{
		{Width: 0, Height: 5},
		{Width: 5, Height: -1},
		{Width: 5, Height: 5, DiagonalProb: 1.5},
		{Width: 5, Height: 5, DiagonalProb: -0.1},
	} {
		if _, err := Grid(cfg); err == nil {
			t.Errorf("Grid(%+v) accepted", cfg)
		}
	}
}

func TestGridStructure(t *testing.T) {
	g, err := Grid(GridConfig{Width: 4, Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	// Lattice edges: 3 horizontal per row × 3 rows + 4 vertical columns
	// × 2 = 9 + 8 = 17 symmetric = 34 directed.
	if g.NumEdges() != 34 {
		t.Errorf("edges = %d, want 34", g.NumEdges())
	}
	// Coordinates match lattice positions.
	c := g.Coord(graph.NodeID(1*4 + 2)) // (x=2, y=1)
	if c.X != 2 || c.Y != 1 {
		t.Errorf("coord = %+v, want (2, 1)", c)
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("grid has %d components", len(comps))
	}
}

func TestGridDiagonals(t *testing.T) {
	plain, err := Grid(GridConfig{Width: 10, Height: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	diag, err := Grid(GridConfig{Width: 10, Height: 10, DiagonalProb: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Probability 1 adds a diagonal in every interior cell: 9×9 cells ×
	// 2 directed edges.
	if got, want := diag.NumEdges()-plain.NumEdges(), 2*81; got != want {
		t.Errorf("diagonal edges = %d, want %d", got, want)
	}
}
