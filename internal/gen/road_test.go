package gen

import (
	"testing"

	"repro/internal/fragment"
	"repro/internal/graph"
)

func TestRoadNetworkShape(t *testing.T) {
	cfg := RoadConfig{Clusters: 4, ClusterWidth: 6, ClusterHeight: 5, Gateways: 3, DiagonalProb: 0.3, Seed: 7}
	g, sets, err := RoadNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumNodes(), cfg.Clusters*cfg.ClusterWidth*cfg.ClusterHeight; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	total := 0
	for _, es := range sets {
		total += len(es)
	}
	if total != g.NumEdges() {
		t.Fatalf("fragment sets hold %d edges, graph has %d", total, g.NumEdges())
	}
	// The edge sets must be a legal fragmentation (exact partition) —
	// fragment.New re-validates the multiset property.
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatalf("edge sets are not a legal fragmentation: %v", err)
	}
	// The design point of the family: each adjacency's disconnection
	// set is exactly the Gateways border nodes, non-adjacent cities
	// share nothing.
	for i := 0; i < cfg.Clusters; i++ {
		for j := i + 1; j < cfg.Clusters; j++ {
			ds := fr.DisconnectionSet(i, j)
			want := 0
			if j == i+1 {
				want = cfg.Gateways
			}
			if len(ds) != want {
				t.Errorf("|DS(%d,%d)| = %d, want %d", i, j, len(ds), want)
			}
		}
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	cfg := RoadConfig{Clusters: 3, ClusterWidth: 4, ClusterHeight: 4, Gateways: 2, DiagonalProb: 0.5, Seed: 42}
	g1, _, err := RoadNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := RoadNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
}

func TestRoadNetworkRejectsBadConfig(t *testing.T) {
	bad := []RoadConfig{
		{Clusters: 0, ClusterWidth: 4, ClusterHeight: 4, Gateways: 1},
		{Clusters: 2, ClusterWidth: 1, ClusterHeight: 4, Gateways: 1},
		{Clusters: 2, ClusterWidth: 4, ClusterHeight: 4, Gateways: 0},
		{Clusters: 2, ClusterWidth: 4, ClusterHeight: 4, Gateways: 5},
		{Clusters: 2, ClusterWidth: 4, ClusterHeight: 4, Gateways: 1, DiagonalProb: 1.5},
	}
	for i, cfg := range bad {
		if _, _, err := RoadNetwork(cfg); err == nil {
			t.Errorf("config %d: expected an error", i)
		}
	}
}

func TestRoadConfigForEdgesMeetsTarget(t *testing.T) {
	for _, target := range []int{100, 10_000, 1_200_000} {
		cfg := RoadConfigForEdges(target, 1)
		// The guarantee must hold without diagonals, for every seed.
		cfg.DiagonalProb = 0
		g, _, err := RoadNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() < target {
			t.Errorf("target %d: got only %d directed edges", target, g.NumEdges())
		}
	}
}

func TestRoadNetworkContiguousIDs(t *testing.T) {
	cfg := RoadConfig{Clusters: 2, ClusterWidth: 3, ClusterHeight: 3, Gateways: 1, Seed: 1}
	g, _, err := RoadNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumNodes(); id++ {
		if !g.HasNode(graph.NodeID(id)) {
			t.Fatalf("node %d missing — IDs are not contiguous", id)
		}
	}
}
