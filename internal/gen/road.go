package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// RoadConfig parameterises the road-network family: a west→east chain
// of dense city grids connected by a handful of highway gateways. This
// is the million-edge shape the persistence layer targets — and it is
// the paper's favourable regime by construction: each city is a
// natural fragment, and the disconnection set between neighbours is
// exactly the Gateways border nodes, so complementary tables stay tiny
// while fragments carry production-scale edge volume.
type RoadConfig struct {
	// Clusters is the number of city grids in the chain.
	Clusters int
	// ClusterWidth and ClusterHeight are each city's lattice
	// dimensions in nodes.
	ClusterWidth, ClusterHeight int
	// Gateways is the number of highway connections between adjacent
	// cities — the disconnection-set size of the induced
	// fragmentation. Must not exceed ClusterHeight.
	Gateways int
	// DiagonalProb adds, per city cell, a diagonal shortcut with this
	// probability, so the lattice is not perfectly regular.
	DiagonalProb float64
	// Seed drives the diagonal placement.
	Seed int64
}

// RoadNetwork generates the chained-cities graph together with its
// natural fragmentation: one edge set per city, with the highway edges
// between cities k and k+1 assigned to fragment k. The disconnection
// set DS_{k,k+1} is then exactly city k+1's gateway border nodes. Edge
// weights are Euclidean lengths (1 for lattice steps, √2 for
// diagonals, the inter-city gap for highways); all edges are symmetric
// (AddBoth), so the network is strongly connected.
//
// Node (x, y) of city k has ID k·W·H + y·W + x — IDs are consecutive
// integers in [0, Clusters·W·H), which load generators rely on.
func RoadNetwork(cfg RoadConfig) (*graph.Graph, [][]graph.Edge, error) {
	w, h := cfg.ClusterWidth, cfg.ClusterHeight
	if cfg.Clusters <= 0 {
		return nil, nil, fmt.Errorf("gen: road: Clusters must be positive, got %d", cfg.Clusters)
	}
	if w < 2 || h < 2 {
		return nil, nil, fmt.Errorf("gen: road: cluster dimensions must be at least 2×2, got %d×%d", w, h)
	}
	if cfg.Gateways < 1 || cfg.Gateways > h {
		return nil, nil, fmt.Errorf("gen: road: Gateways must be in [1, %d], got %d", h, cfg.Gateways)
	}
	if cfg.DiagonalProb < 0 || cfg.DiagonalProb > 1 {
		return nil, nil, fmt.Errorf("gen: road: DiagonalProb must be in [0, 1], got %g", cfg.DiagonalProb)
	}

	const gap = 4.0 // coordinate gap between adjacent cities
	g := graph.NewWithCapacity(cfg.Clusters * w * h)
	sets := make([][]graph.Edge, cfg.Clusters)
	id := func(k, x, y int) graph.NodeID { return graph.NodeID(k*w*h + y*w + x) }
	// addBoth places a symmetric edge pair in the graph and in city
	// k's fragment, keeping the edge sets an exact partition.
	addBoth := func(k int, e graph.Edge) {
		g.AddBoth(e)
		sets[k] = append(sets[k], e, e.Reverse())
	}

	for k := 0; k < cfg.Clusters; k++ {
		x0 := float64(k) * (float64(w-1) + gap)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				g.AddNode(id(k, x, y), graph.Coord{X: x0 + float64(x), Y: float64(y)})
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x+1 < w {
					addBoth(k, graph.Edge{From: id(k, x, y), To: id(k, x+1, y), Weight: 1})
				}
				if y+1 < h {
					addBoth(k, graph.Edge{From: id(k, x, y), To: id(k, x, y+1), Weight: 1})
				}
				if x+1 < w && y+1 < h && rng.Float64() < cfg.DiagonalProb {
					addBoth(k, graph.Edge{From: id(k, x, y), To: id(k, x+1, y+1), Weight: math.Sqrt2})
				}
			}
		}
	}

	// Highways: Gateways rows, spread evenly, connect city k's east
	// border to city k+1's west border. Assigned to fragment k, so the
	// shared nodes — and only they — appear in both fragments.
	for k := 0; k+1 < cfg.Clusters; k++ {
		for gw := 0; gw < cfg.Gateways; gw++ {
			y := (2*gw + 1) * h / (2 * cfg.Gateways)
			addBoth(k, graph.Edge{From: id(k, w-1, y), To: id(k+1, 0, y), Weight: gap + 1})
		}
	}
	return g, sets, nil
}

// RoadConfigForEdges picks a road-network configuration with at least
// targetEdges directed edges: a fixed-length chain of near-square
// cities sized up until the lattice alone (diagonals not counted, so
// the bound holds for every seed) reaches the target.
func RoadConfigForEdges(targetEdges int, seed int64) RoadConfig {
	cfg := RoadConfig{
		Clusters:     12,
		Gateways:     5,
		DiagonalProb: 0.05,
		Seed:         seed,
	}
	side := 2
	for 4*side*(side-1)*cfg.Clusters < targetEdges {
		side++
	}
	cfg.ClusterWidth, cfg.ClusterHeight = side, side
	if cfg.Gateways > side {
		cfg.Gateways = side
	}
	return cfg
}
