// Package gen generates the random test graphs of the ICDE'93 paper's
// §4.1: nodes with coordinates spread evenly over an interval, and
// edges drawn with the distance-decaying probability function
//
//	P(p, q) = (c1/n²) · e^(−c2·d(p,q))
//
// where d is the Euclidean distance between the node coordinates, c1
// controls the number of edges (the connectivity) and c2 the
// probability of long edges.
//
// Two graph families are provided, matching §4.2: transportation graphs
// (a user-specified number of dense clusters, loosely interconnected by
// a user-specified number of edges — the paper's Fig. 3 structure), and
// general graphs (a single cluster with no superimposed structure).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Config parameterises the generation of one cluster (or one general
// graph).
type Config struct {
	// Nodes is the number of nodes to generate.
	Nodes int
	// C1 scales the edge probability and thereby the connectivity
	// ("by changing c1 we could influence the number of edges
	// generated").
	C1 float64
	// C2 is the distance-decay exponent ("by changing c2 we could
	// influence the probability of generating edges between nodes that
	// are far apart").
	C2 float64
	// Extent is the side length of the square over which coordinates
	// are spread evenly. Zero selects DefaultExtent.
	Extent float64
	// UnitWeights makes every edge cost 1; otherwise the cost is the
	// Euclidean distance between the endpoints, as natural for the
	// paper's railway examples.
	UnitWeights bool
	// EnsureConnected adds a minimal set of extra edges joining the
	// connected components (each by the closest node pair), so that
	// path queries have answers. The paper's experiments only measure
	// fragmentation characteristics, but the disconnection-set
	// pipeline needs connected inputs.
	EnsureConnected bool
	// Seed seeds the deterministic random stream.
	Seed int64
}

// DefaultExtent is the coordinate interval used when Config.Extent is
// zero.
const DefaultExtent = 100.0

// DefaultC2 is the distance-decay exponent of the default configs; at
// this value E[e^(−c2·d)] over uniform point pairs in the default
// extent is ≈ 0.166 (measured), which DefaultsWithDegree uses to
// translate a target average degree into the paper's c1 parameter.
const DefaultC2 = 0.045

// decayExpectation is E[e^(−DefaultC2·d(p,q))] for p, q uniform in the
// default 100-square (Monte-Carlo estimate; see the calibration note in
// EXPERIMENTS.md).
const decayExpectation = 0.166

// DefaultsWithDegree returns a Config whose expected average undirected
// degree is approximately degree. Since P(p,q) = (c1/n²)·e^(−c2·d), the
// expected number of undirected edges is ≈ (c1/2)·E[e^(−c2·d)]
// independent of n, so c1 must scale linearly with n·degree.
//
// The paper's experiments use graphs with average degrees ≈ 4.1
// (Table 1: 4×25 nodes, 429 edges), ≈ 5.3 (Table 2: 4×150 nodes, 3167
// edges) and ≈ 2.8 (Table 3: 100 nodes, 279.5 edges); the harness
// passes those targets here.
func DefaultsWithDegree(n int, degree float64, seed int64) Config {
	return Config{
		Nodes:           n,
		C1:              degree * float64(n) / decayExpectation,
		C2:              DefaultC2,
		Extent:          DefaultExtent,
		EnsureConnected: true,
		Seed:            seed,
	}
}

// Defaults returns a Config in the regime of the paper's Table 1
// cluster graphs (average undirected degree ≈ 4.2).
func Defaults(n int, seed int64) Config {
	return DefaultsWithDegree(n, 4.2, seed)
}

// validate applies defaults and rejects nonsensical parameters.
func (c *Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("gen: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Extent == 0 {
		c.Extent = DefaultExtent
	}
	if c.Extent < 0 {
		return fmt.Errorf("gen: Extent must be positive, got %g", c.Extent)
	}
	if c.C1 < 0 || c.C2 < 0 {
		return fmt.Errorf("gen: C1 and C2 must be non-negative, got %g, %g", c.C1, c.C2)
	}
	return nil
}

// EdgeProbability evaluates the paper's probability function for nodes
// at distance d in a graph of n nodes, clamped to [0, 1].
func EdgeProbability(c1, c2 float64, n int, d float64) float64 {
	p := c1 / float64(n*n) * math.Exp(-c2*d)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// General generates a general graph (§4.2.2): coordinates spread evenly
// over the extent, symmetric edges drawn with P(p,q). Node IDs are
// 0..Nodes-1.
func General(cfg Config) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	placeNodes(g, rng, 0, cfg.Nodes, 0, 0, cfg.Extent)
	connectCluster(g, rng, 0, cfg.Nodes, cfg)
	if cfg.EnsureConnected {
		connectComponents(g, cfg.UnitWeights)
	}
	return g, nil
}

// placeNodes adds count nodes with IDs starting at firstID, coordinates
// uniform over the square [ox, ox+extent) × [oy, oy+extent).
func placeNodes(g *graph.Graph, rng *rand.Rand, firstID, count int, ox, oy, extent float64) {
	for i := 0; i < count; i++ {
		g.AddNode(graph.NodeID(firstID+i), graph.Coord{
			X: ox + rng.Float64()*extent,
			Y: oy + rng.Float64()*extent,
		})
	}
}

// connectCluster draws symmetric edges among the nodes
// firstID..firstID+count-1 with the probability function.
func connectCluster(g *graph.Graph, rng *rand.Rand, firstID, count int, cfg Config) {
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			u := graph.NodeID(firstID + i)
			v := graph.NodeID(firstID + j)
			d := g.EuclideanDistance(u, v)
			if rng.Float64() < EdgeProbability(cfg.C1, cfg.C2, count, d) {
				g.AddBoth(graph.Edge{From: u, To: v, Weight: edgeWeight(d, cfg.UnitWeights)})
			}
		}
	}
}

// edgeWeight returns the cost of an edge spanning distance d.
func edgeWeight(d float64, unit bool) float64 {
	if unit || d == 0 {
		return 1
	}
	return d
}

// connectComponents links the weakly connected components of g into one,
// joining each next component to the growing one by the closest node
// pair.
func connectComponents(g *graph.Graph, unitWeights bool) {
	for {
		comps := g.ConnectedComponents()
		if len(comps) <= 1 {
			return
		}
		// Join the second component to the first by the closest pair.
		bestD := math.Inf(1)
		var bu, bv graph.NodeID
		for _, u := range comps[0] {
			for _, v := range comps[1] {
				if d := g.EuclideanDistance(u, v); d < bestD {
					bestD, bu, bv = d, u, v
				}
			}
		}
		g.AddBoth(graph.Edge{From: bu, To: bv, Weight: edgeWeight(bestD, unitWeights)})
	}
}

// ClusterLink specifies that clusters A and B of a transportation graph
// are connected by Edges symmetric connections ("we were able to
// specify which fragments were connected to each other and by how many
// edges", §4.1).
type ClusterLink struct {
	A, B  int
	Edges int
}

// TransportConfig parameterises transportation-graph generation: a
// number of clusters, each generated per the embedded cluster Config,
// laid out on a grid and interconnected per Links.
type TransportConfig struct {
	// Clusters is the number of clusters.
	Clusters int
	// Cluster configures each cluster; Cluster.Nodes is the nodes per
	// cluster and Cluster.Seed the base seed (cluster i uses Seed+i).
	Cluster Config
	// Links lists the inter-cluster connections. Nil selects
	// DefaultLinks(Clusters).
	Links []ClusterLink
	// Gap is the empty margin between cluster squares, as a fraction of
	// the cluster extent. Zero selects 0.5.
	Gap float64
}

// DefaultLinks returns the Fig. 3-style linkage for f clusters: a cycle
// of the grid neighbours with alternating 2 and 3 connecting edges
// (averaging 2.25–2.5, close to the paper's reported 2.25).
func DefaultLinks(f int) []ClusterLink {
	if f <= 1 {
		return nil
	}
	links := make([]ClusterLink, 0, f)
	for i := 0; i < f; i++ {
		e := 2
		if i%4 == 3 {
			e = 3
		}
		links = append(links, ClusterLink{A: i, B: (i + 1) % f, Edges: e})
	}
	if f == 2 {
		// A 2-cycle would duplicate the pair; keep a single link.
		links = links[:1]
	}
	return links
}

// Transportation generates a transportation graph (Fig. 3): Clusters
// dense clusters on a grid, loosely interconnected. Cluster i owns node
// IDs [i*Nodes, (i+1)*Nodes). Inter-cluster links connect the
// geometrically closest node pairs of the two clusters, emulating
// border cities.
func Transportation(cfg TransportConfig) (*graph.Graph, error) {
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("gen: Clusters must be positive, got %d", cfg.Clusters)
	}
	cc := cfg.Cluster
	if err := cc.validate(); err != nil {
		return nil, err
	}
	if cfg.Gap == 0 {
		cfg.Gap = 0.5
	}
	if cfg.Gap < 0 {
		return nil, fmt.Errorf("gen: Gap must be non-negative, got %g", cfg.Gap)
	}
	links := cfg.Links
	if links == nil {
		links = DefaultLinks(cfg.Clusters)
	}
	for _, l := range links {
		if l.A < 0 || l.A >= cfg.Clusters || l.B < 0 || l.B >= cfg.Clusters || l.A == l.B {
			return nil, fmt.Errorf("gen: link %v references invalid clusters (have %d)", l, cfg.Clusters)
		}
		if l.Edges <= 0 {
			return nil, fmt.Errorf("gen: link %v must add at least one edge", l)
		}
	}

	g := graph.New()
	side := int(math.Ceil(math.Sqrt(float64(cfg.Clusters))))
	pitch := cc.Extent * (1 + cfg.Gap)
	for i := 0; i < cfg.Clusters; i++ {
		ox := float64(i%side) * pitch
		oy := float64(i/side) * pitch
		rng := rand.New(rand.NewSource(cc.Seed + int64(i)))
		first := i * cc.Nodes
		placeNodes(g, rng, first, cc.Nodes, ox, oy, cc.Extent)
		connectCluster(g, rng, first, cc.Nodes, cc)
		if cc.EnsureConnected {
			connectClusterComponents(g, i, cc)
		}
	}
	for _, l := range links {
		if err := linkClusters(g, l, cc); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// clusterNodes returns the node IDs of cluster i.
func clusterNodes(i, perCluster int) []graph.NodeID {
	ids := make([]graph.NodeID, perCluster)
	for k := range ids {
		ids[k] = graph.NodeID(i*perCluster + k)
	}
	return ids
}

// connectClusterComponents restricts connectComponents to one cluster's
// node range so that EnsureConnected never adds inter-cluster edges.
func connectClusterComponents(g *graph.Graph, cluster int, cc Config) {
	ids := clusterNodes(cluster, cc.Nodes)
	inCluster := make(map[graph.NodeID]bool, len(ids))
	for _, id := range ids {
		inCluster[id] = true
	}
	for {
		// Components of the induced subgraph, computed via undirected BFS
		// constrained to the cluster.
		seen := make(map[graph.NodeID]bool)
		var comps [][]graph.NodeID
		for _, start := range ids {
			if seen[start] {
				continue
			}
			var comp []graph.NodeID
			stack := []graph.NodeID{start}
			seen[start] = true
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp = append(comp, u)
				for _, n := range g.Neighbors(u) {
					if inCluster[n] && !seen[n] {
						seen[n] = true
						stack = append(stack, n)
					}
				}
			}
			comps = append(comps, comp)
		}
		if len(comps) <= 1 {
			return
		}
		bestD := math.Inf(1)
		var bu, bv graph.NodeID
		for _, u := range comps[0] {
			for _, v := range comps[1] {
				if d := g.EuclideanDistance(u, v); d < bestD {
					bestD, bu, bv = d, u, v
				}
			}
		}
		g.AddBoth(graph.Edge{From: bu, To: bv, Weight: edgeWeight(bestD, cc.UnitWeights)})
	}
}

// linkClusters adds l.Edges symmetric edges between the closest distinct
// node pairs of clusters l.A and l.B — the "border cities" of the
// paper's railway example. Each endpoint is used at most once per link
// so the future disconnection set gets distinct nodes.
func linkClusters(g *graph.Graph, l ClusterLink, cc Config) error {
	type pair struct {
		u, v graph.NodeID
		d    float64
	}
	var pairs []pair
	for _, u := range clusterNodes(l.A, cc.Nodes) {
		for _, v := range clusterNodes(l.B, cc.Nodes) {
			pairs = append(pairs, pair{u, v, g.EuclideanDistance(u, v)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})
	used := make(map[graph.NodeID]bool)
	added := 0
	for _, p := range pairs {
		if added == l.Edges {
			break
		}
		if used[p.u] || used[p.v] {
			continue
		}
		used[p.u], used[p.v] = true, true
		g.AddBoth(graph.Edge{From: p.u, To: p.v, Weight: edgeWeight(p.d, cc.UnitWeights)})
		added++
	}
	if added < l.Edges {
		return fmt.Errorf("gen: link %v: only %d distinct border pairs available", l, added)
	}
	return nil
}
