package sim

import (
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// relationFromBase converts a graph into its edge relation (wrapper kept
// local so sim.go reads as the simulation protocol only).
func relationFromBase(g *graph.Graph) *relation.Relation {
	return relation.FromGraph(g)
}

// shortestFrom runs the source-restricted min-cost fixpoint.
func shortestFrom(rel *relation.Relation, source graph.NodeID) (*relation.Relation, tc.Stats, error) {
	return tc.ShortestFrom(rel, []graph.NodeID{source})
}

// reachableFromBitset runs the source-restricted bitset reachability
// kernel.
func reachableFromBitset(rel *relation.Relation, source graph.NodeID) (*relation.Relation, tc.Stats, error) {
	return tc.BitsetReachableFrom(rel, []graph.NodeID{source})
}

// denseCostFrom runs the source-restricted dense cost kernel.
func denseCostFrom(rel *relation.Relation, source graph.NodeID) (*relation.Relation, tc.Stats, error) {
	return tc.DenseCostFrom(rel, []graph.NodeID{source})
}
