package sim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
)

// QueryPair is one shortest-path request of a batch.
type QueryPair struct {
	Source, Target graph.NodeID
}

// BatchReport aggregates a query batch over the simulated cluster.
type BatchReport struct {
	// Queries is the number of requests; Answered how many were
	// reachable.
	Queries, Answered int
	// MeanSpeedup averages per-query speedups over answered queries.
	MeanSpeedup float64
	// MeanSitesUsed averages the sites touched per query.
	MeanSitesUsed float64
	// Utilization is Σ site busy / (sites used × phase-1 makespan),
	// averaged over queries: 1.0 means perfectly balanced fragments,
	// low values mean processors idling — the paper's load-balance goal
	// measured directly.
	Utilization float64
	// TotalParallel and TotalSequential are the summed simulated times.
	TotalParallel, TotalSequential time.Duration
	// Messages and TuplesShipped sum the interconnect traffic.
	Messages, TuplesShipped int
}

// Format renders the batch summary.
func (b *BatchReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch: %d queries (%d answered)\n", b.Queries, b.Answered)
	fmt.Fprintf(&sb, "  mean speedup:    %.2f\n", b.MeanSpeedup)
	fmt.Fprintf(&sb, "  mean sites used: %.1f\n", b.MeanSitesUsed)
	fmt.Fprintf(&sb, "  utilization:     %.2f\n", b.Utilization)
	fmt.Fprintf(&sb, "  simulated time:  %v parallel vs %v sequential\n",
		b.TotalParallel.Round(time.Microsecond), b.TotalSequential.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  traffic:         %d messages, %d tuples\n", b.Messages, b.TuplesShipped)
	return sb.String()
}

// RunBatch executes a batch of queries and aggregates the reports.
func (c *Cluster) RunBatch(queries []QueryPair, engine dsa.Engine) (*BatchReport, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	b := &BatchReport{Queries: len(queries)}
	var utilSum float64
	utilCount := 0
	for _, q := range queries {
		rep, err := c.Run(q.Source, q.Target, engine)
		if err != nil {
			return nil, err
		}
		b.Messages += len(rep.Messages)
		b.TuplesShipped += rep.TuplesShipped
		if !rep.Reachable {
			continue
		}
		b.Answered++
		b.MeanSpeedup += rep.Speedup
		b.MeanSitesUsed += float64(rep.SitesUsed)
		b.TotalParallel += rep.ParallelElapsed
		b.TotalSequential += rep.SequentialElapsed
		if rep.SitesUsed > 0 && rep.Phase1Elapsed > 0 {
			var busy time.Duration
			for _, d := range rep.SiteBusy {
				busy += d
			}
			utilSum += float64(busy) / (float64(rep.SitesUsed) * float64(rep.Phase1Elapsed))
			utilCount++
		}
	}
	if b.Answered > 0 {
		b.MeanSpeedup /= float64(b.Answered)
		b.MeanSitesUsed /= float64(b.Answered)
	}
	if utilCount > 0 {
		b.Utilization = utilSum / float64(utilCount)
	}
	return b, nil
}
