package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// chainStore builds a loosely connected store over a transportation
// graph fragmented by the linear algorithm.
func chainStore(t testing.TB, seed int64, clusters, perCluster, frags int) (*dsa.Store, *graph.Graph) {
	t.Helper()
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: clusters,
		Cluster:  gen.Defaults(perCluster, seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(res.Fragmentation, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultCostModel()); err == nil {
		t.Error("nil store accepted")
	}
	st, _ := chainStore(t, 1, 2, 8, 2)
	for _, cm := range []CostModel{
		{TupleRate: 0},
		{TupleRate: -5},
		{TupleRate: 1, MessageLatency: -1},
		{TupleRate: 1, TupleTransfer: -1},
	} {
		if _, err := New(st, cm); err == nil {
			t.Errorf("cost model %+v accepted", cm)
		}
	}
}

func TestRunMatchesStoreAnswer(t *testing.T) {
	st, g := chainStore(t, 7, 3, 10, 3)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	src, dst := nodes[0], nodes[len(nodes)-1]
	rep, err := cl.Run(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reachable != want.Reachable {
		t.Fatalf("reachability mismatch: sim %v, store %v", rep.Reachable, want.Reachable)
	}
	if rep.Reachable && math.Abs(rep.Cost-want.Cost) > 1e-9 {
		t.Errorf("cost: sim %v, store %v", rep.Cost, want.Cost)
	}
}

func TestNoInterSiteMessages(t *testing.T) {
	// The defining communication property: every message involves the
	// coordinator; sites never talk to each other.
	st, g := chainStore(t, 11, 4, 10, 4)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	rep, err := cl.Run(nodes[0], nodes[len(nodes)-1], dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InterSiteMessages != 0 {
		t.Errorf("inter-site messages = %d, want 0", rep.InterSiteMessages)
	}
	for _, m := range rep.Messages {
		if m.From != CoordinatorID && m.To != CoordinatorID {
			t.Errorf("site-to-site message %+v", m)
		}
	}
	if len(rep.Messages) == 0 {
		t.Error("no messages recorded")
	}
}

func TestSelfQueryAndUnreachable(t *testing.T) {
	st, g := chainStore(t, 13, 2, 8, 2)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	rep, err := cl.Run(nodes[0], nodes[0], dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reachable || rep.Cost != 0 {
		t.Errorf("self query = %+v", rep)
	}

	// Disconnected store.
	g2 := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 5, To: 6, Weight: 1}
	g2.AddEdge(e1)
	g2.AddEdge(e2)
	fr, err := fragment.New(g2, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := New(st2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cl2.Run(0, 6, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Reachable {
		t.Error("unreachable query reported reachable")
	}
}

func TestSimulatedClockConsistency(t *testing.T) {
	st, g := chainStore(t, 17, 4, 12, 4)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	rep, err := cl.Run(nodes[0], nodes[len(nodes)-1], dsa.EngineSemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reachable {
		t.Skip("random graph pair unreachable")
	}
	if rep.ParallelElapsed != rep.Phase1Elapsed+rep.AssemblyElapsed {
		t.Error("ParallelElapsed must be Phase1 + Assembly")
	}
	var sum, max int64
	for _, b := range rep.SiteBusy {
		sum += int64(b)
		if int64(b) > max {
			max = int64(b)
		}
	}
	if int64(rep.Phase1Elapsed) != max {
		t.Errorf("Phase1Elapsed %v != max site busy %v", rep.Phase1Elapsed, max)
	}
	if rep.SequentialElapsed < rep.Phase1Elapsed {
		t.Error("sequential time cannot be below the critical path")
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
}

func TestMultiSiteQueryUsesMultipleSites(t *testing.T) {
	st, g := chainStore(t, 19, 4, 10, 4)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Take endpoints in the first and last fragments.
	frags := st.Fragmentation().Fragments()
	src := frags[0].Nodes()[0]
	dst := frags[len(frags)-1].Nodes()[0]
	_ = g
	rep, err := cl.Run(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SitesUsed < 2 {
		t.Errorf("sites used = %d, want ≥ 2", rep.SitesUsed)
	}
	if len(rep.SiteBusy) != rep.SitesUsed {
		t.Errorf("SiteBusy has %d entries for %d sites", len(rep.SiteBusy), rep.SitesUsed)
	}
}

func TestCentralizedElapsed(t *testing.T) {
	st, g := chainStore(t, 23, 3, 10, 3)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	for _, e := range []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineBitset, dsa.EngineDense} {
		d, err := cl.CentralizedElapsed(nodes[0], e)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Errorf("engine %d: centralized elapsed = %v", e, d)
		}
	}
	if _, err := cl.CentralizedElapsed(nodes[0], dsa.Engine(9)); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestPropertySimAgreesWithGlobal: the simulated pipeline returns the
// global shortest-path cost on loosely connected stores.
func TestPropertySimAgreesWithGlobal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2 + rng.Intn(2),
			Cluster:  gen.Defaults(8, seed),
		})
		if err != nil {
			return false
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: 3})
		if err != nil {
			return false
		}
		st, err := dsa.Build(res.Fragmentation, dsa.Options{})
		if err != nil {
			return false
		}
		cl, err := New(st, DefaultCostModel())
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 3; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			rep, err := cl.Run(src, dst, dsa.EngineDijkstra)
			if err != nil {
				return false
			}
			want := g.Distance(src, dst)
			if rep.Reachable != !math.IsInf(want, 1) {
				return false
			}
			if rep.Reachable && math.Abs(rep.Cost-want) > 1e-9 {
				return false
			}
			if rep.InterSiteMessages != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRunBatch(t *testing.T) {
	st, g := chainStore(t, 29, 4, 12, 4)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunBatch(nil, dsa.EngineDijkstra); err == nil {
		t.Error("empty batch accepted")
	}
	nodes := g.Nodes()
	var queries []QueryPair
	for i := 0; i < 10; i++ {
		queries = append(queries, QueryPair{
			Source: nodes[(i*17)%len(nodes)],
			Target: nodes[(i*31+5)%len(nodes)],
		})
	}
	rep, err := cl.RunBatch(queries, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 10 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.Answered == 0 {
		t.Skip("no reachable pairs in random batch")
	}
	if rep.Utilization <= 0 || rep.Utilization > 1+1e-9 {
		t.Errorf("utilization = %v, want (0, 1]", rep.Utilization)
	}
	if rep.MeanSitesUsed < 1 {
		t.Errorf("mean sites = %v", rep.MeanSitesUsed)
	}
	// Small Dijkstra legs can make the parallel run slower than the
	// one-machine sum (fixed message latency dominates µs-scale work) —
	// that is a faithful outcome, so only positivity is asserted here.
	if rep.TotalSequential <= 0 || rep.TotalParallel <= 0 {
		t.Errorf("times = %v / %v", rep.TotalSequential, rep.TotalParallel)
	}
	s := rep.Format()
	if !strings.Contains(s, "utilization") {
		t.Errorf("Format() = %q", s)
	}
}

func TestUtilizationReflectsBalance(t *testing.T) {
	// A perfectly balanced two-fragment chain (identical halves) should
	// show higher utilization than a wildly unbalanced split of the
	// same path.
	g := graph.New()
	const n = 40
	for i := 0; i < n; i++ {
		g.AddBoth(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1})
	}
	half := func(a, b int) []graph.Edge {
		var es []graph.Edge
		for i := a; i < b; i++ {
			e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
			es = append(es, e, e.Reverse())
		}
		return es
	}
	balanced, err := fragment.New(g, [][]graph.Edge{half(0, n/2), half(n/2, n)})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := fragment.New(g, [][]graph.Edge{half(0, 4), half(4, n)})
	if err != nil {
		t.Fatal(err)
	}
	util := func(fr *fragment.Fragmentation) float64 {
		st, err := dsa.Build(fr, dsa.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(st, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cl.RunBatch([]QueryPair{{Source: 0, Target: n}}, dsa.EngineSemiNaive)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Utilization
	}
	ub, us := util(balanced), util(skewed)
	if ub <= us {
		t.Errorf("balanced utilization %v not above skewed %v", ub, us)
	}
}

// TestRunBitsetEngineReachability: the simulated pipeline with the
// connectivity-only bitset engine reports the correct Reachable flag
// and charges positive busy time on multi-site queries.
func TestRunBitsetEngineReachability(t *testing.T) {
	st, g := chainStore(t, 29, 3, 10, 3)
	cl, err := New(st, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	frags := st.Fragmentation().Fragments()
	src := frags[0].Nodes()[0]
	dst := frags[len(frags)-1].Nodes()[0]
	rep, err := cl.Run(src, dst, dsa.EngineBitset)
	if err != nil {
		t.Fatal(err)
	}
	_, want := g.Reachable(src)[dst]
	if rep.Reachable != want {
		t.Errorf("Reachable = %v, want %v", rep.Reachable, want)
	}
	if !math.IsInf(rep.Cost, 1) {
		t.Errorf("Cost = %v, want +Inf (presence markers are not path costs)", rep.Cost)
	}
	if rep.InterSiteMessages != 0 {
		t.Errorf("inter-site messages = %d, want 0", rep.InterSiteMessages)
	}
}
