// Package sim simulates the shared-nothing multiprocessor database
// machine the paper targets (PRISMA/DB, references [4, 14, 20]): one
// site process per fragment, a coordinator, and Go channels as the
// interconnect.
//
// The simulator executes disconnection-set queries with real
// goroutine-per-site concurrency while making the communication pattern
// observable: every task and result shipment is counted, and the
// defining property of the disconnection set approach — "neither
// communication nor synchronization is required during the first phase
// of the computation" — becomes an assertable fact (InterSiteMessages
// is structurally zero; only coordinator↔site traffic exists).
//
// Because wall-clock times on a time-shared laptop are noisy, the
// simulator additionally charges a deterministic cost model (tuples
// processed per second, per-message latency, per-tuple transfer) and
// reports the simulated makespan, the simulated single-processor time,
// and their ratio — the speedup the paper's §2.1 claims is linear for
// good fragmentations.
package sim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
)

// CoordinatorID is the pseudo-site ID of the coordinator in message
// records.
const CoordinatorID = -1

// CostModel charges simulated time for computation and communication.
type CostModel struct {
	// TupleRate is the number of derived tuples a site processes per
	// simulated second.
	TupleRate float64
	// MessageLatency is the fixed cost per message.
	MessageLatency time.Duration
	// TupleTransfer is the added cost per shipped tuple.
	TupleTransfer time.Duration
}

// DefaultCostModel returns a model in the regime of late-80s
// shared-nothing machines (tens of thousands of tuples per second per
// node, millisecond-scale messages), the hardware class of PRISMA.
func DefaultCostModel() CostModel {
	return CostModel{
		TupleRate:      50_000,
		MessageLatency: 2 * time.Millisecond,
		TupleTransfer:  20 * time.Microsecond,
	}
}

// validate rejects nonsensical models.
func (c CostModel) validate() error {
	if c.TupleRate <= 0 {
		return fmt.Errorf("sim: TupleRate must be positive, got %g", c.TupleRate)
	}
	if c.MessageLatency < 0 || c.TupleTransfer < 0 {
		return fmt.Errorf("sim: negative communication costs")
	}
	return nil
}

// Message records one shipment over the simulated interconnect.
type Message struct {
	// From and To are site IDs (CoordinatorID for the coordinator).
	From, To int
	// Tuples is the payload cardinality (0 for task messages).
	Tuples int
}

// Cluster is a deployed simulation: a store plus a cost model.
type Cluster struct {
	store *dsa.Store
	cost  CostModel
}

// New builds a cluster over a disconnection-set store.
func New(store *dsa.Store, cost CostModel) (*Cluster, error) {
	if store == nil {
		return nil, fmt.Errorf("sim: nil store")
	}
	if err := cost.validate(); err != nil {
		return nil, err
	}
	return &Cluster{store: store, cost: cost}, nil
}

// Store returns the underlying disconnection-set store.
func (c *Cluster) Store() *dsa.Store { return c.store }

// Report is the outcome of one simulated query.
type Report struct {
	// Cost, Reachable and BestChain are the query answer. Cost is +Inf
	// when unreachable — and under the connectivity-only
	// dsa.EngineBitset it is +Inf for every non-trivial query, because
	// the leg facts carry presence markers rather than path costs (use
	// Reachable; BestChain is then a chain witnessing connectivity, not
	// the cheapest one). The source == target fast path still reports
	// the true cost 0.
	Cost      float64
	Reachable bool
	BestChain []int
	// SitesUsed is the number of sites that executed at least one leg.
	SitesUsed int
	// SiteBusy is the simulated busy time per site.
	SiteBusy map[int]time.Duration
	// Phase1Elapsed is the simulated phase-1 makespan: the slowest
	// site's busy time (sites run independently, so the maximum is the
	// parallel elapsed time).
	Phase1Elapsed time.Duration
	// AssemblyElapsed is the simulated cost of the final joins at the
	// coordinator, including result shipment.
	AssemblyElapsed time.Duration
	// ParallelElapsed = Phase1Elapsed + AssemblyElapsed.
	ParallelElapsed time.Duration
	// SequentialElapsed is the simulated time of the same work on one
	// processor: the sum of all site busy times plus assembly without
	// shipment.
	SequentialElapsed time.Duration
	// Speedup = SequentialElapsed / ParallelElapsed.
	Speedup float64
	// Messages is the full interconnect trace (coordinator↔sites).
	Messages []Message
	// InterSiteMessages counts site↔site messages; the disconnection
	// set approach never sends any (always 0, asserted by tests).
	InterSiteMessages int
	// TuplesShipped is the total result payload.
	TuplesShipped int
}

// legWork converts a leg's statistics into simulated busy time.
func (c *Cluster) legWork(lr *dsa.LegResult) time.Duration {
	tuples := lr.Stats.DerivedTuples + lr.Stats.ResultTuples + len(lr.Leg.Entry)
	sec := float64(tuples) / c.cost.TupleRate
	return time.Duration(sec * float64(time.Second))
}

// Run executes one shortest-path query on the simulated cluster.
func (c *Cluster) Run(source, target graph.NodeID, engine dsa.Engine) (*Report, error) {
	plan, err := c.store.NewPlan(source, target)
	if err != nil {
		return nil, err
	}
	rep := &Report{Cost: math.Inf(1), SiteBusy: make(map[int]time.Duration)}
	if source == target {
		rep.Reachable = true
		rep.Cost = 0
		rep.Speedup = 1
		return rep, nil
	}
	if len(plan.Chains) == 0 {
		rep.Speedup = 1
		return rep, nil
	}

	// Group legs per site.
	bySite := make(map[int][]int)
	for i, l := range plan.Legs {
		bySite[l.SiteID] = append(bySite[l.SiteID], i)
	}
	rep.SitesUsed = len(bySite)

	type taskMsg struct {
		legIdx int
		leg    dsa.Leg
	}
	type resultMsg struct {
		legIdx int
		siteID int
		lr     *dsa.LegResult
		err    error
	}
	resultCh := make(chan resultMsg, len(plan.Legs))

	var mu sync.Mutex // guards rep.Messages
	record := func(m Message) {
		mu.Lock()
		rep.Messages = append(rep.Messages, m)
		mu.Unlock()
	}

	// Site processes: receive tasks, execute, ship results. There is no
	// channel between two sites — phase 1 is communication-free by
	// construction.
	var wg sync.WaitGroup
	for siteID, legIdxs := range bySite {
		taskCh := make(chan taskMsg, len(legIdxs))
		for _, i := range legIdxs {
			record(Message{From: CoordinatorID, To: siteID})
			taskCh <- taskMsg{legIdx: i, leg: plan.Legs[i]}
		}
		close(taskCh)
		wg.Add(1)
		go func(id int, tasks <-chan taskMsg) {
			defer wg.Done()
			for t := range tasks {
				lr, err := c.store.ExecuteLeg(t.leg, engine)
				n := 0
				if lr != nil {
					n = lr.Rel.Len()
				}
				record(Message{From: id, To: CoordinatorID, Tuples: n})
				resultCh <- resultMsg{legIdx: t.legIdx, siteID: id, lr: lr, err: err}
			}
		}(siteID, taskCh)
	}
	wg.Wait()
	close(resultCh)

	results := make([]*dsa.LegResult, len(plan.Legs))
	for m := range resultCh {
		if m.err != nil {
			return nil, m.err
		}
		results[m.legIdx] = m.lr
		rep.SiteBusy[m.siteID] += c.legWork(m.lr)
		rep.TuplesShipped += m.lr.Rel.Len()
	}

	// Assemble at the coordinator.
	out, err := c.store.Assemble(plan, results)
	if err != nil {
		return nil, err
	}
	rep.Cost = out.Cost
	rep.Reachable = out.Reachable
	rep.BestChain = out.BestChain
	if engine == dsa.EngineBitset {
		// Presence-marker sums are not path costs; never report one.
		rep.Cost = math.Inf(1)
	}

	// Simulated clock.
	var sum time.Duration
	for _, busy := range rep.SiteBusy {
		if busy > rep.Phase1Elapsed {
			rep.Phase1Elapsed = busy
		}
		sum += busy
	}
	assembleSec := float64(rep.TuplesShipped) / c.cost.TupleRate
	assembleCompute := time.Duration(assembleSec * float64(time.Second))
	// Shipping: the interconnect carries coordinator↔site messages to
	// distinct sites concurrently, so a query pays one task round and
	// one result round of latency (the paper additionally notes that
	// "pipelining may be used" for the assembly joins), plus the
	// serialised transfer of the small result payloads.
	shipping := 2*c.cost.MessageLatency +
		time.Duration(rep.TuplesShipped)*c.cost.TupleTransfer
	rep.AssemblyElapsed = assembleCompute + shipping
	rep.ParallelElapsed = rep.Phase1Elapsed + rep.AssemblyElapsed
	rep.SequentialElapsed = sum + assembleCompute
	if rep.ParallelElapsed > 0 {
		rep.Speedup = float64(rep.SequentialElapsed) / float64(rep.ParallelElapsed)
	} else {
		rep.Speedup = 1
	}
	return rep, nil
}

// CentralizedElapsed simulates the baseline a centralized evaluation
// would need for the same query: one processor computing the
// source-restricted shortest-path fixpoint over the whole unfragmented
// graph, charged under the same cost model.
func (c *Cluster) CentralizedElapsed(source graph.NodeID, engine dsa.Engine) (time.Duration, error) {
	base := c.store.Fragmentation().Base()
	switch engine {
	case dsa.EngineDijkstra:
		t0 := time.Now()
		dist, _ := base.ShortestPaths(source)
		_ = time.Since(t0)
		sec := float64(len(dist)+base.NumEdges()) / c.cost.TupleRate
		return time.Duration(sec * float64(time.Second)), nil
	case dsa.EngineSemiNaive, dsa.EngineBitset, dsa.EngineDense:
		// Charge the engine's own work units on the full graph: derived
		// tuples for the semi-naive fixpoint, derived component bits
		// for the bitset kernel, successful relaxations for the dense
		// cost kernel.
		kernel := shortestFrom
		switch engine {
		case dsa.EngineBitset:
			kernel = reachableFromBitset
		case dsa.EngineDense:
			kernel = denseCostFrom
		}
		_, stats, err := kernel(relationFromBase(base), source)
		if err != nil {
			return 0, err
		}
		sec := float64(stats.DerivedTuples+stats.ResultTuples) / c.cost.TupleRate
		return time.Duration(sec * float64(time.Second)), nil
	}
	return 0, fmt.Errorf("sim: unknown engine %d", engine)
}
