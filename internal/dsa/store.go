// Package dsa implements the disconnection set approach of Houtsma,
// Apers and Ceri (VLDB'90), the parallel transitive-closure strategy
// whose fragmentation-design problem the ICDE'93 paper studies.
//
// A Store deploys a fragmentation: one Site per fragment R_i, each
// holding the induced subgraph G_i and the complementary information of
// every disconnection set the fragment participates in — the global
// shortest-path cost between every pair of that disconnection set's
// nodes, "stored at both sites storing the fragments R_i and R_j"
// (§2.1). Queries are answered by per-fragment searches that never
// leave their site (augmented with the complementary shortcuts),
// followed by an assembly phase of small relational joins; with a
// loosely connected fragmentation the result is exact, "answers are
// correct and precise".
package dsa

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"runtime"
	"sync/atomic"

	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// CompInfo is the complementary information of one disconnection set:
// the cost of the global shortest path between every ordered pair of
// its nodes (pairs with no connecting path are absent). For the
// reachability problem the same table serves as the connectivity
// relation (present = connected).
type CompInfo struct {
	// Pair identifies the disconnection set DS_ij.
	Pair fragment.Pair
	// Nodes is the sorted disconnection set.
	Nodes []graph.NodeID
	// Cost maps ordered node pairs (a, b), a ≠ b, to the global
	// shortest-path cost from a to b.
	Cost map[[2]graph.NodeID]float64
}

// ShortcutEdges renders the complementary information as extra edges:
// adding them to a fragment's subgraph lets a purely local search
// account for path segments that leave the fragment and return through
// the same disconnection set (the footnote of §2.1: "the shortest path
// might include nodes outside the chain, however, their contribution is
// precomputed in the complementary information").
func (ci *CompInfo) ShortcutEdges() []graph.Edge {
	edges := make([]graph.Edge, 0, len(ci.Cost))
	for p, c := range ci.Cost {
		edges = append(edges, graph.Edge{From: p[0], To: p[1], Weight: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return edges
}

// Site is one processor of the deployment: a fragment, its subgraph,
// and the complementary information of all its disconnection sets.
type Site struct {
	// ID is the fragment ID this site stores.
	ID int
	// Frag is the fragment.
	Frag *fragment.Fragment
	// Local is G_i — the subgraph induced by the fragment's edges.
	Local *graph.Graph
	// Comp holds the complementary information of every disconnection
	// set involving this fragment, keyed by the normalised pair.
	Comp map[fragment.Pair]*CompInfo
	// augmented is Local plus every shortcut edge of Comp; all local
	// searches run on it.
	augmented *graph.Graph
	// localRel is the augmented subgraph as an edge relation, for the
	// semi-naive and bitset local engines. It is built lazily on first
	// use (relOnce): boxing every edge into relational tuples is pure
	// overhead for sites only ever queried through the graph-backed
	// Dijkstra engine or a restored dense kernel, and skipping it keeps
	// both Build and the snapshot-restore path off the hot boot path.
	relOnce  sync.Once
	localRel *relation.Relation
	// dense is the CSR snapshot of localRel the dense cost engine runs
	// on, built lazily once per deployment (updates rebuild the sites,
	// so a snapshot can never go stale within a site's lifetime).
	// densePrimed records that the build ran — the write path reads it
	// to pre-warm rebuilt sites off the query path.
	denseOnce   sync.Once
	dense       *tc.DenseGraph
	denseErr    error
	densePrimed atomic.Bool
}

// denseKernel returns the site's CSR snapshot, building it on first
// use. Construction fails on input the kernel cannot serve — notably
// negative edge weights, which graph files may carry — and the error
// is memoized and surfaced per query, exactly like the semi-naive
// engine's refusal (a worker-goroutine panic would kill the serving
// daemon).
// rel returns the augmented subgraph as an edge relation, building it
// on first use. Safe for concurrent callers (sync.Once).
func (s *Site) rel() *relation.Relation {
	s.relOnce.Do(func() {
		s.localRel = relation.FromGraph(s.augmented)
	})
	return s.localRel
}

func (s *Site) denseKernel() (*tc.DenseGraph, error) {
	s.denseOnce.Do(func() {
		defer s.densePrimed.Store(true)
		d, err := tc.NewDenseGraph(s.rel())
		if err != nil {
			s.denseErr = fmt.Errorf("dsa: site %d dense snapshot: %v", s.ID, err)
			return
		}
		s.dense = d
	})
	return s.dense, s.denseErr
}

// Augmented returns the search graph of the site: the fragment plus the
// complementary shortcut edges.
func (s *Site) Augmented() *graph.Graph { return s.augmented }

// PreprocessStats reports the cost of building the complementary
// information — "the disadvantage of the disconnection set approach is
// mainly due to the pre-processing required" (§2.1).
type PreprocessStats struct {
	// DijkstraRuns is the number of single-source shortest-path
	// computations over the full graph.
	DijkstraRuns int
	// PairsStored is the total number of (a, b, cost) complementary
	// facts stored across all sites (each DS is stored at two sites).
	PairsStored int
	// DisconnectionSets is the number of non-empty DS_ij.
	DisconnectionSets int
}

// Problem selects the path problem a store is precomputed for — "these
// properties depend on the particular path problem considered. For
// instance, for the shortest path problem it is required to precompute
// the shortest path among any two cities on the border" (§2.1).
type Problem int

const (
	// ProblemShortestPath precomputes global minimum costs between
	// disconnection-set nodes; stores answer both Connected and Query.
	ProblemShortestPath Problem = iota
	// ProblemReachability precomputes only connectivity between
	// disconnection-set nodes, with cheap BFS preprocessing. Such a
	// store answers Connected; cost queries are refused (the
	// complementary information cannot support them).
	ProblemReachability
)

// String names the problem the way the CLI flags spell it.
func (p Problem) String() string {
	switch p {
	case ProblemShortestPath:
		return "shortestpath"
	case ProblemReachability:
		return "reachability"
	}
	return fmt.Sprintf("problem(%d)", int(p))
}

// ParseProblem resolves a problem name, case-insensitively. Unknown
// names return an error wrapping ErrUnknownProblem — call sites must
// branch with errors.Is, never by matching problem-name strings
// themselves.
func ParseProblem(name string) (Problem, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "shortestpath", "shortest-path", "cost":
		return ProblemShortestPath, nil
	case "reachability", "connectivity":
		return ProblemReachability, nil
	}
	return 0, fmt.Errorf("dsa: %w %q (want shortestpath or reachability)", ErrUnknownProblem, name)
}

// Store is a fragmentation deployed for disconnection-set query
// processing.
//
// A Store is immutable after Build: queries only read it (the one lazy
// per-site structure, the dense CSR snapshot, is sync.Once-guarded), so
// any number of goroutines may query one Store concurrently without
// locking. Updates go through Apply, which returns a NEW store sharing
// every untouched site with its predecessor — serving layers swap a
// store pointer atomically instead of locking readers out. The legacy
// InsertEdge/DeleteEdge wrappers overwrite the receiver in place and
// therefore still require external serialisation against readers.
type Store struct {
	fr      *fragment.Fragmentation
	fg      *fragment.FragGraph
	sites   []*Site
	prep    PreprocessStats
	problem Problem
	// maxChains bounds chain enumeration for cyclic fragmentation
	// graphs; 0 means unlimited.
	maxChains int
	// epoch counts the update batches applied since Build. Every
	// successful Apply (and the per-op legacy wrappers over it)
	// increments it, so any state derived from the store (memoized leg
	// results, prepared plans) can be tagged with the epoch it was
	// computed under and discarded when the store has moved on.
	epoch uint64
}

// Options configures Build.
type Options struct {
	// MaxChains bounds how many fragment chains a query considers when
	// the fragmentation graph is cyclic (0 = all). Loosely connected
	// fragmentations have at most one chain and never hit the bound.
	MaxChains int
	// Problem selects the precomputed path problem (default
	// ProblemShortestPath).
	Problem Problem
}

// Build precomputes a Store from a fragmentation: for every node of
// every disconnection set it runs one global single-source search and
// stores the costs to the other members of that disconnection set. The
// preprocessing is the only phase that reads the whole graph; queries
// touch only per-site data.
func Build(fr *fragment.Fragmentation, opt Options) (*Store, error) {
	if fr == nil {
		return nil, fmt.Errorf("dsa: nil fragmentation")
	}
	if opt.MaxChains < 0 {
		return nil, fmt.Errorf("dsa: MaxChains must be non-negative, got %d", opt.MaxChains)
	}
	if opt.Problem != ProblemShortestPath && opt.Problem != ProblemReachability {
		return nil, fmt.Errorf("dsa: %w %d", ErrUnknownProblem, opt.Problem)
	}
	st := &Store{fr: fr, fg: fr.FragmentationGraph(), maxChains: opt.MaxChains, problem: opt.Problem}
	base := fr.Base()

	dss := fr.DisconnectionSets()
	st.prep.DisconnectionSets = len(dss)

	comp, runs, err := computeComp(context.Background(), base, dss, opt.Problem)
	if err != nil {
		return nil, err
	}
	st.prep.DijkstraRuns = runs

	shared := fr.SharedNodes()
	for _, f := range fr.Fragments() {
		site := buildSite(f, base, shared, comp)
		for _, ci := range site.Comp {
			st.prep.PairsStored += len(ci.Cost)
		}
		st.sites = append(st.sites, site)
	}
	return st, nil
}

// computeComp runs one global single-source search per distinct
// disconnection-set node (a node can belong to several disconnection
// sets; the run is shared) and builds the complementary tables. The
// shortest-path problem needs Dijkstra; reachability gets away with BFS
// — cheaper preprocessing for a weaker complementary table.
//
// The searches are independent, so they fan out over GOMAXPROCS
// goroutines — this is what keeps a batched update's preprocessing
// window short (the write path re-runs computeComp on every batch).
// ctx is observed between searches, so a canceled batched update
// abandons its preprocessing promptly.
func computeComp(ctx context.Context, base *graph.Graph, dss map[fragment.Pair][]graph.NodeID, problem Problem) (map[fragment.Pair]*CompInfo, int, error) {
	distinct := make(map[graph.NodeID]struct{})
	for _, nodes := range dss {
		for _, id := range nodes {
			distinct[id] = struct{}{}
		}
	}
	ids := make([]graph.NodeID, 0, len(distinct))
	for id := range distinct {
		ids = append(ids, id)
	}
	dists := make([]map[graph.NodeID]float64, len(ids))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) || ctx.Err() != nil {
					return
				}
				switch problem {
				case ProblemShortestPath:
					dists[i], _ = base.ShortestPaths(ids[i])
				case ProblemReachability:
					dist := make(map[graph.NodeID]float64)
					for n := range base.Reachable(ids[i]) {
						dist[n] = 1 // presence marker; magnitude is meaningless
					}
					dists[i] = dist
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, 0, canceledErr(ctx)
	}
	runs := len(ids)
	global := make(map[graph.NodeID]map[graph.NodeID]float64, len(ids))
	for i, id := range ids {
		global[id] = dists[i]
	}

	comp := make(map[fragment.Pair]*CompInfo, len(dss))
	for p, nodes := range dss {
		ci := &CompInfo{Pair: p, Nodes: nodes, Cost: make(map[[2]graph.NodeID]float64)}
		for _, a := range nodes {
			for _, b := range nodes {
				if a == b {
					continue
				}
				if d, ok := global[a][b]; ok {
					ci.Cost[[2]graph.NodeID{a, b}] = d
				}
			}
		}
		comp[p] = ci
	}
	return comp, runs, nil
}

// buildSite constructs one deployed site: the fragment's induced
// subgraph, the complementary tables involving it, and the augmented
// search graph (local edges plus complementary shortcuts). shared is
// the fragmentation's disconnection-set node set (fr.SharedNodes),
// computed once by the caller and reused across all sites.
func buildSite(f *fragment.Fragment, base *graph.Graph, shared map[graph.NodeID]bool, comp map[fragment.Pair]*CompInfo) *Site {
	site := &Site{
		ID:    f.ID,
		Frag:  f,
		Local: localGraph(f, base, shared),
		Comp:  make(map[fragment.Pair]*CompInfo),
	}
	site.augmented = site.Local.CloneShared()
	for p, ci := range comp {
		if p.I != f.ID && p.J != f.ID {
			continue
		}
		site.Comp[p] = ci
		for _, e := range ci.ShortcutEdges() {
			site.augmented.AddEdge(e)
		}
	}
	return site
}

// localGraph materialises the fragment's induced subgraph G_i without
// pushing every edge through a per-edge map append. A node private to
// the fragment has all of its base-graph edges inside the fragment
// (fragments partition the edge set), so its adjacency lists are the
// base graph's, shared wholesale; only the disconnection-set nodes,
// whose base adjacency spans fragments, get filtered lists rebuilt
// from the fragment's edges. Sharing is safe because adjacency lists
// are immutable once installed (see graph.InstallNode); the length
// clamps keep a stray append from ever spilling into a shared backing
// array.
func localGraph(f *fragment.Fragment, base *graph.Graph, shared map[graph.NodeID]bool) *graph.Graph {
	var bOut, bIn map[graph.NodeID][]graph.Edge
	for _, e := range f.Edges {
		if shared[e.From] {
			if bOut == nil {
				bOut = make(map[graph.NodeID][]graph.Edge)
			}
			bOut[e.From] = append(bOut[e.From], e)
		}
		if shared[e.To] {
			if bIn == nil {
				bIn = make(map[graph.NodeID][]graph.Edge)
			}
			bIn[e.To] = append(bIn[e.To], e)
		}
	}
	local := graph.NewWithCapacity(f.NumNodes())
	f.EachNode(func(id graph.NodeID) {
		if shared[id] {
			local.InstallNode(id, base.Coord(id), clampEdges(bOut[id]), clampEdges(bIn[id]))
		} else {
			local.InstallNode(id, base.Coord(id), clampEdges(base.Out(id)), clampEdges(base.In(id)))
		}
	})
	return local
}

// clampEdges caps a slice's capacity at its length.
func clampEdges(es []graph.Edge) []graph.Edge { return es[:len(es):len(es)] }

// Fragmentation returns the deployed fragmentation.
func (st *Store) Fragmentation() *fragment.Fragmentation { return st.fr }

// Sites returns the deployed sites in fragment-ID order.
func (st *Store) Sites() []*Site { return st.sites }

// Site returns the site storing fragment i.
func (st *Store) Site(i int) *Site { return st.sites[i] }

// Preprocessing returns the preprocessing cost report.
func (st *Store) Preprocessing() PreprocessStats { return st.prep }

// LooselyConnected reports whether the deployed fragmentation graph is
// acyclic, the precondition for single-chain planning and exact
// answers.
func (st *Store) LooselyConnected() bool { return st.fg.IsLooselyConnected() }

// Problem returns the path problem the store was precomputed for.
func (st *Store) Problem() Problem { return st.problem }

// Epoch returns the store's update generation: 0 at Build, incremented
// by every successful update batch (Apply, or the per-op legacy
// wrappers). Derived state (caches, prepared plans) tagged with an
// older epoch is stale. On an immutable store obtained from Apply the
// epoch never changes; only the legacy in-place InsertEdge/DeleteEdge
// mutate it, and those require external serialisation against readers.
func (st *Store) Epoch() uint64 { return st.epoch }
