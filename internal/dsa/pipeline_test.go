package dsa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueryPipelinedChain(t *testing.T) {
	st, g := pathStore(t)
	res, err := st.QueryPipelined(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Cost != 8 {
		t.Fatalf("res = %+v", res)
	}
	if want := g.Distance(0, 8); res.Cost != want {
		t.Errorf("pipelined %v vs global %v", res.Cost, want)
	}
	// Pipelining runs exactly one search per leg: 3 sites, 1 leg each.
	for id, w := range res.PerSite {
		if w.Legs != 1 {
			t.Errorf("site %d ran %d legs, want 1", id, w.Legs)
		}
	}
}

func TestQueryPipelinedSelfAndUnreachable(t *testing.T) {
	st, _ := pathStore(t)
	self, err := st.QueryPipelined(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !self.Reachable || self.Cost != 0 {
		t.Errorf("self = %+v", self)
	}
	// Directed one-way chain store: reverse query unreachable.
	rs, _ := reachStore(t)
	if _, err := rs.QueryPipelined(0, 8); err == nil {
		t.Error("reachability store accepted a pipelined cost query")
	}
}

func TestQueryPipelinedDoesLessWorkOnWideDS(t *testing.T) {
	// On a store whose middle disconnection sets hold several nodes,
	// the pipelined evaluation settles fewer tuples than per-entry leg
	// execution.
	st, g, err := buildLinearStore(5, 3, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	src := st.Fragmentation().Fragment(0).Nodes()[0]
	last := st.Fragmentation().Fragment(st.Fragmentation().NumFragments() - 1)
	dst := last.Nodes()[len(last.Nodes())-1]
	_ = nodes
	pip, err := st.QueryPipelined(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	par, err := st.Query(src, dst, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !pip.Reachable || !par.Reachable {
		t.Skip("pair unreachable")
	}
	work := func(r *Result) int {
		total := 0
		for _, w := range r.PerSite {
			total += w.Stats.DerivedTuples
		}
		return total
	}
	if work(pip) > work(par) {
		t.Errorf("pipelined settled %d tuples, per-entry %d; pipelining should not do more", work(pip), work(par))
	}
	if math.Abs(pip.Cost-par.Cost) > 1e-9 {
		t.Errorf("answers differ: %v vs %v", pip.Cost, par.Cost)
	}
}

// TestPropertyPipelinedMatchesQuery: pipelined evaluation is exact on
// loosely connected stores, agreeing with both the standard pipeline
// and global Dijkstra.
func TestPropertyPipelinedMatchesQuery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(5), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			pip, err := st.QueryPipelined(src, dst)
			if err != nil {
				return false
			}
			want := g.Distance(src, dst)
			if pip.Reachable != !math.IsInf(want, 1) {
				return false
			}
			if pip.Reachable && math.Abs(pip.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
