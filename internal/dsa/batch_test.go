package dsa

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// TestApplyAtomicPerOpErrors: a batch with admissible and refused ops
// applies NOTHING and reports every offending op with its index and
// typed sentinel.
func TestApplyAtomicPerOpErrors(t *testing.T) {
	st, _ := pathStore(t)
	ops := []EdgeOp{
		{Kind: OpInsert, Frag: 0, Edge: graph.Edge{From: 0, To: 2, Weight: 1}},   // fine
		{Kind: OpInsert, Frag: 9, Edge: graph.Edge{From: 0, To: 1, Weight: 1}},   // bad fragment
		{Kind: OpInsert, Frag: 0, Edge: graph.Edge{From: 0, To: 999, Weight: 1}}, // bad node
		{Kind: OpDelete, Frag: 0, Edge: graph.Edge{From: 7, To: 8, Weight: 1}},   // edge lives in fragment 2
		{Kind: OpInsert, Frag: 0, Edge: graph.Edge{From: 0, To: 1, Weight: -1}},  // negative weight
	}
	next, _, err := st.Apply(context.Background(), ops)
	if next != nil {
		t.Fatal("refused batch returned a store")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %T (%v), want *BatchError", err, err)
	}
	if len(be.Ops) != 4 {
		t.Fatalf("got %d op errors, want 4: %v", len(be.Ops), err)
	}
	wantIdx := []int{1, 2, 3, 4}
	wantErr := []error{ErrUnknownSite, ErrUnknownNode, ErrEdgeNotFound, ErrNegativeWeight}
	for i, oe := range be.Ops {
		if oe.Index != wantIdx[i] {
			t.Errorf("op error %d has index %d, want %d", i, oe.Index, wantIdx[i])
		}
		if !errors.Is(oe.Err, wantErr[i]) {
			t.Errorf("op error %d = %v, want errors.Is %v", i, oe.Err, wantErr[i])
		}
	}
	// The batch error itself is errors.Is-able for every refusal kind.
	for _, sentinel := range wantErr {
		if !errors.Is(err, sentinel) {
			t.Errorf("batch error does not wrap %v", sentinel)
		}
	}
	// Atomicity: the store is untouched — the valid first op did not
	// land either.
	if st.Epoch() != 0 {
		t.Errorf("epoch = %d after refused batch, want 0", st.Epoch())
	}
	if got := st.Fragmentation().Fragment(0).Size(); got != 6 {
		t.Errorf("fragment 0 has %d edges after refused batch, want 6", got)
	}
}

func TestApplyEmptyAndUnknownOps(t *testing.T) {
	st, _ := pathStore(t)
	if _, _, err := st.Apply(context.Background(), nil); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("nil ops: got %v, want ErrEmptyBatch", err)
	}
	_, _, err := st.Apply(context.Background(), []EdgeOp{{Kind: OpKind(7), Frag: 0}})
	var be *BatchError
	if !errors.As(err, &be) || len(be.Ops) != 1 || be.Ops[0].Index != 0 {
		t.Errorf("unknown op kind: got %v, want one-op BatchError", err)
	}
	// Deleting the last edge of a fragment is refused with its own
	// sentinel.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 1, To: 2, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Apply(context.Background(), []EdgeOp{{Kind: OpDelete, Frag: 0, Edge: e1}}); !errors.Is(err, ErrEmptyFragment) {
		t.Errorf("emptying delete: got %v, want ErrEmptyFragment", err)
	}
}

// TestApplyCopyOnWrite: the receiver is a stable snapshot — after a
// cost-changing batch the old store still answers the old costs and
// the new store the new ones.
func TestApplyCopyOnWrite(t *testing.T) {
	st, _ := pathStore(t)
	before, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cost != 8 {
		t.Fatalf("baseline cost = %v, want 8", before.Cost)
	}
	next, stats, err := st.Apply(context.Background(), []EdgeOp{
		{Kind: OpInsert, Frag: 0, Edge: graph.Edge{From: 1, To: 7, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ops != 1 || stats.DijkstraRuns == 0 {
		t.Errorf("stats = %+v, want 1 op and global searches", stats)
	}
	if next.Epoch() != 1 || st.Epoch() != 0 {
		t.Fatalf("epochs: next %d (want 1), old %d (want 0)", next.Epoch(), st.Epoch())
	}
	oldAgain, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if oldAgain.Cost != 8 {
		t.Errorf("old snapshot cost = %v after Apply, want 8 (copy-on-write violated)", oldAgain.Cost)
	}
	newRes, err := next.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if newRes.Cost != 3 { // 0→1 (1) + 1→7 (1) + 7→8 (1)
		t.Errorf("new snapshot cost = %v, want 3", newRes.Cost)
	}
}

// TestApplySharesUntouchedSites: a heavy in-fragment edge cannot move
// any global shortest path between disconnection-set nodes, so only
// the touched fragment is re-preprocessed; the other sites are shared
// by pointer — the whole point of the incremental write path.
func TestApplySharesUntouchedSites(t *testing.T) {
	st, _ := pathStore(t)
	next, stats, err := st.Apply(context.Background(), []EdgeOp{
		{Kind: OpInsert, Frag: 0, Edge: graph.Edge{From: 0, To: 3, Weight: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.SitesRebuilt) != 1 || stats.SitesRebuilt[0] != 0 {
		t.Errorf("SitesRebuilt = %v, want [0]", stats.SitesRebuilt)
	}
	if stats.SitesShared != 2 {
		t.Errorf("SitesShared = %d, want 2", stats.SitesShared)
	}
	if next.Site(0) == st.Site(0) {
		t.Error("touched site 0 must be rebuilt, not shared")
	}
	for _, id := range []int{1, 2} {
		if next.Site(id) != st.Site(id) {
			t.Errorf("untouched site %d was rebuilt instead of shared", id)
		}
	}
	// A multi-op batch advances the epoch once.
	next2, stats2, err := next.Apply(context.Background(), []EdgeOp{
		{Kind: OpInsert, Frag: 1, Edge: graph.Edge{From: 3, To: 6, Weight: 50}},
		{Kind: OpDelete, Frag: 1, Edge: graph.Edge{From: 3, To: 6, Weight: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next2.Epoch() != 2 {
		t.Errorf("epoch after 2-op batch = %d, want 2", next2.Epoch())
	}
	if stats2.Ops != 2 {
		t.Errorf("stats2.Ops = %d, want 2", stats2.Ops)
	}
}

// randomOps derives a valid-with-high-probability op batch from rng
// against the store's current fragmentation, mirroring its effect on
// an independently tracked edge-set copy (the test's own ground truth
// for the fresh-build oracle).
func randomOps(rng *rand.Rand, st *Store, sets [][]graph.Edge, nOps int) ([]EdgeOp, [][]graph.Edge) {
	base := st.Fragmentation().Base()
	nodes := base.Nodes()
	var ops []EdgeOp
	for len(ops) < nOps {
		frag := rng.Intn(len(sets))
		if rng.Intn(2) == 0 {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u == v {
				continue
			}
			e := graph.Edge{From: u, To: v, Weight: 0.5 + rng.Float64()*4}
			ops = append(ops, EdgeOp{Kind: OpInsert, Frag: frag, Edge: e})
			sets[frag] = append(sets[frag], e)
		} else {
			if len(sets[frag]) < 2 {
				continue
			}
			i := rng.Intn(len(sets[frag]))
			e := sets[frag][i]
			ops = append(ops, EdgeOp{Kind: OpDelete, Frag: frag, Edge: e})
			sets[frag] = append(sets[frag][:i], sets[frag][i+1:]...)
		}
	}
	return ops, sets
}

// freshBuildFrom rebuilds a store from scratch over the mutated edge
// sets — the oracle the incremental Apply must match.
func freshBuildFrom(base *graph.Graph, sets [][]graph.Edge, problem Problem) (*Store, error) {
	nb := graph.New()
	for _, id := range base.Nodes() {
		nb.AddNode(id, base.Coord(id))
	}
	for _, s := range sets {
		for _, e := range s {
			nb.AddEdge(e)
		}
	}
	fr, err := fragment.New(nb, sets)
	if err != nil {
		return nil, err
	}
	return Build(fr, Options{Problem: problem})
}

// TestPropertyApplyEqualsFreshBuild: after a random batch, the
// incrementally applied store answers exactly like a store built from
// scratch over the mutated graph — for both the cost and the
// connectivity problem. This is the correctness contract that lets
// the write path skip whole-store preprocessing.
func TestPropertyApplyEqualsFreshBuild(t *testing.T) {
	for _, problem := range []Problem{ProblemShortestPath, ProblemReachability} {
		problem := problem
		t.Run(problem.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				st, _, err := buildLinearStore(seed, 2, 8, 3)
				if err != nil {
					return false
				}
				if problem == ProblemReachability {
					// Rebuild the same fragmentation for the cheaper problem.
					st, err = Build(st.Fragmentation(), Options{Problem: ProblemReachability})
					if err != nil {
						return false
					}
				}
				sets := make([][]graph.Edge, st.Fragmentation().NumFragments())
				for i, fr := range st.Fragmentation().Fragments() {
					sets[i] = append([]graph.Edge(nil), fr.Edges...)
				}
				ops, sets := randomOps(rng, st, sets, 1+rng.Intn(4))
				next, _, err := st.Apply(context.Background(), ops)
				if err != nil {
					t.Logf("seed %d: apply: %v", seed, err)
					return false
				}
				fresh, err := freshBuildFrom(st.Fragmentation().Base(), sets, problem)
				if err != nil {
					t.Logf("seed %d: fresh build: %v", seed, err)
					return false
				}
				nodes := fresh.Fragmentation().Base().Nodes()
				for q := 0; q < 12; q++ {
					src := nodes[rng.Intn(len(nodes))]
					dst := nodes[rng.Intn(len(nodes))]
					if problem == ProblemReachability {
						a, errA := next.Connected(src, dst, EngineBitset)
						b, errB := fresh.Connected(src, dst, EngineBitset)
						if (errA == nil) != (errB == nil) {
							t.Logf("seed %d: connected(%d,%d): %v vs %v", seed, src, dst, errA, errB)
							return false
						}
						if errA != nil {
							continue // both refuse (e.g. node isolated by deletes) — agreement
						}
						if a != b {
							t.Logf("seed %d: connected(%d,%d): incremental %v, fresh %v", seed, src, dst, a, b)
							return false
						}
						continue
					}
					a, errA := next.Query(src, dst, EngineDijkstra)
					b, errB := fresh.Query(src, dst, EngineDijkstra)
					if (errA == nil) != (errB == nil) {
						t.Logf("seed %d: query(%d,%d): %v vs %v", seed, src, dst, errA, errB)
						return false
					}
					if errA != nil {
						continue // both refuse — agreement
					}
					if a.Reachable != b.Reachable || (a.Reachable && math.Abs(a.Cost-b.Cost) > 1e-9) {
						t.Logf("seed %d: query(%d,%d): incremental %v/%v, fresh %v/%v", seed, src, dst, a.Reachable, a.Cost, b.Reachable, b.Cost)
						return false
					}
				}
				// Structural agreement: same disconnection sets, same
				// per-site augmented search graphs.
				if next.Preprocessing().DisconnectionSets != fresh.Preprocessing().DisconnectionSets {
					return false
				}
				for i := range fresh.Sites() {
					if next.Site(i).Augmented().NumEdges() != fresh.Site(i).Augmented().NumEdges() {
						t.Logf("seed %d: site %d augmented edges %d vs %d", seed, i, next.Site(i).Augmented().NumEdges(), fresh.Site(i).Augmented().NumEdges())
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Error(err)
			}
		})
	}
}

// FuzzApply drives random op batches from fuzzed inputs through the
// incremental write path and cross-checks a sampled pair against the
// fresh-build oracle.
func FuzzApply(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(7), uint8(5), uint8(1))
	f.Add(int64(42), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nOps, problemBit uint8) {
		problem := ProblemShortestPath
		if problemBit%2 == 1 {
			problem = ProblemReachability
		}
		rng := rand.New(rand.NewSource(seed))
		st, _, err := buildLinearStore(seed, 2, 6, 2)
		if err != nil {
			t.Skip()
		}
		if problem == ProblemReachability {
			st, err = Build(st.Fragmentation(), Options{Problem: problem})
			if err != nil {
				t.Skip()
			}
		}
		sets := make([][]graph.Edge, st.Fragmentation().NumFragments())
		for i, fr := range st.Fragmentation().Fragments() {
			sets[i] = append([]graph.Edge(nil), fr.Edges...)
		}
		ops, sets := randomOps(rng, st, sets, 1+int(nOps%4))
		next, _, err := st.Apply(context.Background(), ops)
		if err != nil {
			t.Skip() // refused batches are exercised elsewhere
		}
		fresh, err := freshBuildFrom(st.Fragmentation().Base(), sets, problem)
		if err != nil {
			t.Fatalf("fresh build refused what Apply accepted: %v", err)
		}
		nodes := fresh.Fragmentation().Base().Nodes()
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		if problem == ProblemReachability {
			a, errA := next.Connected(src, dst, EngineBitset)
			b, errB := fresh.Connected(src, dst, EngineBitset)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("connected(%d,%d): %v vs %v", src, dst, errA, errB)
			}
			if errA == nil && a != b {
				t.Fatalf("connected(%d,%d): incremental %v, fresh %v", src, dst, a, b)
			}
			return
		}
		a, errA := next.Query(src, dst, EngineDijkstra)
		b, errB := fresh.Query(src, dst, EngineDijkstra)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query(%d,%d): %v vs %v", src, dst, errA, errB)
		}
		if errA != nil {
			return // both refuse (node isolated by deletes) — agreement
		}
		if a.Reachable != b.Reachable || (a.Reachable && math.Abs(a.Cost-b.Cost) > 1e-9) {
			t.Fatalf("query(%d,%d): incremental %v/%v, fresh %v/%v", src, dst, a.Reachable, a.Cost, b.Reachable, b.Cost)
		}
	})
}
