package dsa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Leg is one per-site unit of work of a query plan: compute, inside the
// site's augmented fragment, the shortest-path costs from every entry
// node to every exit node. Entry nodes are the query source or the
// nodes of the incoming disconnection set; exit nodes are the outgoing
// disconnection set or the query target — "disconnection sets introduce
// additional selections in the processing of the recursive query, they
// act as intermediate nodes that must be mandatorily traversed" (§2.1).
type Leg struct {
	// SiteID is the fragment/site executing this leg.
	SiteID int
	// Entry and Exit are the selection sets, sorted.
	Entry, Exit []graph.NodeID
}

// key returns a deduplication key for the leg.
func (l Leg) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|", l.SiteID)
	for _, n := range l.Entry {
		fmt.Fprintf(&sb, "%d,", n)
	}
	sb.WriteByte('|')
	for _, n := range l.Exit {
		fmt.Fprintf(&sb, "%d,", n)
	}
	return sb.String()
}

// Plan is the fragment-level strategy for one source/target query: the
// chains of fragments to traverse and the deduplicated legs the sites
// must compute. For same-fragment queries the plan degenerates to one
// single-site leg per hosting fragment — "queries about the shortest
// path of two cities in Holland can be answered by the Dutch railway
// computer system alone" (§2.1).
type Plan struct {
	// Source and Target are the query endpoints.
	Source, Target graph.NodeID
	// SameFragment reports whether source and target share a fragment.
	SameFragment bool
	// Chains lists the fragment chains considered; each chain is a
	// sequence of fragment IDs from a fragment containing Source to a
	// fragment containing Target. Same-fragment plans have
	// single-element chains.
	Chains [][]int
	// Legs are the distinct per-site computations, in deterministic
	// order.
	Legs []Leg
	// Truncated reports that chain enumeration hit the MaxChains bound
	// (only possible for cyclic fragmentation graphs); the answer is
	// then an upper bound rather than exact.
	Truncated bool
	// legIndex maps leg keys to positions in Legs, and chainLegs maps
	// each chain to the leg indices along it.
	chainLegs [][]int
}

// NewPlan computes the plan for a shortest-path (or reachability)
// query from source to target.
func (st *Store) NewPlan(source, target graph.NodeID) (*Plan, error) {
	if !st.fr.Base().HasNode(source) {
		return nil, fmt.Errorf("dsa: %w: source node %d not in graph", ErrUnknownNode, source)
	}
	if !st.fr.Base().HasNode(target) {
		return nil, fmt.Errorf("dsa: %w: target node %d not in graph", ErrUnknownNode, target)
	}
	srcFrags := st.fr.FragmentsOf(source)
	dstFrags := st.fr.FragmentsOf(target)
	if len(srcFrags) == 0 {
		return nil, fmt.Errorf("dsa: %w: source node %d is isolated (no fragment)", ErrUnknownNode, source)
	}
	if len(dstFrags) == 0 {
		return nil, fmt.Errorf("dsa: %w: target node %d is isolated (no fragment)", ErrUnknownNode, target)
	}
	p := &Plan{Source: source, Target: target}

	// Same-fragment short-circuit.
	shared := intersect(srcFrags, dstFrags)
	if len(shared) > 0 {
		p.SameFragment = true
		for _, f := range shared {
			p.Chains = append(p.Chains, []int{f})
		}
	} else {
		seen := make(map[string]struct{})
		for _, fs := range srcFrags {
			for _, ft := range dstFrags {
				chains, err := st.fg.Chains(fs, ft, st.maxChains)
				if err != nil {
					return nil, err
				}
				if st.maxChains > 0 && len(chains) == st.maxChains {
					p.Truncated = true
				}
				for _, c := range chains {
					k := fmt.Sprint(c)
					if _, dup := seen[k]; dup {
						continue
					}
					seen[k] = struct{}{}
					p.Chains = append(p.Chains, c)
				}
			}
		}
		sort.Slice(p.Chains, func(i, j int) bool {
			return fmt.Sprint(p.Chains[i]) < fmt.Sprint(p.Chains[j])
		})
	}
	if len(p.Chains) == 0 {
		// No chain connects the fragments: the nodes are in different
		// components of the fragmentation graph, hence unreachable.
		return p, nil
	}
	st.buildLegs(p)
	return p, nil
}

// PlanChains builds a plan over externally chosen fragment chains — the
// hook package phe uses to impose its high-speed-network routing
// instead of exhaustive chain enumeration. Every chain must start at a
// fragment containing source, end at one containing target, and have a
// non-empty disconnection set between consecutive fragments.
func (st *Store) PlanChains(source, target graph.NodeID, chains [][]int) (*Plan, error) {
	if !st.fr.Base().HasNode(source) {
		return nil, fmt.Errorf("dsa: %w: source node %d not in graph", ErrUnknownNode, source)
	}
	if !st.fr.Base().HasNode(target) {
		return nil, fmt.Errorf("dsa: %w: target node %d not in graph", ErrUnknownNode, target)
	}
	if len(chains) == 0 {
		return nil, fmt.Errorf("dsa: PlanChains: no chains given")
	}
	p := &Plan{Source: source, Target: target}
	for _, chain := range chains {
		if len(chain) == 0 {
			return nil, fmt.Errorf("dsa: PlanChains: empty chain")
		}
		for i, f := range chain {
			if f < 0 || f >= len(st.sites) {
				return nil, fmt.Errorf("dsa: %w: PlanChains: fragment %d out of range", ErrUnknownSite, f)
			}
			if i > 0 {
				if chain[i-1] == f {
					return nil, fmt.Errorf("dsa: PlanChains: chain repeats fragment %d consecutively", f)
				}
				if len(st.fr.DisconnectionSet(chain[i-1], f)) == 0 {
					return nil, fmt.Errorf("dsa: PlanChains: fragments %d and %d share no disconnection set", chain[i-1], f)
				}
			}
		}
		if !st.sites[chain[0]].Frag.HasNode(source) {
			return nil, fmt.Errorf("dsa: PlanChains: chain head %d does not contain source %d", chain[0], source)
		}
		if !st.sites[chain[len(chain)-1]].Frag.HasNode(target) {
			return nil, fmt.Errorf("dsa: PlanChains: chain tail %d does not contain target %d", chain[len(chain)-1], target)
		}
		p.Chains = append(p.Chains, append([]int(nil), chain...))
	}
	p.SameFragment = len(p.Chains[0]) == 1
	st.buildLegs(p)
	return p, nil
}

// buildLegs fills p.Legs and p.chainLegs from p.Chains, deduplicating
// identical legs across chains.
func (st *Store) buildLegs(p *Plan) {
	legIndex := make(map[string]int)
	addLeg := func(l Leg) int {
		k := l.key()
		if i, ok := legIndex[k]; ok {
			return i
		}
		legIndex[k] = len(p.Legs)
		p.Legs = append(p.Legs, l)
		return len(p.Legs) - 1
	}
	for _, chain := range p.Chains {
		var idxs []int
		if len(chain) == 1 {
			idxs = append(idxs, addLeg(Leg{
				SiteID: chain[0],
				Entry:  []graph.NodeID{p.Source},
				Exit:   []graph.NodeID{p.Target},
			}))
		} else {
			for i, f := range chain {
				entry := []graph.NodeID{p.Source}
				if i > 0 {
					entry = st.fr.DisconnectionSet(chain[i-1], f)
				}
				exit := []graph.NodeID{p.Target}
				if i+1 < len(chain) {
					exit = st.fr.DisconnectionSet(f, chain[i+1])
				}
				idxs = append(idxs, addLeg(Leg{SiteID: f, Entry: entry, Exit: exit}))
			}
		}
		p.chainLegs = append(p.chainLegs, idxs)
	}
}

// SitesInvolved returns the distinct site IDs the plan touches,
// ascending — the paper's "involving in the computation only the
// computers along the chain of fragments".
func (p *Plan) SitesInvolved() []int {
	set := make(map[int]struct{})
	for _, l := range p.Legs {
		set[l.SiteID] = struct{}{}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// intersect returns the sorted intersection of two ascending int
// slices.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
