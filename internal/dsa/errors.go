package dsa

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/tc"
)

// Typed error sentinels of the disconnection-set layer. They replace
// the historical fmt.Errorf string sentinels so that callers — the
// serving layer, the public pkg/tcq facade, tests — can branch with
// errors.Is instead of matching message substrings. Every error this
// package returns wraps exactly one of these (or a kernel sentinel
// re-exported below), with the free-text detail kept in the wrapping
// message.
var (
	// ErrUnknownEngine reports an engine name or value outside the known
	// set (dijkstra, seminaive, bitset, dense).
	ErrUnknownEngine = errors.New("unknown engine")
	// ErrUnknownProblem reports a problem name or value outside the
	// known set (shortestpath, reachability).
	ErrUnknownProblem = errors.New("unknown problem")
	// ErrUnknownNode reports a query endpoint that is not a node of the
	// deployed graph (or is isolated, belonging to no fragment).
	ErrUnknownNode = errors.New("unknown node")
	// ErrUnknownSite reports a site/fragment ID outside the deployment.
	ErrUnknownSite = errors.New("unknown site")
	// ErrEngineMismatch reports an engine that cannot serve the
	// requested evaluation: the connectivity-only bitset engine asked
	// for costs, or a non-vector-seeded engine asked to pipeline.
	ErrEngineMismatch = errors.New("engine cannot serve this query")
	// ErrProblemMismatch reports a store whose precomputed problem
	// cannot serve the query — a reachability store asked for costs.
	ErrProblemMismatch = errors.New("store problem cannot serve this query")
	// ErrNoRoute reports that no path connects the requested endpoints
	// (surfaced by the callers that promise a route, e.g. path
	// reconstruction and the facade's Cost convenience).
	ErrNoRoute = errors.New("no route")
	// ErrEmptyBatch reports an Apply call with no operations.
	ErrEmptyBatch = errors.New("empty update batch")
	// ErrEdgeNotFound reports a delete of an edge that is not in the
	// named fragment (the (from, to, weight) triple must match a stored
	// fragment edge exactly).
	ErrEdgeNotFound = errors.New("edge not in fragment")
	// ErrEmptyFragment reports a delete that would leave a fragment with
	// no edges — an empty fragment is a processor with no work and a
	// hole in the fragmentation graph, so the batch is refused.
	ErrEmptyFragment = errors.New("update would empty fragment")

	// ErrNegativeWeight and ErrCanceled are the kernel-layer sentinels,
	// re-exported so dsa callers need not import internal/tc: a negative
	// edge weight refused by the cost kernels, and a context
	// cancellation observed mid-computation.
	ErrNegativeWeight = tc.ErrNegativeWeight
	ErrCanceled       = tc.ErrCanceled
)

// canceledErr wraps a context error as an ErrCanceled, preserving both
// sentinels for errors.Is (the same convention as the kernel layer).
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("dsa: %w (%w)", ErrCanceled, context.Cause(ctx))
}
