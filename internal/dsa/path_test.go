package dsa

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/graph"
)

func TestQueryPathChain(t *testing.T) {
	st, g := pathStore(t)
	res, route, err := st.QueryPath(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || route == nil {
		t.Fatal("route missing")
	}
	want := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(route.Nodes, want) {
		t.Errorf("route = %v, want %v", route.Nodes, want)
	}
	if route.Cost != 8 {
		t.Errorf("route cost = %v", route.Cost)
	}
	if err := route.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestQueryPathSelfAndUnreachable(t *testing.T) {
	st, _ := pathStore(t)
	res, route, err := st.QueryPath(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || route == nil || len(route.Nodes) != 1 {
		t.Errorf("self route = %+v", route)
	}

	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 5, To: 6, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, route2, err := st2.QueryPath(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable || route2 != nil {
		t.Error("unreachable query returned a route")
	}
}

func TestQueryPathThroughShortcut(t *testing.T) {
	// Same topology as TestShortcutCapturesOutsidePath: the best route
	// 0→2→1 leaves fragment 0; the reconstructed route must be the real
	// base-graph path, not the shortcut pseudo-edge.
	g := graph.New()
	exp := graph.Edge{From: 0, To: 1, Weight: 10}
	d1 := graph.Edge{From: 0, To: 2, Weight: 1}
	d2 := graph.Edge{From: 2, To: 1, Weight: 1}
	var sets [][]graph.Edge
	sets = append(sets, []graph.Edge{exp, exp.Reverse()})
	sets = append(sets, []graph.Edge{d1, d1.Reverse(), d2, d2.Reverse()})
	for _, s := range sets {
		for _, e := range s {
			g.AddEdge(e)
		}
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, route, err := st.QueryPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if route == nil {
		t.Fatal("no route")
	}
	want := []graph.NodeID{0, 2, 1}
	if !reflect.DeepEqual(route.Nodes, want) {
		t.Errorf("route = %v, want %v (expanded through the shortcut)", route.Nodes, want)
	}
	if err := route.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRouteValidateRejectsBadRoutes(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 0, To: 1, Weight: 2})
	if err := (&Route{Nodes: []graph.NodeID{0, 5}, Cost: 2}).Validate(g); err == nil {
		t.Error("non-edge hop accepted")
	}
	if err := (&Route{Nodes: []graph.NodeID{0, 1}, Cost: 99}).Validate(g); err == nil {
		t.Error("wrong cost accepted")
	}
	if err := (&Route{}).Validate(g); err == nil {
		t.Error("empty route accepted")
	}
	if err := (&Route{Nodes: []graph.NodeID{0, 1}, Cost: 2}).Validate(g); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
}

// TestPropertyRoutesAreValidShortestPaths: on loosely connected stores,
// every reconstructed route is a real base-graph path whose cost equals
// the global shortest distance.
func TestPropertyRoutesAreValidShortestPaths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(5), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			res, route, err := st.QueryPath(src, dst)
			if err != nil {
				return false
			}
			want := g.Distance(src, dst)
			if !res.Reachable {
				if !math.IsInf(want, 1) {
					return false
				}
				continue
			}
			if route == nil {
				return false
			}
			if route.Nodes[0] != src || route.Nodes[len(route.Nodes)-1] != dst {
				return false
			}
			if route.Validate(g) != nil {
				return false
			}
			if math.Abs(route.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
