package dsa

import (
	"fmt"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// UpdateStats reports the cost of applying one update — the paper's
// acknowledged weakness: "the disadvantage of the disconnection set
// approach is mainly due to the pre-processing required for building
// the complementary information and to the careful treatment of
// updates. … As long as updates are not too frequent, the
// pre-processing costs may be amortized over many queries" (§2.1).
type UpdateStats struct {
	// RecomputedSets is the number of disconnection sets whose
	// complementary information was rebuilt.
	RecomputedSets int
	// DijkstraRuns is the number of global single-source searches the
	// update triggered.
	DijkstraRuns int
	// LocalOnly reports that the update stayed within one site (no
	// complementary information could have changed).
	LocalOnly bool
}

// InsertEdge adds a directed edge to fragment fragID and refreshes the
// affected state. Both endpoints must already be nodes of the base
// graph (the fragmentation of a growing node set is a fragmentation
// *design* problem, §5, not an update).
//
// Cost analysis, mirroring the paper's discussion:
//   - the fragment's subgraph and augmented search graph are rebuilt
//     locally;
//   - inserting an edge can only shorten global paths, and it can
//     shorten a (a, b) complementary fact of ANY disconnection set —
//     so unless the graph is a single fragment, every complementary
//     table is recomputed. This is the honest worst case; the update
//     stats make the expense visible so callers can batch.
func (st *Store) InsertEdge(fragID int, e graph.Edge) (UpdateStats, error) {
	if fragID < 0 || fragID >= len(st.sites) {
		return UpdateStats{}, fmt.Errorf("dsa: %w: fragment %d out of range", ErrUnknownSite, fragID)
	}
	base := st.fr.Base()
	if !base.HasNode(e.From) || !base.HasNode(e.To) {
		return UpdateStats{}, fmt.Errorf("dsa: %w: edge %v endpoints must be existing nodes", ErrUnknownNode, e)
	}
	if e.Weight < 0 {
		return UpdateStats{}, fmt.Errorf("dsa: %w %v", ErrNegativeWeight, e.Weight)
	}
	// Rebuild the base graph + fragmentation with the edge added to the
	// fragment's edge set.
	sets := make([][]graph.Edge, st.fr.NumFragments())
	for i, f := range st.fr.Fragments() {
		sets[i] = append(sets[i], f.Edges...)
	}
	sets[fragID] = append(sets[fragID], e)
	newBase := base.Clone()
	newBase.AddEdge(e)
	return st.replace(newBase, sets)
}

// DeleteEdge removes one occurrence of a directed edge from fragment
// fragID. Deleting can lengthen global paths, so the complementary
// information is likewise rebuilt.
func (st *Store) DeleteEdge(fragID int, e graph.Edge) (UpdateStats, error) {
	if fragID < 0 || fragID >= len(st.sites) {
		return UpdateStats{}, fmt.Errorf("dsa: %w: fragment %d out of range", ErrUnknownSite, fragID)
	}
	sets := make([][]graph.Edge, st.fr.NumFragments())
	found := false
	for i, f := range st.fr.Fragments() {
		for _, fe := range f.Edges {
			if i == fragID && !found && fe == e {
				found = true
				continue
			}
			sets[i] = append(sets[i], fe)
		}
	}
	if !found {
		return UpdateStats{}, fmt.Errorf("dsa: edge %v not in fragment %d", e, fragID)
	}
	if len(sets[fragID]) == 0 {
		return UpdateStats{}, fmt.Errorf("dsa: deleting %v would empty fragment %d", e, fragID)
	}
	// Rebuild the base graph without this one edge occurrence.
	newBase := graph.New()
	for _, id := range st.fr.Base().Nodes() {
		newBase.AddNode(id, st.fr.Base().Coord(id))
	}
	for _, s := range sets {
		for _, fe := range s {
			newBase.AddEdge(fe)
		}
	}
	return st.replace(newBase, sets)
}

// replace swaps in a new base graph and edge partition, rebuilding the
// sites and complementary information in place and reporting the cost.
func (st *Store) replace(newBase *graph.Graph, sets [][]graph.Edge) (UpdateStats, error) {
	fr, err := fragment.New(newBase, sets)
	if err != nil {
		return UpdateStats{}, err
	}
	fresh, err := Build(fr, Options{MaxChains: st.maxChains, Problem: st.problem})
	if err != nil {
		return UpdateStats{}, err
	}
	stats := UpdateStats{
		RecomputedSets: fresh.prep.DisconnectionSets,
		DijkstraRuns:   fresh.prep.DijkstraRuns,
		LocalOnly:      fresh.prep.DisconnectionSets == 0,
	}
	// Advance the update generation so epoch-tagged derived state
	// (e.g. the serving layer's leg-result cache) self-invalidates.
	fresh.epoch = st.epoch + 1
	*st = *fresh
	return stats, nil
}
