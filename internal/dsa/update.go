package dsa

import (
	"context"
	"errors"

	"repro/internal/graph"
)

// UpdateStats reports the cost of applying one legacy single-op update
// — the paper's acknowledged weakness: "the disadvantage of the
// disconnection set approach is mainly due to the pre-processing
// required for building the complementary information and to the
// careful treatment of updates. … As long as updates are not too
// frequent, the pre-processing costs may be amortized over many
// queries" (§2.1). Batched callers get the richer BatchStats from
// Apply.
type UpdateStats struct {
	// RecomputedSets is the number of disconnection sets whose
	// complementary information was recomputed.
	RecomputedSets int
	// DijkstraRuns is the number of global single-source searches the
	// update triggered.
	DijkstraRuns int
	// LocalOnly reports that the update stayed within one site (no
	// complementary information could have changed).
	LocalOnly bool
}

// InsertEdge adds a directed edge to fragment fragID and swaps the
// incrementally rebuilt deployment into the receiver — the legacy
// single-op wrapper over Apply. Both endpoints must already be nodes
// of the base graph. Because it overwrites the receiver in place, it
// requires external serialisation against concurrent readers; prefer
// Apply, which leaves the receiver untouched and returns a new store
// readers can be switched to atomically.
func (st *Store) InsertEdge(fragID int, e graph.Edge) (UpdateStats, error) {
	return st.applyInPlace(EdgeOp{Kind: OpInsert, Frag: fragID, Edge: e})
}

// DeleteEdge removes one occurrence of a directed edge from fragment
// fragID — the inverse of InsertEdge, with the same in-place swap and
// serialisation caveat.
func (st *Store) DeleteEdge(fragID int, e graph.Edge) (UpdateStats, error) {
	return st.applyInPlace(EdgeOp{Kind: OpDelete, Frag: fragID, Edge: e})
}

// applyInPlace runs a single-op batch and overwrites the receiver with
// the result, unwrapping the batch envelope to the op's own typed
// error so the historical error shapes survive.
func (st *Store) applyInPlace(op EdgeOp) (UpdateStats, error) {
	next, bs, err := st.Apply(context.Background(), []EdgeOp{op})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) && len(be.Ops) == 1 {
			return UpdateStats{}, be.Ops[0].Err
		}
		return UpdateStats{}, err
	}
	*st = *next
	return UpdateStats{
		RecomputedSets: bs.RecomputedSets,
		DijkstraRuns:   bs.DijkstraRuns,
		LocalOnly:      bs.LocalOnly,
	}, nil
}
