package dsa

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/fragment"
	"repro/internal/graph"
)

// This file is the transactional write path of the disconnection set
// approach: a batch of typed edge operations is validated as a whole
// and applied atomically, producing a NEW immutable Store (copy on
// write) whose cost scales with the fragments the batch touched, not
// with the whole graph. It implements the paper's §2.1 advice — "as
// long as updates are not too frequent, the pre-processing costs may
// be amortized over many queries" — by making one batch pay one
// preprocessing pass, and by re-preprocessing (augmented graph,
// shortcut edges, dense CSR snapshot) only the fragments whose edge
// sets or complementary tables actually changed. Everything else is
// structurally shared with the previous epoch, so a serving layer can
// keep cached per-site results for the shared fragments alive across
// the swap.

// OpKind selects what an EdgeOp does.
type OpKind int

const (
	// OpInsert adds a directed edge to a fragment. Both endpoints must
	// already be nodes of the base graph (growing the node set is a
	// fragmentation *design* problem, §5, not an update).
	OpInsert OpKind = iota
	// OpDelete removes one occurrence of an exactly matching
	// (from, to, weight) edge from a fragment.
	OpDelete
)

// String names the op kind the way the HTTP API spells it.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// EdgeOp is one typed mutation of a deployed fragmentation.
type EdgeOp struct {
	// Kind is OpInsert or OpDelete.
	Kind OpKind
	// Frag is the fragment whose edge set changes.
	Frag int
	// Edge is the edge to insert or delete.
	Edge graph.Edge
}

// String renders the op for error messages.
func (op EdgeOp) String() string {
	return fmt.Sprintf("%s %v->%v w=%g into fragment %d", op.Kind, op.Edge.From, op.Edge.To, op.Edge.Weight, op.Frag)
}

// OpError ties one refused operation to its position in the batch. Err
// wraps the package's typed sentinels (ErrUnknownSite, ErrUnknownNode,
// ErrNegativeWeight, ErrEdgeNotFound, ErrEmptyFragment), so callers
// branch with errors.Is per op.
type OpError struct {
	// Index is the op's position in the batch.
	Index int
	// Op echoes the refused operation.
	Op EdgeOp
	// Err is the typed refusal.
	Err error
}

// Error implements error.
func (e *OpError) Error() string { return fmt.Sprintf("op %d (%s): %v", e.Index, e.Op, e.Err) }

// Unwrap exposes the typed refusal to errors.Is.
func (e *OpError) Unwrap() error { return e.Err }

// BatchError reports a batch refused by validation: every offending op
// with its typed error, and the guarantee that NOTHING was applied —
// batches are atomic. Unwrap returns all per-op errors, so
// errors.Is(err, ErrUnknownNode) works on the batch error whenever any
// op failed for that reason.
type BatchError struct {
	// Ops lists the refused operations in batch order.
	Ops []*OpError
}

// Error implements error.
func (e *BatchError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dsa: batch refused (%d bad op(s), nothing applied): ", len(e.Ops))
	for i, oe := range e.Ops {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(oe.Error())
	}
	return sb.String()
}

// Unwrap exposes the per-op errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	errs := make([]error, len(e.Ops))
	for i, oe := range e.Ops {
		errs[i] = oe
	}
	return errs
}

// BatchStats reports the cost of one applied batch — the paper's
// "careful treatment of updates" made measurable, so callers can see
// that the work scaled with the touched fragments.
type BatchStats struct {
	// Ops is the number of operations the batch applied.
	Ops int
	// RecomputedSets is the number of disconnection sets whose
	// complementary information was recomputed (all non-empty sets: any
	// edge change can move a global shortest path).
	RecomputedSets int
	// DijkstraRuns is the number of global single-source searches the
	// recomputation triggered.
	DijkstraRuns int
	// SitesRebuilt lists the fragments that were re-preprocessed —
	// their edge set changed, or a complementary table they hold did.
	SitesRebuilt []int
	// SitesShared is the number of sites structurally shared with the
	// previous epoch: their subgraph, augmented search graph, relational
	// snapshot and dense CSR kernel all carry over untouched.
	SitesShared int
	// LocalOnly reports that the update stayed within sites (no
	// disconnection sets exist, so no complementary information could
	// have changed).
	LocalOnly bool
}

// Apply validates ops as a whole and, if every op is admissible,
// applies them atomically, returning a NEW store at epoch+1. The
// receiver is never modified: readers holding it keep a consistent
// pre-batch view (copy-on-write snapshot semantics), and the two
// stores structurally share every site the batch did not disturb.
//
// Ops are validated in order against the progressively updated edge
// sets, so a batch may delete an edge an earlier op of the same batch
// inserted. On any refusal the returned error is a *BatchError listing
// every offending op with a typed per-op error, and nothing is
// applied.
//
// Cost: one global preprocessing pass per batch (the complementary
// tables must be recomputed — an edge change anywhere can move a
// global shortest path between disconnection-set nodes — unless
// compUnaffected proves otherwise), then a per-site rebuild ONLY for
// fragments whose edge set or complementary tables changed. Every
// batch still pays one O(V+E) base-graph rebuild and partition
// re-validation; that term is memcpy-cheap next to the searches and
// site preprocessing it replaces, and keeps fragment.New the single
// authority on partition validity. ctx is observed between the global
// searches; a canceled apply returns ErrCanceled with nothing applied.
func (st *Store) Apply(ctx context.Context, ops []EdgeOp) (*Store, BatchStats, error) {
	stats := BatchStats{Ops: len(ops)}
	if len(ops) == 0 {
		return nil, stats, fmt.Errorf("dsa: %w", ErrEmptyBatch)
	}
	base := st.fr.Base()
	n := st.fr.NumFragments()

	// Phase 1: validate every op against the working edge sets,
	// collecting all refusals rather than stopping at the first — the
	// caller (e.g. the HTTP batch endpoint) reports them per op.
	sets := make([][]graph.Edge, n)
	for i, f := range st.fr.Fragments() {
		sets[i] = append([]graph.Edge(nil), f.Edges...)
	}
	changed := make([]bool, n)
	var opErrs []*OpError
	refuse := func(i int, op EdgeOp, err error) {
		opErrs = append(opErrs, &OpError{Index: i, Op: op, Err: err})
	}
	for i, op := range ops {
		if op.Frag < 0 || op.Frag >= n {
			refuse(i, op, fmt.Errorf("dsa: %w: fragment %d out of range", ErrUnknownSite, op.Frag))
			continue
		}
		switch op.Kind {
		case OpInsert:
			if !base.HasNode(op.Edge.From) || !base.HasNode(op.Edge.To) {
				refuse(i, op, fmt.Errorf("dsa: %w: edge %v endpoints must be existing nodes", ErrUnknownNode, op.Edge))
				continue
			}
			if op.Edge.Weight < 0 {
				refuse(i, op, fmt.Errorf("dsa: %w %v", ErrNegativeWeight, op.Edge.Weight))
				continue
			}
			sets[op.Frag] = append(sets[op.Frag], op.Edge)
			changed[op.Frag] = true
		case OpDelete:
			found := -1
			for j, fe := range sets[op.Frag] {
				if fe == op.Edge {
					found = j
					break
				}
			}
			if found < 0 {
				refuse(i, op, fmt.Errorf("dsa: %w: edge %v not in fragment %d", ErrEdgeNotFound, op.Edge, op.Frag))
				continue
			}
			if len(sets[op.Frag]) == 1 {
				refuse(i, op, fmt.Errorf("dsa: %w: deleting %v would empty fragment %d", ErrEmptyFragment, op.Edge, op.Frag))
				continue
			}
			sets[op.Frag] = append(sets[op.Frag][:found], sets[op.Frag][found+1:]...)
			changed[op.Frag] = true
		default:
			refuse(i, op, fmt.Errorf("dsa: unknown op kind %d (want OpInsert or OpDelete)", int(op.Kind)))
		}
	}
	if len(opErrs) > 0 {
		return nil, stats, &BatchError{Ops: opErrs}
	}

	// Phase 2: rebuild the base graph (the node set is invariant —
	// inserts require existing endpoints, deletes never drop nodes) and
	// re-validate the partition.
	newBase := graph.New()
	for _, id := range base.Nodes() {
		newBase.AddNode(id, base.Coord(id))
	}
	for _, s := range sets {
		for _, fe := range s {
			newBase.AddEdge(fe)
		}
	}
	fr, err := fragment.New(newBase, sets)
	if err != nil {
		return nil, stats, err
	}

	// Phase 3: refresh the complementary information. The general case
	// recomputes it globally — any edge change can move a global
	// shortest path between disconnection-set nodes. But a batch whose
	// edges are provably irrelevant to every complementary table (see
	// compUnaffected) skips the global searches entirely, making the
	// update's cost scale with the touched fragments instead of the
	// graph.
	dss := fr.DisconnectionSets()
	var comp map[fragment.Pair]*CompInfo
	var runs int
	if st.compUnaffected(ops, dss) {
		comp = st.currentComp()
	} else {
		comp, runs, err = computeComp(ctx, newBase, dss, st.problem)
		if err != nil {
			return nil, stats, err
		}
		stats.RecomputedSets = len(dss)
	}
	stats.DijkstraRuns = runs
	stats.LocalOnly = len(dss) == 0

	// Phase 4: assemble the next store, sharing every site whose edge
	// set AND complementary tables are unchanged — for those, the
	// augmented graph, the relational snapshot and the (possibly
	// already built) dense CSR kernel carry over by pointer.
	next := &Store{
		fr:        fr,
		fg:        fr.FragmentationGraph(),
		problem:   st.problem,
		maxChains: st.maxChains,
		epoch:     st.epoch + 1,
		prep: PreprocessStats{
			DijkstraRuns:      runs,
			DisconnectionSets: len(dss),
		},
	}
	shared := fr.SharedNodes()
	for _, f := range fr.Fragments() {
		var site *Site
		if !changed[f.ID] && siteCompUnchanged(st.sites[f.ID], f.ID, comp) {
			site = st.sites[f.ID]
			stats.SitesShared++
		} else {
			site = buildSite(f, newBase, shared, comp)
			stats.SitesRebuilt = append(stats.SitesRebuilt, f.ID)
			// Pre-warm the dense CSR snapshot on the write path when the
			// superseded site had one: readers on the new epoch then
			// never pay the kernel rebuild inline.
			if st.sites[f.ID].densePrimed.Load() {
				_, _ = site.denseKernel()
			}
		}
		for _, ci := range site.Comp {
			next.prep.PairsStored += len(ci.Cost)
		}
		next.sites = append(next.sites, site)
	}
	return next, stats, nil
}

// compUnaffected reports whether the batch provably leaves every
// complementary table byte-identical, so the global searches can be
// skipped. The proof obligations, checked conservatively:
//
//   - The disconnection sets themselves are unchanged (same pairs,
//     same node sets) — otherwise new tables would be needed.
//   - For a shortest-path store, every op's edge weight strictly
//     exceeds every finite complementary cost. A path through such an
//     edge costs more than any current optimum, so an insert can never
//     improve a stored cost, and no global shortest path can have used
//     a deleted edge (it would have cost at least the edge's weight).
//   - For inserts, every ordered pair of every disconnection set
//     already has a stored cost — otherwise the new edge might connect
//     a currently unreachable pair, which no weight bound rules out.
//     On a reachability store this is the ONLY insert obligation
//     (weights are meaningless there: any edge adds reachability, and
//     full tables mean there is nothing left to add).
//   - A reachability store never fast-paths deletes: its tables carry
//     presence, not costs, so no weight bound can prove a deleted edge
//     was not the last connection between two border nodes.
//
// Any failed obligation falls back to the full recomputation; the
// fast path is an optimisation, never a semantic change (the
// incremental-vs-fresh-build property tests cover both routes).
func (st *Store) compUnaffected(ops []EdgeOp, newDss map[fragment.Pair][]graph.NodeID) bool {
	oldDss := st.fr.DisconnectionSets()
	if len(newDss) != len(oldDss) {
		return false
	}
	for p, nodes := range newDss {
		old, ok := oldDss[p]
		if !ok || len(old) != len(nodes) {
			return false
		}
		for i, n := range nodes {
			if old[i] != n {
				return false
			}
		}
	}
	maxCost := 0.0
	allPairsPresent := true
	for _, site := range st.sites {
		for _, ci := range site.Comp {
			n := len(ci.Nodes)
			if len(ci.Cost) != n*(n-1) {
				allPairsPresent = false
			}
			for _, c := range ci.Cost {
				if c > maxCost {
					maxCost = c
				}
			}
		}
	}
	for _, op := range ops {
		switch {
		case op.Kind == OpInsert:
			if !allPairsPresent {
				return false
			}
			if st.problem == ProblemShortestPath && op.Edge.Weight <= maxCost {
				return false
			}
		case st.problem != ProblemShortestPath:
			return false // reachability delete: no safe bound
		case op.Edge.Weight <= maxCost:
			return false
		}
	}
	return true
}

// currentComp collects the store's complementary tables (each stored
// at two sites; the pointers coincide, so the map is small).
func (st *Store) currentComp() map[fragment.Pair]*CompInfo {
	comp := make(map[fragment.Pair]*CompInfo)
	for _, site := range st.sites {
		for p, ci := range site.Comp {
			comp[p] = ci
		}
	}
	return comp
}

// siteCompUnchanged reports whether the complementary tables a
// fragment would hold under comp are identical to the ones the old
// site already holds — the sharing criterion for a fragment whose edge
// set did not change. Identical tables imply an identical augmented
// search graph, so every derived per-site structure (and any cached
// leg result computed from it) stays valid.
func siteCompUnchanged(old *Site, fragID int, comp map[fragment.Pair]*CompInfo) bool {
	involved := 0
	for p, ci := range comp {
		if p.I != fragID && p.J != fragID {
			continue
		}
		involved++
		oci, ok := old.Comp[p]
		if !ok || !compEqual(oci, ci) {
			return false
		}
	}
	return involved == len(old.Comp)
}

// compEqual reports whether two complementary tables carry identical
// node sets and cost maps.
func compEqual(a, b *CompInfo) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Cost) != len(b.Cost) {
		return false
	}
	for i, n := range a.Nodes {
		if b.Nodes[i] != n {
			return false
		}
	}
	for k, v := range a.Cost {
		if bv, ok := b.Cost[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
