package dsa

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// Engine selects the algorithm a site uses for its local recursive
// subquery — "for evaluating the recursive subquery on a fragment any
// suitable single-processor algorithm may be chosen" (§2.1).
type Engine int

const (
	// EngineDijkstra runs one Dijkstra per entry node on the augmented
	// fragment — the fast practical engine.
	EngineDijkstra Engine = iota
	// EngineSemiNaive runs the relational semi-naive min-cost fixpoint
	// with the entry set pushed as a selection; it reports the
	// iteration counts the paper's workload analysis is phrased in.
	EngineSemiNaive
	// EngineBitset runs the entry-set-restricted bitset-parallel
	// reachability kernel (tc.BitsetReachableFrom) over the augmented
	// fragment. It is connectivity-only: leg facts carry the presence
	// marker 1 instead of a path cost (the convention of
	// ProblemReachability complementary tables), so Connected works on
	// every store but cost queries refuse it.
	EngineBitset
	// EngineDense runs the entry-set-restricted dense cost kernel
	// (tc.DenseGraph.CostFrom) over a CSR snapshot of the augmented
	// fragment that the site builds once and reuses across legs. Unlike
	// the bitset engine it carries real path costs, so it answers both
	// cost and connectivity queries — the kernel-class engine for the
	// paper's headline workload.
	EngineDense
)

// String names the engine the way the CLI flags spell it.
func (e Engine) String() string {
	switch e {
	case EngineDijkstra:
		return "dijkstra"
	case EngineSemiNaive:
		return "seminaive"
	case EngineBitset:
		return "bitset"
	case EngineDense:
		return "dense"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine resolves an engine name, case-insensitively. Unknown
// names return an error wrapping ErrUnknownEngine — call sites must
// branch with errors.Is, never by matching engine-name strings
// themselves.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "dijkstra":
		return EngineDijkstra, nil
	case "seminaive":
		return EngineSemiNaive, nil
	case "bitset":
		return EngineBitset, nil
	case "dense":
		return EngineDense, nil
	}
	return 0, fmt.Errorf("dsa: %w %q (want dijkstra, seminaive, bitset or dense)", ErrUnknownEngine, name)
}

// ValidEngine reports whether e is a known engine — the single source
// of truth layers above (the serving layer, CLIs) check against, so an
// engine added here is automatically accepted everywhere.
func ValidEngine(e Engine) bool {
	switch e {
	case EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense:
		return true
	}
	return false
}

// LegResult is one executed leg: the (entry, exit, cost) facts it
// produced, as a small relation to be joined in the assembly phase.
type LegResult struct {
	// Leg echoes the executed leg.
	Leg Leg
	// Rel holds the produced facts, schema (src, dst, cost).
	Rel *relation.Relation
	// Stats reports the local fixpoint work.
	Stats tc.Stats
	// Took is the site-local execution time.
	Took time.Duration
}

// SiteWork summarises one site's contribution to a query.
type SiteWork struct {
	// Legs is the number of legs the site executed.
	Legs int
	// Stats accumulates the fixpoint statistics of those legs.
	Stats tc.Stats
	// Elapsed is the site's total busy time.
	Elapsed time.Duration
}

// AssemblyStats reports the final combination phase — "effectively a
// sequence of binary joins between a number of very small relations"
// (§2.1).
type AssemblyStats struct {
	// Joins is the number of binary joins performed.
	Joins int
	// MaxOperand is the largest operand cardinality seen, substantiating
	// the "very small relations" claim.
	MaxOperand int
}

// Outcome is the assembled answer of a query over one plan.
type Outcome struct {
	// Reachable reports whether any chain yielded a path.
	Reachable bool
	// Cost is the cheapest cost found; +Inf when unreachable.
	Cost float64
	// BestChain is the chain realising Cost; nil when unreachable.
	BestChain []int
	// Stats reports the assembly joins.
	Stats AssemblyStats
}

// Result is the answer to a disconnection-set query.
type Result struct {
	// Source and Target echo the query.
	Source, Target graph.NodeID
	// Reachable reports whether any path exists (along the considered
	// chains).
	Reachable bool
	// Cost is the shortest-path cost; +Inf when unreachable.
	Cost float64
	// BestChain is the fragment chain realising Cost (nil when
	// unreachable).
	BestChain []int
	// ChainsConsidered is the number of fragment chains evaluated.
	ChainsConsidered int
	// SameFragment reports the single-site fast path.
	SameFragment bool
	// Truncated propagates Plan.Truncated: chain enumeration hit the
	// MaxChains bound, so some fragment chains were never evaluated.
	// Reachable may then be a false negative and Cost is only an upper
	// bound on the true shortest-path cost; re-query with a higher
	// bound (or 0, unlimited) for an exact answer.
	Truncated bool
	// PerSite maps site IDs to their work.
	PerSite map[int]SiteWork
	// Assembly reports the final-phase joins.
	Assembly AssemblyStats
	// Elapsed is the wall-clock time of the whole query.
	Elapsed time.Duration
	// CriticalPath is the maximum single-site busy time — what the
	// elapsed time would be on truly parallel hardware with free
	// coordination.
	CriticalPath time.Duration
	// MessagesSent counts site→coordinator result shipments (the first
	// phase itself is communication-free; these are the assembly
	// inputs).
	MessagesSent int
	// TuplesShipped is the total cardinality of the shipped leg
	// results, the paper's "relatively small operands".
	TuplesShipped int
}

// Query answers a shortest-path query sequentially: plan, run every
// leg one after another, assemble. Stores built for ProblemReachability
// refuse cost queries — their complementary information carries only
// connectivity.
func (st *Store) Query(source, target graph.NodeID, engine Engine) (*Result, error) {
	if st.problem != ProblemShortestPath {
		return nil, fmt.Errorf("dsa: %w: store precomputed for reachability cannot answer cost queries", ErrProblemMismatch)
	}
	if engine == EngineBitset {
		return nil, fmt.Errorf("dsa: %w: engine bitset computes connectivity only; use Connected", ErrEngineMismatch)
	}
	return st.run(source, target, engine, false)
}

// QueryParallel answers a shortest-path query with one goroutine per
// site, the goroutine-per-processor realisation of the paper's
// "neither communication nor synchronization is required during the
// first phase of the computation".
func (st *Store) QueryParallel(source, target graph.NodeID, engine Engine) (*Result, error) {
	if st.problem != ProblemShortestPath {
		return nil, fmt.Errorf("dsa: %w: store precomputed for reachability cannot answer cost queries", ErrProblemMismatch)
	}
	if engine == EngineBitset {
		return nil, fmt.Errorf("dsa: %w: engine bitset computes connectivity only; use Connected", ErrEngineMismatch)
	}
	return st.run(source, target, engine, true)
}

// Connected reports whether target is reachable from source; it is the
// paper's "Is A connected to B?" query, sharing the whole pipeline. It
// works on both problem types (a shortest-path store's complementary
// information subsumes connectivity).
func (st *Store) Connected(source, target graph.NodeID, engine Engine) (bool, error) {
	res, err := st.run(source, target, engine, false)
	if err != nil {
		return false, err
	}
	return res.Reachable, nil
}

// ConnectedParallel answers the connectivity query with one goroutine
// per site, the parallel counterpart of Connected. Like Connected it
// works on both problem types and accepts every engine, including the
// connectivity-only EngineBitset.
func (st *Store) ConnectedParallel(source, target graph.NodeID, engine Engine) (bool, error) {
	res, err := st.run(source, target, engine, true)
	if err != nil {
		return false, err
	}
	return res.Reachable, nil
}

// run executes the full pipeline.
func (st *Store) run(source, target graph.NodeID, engine Engine, parallel bool) (*Result, error) {
	plan, err := st.NewPlan(source, target)
	if err != nil {
		return nil, err
	}
	return st.RunPlan(plan, engine, parallel)
}

// PlanResult initialises the Result scaffolding every executor shares
// (RunPlan, QueryPipelined, the serving layer's pooled executor): the
// echoed query fields plus the source==target and no-chain fast paths.
// done reports that the result is already complete and phase 1 can be
// skipped; Elapsed is left to the caller.
func (st *Store) PlanResult(plan *Plan) (res *Result, done bool) {
	res = &Result{
		Source:           plan.Source,
		Target:           plan.Target,
		Cost:             math.Inf(1),
		SameFragment:     plan.SameFragment,
		Truncated:        plan.Truncated,
		ChainsConsidered: len(plan.Chains),
		PerSite:          make(map[int]SiteWork),
	}
	if plan.Source == plan.Target {
		res.Reachable = true
		res.Cost = 0
		if fs := st.fr.FragmentsOf(plan.Source); len(fs) > 0 {
			res.BestChain = []int{fs[0]}
		}
		return res, true
	}
	if len(plan.Chains) == 0 {
		return res, true
	}
	return res, false
}

// FinishPlan folds executed leg results into a PlanResult-initialised
// res: per-site work accounting, the critical path, and the assembly
// phase. results must be indexed like plan.Legs; Elapsed is left to
// the caller.
func (st *Store) FinishPlan(plan *Plan, results []*LegResult, res *Result) error {
	for i, lr := range results {
		if lr == nil {
			return fmt.Errorf("dsa: finish: missing result for leg %d", i)
		}
		w := res.PerSite[lr.Leg.SiteID]
		w.Legs++
		w.Stats.Add(lr.Stats)
		w.Elapsed += lr.Took
		res.PerSite[lr.Leg.SiteID] = w
		res.MessagesSent++
		res.TuplesShipped += lr.Rel.Len()
	}
	for _, w := range res.PerSite {
		if w.Elapsed > res.CriticalPath {
			res.CriticalPath = w.Elapsed
		}
	}
	out, err := st.Assemble(plan, results)
	if err != nil {
		return err
	}
	res.Reachable = out.Reachable
	res.Cost = out.Cost
	res.BestChain = out.BestChain
	res.Assembly = out.Stats
	return nil
}

// RunPlan executes a prepared plan: phase 1 per-site legs (concurrent
// when parallel is set), then assembly. External planners (package phe)
// pair it with PlanChains.
func (st *Store) RunPlan(plan *Plan, engine Engine, parallel bool) (*Result, error) {
	return st.RunPlanCtx(context.Background(), plan, engine, parallel)
}

// RunPlanCtx is RunPlan with cancellation: sites observe ctx between
// legs and the kernels observe it between fixpoint rounds / levels, so
// a canceled query returns ErrCanceled promptly instead of finishing
// the remaining work.
func (st *Store) RunPlanCtx(ctx context.Context, plan *Plan, engine Engine, parallel bool) (*Result, error) {
	if !ValidEngine(engine) {
		return nil, fmt.Errorf("dsa: %w %d", ErrUnknownEngine, engine)
	}
	start := time.Now()
	res, done := st.PlanResult(plan)
	if done {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Phase 1: execute legs, grouped per site (a site runs its legs
	// serially; distinct sites run concurrently when parallel).
	bySite := make(map[int][]int)
	for i, l := range plan.Legs {
		bySite[l.SiteID] = append(bySite[l.SiteID], i)
	}
	results := make([]*LegResult, len(plan.Legs))
	runSite := func(siteID int, legIdxs []int) error {
		for _, i := range legIdxs {
			if ctx.Err() != nil {
				return canceledErr(ctx)
			}
			lr, err := st.ExecuteLegCtx(ctx, plan.Legs[i], engine)
			if err != nil {
				return err
			}
			results[i] = lr
		}
		return nil
	}
	if parallel {
		var wg sync.WaitGroup
		errs := make(chan error, len(bySite))
		for siteID, idxs := range bySite {
			wg.Add(1)
			go func(id int, ix []int) {
				defer wg.Done()
				if err := runSite(id, ix); err != nil {
					errs <- err
				}
			}(siteID, idxs)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
	} else {
		for _, siteID := range plan.SitesInvolved() {
			if err := runSite(siteID, bySite[siteID]); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: accounting + assembly.
	if err := st.FinishPlan(plan, results, res); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ExecuteLeg executes one leg on its site with the chosen engine. It is
// the unit of work a (real or simulated) processor performs; package
// sim schedules these across simulated sites.
func (st *Store) ExecuteLeg(leg Leg, engine Engine) (*LegResult, error) {
	return st.ExecuteLegCtx(context.Background(), leg, engine)
}

// ExecuteLegCtx is ExecuteLeg with cancellation threaded into the
// engine kernels (between Dijkstra sources, fixpoint rounds and
// propagation levels).
func (st *Store) ExecuteLegCtx(ctx context.Context, leg Leg, engine Engine) (*LegResult, error) {
	t0 := time.Now()
	full, stats, err := st.ExecuteLegFullCtx(ctx, leg.SiteID, leg.Entry, engine)
	if err != nil {
		return nil, err
	}
	out, err := FilterLegFacts(full, leg)
	if err != nil {
		return nil, err
	}
	stats.ResultTuples = out.Len()
	return &LegResult{Leg: leg, Rel: out, Stats: stats, Took: time.Since(t0)}, nil
}

// ExecuteLegFull runs a leg engine from an entry set WITHOUT the
// exit-set selection: every (src, dst, cost) fact derivable from the
// entry nodes on the site's augmented fragment. This is the memoizable
// unit of leg execution — the expensive part of a leg depends only on
// (site, entry set, engine), while the exit set is a cheap selection —
// so a serving layer can cache the full relation under that key and
// specialise it per query with FilterLegFacts. For EngineBitset the
// cost column carries the presence marker 1 (the relation is a
// connectivity table, matching ExecuteLeg's convention).
func (st *Store) ExecuteLegFull(siteID int, entry []graph.NodeID, engine Engine) (*relation.Relation, tc.Stats, error) {
	return st.ExecuteLegFullCtx(context.Background(), siteID, entry, engine)
}

// ExecuteLegFullCtx is ExecuteLegFull with cancellation threaded into
// the engine kernels: the per-entry Dijkstra loop checks ctx between
// sources, and the relational, bitset and dense kernels observe it
// between fixpoint rounds / propagation levels. A canceled leg returns
// ErrCanceled.
func (st *Store) ExecuteLegFullCtx(ctx context.Context, siteID int, entry []graph.NodeID, engine Engine) (*relation.Relation, tc.Stats, error) {
	if siteID < 0 || siteID >= len(st.sites) {
		return nil, tc.Stats{}, fmt.Errorf("dsa: %w: leg site %d out of range", ErrUnknownSite, siteID)
	}
	site := st.sites[siteID]
	full := relation.New("src", "dst", "cost")
	var stats tc.Stats
	switch engine {
	case EngineDijkstra:
		for _, a := range entry {
			if ctx.Err() != nil {
				return nil, stats, canceledErr(ctx)
			}
			dist, _ := site.augmented.ShortestPaths(a)
			for x, d := range dist {
				if a != x {
					full.MustInsert(relation.Tuple{int64(a), int64(x), d})
				}
			}
			stats.DerivedTuples += len(dist)
		}
	case EngineSemiNaive:
		// ShortestFrom already returns a freshly owned (src, dst, cost)
		// relation; adopt it instead of copying.
		rel, s, err := tc.ShortestFromCtx(ctx, site.rel(), entry)
		if err != nil {
			return nil, tc.Stats{}, fmt.Errorf("dsa: site %d leg: %w", site.ID, err)
		}
		stats = s
		full = rel
	case EngineBitset:
		pairs, s, err := tc.BitsetReachableFromCtx(ctx, site.rel(), entry)
		if err != nil {
			return nil, tc.Stats{}, fmt.Errorf("dsa: site %d leg: %w", site.ID, err)
		}
		stats = s
		for _, t := range pairs.Tuples() {
			// Presence marker, not a path cost — assembly sums stay
			// finite and Reachable is exact; Cost is meaningless and
			// cost queries refuse this engine.
			full.MustInsert(relation.Tuple{t[0], t[1], 1.0})
		}
	case EngineDense:
		kernel, err := site.denseKernel()
		if err != nil {
			return nil, tc.Stats{}, err
		}
		// The site's CSR snapshot already owns its result relation.
		rel, s, err := kernel.CostFromCtx(ctx, entry)
		if err != nil {
			return nil, tc.Stats{}, fmt.Errorf("dsa: site %d leg: %w", site.ID, err)
		}
		stats = s
		full = rel
	default:
		return nil, tc.Stats{}, fmt.Errorf("dsa: %w %d", ErrUnknownEngine, engine)
	}
	stats.ResultTuples = full.Len()
	return full, stats, nil
}

// FilterLegFacts specialises ExecuteLegFull output to one leg: the
// exit-set selection plus the zero-cost facts for entry nodes that are
// themselves exit nodes. ExecuteLegFull followed by FilterLegFacts
// produces exactly the relation ExecuteLeg computes directly (tuple
// order aside), so cached full relations and freshly executed legs
// assemble to identical answers.
func FilterLegFacts(full *relation.Relation, leg Leg) (*relation.Relation, error) {
	out, err := full.SelectInKeys("dst", relation.NodeKeySet(leg.Exit))
	if err != nil {
		return nil, err
	}
	for _, a := range leg.Entry {
		for _, x := range leg.Exit {
			if a == x {
				out.MustInsert(relation.Tuple{int64(a), int64(x), 0.0})
			}
		}
	}
	return out, nil
}

// Assemble folds executed leg results into the final answer: for each
// chain of the plan, a running (node, cost) vector is joined with each
// leg relation in turn and min-aggregated; the cheapest chain wins.
// results must be indexed like plan.Legs.
func (st *Store) Assemble(plan *Plan, results []*LegResult) (*Outcome, error) {
	if len(results) != len(plan.Legs) {
		return nil, fmt.Errorf("dsa: assemble: %d results for %d legs", len(results), len(plan.Legs))
	}
	out := &Outcome{Cost: math.Inf(1)}
	for ci, chain := range plan.Chains {
		cost, ok, err := st.assembleChain(plan, results, ci, &out.Stats)
		if err != nil {
			return nil, err
		}
		if ok && cost < out.Cost {
			out.Cost = cost
			out.BestChain = chain
			out.Reachable = true
		}
	}
	return out, nil
}

// assembleChain folds the leg results of chain ci into the cost from
// source to target along that chain.
func (st *Store) assembleChain(plan *Plan, results []*LegResult, ci int, stats *AssemblyStats) (float64, bool, error) {
	vec := relation.New("node", "cost")
	vec.MustInsert(relation.Tuple{int64(plan.Source), 0.0})
	for _, li := range plan.chainLegs[ci] {
		lr := results[li]
		if lr == nil {
			return 0, false, fmt.Errorf("dsa: assemble: missing result for leg %d", li)
		}
		if lr.Rel.Len() > stats.MaxOperand {
			stats.MaxOperand = lr.Rel.Len()
		}
		if vec.Len() > stats.MaxOperand {
			stats.MaxOperand = vec.Len()
		}
		legRel, err := lr.Rel.Rename("node", "next", "step")
		if err != nil {
			return 0, false, err
		}
		joined, err := vec.Join(legRel, []string{"node"}, []string{"node"})
		if err != nil {
			return 0, false, err
		}
		stats.Joins++
		next := relation.New("node", "cost")
		for _, t := range joined.Tuples() {
			next.MustInsert(relation.Tuple{t[2], t[1].(float64) + t[3].(float64)})
		}
		vec, err = next.MinBy("cost", "node")
		if err != nil {
			return 0, false, err
		}
		if vec.Len() == 0 {
			return 0, false, nil // chain broken: no path through this DS
		}
	}
	at, err := vec.SelectEq("node", int64(plan.Target))
	if err != nil {
		return 0, false, err
	}
	cost, ok, err := at.MinValue("cost")
	if err != nil {
		return 0, false, err
	}
	return cost, ok, nil
}

// ChainLegs exposes, for each chain of the plan, the indices into
// plan.Legs along it (read-only view for external schedulers and
// tests).
func (p *Plan) ChainLegs() [][]int { return p.chainLegs }
