package dsa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// pathStore builds a 3-fragment chain over the path 0-1-…-8 (symmetric
// unit edges): fragments {0..3}, {3..6}, {6..8}.
func pathStore(t *testing.T) (*Store, *graph.Graph) {
	t.Helper()
	g := graph.New()
	for i := 0; i < 9; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{X: float64(i)})
	}
	var sets [][]graph.Edge
	cut := []int{0, 3, 6, 8}
	for k := 0; k+1 < len(cut); k++ {
		var es []graph.Edge
		for i := cut[k]; i < cut[k+1]; i++ {
			e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
			rev := e.Reverse()
			g.AddEdge(e)
			g.AddEdge(rev)
			es = append(es, e, rev)
		}
		sets = append(sets, es)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, g
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil fragmentation accepted")
	}
	st, _ := pathStore(t)
	if _, err := Build(st.Fragmentation(), Options{MaxChains: -1}); err == nil {
		t.Error("negative MaxChains accepted")
	}
}

func TestStoreShape(t *testing.T) {
	st, _ := pathStore(t)
	if len(st.Sites()) != 3 {
		t.Fatalf("sites = %d", len(st.Sites()))
	}
	if !st.LooselyConnected() {
		t.Error("chain store should be loosely connected")
	}
	prep := st.Preprocessing()
	if prep.DisconnectionSets != 2 {
		t.Errorf("DS count = %d, want 2", prep.DisconnectionSets)
	}
	// DS = {3} and {6}: two distinct border nodes → two Dijkstra runs.
	if prep.DijkstraRuns != 2 {
		t.Errorf("Dijkstra runs = %d, want 2", prep.DijkstraRuns)
	}
	// Site 1 participates in both disconnection sets.
	if len(st.Site(1).Comp) != 2 {
		t.Errorf("site 1 comp infos = %d, want 2", len(st.Site(1).Comp))
	}
	if len(st.Site(0).Comp) != 1 {
		t.Errorf("site 0 comp infos = %d, want 1", len(st.Site(0).Comp))
	}
}

func TestCompInfoShortcutEdges(t *testing.T) {
	ci := &CompInfo{
		Pair:  fragment.Pair{I: 0, J: 1},
		Nodes: []graph.NodeID{1, 2},
		Cost: map[[2]graph.NodeID]float64{
			{1, 2}: 5, {2, 1}: 7,
		},
	}
	edges := ci.ShortcutEdges()
	if len(edges) != 2 {
		t.Fatalf("shortcuts = %v", edges)
	}
	if edges[0].From != 1 || edges[0].Weight != 5 {
		t.Errorf("first shortcut = %v", edges[0])
	}
}

func TestPlanSameFragment(t *testing.T) {
	st, _ := pathStore(t)
	p, err := st.NewPlan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SameFragment || len(p.Chains) != 1 || len(p.Legs) != 1 {
		t.Errorf("plan = %+v", p)
	}
	if got := p.SitesInvolved(); len(got) != 1 || got[0] != 0 {
		t.Errorf("sites = %v, want [0]", got)
	}
}

func TestPlanChain(t *testing.T) {
	st, _ := pathStore(t)
	p, err := st.NewPlan(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.SameFragment {
		t.Error("0 and 8 are not in the same fragment")
	}
	if len(p.Chains) != 1 || len(p.Chains[0]) != 3 {
		t.Fatalf("chains = %v", p.Chains)
	}
	if len(p.Legs) != 3 {
		t.Errorf("legs = %v", p.Legs)
	}
	// Middle leg: entry DS01 = {3}, exit DS12 = {6}.
	mid := p.Legs[1]
	if len(mid.Entry) != 1 || mid.Entry[0] != 3 || len(mid.Exit) != 1 || mid.Exit[0] != 6 {
		t.Errorf("middle leg = %+v", mid)
	}
}

func TestPlanBorderNodeQuery(t *testing.T) {
	// Node 3 is in fragments 0 and 1; a query 3→8 should use the
	// shorter chain starting at fragment 1 as one of its chains.
	st, _ := pathStore(t)
	p, err := st.NewPlan(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.SameFragment {
		t.Error("3 and 8 do not share a fragment")
	}
	found := false
	for _, c := range p.Chains {
		if len(c) == 2 && c[0] == 1 && c[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("chains %v missing [1 2]", p.Chains)
	}
}

func TestPlanErrors(t *testing.T) {
	st, g := pathStore(t)
	if _, err := st.NewPlan(99, 0); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := st.NewPlan(0, 99); err == nil {
		t.Error("unknown target accepted")
	}
	g.AddNode(50, graph.Coord{})
	if _, err := st.NewPlan(50, 0); err == nil {
		t.Error("isolated source accepted")
	}
}

func TestQueryChainCost(t *testing.T) {
	st, g := pathStore(t)
	for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive} {
		res, err := st.Query(0, 8, engine)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reachable || res.Cost != 8 {
			t.Errorf("engine %d: cost = %v, want 8", engine, res.Cost)
		}
		if want := g.Distance(0, 8); res.Cost != want {
			t.Errorf("engine %d: cost = %v, global = %v", engine, res.Cost, want)
		}
		if len(res.BestChain) != 3 {
			t.Errorf("best chain = %v", res.BestChain)
		}
		if len(res.PerSite) != 3 {
			t.Errorf("per-site work = %v, want 3 sites", res.PerSite)
		}
		if res.Assembly.Joins == 0 {
			t.Error("assembly did no joins")
		}
	}
}

func TestQuerySameFragmentUsesOneSite(t *testing.T) {
	st, _ := pathStore(t)
	res, err := st.Query(0, 2, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameFragment || res.Cost != 2 {
		t.Errorf("res = %+v", res)
	}
	if len(res.PerSite) != 1 {
		t.Errorf("same-fragment query touched %d sites", len(res.PerSite))
	}
}

func TestQuerySourceEqualsTarget(t *testing.T) {
	st, _ := pathStore(t)
	res, err := st.Query(4, 4, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Cost != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestQueryUnreachable(t *testing.T) {
	// Two disconnected single-edge fragments.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 10, To: 11, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(0, 11, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || !math.IsInf(res.Cost, 1) {
		t.Errorf("res = %+v, want unreachable", res)
	}
	ok, err := st.Connected(0, 11, EngineDijkstra)
	if err != nil || ok {
		t.Errorf("Connected = %v, %v", ok, err)
	}
}

func TestQueryDirectedUnreachable(t *testing.T) {
	// One-way path 0→1→2, fragments {0→1}, {1→2}: 2 cannot reach 0.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 1, To: 2, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(2, 0, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Error("directed reverse query should be unreachable")
	}
	fwd, err := st.Query(0, 2, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.Reachable || fwd.Cost != 2 {
		t.Errorf("forward = %+v", fwd)
	}
}

func TestQueryUnknownEngine(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := st.Query(0, 8, Engine(42)); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestQueryParallelMatchesSequential(t *testing.T) {
	st, _ := pathStore(t)
	seq, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	par, err := st.QueryParallel(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cost != par.Cost || seq.Reachable != par.Reachable {
		t.Errorf("sequential %v vs parallel %v", seq.Cost, par.Cost)
	}
	if par.MessagesSent != seq.MessagesSent {
		t.Errorf("messages: %d vs %d", par.MessagesSent, seq.MessagesSent)
	}
}

func TestShortcutCapturesOutsidePath(t *testing.T) {
	// The Holland property: a same-fragment query whose true shortest
	// path leaves the fragment must still be answered exactly by the
	// single site, via complementary information.
	//
	// Fragment 0: expensive direct edge 0-1 (cost 10) plus border
	// nodes 0, 1 shared with fragment 1, where a cheap detour 0-2-1
	// (cost 2) lives.
	g := graph.New()
	exp := graph.Edge{From: 0, To: 1, Weight: 10}
	expR := exp.Reverse()
	d1 := graph.Edge{From: 0, To: 2, Weight: 1}
	d1R := d1.Reverse()
	d2 := graph.Edge{From: 2, To: 1, Weight: 1}
	d2R := d2.Reverse()
	for _, e := range []graph.Edge{exp, expR, d1, d1R, d2, d2R} {
		g.AddEdge(e)
	}
	fr, err := fragment.New(g, [][]graph.Edge{{exp, expR}, {d1, d1R, d2, d2R}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(0, 1, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Errorf("cost = %v, want 2 (via complementary info)", res.Cost)
	}
	if !res.SameFragment {
		t.Error("0 and 1 share fragment 0; plan should be same-fragment")
	}
}

func TestZeroCostBorderTraversal(t *testing.T) {
	// Source is itself the disconnection-set node: entering and leaving
	// the middle fragment at the same node must cost 0, not break the
	// chain.
	st, _ := pathStore(t)
	res, err := st.Query(3, 6, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Cost != 3 {
		t.Errorf("res.Cost = %v, want 3", res.Cost)
	}
}

func TestMaxChainsTruncation(t *testing.T) {
	// Ring of 4 single-edge fragments: two chains between opposite
	// fragments; MaxChains 1 truncates.
	g := graph.New()
	var sets [][]graph.Edge
	for i := 0; i < 4; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID((i + 1) % 4), Weight: 1}
		g.AddEdge(e)
		sets = append(sets, []graph.Edge{e})
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{MaxChains: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.NewPlan(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Truncated {
		t.Error("plan should report truncation")
	}
	res, err := st.Query(0, 2, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.Reachable {
		t.Errorf("res = %+v", res)
	}
}

// buildLinearStore fragments a random transportation graph with the
// linear algorithm (guaranteed loosely connected) and builds the store.
func buildLinearStore(seed int64, clusters, perCluster, frags int) (*Store, *graph.Graph, error) {
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: clusters,
		Cluster:  gen.Defaults(perCluster, seed),
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
	if err != nil {
		return nil, nil, err
	}
	st, err := Build(res.Fragmentation, Options{})
	if err != nil {
		return nil, nil, err
	}
	return st, g, nil
}

// TestPropertyDSAMatchesGlobalDijkstra is the central correctness
// property of the reproduction: for loosely connected fragmentations,
// the disconnection set approach returns exactly the global
// shortest-path cost, for random graphs, random queries, both engines
// and both executors.
func TestPropertyDSAMatchesGlobalDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(6), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		if !st.LooselyConnected() {
			return false // linear guarantees this
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			want := g.Distance(src, dst)
			for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive} {
				res, err := st.Query(src, dst, engine)
				if err != nil {
					return false
				}
				if res.Reachable != !math.IsInf(want, 1) {
					return false
				}
				if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
					return false
				}
			}
			par, err := st.QueryParallel(src, dst, EngineDijkstra)
			if err != nil {
				return false
			}
			if par.Reachable && math.Abs(par.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDSANeverUndershoots: even on cyclic fragmentation graphs
// (where only chain-restricted paths are considered) the reported cost
// is the cost of a real path, hence ≥ the global optimum; and
// reachability is never over-reported.
func TestPropertyDSANeverUndershoots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.General(gen.Defaults(12+rng.Intn(10), seed))
		if err != nil || g.NumEdges() < 4 {
			return err == nil
		}
		// Arbitrary round-robin partition — typically cyclic G'.
		edges := g.Edges()
		k := 2 + rng.Intn(3)
		sets := make([][]graph.Edge, k)
		for i, e := range edges {
			sets[i%k] = append(sets[i%k], e)
		}
		fr, err := fragment.New(g, sets)
		if err != nil {
			return false
		}
		st, err := Build(fr, Options{MaxChains: 50})
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 3; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			res, err := st.Query(src, dst, EngineDijkstra)
			if err != nil {
				return false
			}
			want := g.Distance(src, dst)
			if res.Reachable && math.IsInf(want, 1) {
				return false // over-reported reachability
			}
			if res.Reachable && res.Cost < want-1e-9 {
				return false // cheaper than the global optimum: impossible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertySameFragmentSingleSite: the Holland property holds for
// every same-fragment query on loosely connected stores — one site,
// exact answer.
func TestPropertySameFragmentSingleSite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2, 10, 3)
		if err != nil {
			return false
		}
		for _, frag := range st.Fragmentation().Fragments() {
			nodes := frag.Nodes()
			if len(nodes) < 2 {
				continue
			}
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			res, err := st.Query(src, dst, EngineDijkstra)
			if err != nil {
				return false
			}
			if !res.SameFragment && src != dst {
				return false
			}
			want := g.Distance(src, dst)
			if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
