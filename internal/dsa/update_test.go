package dsa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/graph"
)

func TestInsertEdgeShortensPaths(t *testing.T) {
	st, _ := pathStore(t)
	before, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cost != 8 {
		t.Fatalf("baseline cost = %v", before.Cost)
	}
	// A new express edge 1→7 inside... 1 is in fragment 0, 7 in
	// fragment 2; assign it to fragment 0 (its node set then includes 7
	// — a new disconnection set appears).
	stats, err := st.InsertEdge(0, graph.Edge{From: 1, To: 7, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DijkstraRuns == 0 {
		t.Error("insert should have rebuilt complementary information")
	}
	after, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cost != 3 { // 0→1 (1) + 1→7 (1) + 7→8 (1)
		t.Errorf("cost after insert = %v, want 3", after.Cost)
	}
	// The store must still agree with a fresh global search.
	if want := st.Fragmentation().Base().Distance(0, 8); math.Abs(after.Cost-want) > 1e-9 {
		t.Errorf("store %v vs global %v", after.Cost, want)
	}
}

func TestInsertEdgeValidation(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := st.InsertEdge(99, graph.Edge{From: 0, To: 1, Weight: 1}); err == nil {
		t.Error("bad fragment accepted")
	}
	if _, err := st.InsertEdge(0, graph.Edge{From: 0, To: 999, Weight: 1}); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := st.InsertEdge(0, graph.Edge{From: 0, To: 1, Weight: -2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestDeleteEdgeLengthensPaths(t *testing.T) {
	st, _ := pathStore(t)
	// Delete the forward edge 4→5 in the middle fragment: 0 can no
	// longer reach 8 (the reverse edge 5→4 remains but points the wrong
	// way).
	stats, err := st.DeleteEdge(1, graph.Edge{From: 4, To: 5, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// pathStore's disconnection sets are single nodes, so the
	// complementary tables are vacuous and the incremental write path
	// proves no global search is needed — the answers below are the
	// real oracle.
	if stats.DijkstraRuns != 0 {
		t.Errorf("delete ran %d global searches on vacuous complementary tables, want 0", stats.DijkstraRuns)
	}
	res, err := st.Query(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Errorf("0→8 should be unreachable after deleting 4→5, got cost %v", res.Cost)
	}
	// The reverse direction is unaffected.
	rev, err := st.Query(8, 0, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Reachable || rev.Cost != 8 {
		t.Errorf("8→0 = %+v, want cost 8", rev)
	}
}

func TestDeleteEdgeValidation(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := st.DeleteEdge(99, graph.Edge{From: 0, To: 1, Weight: 1}); err == nil {
		t.Error("bad fragment accepted")
	}
	if _, err := st.DeleteEdge(1, graph.Edge{From: 0, To: 1, Weight: 1}); err == nil {
		t.Error("edge not in fragment accepted")
	}

	// Deleting the only edge of a fragment must be refused.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 1, To: 2, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.DeleteEdge(0, e1); err == nil {
		t.Error("emptying a fragment accepted")
	}
}

// TestPropertyUpdatesPreserveExactness: after a random series of
// inserts and deletes, the store still answers exactly like global
// Dijkstra on its (current) base graph.
func TestPropertyUpdatesPreserveExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, _, err := buildLinearStore(seed, 2, 8, 2)
		if err != nil {
			return false
		}
		for step := 0; step < 3; step++ {
			base := st.Fragmentation().Base()
			nodes := base.Nodes()
			if rng.Intn(2) == 0 {
				// Insert a random edge into a random fragment.
				frag := rng.Intn(st.Fragmentation().NumFragments())
				u := nodes[rng.Intn(len(nodes))]
				v := nodes[rng.Intn(len(nodes))]
				if u == v {
					continue
				}
				if _, err := st.InsertEdge(frag, graph.Edge{From: u, To: v, Weight: 1 + rng.Float64()*5}); err != nil {
					return false
				}
			} else {
				// Delete a random edge (skip if it would empty the
				// fragment).
				frag := rng.Intn(st.Fragmentation().NumFragments())
				edges := st.Fragmentation().Fragment(frag).Edges
				if len(edges) < 2 {
					continue
				}
				if _, err := st.DeleteEdge(frag, edges[rng.Intn(len(edges))]); err != nil {
					return false
				}
			}
			// Spot-check exactness (only when still loosely connected;
			// inserts can create cycles in G').
			if !st.LooselyConnected() {
				continue
			}
			base = st.Fragmentation().Base()
			nodes = base.Nodes()
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			res, err := st.Query(src, dst, EngineDijkstra)
			if err != nil {
				return false
			}
			want := base.Distance(src, dst)
			if res.Reachable != !math.IsInf(want, 1) {
				return false
			}
			if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
