package dsa_test

import (
	"fmt"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
)

// buildExampleStore fragments a 6-node path into two halves.
func buildExampleStore() (*dsa.Store, error) {
	g := graph.New()
	var sets [][]graph.Edge
	for half := 0; half < 2; half++ {
		var edges []graph.Edge
		for i := half * 3; i < half*3+3; i++ {
			e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
			g.AddEdge(e)
			g.AddEdge(e.Reverse())
			edges = append(edges, e, e.Reverse())
		}
		sets = append(sets, edges)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		return nil, err
	}
	return dsa.Build(fr, dsa.Options{})
}

// Example demonstrates the full disconnection-set pipeline: build the
// store (complementary information), plan, query in parallel, and read
// the answer.
func Example() {
	store, err := buildExampleStore()
	if err != nil {
		panic(err)
	}
	res, err := store.QueryParallel(0, 6, dsa.EngineDijkstra)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f via chain %v, %d sites\n", res.Cost, res.BestChain, len(res.PerSite))
	// Output: cost 6 via chain [0 1], 2 sites
}

// ExampleStore_QueryPath reconstructs the actual itinerary, not just
// the cost.
func ExampleStore_QueryPath() {
	store, err := buildExampleStore()
	if err != nil {
		panic(err)
	}
	_, route, err := store.QueryPath(1, 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(route.Nodes)
	// Output: [1 2 3 4 5]
}

// ExampleStore_Connected answers the paper's "Is A connected to B?"
// query.
func ExampleStore_Connected() {
	store, err := buildExampleStore()
	if err != nil {
		panic(err)
	}
	ok, err := store.Connected(0, 6, dsa.EngineSemiNaive)
	if err != nil {
		panic(err)
	}
	fmt.Println(ok)
	// Output: true
}

// ExampleStore_NewPlan shows the fragment-level strategy before
// execution.
func ExampleStore_NewPlan() {
	store, err := buildExampleStore()
	if err != nil {
		panic(err)
	}
	plan, err := store.NewPlan(0, 6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("chains %v, legs %d, same fragment %v\n",
		plan.Chains, len(plan.Legs), plan.SameFragment)
	// Output: chains [[0 1]], legs 2, same fragment false
}
