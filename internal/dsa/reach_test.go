package dsa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// reachStore rebuilds the 3-fragment chain store precomputed for
// reachability.
func reachStore(t *testing.T) (*Store, *graph.Graph) {
	t.Helper()
	st, g := pathStore(t)
	rs, err := Build(st.Fragmentation(), Options{Problem: ProblemReachability})
	if err != nil {
		t.Fatal(err)
	}
	return rs, g
}

func TestReachabilityStoreConnected(t *testing.T) {
	rs, _ := reachStore(t)
	if rs.Problem() != ProblemReachability {
		t.Fatalf("problem = %v", rs.Problem())
	}
	ok, err := rs.Connected(0, 8, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("0 should reach 8")
	}
}

func TestReachabilityStoreRefusesCostQueries(t *testing.T) {
	rs, _ := reachStore(t)
	if _, err := rs.Query(0, 8, EngineDijkstra); err == nil {
		t.Error("cost query accepted on reachability store")
	}
	if _, err := rs.QueryParallel(0, 8, EngineDijkstra); err == nil {
		t.Error("parallel cost query accepted on reachability store")
	}
	if _, _, err := rs.QueryPath(0, 8); err == nil {
		t.Error("route query accepted on reachability store")
	}
}

func TestReachabilityPreprocessingIsBFS(t *testing.T) {
	// Same fragmentation, both problems: the reachability store must
	// store at least as many facts (every connected pair, not only
	// finite-cost ones — same set here) while never storing cost
	// information the problem does not need. The observable contract:
	// search counts match, and Connected agrees between the stores.
	st, g := pathStore(t)
	rs, err := Build(st.Fragmentation(), Options{Problem: ProblemReachability})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Preprocessing().DijkstraRuns != st.Preprocessing().DijkstraRuns {
		t.Errorf("search counts differ: %d vs %d",
			rs.Preprocessing().DijkstraRuns, st.Preprocessing().DijkstraRuns)
	}
	nodes := g.Nodes()
	for _, src := range nodes[:3] {
		for _, dst := range nodes[len(nodes)-3:] {
			a, err := st.Connected(src, dst, EngineDijkstra)
			if err != nil {
				t.Fatal(err)
			}
			b, err := rs.Connected(src, dst, EngineDijkstra)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("Connected(%d,%d): shortest-path store %v, reachability store %v", src, dst, a, b)
			}
		}
	}
}

func TestBuildRejectsUnknownProblem(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := Build(st.Fragmentation(), Options{Problem: Problem(7)}); err == nil {
		t.Error("unknown problem accepted")
	}
}

func TestReachabilityDirectedAsymmetry(t *testing.T) {
	// One-way chain: forward reachable, backward not — through the
	// reachability complementary information.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 1, To: 2, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Build(fr, Options{Problem: ProblemReachability})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := rs.Connected(0, 2, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rs.Connected(2, 0, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd || back {
		t.Errorf("fwd = %v, back = %v; want true, false", fwd, back)
	}
}

// TestPropertyReachabilityMatchesGlobal: on loosely connected stores,
// the reachability-problem store answers Connected exactly like a
// global reachability check, both engines.
func TestPropertyReachabilityMatchesGlobal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2 + rng.Intn(2),
			Cluster:  gen.Defaults(8, seed),
		})
		if err != nil {
			return false
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: 3})
		if err != nil {
			return false
		}
		rs, err := Build(res.Fragmentation, Options{Problem: ProblemReachability})
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			_, want := g.Reachable(src)[dst]
			for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset} {
				got, err := rs.Connected(src, dst, engine)
				if err != nil {
					return false
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
