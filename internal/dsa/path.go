package dsa

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Route is a fully materialised shortest path: the node sequence in the
// base graph together with its cost. The paper's queries ("What is the
// cost of the shortest path between A and B?") are cost queries, but a
// railway passenger wants the itinerary; Route is reconstructed from
// per-site predecessor information plus the complementary path
// segments, without ever shipping fragment data between sites.
type Route struct {
	// Nodes is the node sequence from source to target (inclusive).
	Nodes []graph.NodeID
	// Cost is the summed edge cost, equal to Result.Cost.
	Cost float64
}

// QueryPath answers a shortest-path query and reconstructs the actual
// route. It runs the standard (sequential, Dijkstra-engine) pipeline
// and then expands the winning chain: for each leg the per-site
// predecessor tree yields the fragment-local node sequence, and hops
// that used a complementary shortcut are expanded into the precomputed
// global path segment.
//
// Reconstruction never undercuts the paper's communication structure:
// the extra information per leg is one (entry, exit, path) list, still
// a small relation.
func (st *Store) QueryPath(source, target graph.NodeID) (*Result, *Route, error) {
	if st.problem != ProblemShortestPath {
		return nil, nil, fmt.Errorf("dsa: %w: store precomputed for reachability cannot reconstruct routes", ErrProblemMismatch)
	}
	res, err := st.Query(source, target, EngineDijkstra)
	if err != nil {
		return nil, nil, err
	}
	if !res.Reachable {
		return res, nil, nil
	}
	if source == target {
		return res, &Route{Nodes: []graph.NodeID{source}, Cost: 0}, nil
	}
	route, err := st.reconstruct(source, target, res.BestChain, res.Cost)
	if err != nil {
		return nil, nil, err
	}
	return res, route, nil
}

// reconstruct rebuilds the node sequence along the winning fragment
// chain with a backward dynamic program: cost-to-go vectors per chain
// position identify the border nodes the optimum passed through, then
// each leg's local path is expanded.
func (st *Store) reconstruct(source, target graph.NodeID, chain []int, totalCost float64) (*Route, error) {
	const eps = 1e-9
	type hop struct {
		site     int
		from, to graph.NodeID
		legCost  float64
	}

	// Forward vectors: costs[i] maps border nodes after leg i to their
	// best cost from the source. legDist[i] holds the site-local
	// distance maps per entry node for leg i.
	n := len(chain)
	costs := make([]map[graph.NodeID]float64, n+1)
	costs[0] = map[graph.NodeID]float64{source: 0}
	legDist := make([]map[graph.NodeID]map[graph.NodeID]float64, n)
	legPred := make([]map[graph.NodeID]map[graph.NodeID]graph.NodeID, n)
	for i, fragID := range chain {
		site := st.sites[fragID]
		var exits []graph.NodeID
		if i+1 < n {
			exits = st.fr.DisconnectionSet(fragID, chain[i+1])
		} else {
			exits = []graph.NodeID{target}
		}
		legDist[i] = make(map[graph.NodeID]map[graph.NodeID]float64)
		legPred[i] = make(map[graph.NodeID]map[graph.NodeID]graph.NodeID)
		next := make(map[graph.NodeID]float64)
		for entry, c0 := range costs[i] {
			dist, pred := site.augmented.ShortestPaths(entry)
			legDist[i][entry] = dist
			predTo := make(map[graph.NodeID]graph.NodeID, len(pred))
			for k, v := range pred {
				predTo[k] = v
			}
			legPred[i][entry] = predTo
			for _, x := range exits {
				d, ok := dist[x]
				if !ok && entry != x {
					continue
				}
				if entry == x {
					d = 0
				}
				if old, seen := next[x]; !seen || c0+d < old {
					next[x] = c0 + d
				}
			}
		}
		costs[i+1] = next
	}
	got, ok := costs[n][target]
	if !ok || math.Abs(got-totalCost) > eps*math.Max(1, math.Abs(totalCost)) {
		return nil, fmt.Errorf("dsa: path reconstruction cost %v disagrees with query cost %v", got, totalCost)
	}

	// Backward pass: pick, per leg, the entry node consistent with the
	// optimal total.
	hops := make([]hop, n)
	cur := target
	for i := n - 1; i >= 0; i-- {
		found := false
		for entry, c0 := range costs[i] {
			var d float64
			if entry == cur {
				d = 0
			} else if dd, ok := legDist[i][entry][cur]; ok {
				d = dd
			} else {
				continue
			}
			if math.Abs(c0+d-costs[i+1][cur]) <= eps*math.Max(1, math.Abs(costs[i+1][cur])) {
				hops[i] = hop{site: chain[i], from: entry, to: cur, legCost: d}
				cur = entry
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("dsa: path reconstruction lost the chain at leg %d", i)
		}
	}

	// Expand each hop into base-graph nodes.
	var nodes []graph.NodeID
	nodes = append(nodes, source)
	for i, h := range hops {
		if h.from == h.to {
			continue
		}
		site := st.sites[h.site]
		dist := legDist[i][h.from]
		pred := legPred[i][h.from]
		local := graph.PathTo(h.from, h.to, dist, pred)
		if local == nil {
			return nil, fmt.Errorf("dsa: no local path %d→%d at site %d", h.from, h.to, h.site)
		}
		expanded, err := st.expandShortcuts(site, local, dist)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, expanded[1:]...)
	}
	return &Route{Nodes: nodes, Cost: totalCost}, nil
}

// expandShortcuts replaces hops of a site-local path that correspond to
// complementary shortcut edges with the underlying global path
// segment. A hop (u, v) costing more than any real base edge u→v must
// have used a shortcut; the global segment is recovered with a
// base-graph search restricted by the known cost (the preprocessing
// could store the segments instead; recomputing keeps CompInfo small
// and the reconstruction exact either way).
func (st *Store) expandShortcuts(site *Site, local []graph.NodeID, dist map[graph.NodeID]float64) ([]graph.NodeID, error) {
	const eps = 1e-9
	base := st.fr.Base()
	out := []graph.NodeID{local[0]}
	for i := 0; i+1 < len(local); i++ {
		u, v := local[i], local[i+1]
		hopCost := dist[v] - dist[u]
		// A real fragment edge of that exact weight explains the hop.
		real := false
		for _, e := range site.Local.Out(u) {
			if e.To == v && math.Abs(e.Weight-hopCost) <= eps*math.Max(1, e.Weight) {
				real = true
				break
			}
		}
		if real {
			out = append(out, v)
			continue
		}
		// Shortcut: recover the global segment.
		gdist, gpred := base.ShortestPaths(u)
		seg := graph.PathTo(u, v, gdist, gpred)
		if seg == nil {
			return nil, fmt.Errorf("dsa: cannot expand shortcut %d→%d", u, v)
		}
		if math.Abs(gdist[v]-hopCost) > eps*math.Max(1, hopCost) {
			return nil, fmt.Errorf("dsa: shortcut %d→%d cost drifted: %v vs %v", u, v, gdist[v], hopCost)
		}
		out = append(out, seg[1:]...)
	}
	return out, nil
}

// Validate checks a route against a graph: consecutive nodes connected,
// edge costs summing to Cost. Tests and callers distrusting the
// reconstruction can verify cheaply.
func (r *Route) Validate(g *graph.Graph) error {
	const eps = 1e-6
	if len(r.Nodes) == 0 {
		return fmt.Errorf("dsa: empty route")
	}
	sum := 0.0
	for i := 0; i+1 < len(r.Nodes); i++ {
		u, v := r.Nodes[i], r.Nodes[i+1]
		best := math.Inf(1)
		for _, e := range g.Out(u) {
			if e.To == v && e.Weight < best {
				best = e.Weight
			}
		}
		if math.IsInf(best, 1) {
			return fmt.Errorf("dsa: route hop %d→%d is not a base edge", u, v)
		}
		sum += best
	}
	if math.Abs(sum-r.Cost) > eps*math.Max(1, math.Abs(r.Cost)) {
		return fmt.Errorf("dsa: route cost %v does not match claimed %v", sum, r.Cost)
	}
	return nil
}
