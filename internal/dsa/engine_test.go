package dsa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineNames(t *testing.T) {
	for _, e := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset} {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", e.String(), err)
		}
		if got != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", e.String(), got, e)
		}
	}
	if _, err := ParseEngine("warshall"); err == nil {
		t.Error("unknown engine name accepted")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine has empty name")
	}
}

// TestBitsetEngineRefusesCostQueries: the bitset engine carries
// presence markers, not costs, so the cost-query entry points must
// refuse it while Connected accepts it.
func TestBitsetEngineRefusesCostQueries(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := st.Query(0, 8, EngineBitset); err == nil {
		t.Error("Query accepted the connectivity-only bitset engine")
	}
	if _, err := st.QueryParallel(0, 8, EngineBitset); err == nil {
		t.Error("QueryParallel accepted the connectivity-only bitset engine")
	}
	ok, err := st.Connected(0, 8, EngineBitset)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Connected(0, 8) = false on the 0-…-8 path store")
	}
}

// TestPropertyEnginesAgreeOnConnectivity: on shortest-path stores over
// random loosely connected fragmentations, all three engines give the
// same Connected answer, which matches global reachability.
func TestPropertyEnginesAgreeOnConnectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(6), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			_, want := g.Reachable(src)[dst]
			if src == dst {
				want = true // Connected's same-node fast path
			}
			for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset} {
				got, err := st.Connected(src, dst, engine)
				if err != nil {
					return false
				}
				if got != want {
					return false
				}
				gotP, err := st.ConnectedParallel(src, dst, engine)
				if err != nil {
					return false
				}
				if gotP != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
