package dsa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/graph"
)

func TestEngineNames(t *testing.T) {
	for _, e := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense} {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", e.String(), err)
		}
		if got != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", e.String(), got, e)
		}
	}
	if _, err := ParseEngine("warshall"); err == nil {
		t.Error("unknown engine name accepted")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine has empty name")
	}
}

// TestBitsetEngineRefusesCostQueries: the bitset engine carries
// presence markers, not costs, so the cost-query entry points must
// refuse it while Connected accepts it.
func TestBitsetEngineRefusesCostQueries(t *testing.T) {
	st, _ := pathStore(t)
	if _, err := st.Query(0, 8, EngineBitset); err == nil {
		t.Error("Query accepted the connectivity-only bitset engine")
	}
	if _, err := st.QueryParallel(0, 8, EngineBitset); err == nil {
		t.Error("QueryParallel accepted the connectivity-only bitset engine")
	}
	ok, err := st.Connected(0, 8, EngineBitset)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Connected(0, 8) = false on the 0-…-8 path store")
	}
}

// TestPropertyEnginesAgreeOnConnectivity: on shortest-path stores over
// random loosely connected fragmentations, all three engines give the
// same Connected answer, which matches global reachability.
func TestPropertyEnginesAgreeOnConnectivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(6), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			_, want := g.Reachable(src)[dst]
			if src == dst {
				want = true // Connected's same-node fast path
			}
			for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense} {
				got, err := st.Connected(src, dst, engine)
				if err != nil {
					return false
				}
				if got != want {
					return false
				}
				gotP, err := st.ConnectedParallel(src, dst, engine)
				if err != nil {
					return false
				}
				if gotP != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDenseEngineAnswersCostQueries: the dense engine is cost-capable —
// Query/QueryParallel accept it and agree with the Dijkstra engine on
// both the multi-fragment chain and the same-fragment fast path.
func TestDenseEngineAnswersCostQueries(t *testing.T) {
	st, _ := pathStore(t)
	for _, q := range [][2]graph.NodeID{{0, 8}, {1, 2}, {8, 0}, {3, 6}} {
		want, err := st.Query(q[0], q[1], EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Query(q[0], q[1], EngineDense)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reachable != want.Reachable || math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Errorf("query %v: dense (%v, %v), dijkstra (%v, %v)",
				q, got.Reachable, got.Cost, want.Reachable, want.Cost)
		}
		gotP, err := st.QueryParallel(q[0], q[1], EngineDense)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotP.Cost-want.Cost) > 1e-9 {
			t.Errorf("parallel query %v: dense cost %v, want %v", q, gotP.Cost, want.Cost)
		}
	}
}

// TestPropertyDenseEngineMatchesDijkstraCosts: on random loosely
// connected fragmentations, the dense engine's query cost equals the
// Dijkstra engine's for random node pairs (and the pipelined dense
// mode agrees too).
func TestPropertyDenseEngineMatchesDijkstraCosts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 2+rng.Intn(2), 8+rng.Intn(6), 2+rng.Intn(3))
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for q := 0; q < 4; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			want, err := st.Query(src, dst, EngineDijkstra)
			if err != nil {
				return false
			}
			got, err := st.Query(src, dst, EngineDense)
			if err != nil {
				return false
			}
			if got.Reachable != want.Reachable {
				return false
			}
			if want.Reachable && math.Abs(got.Cost-want.Cost) > 1e-9 {
				return false
			}
			pip, err := st.QueryPipelinedEngine(src, dst, EngineDense)
			if err != nil {
				return false
			}
			if pip.Reachable != want.Reachable {
				return false
			}
			if want.Reachable && math.Abs(pip.Cost-want.Cost) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQueryPipelinedEngineRefusals: pipelined evaluation needs a
// vector-seeded engine; the relational and bitset engines are refused.
func TestQueryPipelinedEngineRefusals(t *testing.T) {
	st, _ := pathStore(t)
	for _, e := range []Engine{EngineSemiNaive, EngineBitset} {
		if _, err := st.QueryPipelinedEngine(0, 8, e); err == nil {
			t.Errorf("pipelined accepted non-vector-seeded engine %v", e)
		}
	}
	res, err := st.QueryPipelinedEngine(0, 8, EngineDense)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Cost != 8 {
		t.Errorf("pipelined dense 0→8 = (%v, %v), want (true, 8)", res.Reachable, res.Cost)
	}
}

// TestDenseEngineNegativeWeightsErrorNotPanic: graph files may carry
// negative weights (graph.Read does not validate signs), and Dijkstra
// silently tolerates them — but the dense kernel cannot. It must
// surface an error like the semi-naive engine, not panic: the serving
// layer runs legs on worker goroutines, where a panic kills the
// daemon.
func TestDenseEngineNegativeWeightsErrorNotPanic(t *testing.T) {
	g := graph.New()
	for i := 0; i < 3; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{X: float64(i)})
	}
	e1 := graph.Edge{From: 0, To: 1, Weight: -2}
	e2 := graph.Edge{From: 1, To: 2, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1, e2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(0, 2, EngineDense); err == nil {
		t.Error("dense query over negative weights returned no error")
	}
	if _, err := st.QueryPipelinedEngine(0, 2, EngineDense); err == nil {
		t.Error("pipelined dense query over negative weights returned no error")
	}
	if _, _, err := st.ExecuteLegFull(0, []graph.NodeID{0}, EngineDense); err == nil {
		t.Error("ExecuteLegFull dense over negative weights returned no error")
	}
	// The semi-naive engine refuses the same input; dijkstra remains
	// callable (it silently assumes non-negative weights).
	if _, err := st.Query(0, 2, EngineSemiNaive); err == nil {
		t.Error("seminaive query over negative weights returned no error")
	}
}
