package dsa

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fragmenters runs every §3 algorithm against a graph, returning named
// fragmentations for the full-pipeline integration tests.
func fragmenters(g *graph.Graph, seed int64) (map[string]*fragment.Fragmentation, error) {
	out := make(map[string]*fragment.Fragmentation)
	if fr, err := center.Fragment(g, center.Options{NumFragments: 3, Distributed: true}); err == nil {
		out["center"] = fr
	} else {
		return nil, err
	}
	if fr, err := bea.Fragment(g, bea.Options{Threshold: 3}); err == nil {
		out["bea"] = fr
	} else {
		return nil, err
	}
	if res, err := linear.Fragment(g, linear.Options{NumFragments: 3}); err == nil {
		out["linear"] = res.Fragmentation
	} else {
		return nil, err
	}
	return out, nil
}

// TestPropertyAllAlgorithmsEndToEnd is the full-pipeline integration
// property: generate → fragment (each §3 algorithm) → build → query,
// asserting exactness whenever the resulting fragmentation is loosely
// connected, and soundness (no undershoot, no phantom reachability)
// otherwise.
func TestPropertyAllAlgorithmsEndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := gen.Transportation(gen.TransportConfig{
			Clusters: 2 + rng.Intn(2),
			Cluster:  gen.Defaults(8+rng.Intn(5), seed),
		})
		if err != nil {
			return false
		}
		frs, err := fragmenters(g, seed)
		if err != nil {
			return false
		}
		nodes := g.Nodes()
		for _, fr := range frs {
			st, err := Build(fr, Options{MaxChains: 64})
			if err != nil {
				return false
			}
			loose := st.LooselyConnected()
			for q := 0; q < 3; q++ {
				src := nodes[rng.Intn(len(nodes))]
				dst := nodes[rng.Intn(len(nodes))]
				res, err := st.QueryParallel(src, dst, EngineDijkstra)
				if err != nil {
					return false
				}
				want := g.Distance(src, dst)
				if res.Reachable && math.IsInf(want, 1) {
					return false // phantom reachability is never allowed
				}
				if res.Reachable && res.Cost < want-1e-9 {
					return false // undershoot is never allowed
				}
				if loose {
					// Exactness on loosely connected fragmentations.
					if res.Reachable != !math.IsInf(want, 1) {
						return false
					}
					if res.Reachable && math.Abs(res.Cost-want) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPipelineDeterminism: the same seed yields byte-identical plans
// and costs across runs — required for reproducible experiments.
func TestPipelineDeterminism(t *testing.T) {
	build := func() (*Store, *graph.Graph) {
		g, err := gen.Transportation(gen.TransportConfig{Clusters: 3, Cluster: gen.Defaults(10, 77)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: 3})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Build(res.Fragmentation, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st, g
	}
	st1, g1 := build()
	st2, _ := build()
	nodes := g1.Nodes()
	for q := 0; q < 5; q++ {
		src := nodes[(q*13)%len(nodes)]
		dst := nodes[(q*29+7)%len(nodes)]
		r1, err := st1.Query(src, dst, EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := st2.Query(src, dst, EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cost != r2.Cost || r1.ChainsConsidered != r2.ChainsConsidered {
			t.Errorf("nondeterministic pipeline: %v vs %v", r1, r2)
		}
	}
}

// TestStressManyFragments: a 16-fragment chain still plans, executes
// and assembles correctly.
func TestStressManyFragments(t *testing.T) {
	g := graph.New()
	const n = 64
	var sets [][]graph.Edge
	for i := 0; i < n; i++ {
		e := graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1}
		rev := e.Reverse()
		g.AddEdge(e)
		g.AddEdge(rev)
		if i%4 == 0 {
			sets = append(sets, nil)
		}
		sets[len(sets)-1] = append(sets[len(sets)-1], e, rev)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Fragmentation().NumFragments(); got != 16 {
		t.Fatalf("fragments = %d", got)
	}
	res, err := st.QueryParallel(0, n, EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable || res.Cost != float64(n) {
		t.Errorf("cost = %v, want %d", res.Cost, n)
	}
	if len(res.BestChain) != 16 {
		t.Errorf("chain length = %d, want 16", len(res.BestChain))
	}
	if len(res.PerSite) != 16 {
		t.Errorf("sites used = %d, want 16", len(res.PerSite))
	}
}

func TestConcurrentQueriesAreSafe(t *testing.T) {
	// Stores are immutable at query time; many goroutines hammering the
	// same store must agree with the sequential answers (run under
	// -race in CI to catch data races).
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 3, Cluster: gen.Defaults(12, 55)})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := linear.Fragment(g, linear.Options{NumFragments: 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(lres.Fragmentation, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	type q struct {
		src, dst graph.NodeID
		want     float64
		wantOK   bool
	}
	queries := make([]q, 16)
	for i := range queries {
		src := nodes[(i*7)%len(nodes)]
		dst := nodes[(i*13+3)%len(nodes)]
		res, err := st.Query(src, dst, EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q{src: src, dst: dst, want: res.Cost, wantOK: res.Reachable}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qq := queries[(worker*8+i)%len(queries)]
				res, err := st.QueryParallel(qq.src, qq.dst, EngineDijkstra)
				if err != nil {
					errs <- err
					return
				}
				if res.Reachable != qq.wantOK || (res.Reachable && math.Abs(res.Cost-qq.want) > 1e-9) {
					errs <- fmt.Errorf("concurrent query %d→%d diverged: %v vs %v", qq.src, qq.dst, res.Cost, qq.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
