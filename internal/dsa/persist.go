package dsa

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fragment"
	"repro/internal/tc"
)

// This file is the persistence seam of the planner: the accessors and
// the trusted constructor the binary snapshot store (internal/store)
// needs to serialize a built Store and rebuild it on cold start
// without re-running the global preprocessing searches — the whole
// point of a snapshot is that computeComp's Dijkstra/BFS fan-out, the
// dominant cost of Build, is already paid and its result (the
// complementary tables) is small and serializable.

// MaxChains returns the chain-enumeration bound the store was built
// with (0 = unlimited).
func (st *Store) MaxChains() int { return st.maxChains }

// CompTables returns the complementary tables of every non-empty
// disconnection set, keyed by the normalised pair. The tables are
// shared with the sites (each DS is deployed at both member sites);
// treat them as read-only.
func (st *Store) CompTables() map[fragment.Pair]*CompInfo {
	out := make(map[fragment.Pair]*CompInfo)
	for _, s := range st.sites {
		for p, ci := range s.Comp {
			out[p] = ci
		}
	}
	return out
}

// Restore rebuilds a deployed Store from previously computed parts: a
// fragmentation, the complementary tables, the build options, and the
// epoch and preprocessing report the snapshot carried. It runs no
// global searches — sites are reconstructed from the fragments and the
// given tables, fanned out over GOMAXPROCS goroutines — so restoring
// is O(per-site subgraph construction), not O(preprocessing).
//
// The caller vouches that comp matches the fragmentation (snapshot
// loaders verify a checksum before calling); tables for pairs that
// name no fragment are ignored, exactly as buildSite filters.
func Restore(fr *fragment.Fragmentation, comp map[fragment.Pair]*CompInfo, opt Options, epoch uint64, prep PreprocessStats) (*Store, error) {
	if fr == nil {
		return nil, fmt.Errorf("dsa: nil fragmentation")
	}
	if opt.MaxChains < 0 {
		return nil, fmt.Errorf("dsa: MaxChains must be non-negative, got %d", opt.MaxChains)
	}
	if opt.Problem != ProblemShortestPath && opt.Problem != ProblemReachability {
		return nil, fmt.Errorf("dsa: %w %d", ErrUnknownProblem, opt.Problem)
	}
	st := &Store{
		fr:        fr,
		fg:        fr.FragmentationGraph(),
		maxChains: opt.MaxChains,
		problem:   opt.Problem,
		epoch:     epoch,
		prep:      prep,
	}
	base := fr.Base()
	frags := fr.Fragments()
	shared := fr.SharedNodes()
	st.sites = make([]*Site, len(frags))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(frags) {
		workers = len(frags)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frags) {
					return
				}
				st.sites[i] = buildSite(frags[i], base, shared, comp)
			}
		}()
	}
	wg.Wait()
	return st, nil
}

// DenseKernel returns the site's dense CSR kernel, building it on
// first use — the exported face of denseKernel for the snapshot
// writer, which persists the kernel so restored deployments skip the
// interning work. The memoized per-site build error (e.g. negative
// edge weights) is surfaced unchanged.
func (s *Site) DenseKernel() (*tc.DenseGraph, error) { return s.denseKernel() }

// PrimeDense injects a prebuilt dense CSR kernel into the site, so a
// restored deployment answers dense-engine queries without re-interning
// the augmented relation. A no-op if the kernel was already built (or
// primed); nil kernels are ignored.
func (s *Site) PrimeDense(d *tc.DenseGraph) {
	if d == nil {
		return
	}
	s.denseOnce.Do(func() {
		s.dense = d
		s.densePrimed.Store(true)
	})
}
