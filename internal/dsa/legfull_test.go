package dsa

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/relation"
)

// tupleKeys renders a relation as a sorted multiset of tuple keys, the
// order-insensitive equality the cache-vs-direct comparison needs.
func tupleKeys(r *relation.Relation) string {
	keys := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		keys = append(keys, t.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestExecuteLegFullMatchesExecuteLeg is the contract the serving
// layer's leg-result cache rests on: ExecuteLegFull + FilterLegFacts
// must produce exactly the facts ExecuteLeg computes directly, for
// every engine and every leg of real plans.
func TestExecuteLegFullMatchesExecuteLeg(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		rng := rand.New(rand.NewSource(seed))
		st, g, err := buildLinearStore(seed, 3, 10, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nodes := g.Nodes()
		for q := 0; q < 5; q++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			plan, err := st.NewPlan(src, dst)
			if err != nil {
				t.Fatalf("seed %d: plan %d->%d: %v", seed, src, dst, err)
			}
			for _, leg := range plan.Legs {
				for _, engine := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset} {
					direct, err := st.ExecuteLeg(leg, engine)
					if err != nil {
						t.Fatalf("ExecuteLeg(%v, %v): %v", leg, engine, err)
					}
					full, _, err := st.ExecuteLegFull(leg.SiteID, leg.Entry, engine)
					if err != nil {
						t.Fatalf("ExecuteLegFull(%d, %v, %v): %v", leg.SiteID, leg.Entry, engine, err)
					}
					filtered, err := FilterLegFacts(full, leg)
					if err != nil {
						t.Fatalf("FilterLegFacts: %v", err)
					}
					if got, want := tupleKeys(filtered), tupleKeys(direct.Rel); got != want {
						t.Errorf("seed %d engine %v leg %+v:\nfull+filter:\n%s\ndirect:\n%s",
							seed, engine, leg, got, want)
					}
				}
			}
		}
	}
}

func TestExecuteLegFullValidation(t *testing.T) {
	st, _ := pathStore(t)
	if _, _, err := st.ExecuteLegFull(-1, nil, EngineDijkstra); err == nil {
		t.Error("negative site accepted")
	}
	if _, _, err := st.ExecuteLegFull(99, nil, EngineDijkstra); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, _, err := st.ExecuteLegFull(0, nil, Engine(42)); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestEpochAdvancesOnUpdate pins the invalidation signal the serving
// layer's cache keys on.
func TestEpochAdvancesOnUpdate(t *testing.T) {
	st, _ := pathStore(t)
	if st.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", st.Epoch())
	}
	e := graph.Edge{From: 0, To: 2, Weight: 1}
	if _, err := st.InsertEdge(0, e); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("epoch after insert = %d, want 1", st.Epoch())
	}
	if _, err := st.DeleteEdge(0, e); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch after delete = %d, want 2", st.Epoch())
	}
	// A refused update must not advance the epoch.
	if _, err := st.DeleteEdge(0, e); err == nil {
		t.Fatal("double delete accepted")
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch after refused update = %d, want 2", st.Epoch())
	}
}
