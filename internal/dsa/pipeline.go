package dsa

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
)

// QueryPipelined answers a shortest-path query with pipelined chain
// evaluation — the §2.1 remark "pipelining may be used for their
// computation" made concrete. Instead of every site computing all
// entry→exit pairs independently (which phase-1 parallelism requires),
// the legs of each chain run in sequence and each leg's search is
// seeded with the running cost vector of the previous legs: one
// multi-source Dijkstra per leg, regardless of disconnection-set size.
//
// The trade-off against QueryParallel is the paper's own: pipelining
// removes the redundant per-entry work (better on one processor or when
// "the issue of fragment size [balance] becomes less relevant"), but
// serialises the chain, so it cannot exploit one-processor-per-fragment
// parallelism within a single query.
func (st *Store) QueryPipelined(source, target graph.NodeID) (*Result, error) {
	return st.QueryPipelinedEngine(source, target, EngineDijkstra)
}

// QueryPipelinedEngine is QueryPipelined with an explicit per-leg
// search engine. Pipelined legs are seeded with the running cost
// vector, so only the engines with a vector-seeded multi-source
// primitive qualify: EngineDijkstra (graph.ShortestPathsMulti) and
// EngineDense (the CSR kernel's CostVector). The relational and bitset
// engines are refused.
func (st *Store) QueryPipelinedEngine(source, target graph.NodeID, engine Engine) (*Result, error) {
	return st.QueryPipelinedEngineCtx(context.Background(), source, target, engine)
}

// QueryPipelinedEngineCtx is QueryPipelinedEngine with cancellation:
// the chain walk observes ctx between legs and the dense kernel
// between frontier rounds, so a canceled query returns ErrCanceled
// promptly.
func (st *Store) QueryPipelinedEngineCtx(ctx context.Context, source, target graph.NodeID, engine Engine) (*Result, error) {
	if st.problem != ProblemShortestPath {
		return nil, fmt.Errorf("dsa: %w: store precomputed for reachability cannot answer cost queries", ErrProblemMismatch)
	}
	if engine != EngineDijkstra && engine != EngineDense {
		return nil, fmt.Errorf("dsa: %w: pipelined evaluation needs a vector-seeded engine (dijkstra or dense), not %v", ErrEngineMismatch, engine)
	}
	start := time.Now()
	plan, err := st.NewPlan(source, target)
	if err != nil {
		return nil, err
	}
	res, done := st.PlanResult(plan)
	if done {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	for _, chain := range plan.Chains {
		cost, ok, err := st.pipelineChain(ctx, source, target, chain, engine, res)
		if err != nil {
			return nil, err
		}
		if ok && cost < res.Cost {
			res.Cost = cost
			res.BestChain = chain
			res.Reachable = true
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// pipelineChain folds one chain with vector-seeded multi-source
// searches and returns the cost at the target.
func (st *Store) pipelineChain(ctx context.Context, source, target graph.NodeID, chain []int, engine Engine, res *Result) (float64, bool, error) {
	vector := map[graph.NodeID]float64{source: 0}
	for i, fragID := range chain {
		if ctx.Err() != nil {
			return 0, false, canceledErr(ctx)
		}
		site := st.sites[fragID]
		t0 := time.Now()
		var dist map[graph.NodeID]float64
		if engine == EngineDense {
			kernel, err := site.denseKernel()
			if err != nil {
				return 0, false, err
			}
			dist, err = kernel.CostVectorCtx(ctx, vector)
			if err != nil {
				return 0, false, err
			}
		} else {
			dist, _ = site.augmented.ShortestPathsMulti(vector)
		}

		var exits []graph.NodeID
		if i+1 < len(chain) {
			exits = st.fr.DisconnectionSet(fragID, chain[i+1])
		} else {
			exits = []graph.NodeID{target}
		}
		next := make(map[graph.NodeID]float64, len(exits))
		for _, x := range exits {
			if d, ok := dist[x]; ok {
				next[x] = d
			}
		}
		w := res.PerSite[fragID]
		w.Legs++
		w.Stats.DerivedTuples += len(dist)
		w.Stats.ResultTuples += len(next)
		w.Elapsed += time.Since(t0)
		res.PerSite[fragID] = w
		res.MessagesSent++
		res.TuplesShipped += len(next)

		if len(next) == 0 {
			return 0, false, nil
		}
		vector = next
	}
	cost, ok := vector[target]
	return cost, ok, nil
}
