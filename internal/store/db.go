package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsa"
)

// A store directory holds the durable state of one deployment:
//
//	dir/
//	  checkpoint-<epoch, %020d>.tcs   the latest TCSF image
//	  journal.log                     batches applied since then
//	  *.tmp                           in-flight atomic writes (ignored)
//
// Recovery = load the highest-epoch checkpoint, then replay the
// journal records whose epoch exceeds it. Checkpoints are written
// atomically (temp + rename) and the journal is truncated only after
// the new checkpoint is durable, so every crash point lands on a
// recoverable state at the exact acknowledged epoch.

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".tcs"
	journalName      = "journal.log"
	// DefaultCheckpointEvery is the journal length that triggers a
	// checkpoint when Options.CheckpointEvery is 0.
	DefaultCheckpointEvery = 64
)

// ErrNoCheckpoint reports an Open on a directory with no checkpoint —
// the caller decides whether to Init it from a fresh build.
var ErrNoCheckpoint = errors.New("store: no checkpoint in directory")

// Options configures a DB.
type Options struct {
	// CheckpointEvery is the number of journaled batches that triggers
	// a fresh TCSF checkpoint (and a journal truncation). 0 means
	// DefaultCheckpointEvery; negative disables automatic checkpoints
	// (the journal grows until Checkpoint is called explicitly).
	CheckpointEvery int
}

// Stats is a point-in-time snapshot of the DB's persistence counters,
// safe to read while appends are in flight.
type Stats struct {
	// JournalRecords counts batches appended to the journal.
	JournalRecords uint64
	// JournalAppendSeconds is the cumulative wall-clock time spent
	// appending and fsyncing journal records.
	JournalAppendSeconds float64
	// Checkpoints counts TCSF checkpoints written.
	Checkpoints uint64
	// CheckpointSeconds is the cumulative wall-clock time spent
	// writing checkpoints (encode, fsync, rename, journal reset).
	CheckpointSeconds float64
	// SaveSeconds is the cumulative wall-clock time of every TCSF
	// image written through this DB (checkpoints and Init).
	SaveSeconds float64
	// LoadSeconds is the wall-clock time of the boot-time checkpoint
	// load.
	LoadSeconds float64
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// CheckpointEpoch is the epoch of the checkpoint image loaded.
	CheckpointEpoch uint64
	// ReplayedRecords is the number of journal records re-applied on
	// top of the checkpoint.
	ReplayedRecords int
	// TornTail reports that a torn (partially written) final journal
	// record was found and truncated.
	TornTail bool
	// Epoch is the recovered store's epoch.
	Epoch uint64
	// LoadDuration is the wall-clock time of the checkpoint load
	// (excluding journal replay).
	LoadDuration time.Duration
}

// DB is the durable side of a deployment: an open journal handle plus
// the checkpoint cadence. One writer at a time calls Append (the tcq
// facade already serialises writers); Stats is safe concurrently.
type DB struct {
	dir   string
	every int

	mu        sync.Mutex
	j         *journal
	sinceCkpt int

	records     atomic.Uint64
	appendNanos atomic.Uint64
	checkpoints atomic.Uint64
	ckptNanos   atomic.Uint64
	saveNanos   atomic.Uint64
	loadNanos   atomic.Uint64
}

// Exists reports whether dir holds a recoverable store (at least one
// checkpoint image).
func Exists(dir string) bool {
	ckpt, _, err := latestCheckpoint(dir)
	return err == nil && ckpt != ""
}

// Init seeds an empty directory with a checkpoint of st, creating the
// directory if needed. It refuses a directory that already has a
// checkpoint — recovery from existing state must go through Open, not
// be silently overwritten.
func Init(dir string, st *dsa.Store) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: init: %w", err)
	}
	if Exists(dir) {
		return fmt.Errorf("store: init: %s already holds a checkpoint", dir)
	}
	_, err := SaveFile(filepath.Join(dir, checkpointName(st.Epoch())), st)
	return err
}

// Open recovers the deployment from dir: removes leftover temp files,
// loads the highest-epoch checkpoint, opens the journal (truncating a
// torn tail), and replays every record beyond the checkpoint's epoch.
// Each replayed record must advance the store to exactly the epoch it
// recorded — a gap or mismatch means the directory is corrupt and
// recovery refuses rather than serving wrong answers.
func Open(dir string, opts Options) (*DB, *dsa.Store, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := removeTempFiles(dir); err != nil {
		return nil, nil, info, err
	}
	ckpt, epoch, err := latestCheckpoint(dir)
	if err != nil {
		return nil, nil, info, err
	}
	if ckpt == "" {
		return nil, nil, info, fmt.Errorf("store: %s: %w", dir, ErrNoCheckpoint)
	}
	start := time.Now()
	st, err := Load(filepath.Join(dir, ckpt))
	if err != nil {
		return nil, nil, info, err
	}
	info.LoadDuration = time.Since(start)
	info.CheckpointEpoch = epoch
	if st.Epoch() != epoch {
		return nil, nil, info, fmt.Errorf("%w: checkpoint %s holds epoch %d", ErrBadSnapshot, ckpt, st.Epoch())
	}

	j, recs, torn, err := openJournal(filepath.Join(dir, journalName))
	if err != nil {
		return nil, nil, info, err
	}
	info.TornTail = torn
	replayedAhead := 0
	for _, rec := range recs {
		if rec.Epoch <= st.Epoch() {
			// Stale prefix: the checkpoint already contains this batch
			// (crash between checkpoint and journal truncation).
			continue
		}
		next, _, err := st.Apply(context.Background(), rec.Ops)
		if err != nil {
			j.close()
			return nil, nil, info, fmt.Errorf("store: replay epoch %d: %w", rec.Epoch, err)
		}
		if next.Epoch() != rec.Epoch {
			j.close()
			return nil, nil, info, fmt.Errorf("store: replay produced epoch %d, journal recorded %d (gap in journal)", next.Epoch(), rec.Epoch)
		}
		st = next
		replayedAhead++
	}
	info.ReplayedRecords = replayedAhead
	info.Epoch = st.Epoch()

	every := opts.CheckpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	db := &DB{dir: dir, every: every, j: j, sinceCkpt: len(recs)}
	db.loadNanos.Store(uint64(info.LoadDuration.Nanoseconds()))
	return db, st, info, nil
}

// Append journals one applied batch — next is the store the batch
// produced, ops the batch's operations — fsyncing before returning,
// and checkpoints when the cadence is due. Callers must not swap in
// next (i.e. acknowledge the batch) unless Append succeeds: an
// unjournaled acknowledged batch would be lost by the next recovery.
func (db *DB) Append(next *dsa.Store, ops []dsa.EdgeOp) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	start := time.Now()
	if err := db.j.append(journalRecord{Epoch: next.Epoch(), Ops: ops}); err != nil {
		return err
	}
	db.appendNanos.Add(uint64(time.Since(start).Nanoseconds()))
	db.records.Add(1)
	db.sinceCkpt++
	if db.every > 0 && db.sinceCkpt >= db.every {
		// The batch is already durable in the journal, so a failed
		// checkpoint does not lose it — surface the error anyway: disk
		// trouble now means recovery trouble later.
		return db.checkpointLocked(next)
	}
	return nil
}

// Checkpoint writes a fresh TCSF image of st and truncates the
// journal. Useful at shutdown to make the next boot replay-free.
func (db *DB) Checkpoint(st *dsa.Store) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked(st)
}

func (db *DB) checkpointLocked(st *dsa.Store) error {
	start := time.Now()
	if _, err := SaveFile(filepath.Join(db.dir, checkpointName(st.Epoch())), st); err != nil {
		return err
	}
	// The image is durable; journaled batches up to st.Epoch() are now
	// redundant (replay skips records at or below the checkpoint), so
	// the truncation need not be atomic with the rename.
	if err := db.j.reset(); err != nil {
		return err
	}
	db.pruneCheckpoints(st.Epoch())
	db.sinceCkpt = 0
	nanos := uint64(time.Since(start).Nanoseconds())
	db.ckptNanos.Add(nanos)
	db.saveNanos.Add(nanos)
	db.checkpoints.Add(1)
	return nil
}

// pruneCheckpoints removes checkpoint images below the given epoch,
// best-effort — a leftover old checkpoint costs disk, not correctness
// (recovery always picks the highest epoch).
func (db *DB) pruneCheckpoints(keep uint64) {
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		epoch, ok := parseCheckpointName(ent.Name())
		if ok && epoch < keep {
			os.Remove(filepath.Join(db.dir, ent.Name()))
		}
	}
}

// Stats returns the current persistence counters.
func (db *DB) Stats() Stats {
	return Stats{
		JournalRecords:       db.records.Load(),
		JournalAppendSeconds: float64(db.appendNanos.Load()) / 1e9,
		Checkpoints:          db.checkpoints.Load(),
		CheckpointSeconds:    float64(db.ckptNanos.Load()) / 1e9,
		SaveSeconds:          float64(db.saveNanos.Load()) / 1e9,
		LoadSeconds:          float64(db.loadNanos.Load()) / 1e9,
	}
}

// Close releases the journal handle. The directory stays recoverable.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.j.close()
}

// checkpointName renders the canonical image name for an epoch; the
// zero-padded decimal keeps lexicographic and numeric order aligned.
func checkpointName(epoch uint64) string {
	return fmt.Sprintf("%s%020d%s", checkpointPrefix, epoch, checkpointSuffix)
}

// parseCheckpointName extracts the epoch from a checkpoint file name.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix)
	epoch, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

// latestCheckpoint returns the highest-epoch checkpoint file name in
// dir ("" if none). A missing directory is not an error — it simply
// holds no checkpoint.
func latestCheckpoint(dir string) (string, uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", 0, nil
	}
	if err != nil {
		return "", 0, fmt.Errorf("store: %w", err)
	}
	best, bestEpoch, found := "", uint64(0), false
	for _, ent := range entries {
		epoch, ok := parseCheckpointName(ent.Name())
		if ok && (!found || epoch > bestEpoch) {
			best, bestEpoch, found = ent.Name(), epoch, true
		}
	}
	return best, bestEpoch, nil
}

// removeTempFiles clears in-flight atomic-write leftovers (*.tmp) —
// a crash mid-checkpoint leaves one, and it must never shadow or be
// mistaken for a real image.
func removeTempFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return fmt.Errorf("store: remove stale temp file: %w", err)
			}
		}
	}
	return nil
}
