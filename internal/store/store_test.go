package store

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

// roadStore builds a small road-network store — the shape the format
// is for: several fragments, non-trivial disconnection sets, weighted
// symmetric edges.
func roadStore(t *testing.T, opt dsa.Options, seed int64) (*dsa.Store, *graph.Graph) {
	t.Helper()
	g, sets, err := gen.RoadNetwork(gen.RoadConfig{
		Clusters: 4, ClusterWidth: 5, ClusterHeight: 4,
		Gateways: 2, DiagonalProb: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st, g
}

// assertSameAnswers is the round-trip oracle: for sampled node pairs,
// the loaded store must answer exactly like the freshly built one —
// connectivity under every engine, and cost where the problem supports
// it.
func assertSameAnswers(t *testing.T, built, loaded *dsa.Store, g *graph.Graph, pairs int, seed int64) {
	t.Helper()
	if built.Epoch() != loaded.Epoch() {
		t.Fatalf("epoch drifted: built %d, loaded %d", built.Epoch(), loaded.Epoch())
	}
	costEngines := []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineDense}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	for i := 0; i < pairs; i++ {
		src := graph.NodeID(rng.Intn(n))
		tgt := graph.NodeID(rng.Intn(n))
		for _, eng := range costEngines {
			want, err := built.Query(src, tgt, eng)
			if err != nil {
				t.Fatalf("built query %d→%d (%v): %v", src, tgt, eng, err)
			}
			got, err := loaded.Query(src, tgt, eng)
			if err != nil {
				t.Fatalf("loaded query %d→%d (%v): %v", src, tgt, eng, err)
			}
			if want.Reachable != got.Reachable || want.Cost != got.Cost {
				t.Fatalf("query %d→%d (%v): built (%v, %g), loaded (%v, %g)",
					src, tgt, eng, want.Reachable, want.Cost, got.Reachable, got.Cost)
			}
		}
		wantConn, err := built.Connected(src, tgt, dsa.EngineBitset)
		if err != nil {
			t.Fatalf("built connected %d→%d: %v", src, tgt, err)
		}
		gotConn, err := loaded.Connected(src, tgt, dsa.EngineBitset)
		if err != nil {
			t.Fatalf("loaded connected %d→%d: %v", src, tgt, err)
		}
		if wantConn != gotConn {
			t.Fatalf("connected %d→%d: built %v, loaded %v", src, tgt, wantConn, gotConn)
		}
	}
}

// assertSameReachability is the oracle for reachability-only stores,
// where cost queries are refused by contract.
func assertSameReachability(t *testing.T, built, loaded *dsa.Store, g *graph.Graph, pairs int, seed int64) {
	t.Helper()
	engines := []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineBitset, dsa.EngineDense}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	for i := 0; i < pairs; i++ {
		src := graph.NodeID(rng.Intn(n))
		tgt := graph.NodeID(rng.Intn(n))
		for _, eng := range engines {
			want, err := built.Connected(src, tgt, eng)
			if err != nil {
				t.Fatalf("built connected %d→%d (%v): %v", src, tgt, eng, err)
			}
			got, err := loaded.Connected(src, tgt, eng)
			if err != nil {
				t.Fatalf("loaded connected %d→%d (%v): %v", src, tgt, eng, err)
			}
			if want != got {
				t.Fatalf("connected %d→%d (%v): built %v, loaded %v", src, tgt, eng, want, got)
			}
		}
	}
}

func TestEncodeDecodeRoundTripShortestPath(t *testing.T) {
	st, g := roadStore(t, dsa.Options{}, 11)
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, st, loaded, g, 60, 1)
}

func TestEncodeDecodeRoundTripReachability(t *testing.T) {
	st, g := roadStore(t, dsa.Options{Problem: dsa.ProblemReachability}, 13)
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Problem() != dsa.ProblemReachability {
		t.Fatalf("problem not preserved: %v", loaded.Problem())
	}
	assertSameReachability(t, st, loaded, g, 60, 2)
}

func TestRoundTripRandomGraphs(t *testing.T) {
	// Property check over the generator family: several seeds and
	// shapes, each saved and loaded through a real file (mmap path on
	// unix), answers compared against the fresh build.
	for seed := int64(0); seed < 3; seed++ {
		g, sets, err := gen.RoadNetwork(gen.RoadConfig{
			Clusters:     int(2 + seed),
			ClusterWidth: 4, ClusterHeight: 3 + int(seed),
			Gateways: 1 + int(seed), DiagonalProb: 0.2 * float64(seed), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fragment.New(g, sets)
		if err != nil {
			t.Fatal(err)
		}
		st, err := dsa.Build(fr, dsa.Options{MaxChains: 2})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "snap.tcs")
		if _, err := SaveFile(path, st); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.MaxChains() != 2 {
			t.Fatalf("MaxChains not preserved: %d", loaded.MaxChains())
		}
		assertSameAnswers(t, st, loaded, g, 40, seed)
	}
}

func TestRoundTripPreservesStats(t *testing.T) {
	st, _ := roadStore(t, dsa.Options{}, 17)
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Preprocessing(), st.Preprocessing(); got != want {
		t.Fatalf("preprocess stats drifted: %+v vs %+v", got, want)
	}
}

func TestRoundTripSurvivesApply(t *testing.T) {
	// A loaded store must be a full citizen: applying a batch on top of
	// it must work and agree with applying the same batch to the
	// original.
	st, g := roadStore(t, dsa.Options{}, 19)
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	ops := []dsa.EdgeOp{
		{Kind: dsa.OpInsert, Frag: 0, Edge: graph.Edge{From: 0, To: 7, Weight: 0.25}},
		{Kind: dsa.OpInsert, Frag: 0, Edge: graph.Edge{From: 7, To: 0, Weight: 0.25}},
	}
	next1, _, err := st.Apply(t.Context(), ops)
	if err != nil {
		t.Fatal(err)
	}
	next2, _, err := loaded.Apply(t.Context(), ops)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, next1, next2, g, 40, 3)
}

func TestDecodeRejectsCorruption(t *testing.T) {
	st, _ := roadStore(t, dsa.Options{}, 23)
	valid, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid image refused: %v", err)
	}

	flip := func(off int) []byte {
		b := bytes.Clone(valid)
		b[off] ^= 0x40
		return b
	}
	cases := map[string][]byte{
		"empty":           {},
		"short":           valid[:headerSize-1],
		"bad magic":       flip(0),
		"bad crc":         flip(9),
		"flipped body":    flip(headerSize + 3),
		"flipped trailer": flip(len(valid) - 2),
		"truncated":       valid[:len(valid)-1],
		"trailing bytes":  append(bytes.Clone(valid), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	st, _ := roadStore(t, dsa.Options{}, 29)
	valid, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must be refused — no length field may walk
	// past the data it actually has. Stride keeps the test fast.
	for n := 0; n < len(valid); n += 97 {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	st, _ := roadStore(t, dsa.Options{}, 31)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.tcs")
	n, err := SaveFile(path, st)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("SaveFile reported %d bytes, file has %d", n, fi.Size())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %d entries", len(entries))
	}
	// Same image twice → same bytes: the format is deterministic, so
	// checkpoints are reproducible and diffable.
	b1, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Encode and SaveFile produced different bytes")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.tcs")); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}

func TestRoundTripInfinityWeightsStayFinite(t *testing.T) {
	// Unreachable costs are +Inf at query time but must never be
	// serialized as edge weights; a quick sanity pass over the oracle
	// on a disconnected-ish graph (MaxChains 1 restricts routing).
	st, g := roadStore(t, dsa.Options{MaxChains: 1}, 37)
	b, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Query(0, graph.NodeID(g.NumNodes()-1), dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable && math.IsInf(res.Cost, 1) {
		t.Fatal("reachable with infinite cost")
	}
	assertSameAnswers(t, st, loaded, g, 40, 5)
}
