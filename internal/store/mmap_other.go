//go:build !unix

package store

import (
	"fmt"
	"io"
	"os"
)

// mapFile is the portable fallback for platforms without the unix
// mmap surface: the whole file is read into memory with io.ReadFull.
// Slower cold starts, identical semantics — the decoder aliases the
// heap buffer exactly as it would the mapping.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < headerSize {
		return nil, false, fmt.Errorf("store: %s: %w: file too small (%d bytes)", path, ErrBadSnapshot, size)
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("store: %s: %w: file too large for this platform", path, ErrBadSnapshot)
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", path, err)
	}
	return b, false, nil
}

// unmapFile is a no-op for the heap-backed fallback.
func unmapFile([]byte) {}
