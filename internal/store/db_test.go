package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
)

func validEdge() graph.Edge { return graph.Edge{From: 0, To: 1, Weight: 0.5} }

func writeFileForTest(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// testStore builds a tiny store plus a stream of legal batches for it.
func testStore(t *testing.T) (*dsa.Store, func(epoch uint64) []dsa.EdgeOp) {
	t.Helper()
	g, sets, err := gen.RoadNetwork(gen.RoadConfig{
		Clusters: 2, ClusterWidth: 4, ClusterHeight: 3, Gateways: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each batch inserts a fresh symmetric shortcut inside fragment 0;
	// weights vary by epoch so replay divergence would change answers.
	batch := func(epoch uint64) []dsa.EdgeOp {
		w := 0.1 + float64(epoch)*0.01
		a, b := graph.NodeID(0), graph.NodeID(epoch%12)
		if a == b {
			b++
		}
		return []dsa.EdgeOp{
			{Kind: dsa.OpInsert, Frag: 0, Edge: graph.Edge{From: a, To: b, Weight: w}},
			{Kind: dsa.OpInsert, Frag: 0, Edge: graph.Edge{From: b, To: a, Weight: w}},
		}
	}
	return st, batch
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	j, recs, torn, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh journal: recs=%d torn=%v", len(recs), torn)
	}
	want := []journalRecord{
		{Epoch: 1, Ops: []dsa.EdgeOp{{Kind: dsa.OpInsert, Frag: 0, Edge: validEdge()}}},
		{Epoch: 2, Ops: nil},
		{Epoch: 3, Ops: []dsa.EdgeOp{
			{Kind: dsa.OpDelete, Frag: 1, Edge: graph.Edge{From: 5, To: 6, Weight: 2.5}},
			{Kind: dsa.OpInsert, Frag: 0, Edge: graph.Edge{From: 7, To: 8, Weight: 0.125}},
		}},
	}
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	j2, got, torn, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Epoch != want[i].Epoch || len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
		for k := range want[i].Ops {
			if got[i].Ops[k] != want[i].Ops[k] {
				t.Fatalf("record %d op %d: got %+v, want %+v", i, k, got[i].Ops[k], want[i].Ops[k])
			}
		}
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	full := encodeJournalRecord(journalRecord{Epoch: 1, Ops: []dsa.EdgeOp{{Kind: dsa.OpInsert, Edge: validEdge()}}})
	second := encodeJournalRecord(journalRecord{Epoch: 2, Ops: []dsa.EdgeOp{{Kind: dsa.OpDelete, Edge: validEdge()}}})
	// Every possible tear point of the second record, including a
	// CRC-corrupted complete frame.
	for cut := 0; cut < len(second); cut++ {
		data := append(bytes.Clone(full), second[:cut]...)
		path := filepath.Join(t.TempDir(), journalName)
		if err := writeFileForTest(path, data); err != nil {
			t.Fatal(err)
		}
		j, recs, torn, err := openJournal(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Epoch != 1 {
			t.Fatalf("cut %d: surviving records %+v", cut, recs)
		}
		if cut > 0 && !torn {
			t.Fatalf("cut %d: tear not reported", cut)
		}
		// The tail must be gone on disk, and the journal must append
		// cleanly at the truncation point.
		if err := j.append(journalRecord{Epoch: 2, Ops: nil}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		j.close()
		j2, recs2, torn2, err := openJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if torn2 || len(recs2) != 2 {
			t.Fatalf("cut %d: reopen after repair: torn=%v recs=%d", cut, torn2, len(recs2))
		}
		j2.close()
	}
	corrupt := append(bytes.Clone(full), second...)
	corrupt[len(full)+10] ^= 0xff
	path := filepath.Join(t.TempDir(), journalName)
	if err := writeFileForTest(path, corrupt); err != nil {
		t.Fatal(err)
	}
	j, recs, torn, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if !torn || len(recs) != 1 {
		t.Fatalf("CRC corruption: torn=%v recs=%d", torn, len(recs))
	}
}

func TestDBInitOpenRoundTrip(t *testing.T) {
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if Exists(dir) {
		t.Fatal("Exists on a missing directory")
	}
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists false after Init")
	}
	if err := Init(dir, st); err == nil {
		t.Fatal("second Init must refuse")
	}

	db, cur, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != st.Epoch() || info.ReplayedRecords != 0 || info.TornTail {
		t.Fatalf("fresh open: %+v", info)
	}
	// Apply three batches through the WAL discipline.
	for i := 0; i < 3; i++ {
		next, _, err := cur.Apply(context.Background(), batch(cur.Epoch()+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(next, batch(cur.Epoch()+1)); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	stats := db.Stats()
	if stats.JournalRecords != 3 || stats.JournalAppendSeconds <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	db.Close()

	// Recovery must land on the exact acknowledged epoch.
	db2, rec, info2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if info2.Epoch != cur.Epoch() || info2.ReplayedRecords != 3 {
		t.Fatalf("recovery: %+v, want epoch %d", info2, cur.Epoch())
	}
	if rec.Epoch() != cur.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), cur.Epoch())
	}
}

func TestDBRecoveryAnswersMatch(t *testing.T) {
	// The acceptance-criteria property at test scale: after a sequence
	// of journaled applies and a simulated crash (no Close, no
	// checkpoint), recovery must answer exactly like the live store.
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	db, cur, _, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ops := batch(cur.Epoch() + 1)
		next, _, err := cur.Apply(context.Background(), ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(next, ops); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	// Crash: drop the handle without Close or Checkpoint.
	_ = db

	_, rec, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 5 || rec.Epoch() != cur.Epoch() {
		t.Fatalf("recovery: %+v, want 5 replayed at epoch %d", info, cur.Epoch())
	}
	g := rec.Fragmentation().Base()
	assertSameAnswers(t, cur, rec, g, 40, 9)
}

func TestDBCrashRecovery(t *testing.T) {
	// The satellite scenario: torn final journal record AND a leftover
	// checkpoint temp file. Recovery must truncate the tail, remove the
	// temp file, and land on the last acknowledged epoch.
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	db, cur, _, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	var acked *dsa.Store
	for i := 0; i < 3; i++ {
		ops := batch(cur.Epoch() + 1)
		next, _, err := cur.Apply(context.Background(), ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(next, ops); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	acked = cur
	db.Close()

	// Simulate the crash aftermath by hand: a half-written journal
	// record (the batch that was never acknowledged) and an in-flight
	// checkpoint temp file.
	torn := encodeJournalRecord(journalRecord{Epoch: acked.Epoch() + 1, Ops: batch(acked.Epoch() + 1)})
	jf, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	tmp := filepath.Join(dir, checkpointName(acked.Epoch())+".garbage.tmp")
	if err := writeFileForTest(tmp, []byte("partial checkpoint")); err != nil {
		t.Fatal(err)
	}

	_, rec, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rec.Epoch() != acked.Epoch() {
		t.Fatalf("recovered epoch %d, want last acknowledged %d", rec.Epoch(), acked.Epoch())
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover temp file not removed")
	}
	g := rec.Fragmentation().Base()
	assertSameAnswers(t, acked, rec, g, 40, 11)
}

func TestDBCheckpointCadence(t *testing.T) {
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	db, cur, _, err := Open(dir, Options{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ops := batch(cur.Epoch() + 1)
		next, _, err := cur.Apply(context.Background(), ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(next, ops); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	stats := db.Stats()
	if stats.Checkpoints != 2 {
		t.Fatalf("expected 2 cadence checkpoints, got %d", stats.Checkpoints)
	}
	db.Close()

	// Old checkpoints pruned, latest epoch is the second cadence hit.
	name, epoch, err := latestCheckpoint(dir)
	if err != nil || name == "" {
		t.Fatalf("latestCheckpoint: %q %v", name, err)
	}
	if epoch != st.Epoch()+4 {
		t.Fatalf("latest checkpoint epoch %d, want %d", epoch, st.Epoch()+4)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, ent := range entries {
		if _, ok := parseCheckpointName(ent.Name()); ok {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("expected 1 checkpoint after pruning, got %d", ckpts)
	}

	// Recovery replays only the single record past the checkpoint.
	_, rec, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointEpoch != epoch || info.ReplayedRecords != 1 || rec.Epoch() != cur.Epoch() {
		t.Fatalf("recovery after cadence: %+v, want checkpoint %d + 1 replay to %d", info, epoch, cur.Epoch())
	}
}

func TestDBCrashBetweenCheckpointAndTruncate(t *testing.T) {
	// Worst-case ordering: the checkpoint renamed into place but the
	// crash hit before the journal reset. The journal then holds a
	// stale prefix at-or-below the checkpoint epoch; replay must skip
	// it rather than double-apply.
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	db, cur, _, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ops := batch(cur.Epoch() + 1)
		next, _, err := cur.Apply(context.Background(), ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Append(next, ops); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	db.Close()
	// Write the checkpoint by hand, leaving the journal untruncated —
	// exactly the state after a crash between SaveFile and reset.
	if _, err := SaveFile(filepath.Join(dir, checkpointName(cur.Epoch())), cur); err != nil {
		t.Fatal(err)
	}

	_, rec, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointEpoch != cur.Epoch() || info.ReplayedRecords != 0 {
		t.Fatalf("stale journal prefix not skipped: %+v", info)
	}
	if rec.Epoch() != cur.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch(), cur.Epoch())
	}
}

func TestDBOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	_, _, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestDBExplicitCheckpoint(t *testing.T) {
	st, batch := testStore(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := Init(dir, st); err != nil {
		t.Fatal(err)
	}
	db, cur, _, err := Open(dir, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := batch(cur.Epoch() + 1)
	next, _, err := cur.Apply(context.Background(), ops)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(next, ops); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(next); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Journal is empty; recovery is replay-free at the new epoch.
	_, rec, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 0 || rec.Epoch() != next.Epoch() {
		t.Fatalf("after explicit checkpoint: %+v at epoch %d", info, rec.Epoch())
	}
}
