package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/dsa"
	"repro/internal/graph"
)

// The apply journal is an append-only log of typed update batches,
// one record per applied epoch:
//
//	[u32 payloadLen][u32 crc32(payload)][payload]
//	payload = u64 epoch | u32 opCount | opCount × op
//	op      = u8 kind | i64 fragment | i64 from | i64 to | f64 weight
//
// Records are CRC-framed individually, so a crash mid-append leaves a
// torn tail that the next open detects and truncates: everything
// before the tear was fsynced before its Apply was acknowledged, and
// the torn record was never acknowledged. The epoch inside each
// record is the epoch the batch PRODUCED; recovery replays only
// records beyond the checkpoint's epoch, which makes a crash between
// checkpoint and journal truncation harmless (the stale prefix is
// skipped, not re-applied).

const (
	// journalOpSize is the fixed encoding of one op.
	journalOpSize = 1 + 8 + 8 + 8 + 8
	// maxJournalPayload caps a record's declared length before any
	// allocation — a corrupt frame cannot request more.
	maxJournalPayload = 64 << 20
)

// errTornRecord marks the frame where a journal scan stopped.
var errTornRecord = errors.New("store: torn journal record")

// journalRecord is one applied batch: the ops and the epoch applying
// them produced.
type journalRecord struct {
	Epoch uint64
	Ops   []dsa.EdgeOp
}

// encodeJournalRecord frames one record.
func encodeJournalRecord(rec journalRecord) []byte {
	payload := make([]byte, 0, 12+len(rec.Ops)*journalOpSize)
	payload = binary.LittleEndian.AppendUint64(payload, rec.Epoch)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		payload = append(payload, byte(op.Kind))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(op.Frag))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(op.Edge.From))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(op.Edge.To))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(op.Edge.Weight))
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// decodeJournalPayload parses one CRC-verified payload.
func decodeJournalPayload(p []byte) (journalRecord, error) {
	if len(p) < 12 {
		return journalRecord{}, errTornRecord
	}
	rec := journalRecord{Epoch: binary.LittleEndian.Uint64(p)}
	n := binary.LittleEndian.Uint32(p[8:])
	if uint64(len(p)-12) != uint64(n)*journalOpSize {
		return journalRecord{}, errTornRecord
	}
	rec.Ops = make([]dsa.EdgeOp, n)
	off := 12
	for i := range rec.Ops {
		kind := dsa.OpKind(p[off])
		if kind != dsa.OpInsert && kind != dsa.OpDelete {
			return journalRecord{}, errTornRecord
		}
		rec.Ops[i] = dsa.EdgeOp{
			Kind: kind,
			Frag: int(int64(binary.LittleEndian.Uint64(p[off+1:]))),
			Edge: graph.Edge{
				From:   graph.NodeID(int64(binary.LittleEndian.Uint64(p[off+9:]))),
				To:     graph.NodeID(int64(binary.LittleEndian.Uint64(p[off+17:]))),
				Weight: math.Float64frombits(binary.LittleEndian.Uint64(p[off+25:])),
			},
		}
		off += journalOpSize
	}
	return rec, nil
}

// journal is the open append handle plus the fail-stop latch: once an
// append fails partway, the on-disk tail is indeterminate and further
// appends could silently follow garbage, so the journal refuses them
// until the process restarts (and recovery truncates the tear).
type journal struct {
	f      *os.File
	broken bool
}

// openJournal opens (creating if absent) the journal at path, scans
// every intact record, truncates a torn tail in place, and positions
// the handle for appending. The second result reports whether a tear
// was found.
func openJournal(path string) (*journal, []journalRecord, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("store: journal: %w", err)
	}
	var recs []journalRecord
	good := 0
	torn := false
	for off := 0; off < len(data); {
		if len(data)-off < 8 {
			torn = true
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxJournalPayload || len(data)-off-8 < int(n) {
			torn = true
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		rec, err := decodeJournalPayload(payload)
		if err != nil {
			torn = true
			break
		}
		recs = append(recs, rec)
		off += 8 + int(n)
		good = off
	}
	if torn {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("store: journal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("store: journal: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("store: journal: %w", err)
	}
	return &journal{f: f}, recs, torn, nil
}

// append durably writes one record: the frame lands with a single
// write and is fsynced before the caller acknowledges the batch. Any
// failure latches the journal broken (fail-stop; see type comment).
func (j *journal) append(rec journalRecord) error {
	if j.broken {
		return errors.New("store: journal is fail-stopped after an earlier append error; restart to recover")
	}
	if _, err := j.f.Write(encodeJournalRecord(rec)); err != nil {
		j.broken = true
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// reset truncates the journal to empty — called after a checkpoint
// has durably captured every journaled batch.
func (j *journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		j.broken = true
		return fmt.Errorf("store: journal reset: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		j.broken = true
		return fmt.Errorf("store: journal reset: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return fmt.Errorf("store: journal reset: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }
