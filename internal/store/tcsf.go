// Package store is the persistence subsystem of the deployment: a
// versioned, checksummed binary snapshot format ("TCSF") that
// serializes a built dsa.Store CSR-natively, an mmap-based zero-copy
// loader that reconstructs it without re-running the preprocessing
// searches, and an append-only apply journal with periodic TCSF
// checkpoints so a restarted node recovers its exact epoch.
//
// The package sits beside internal/dsa, below the tcq facade: it
// imports the model layers (graph, fragment, relation-free) and dsa,
// and nothing from the serving stack. Serving code reaches it through
// pkg/tcq's persistence API.
//
// See docs/tcsf.md for the byte-level format specification.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
)

// Format framing. All integers are little-endian; every array of
// 8-byte elements starts 8-byte aligned (4-byte arrays are padded up
// to 8 afterwards) so the loader can alias them straight out of an
// mmap'd file.
const (
	// fileMagic opens every TCSF file; the version is part of the
	// magic, so a reader for one version refuses others outright.
	fileMagic = "TCSFv01\n"
	// fileTrailer closes the file; a truncated file fails the checksum
	// anyway, but the trailer makes the refusal cheap and explicit.
	fileTrailer = "TCSFEND\n"
	// headerSize is the fixed prelude: magic, crc32+flags, epoch,
	// problem, maxChains, the three preprocessing counters, node and
	// fragment counts.
	headerSize = 80
)

// enc accumulates the little-endian encoding in memory. Snapshot
// sizes are tens of bytes per edge, so building the image in RAM and
// writing it once keeps the atomic-write path (temp file + rename)
// trivial.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }

// pad8 zero-fills to the next 8-byte boundary.
func (e *enc) pad8() {
	for len(e.b)%8 != 0 {
		e.b = append(e.b, 0)
	}
}

func (e *enc) i64s(vs []int64) {
	for _, v := range vs {
		e.u64(uint64(v))
	}
}

func (e *enc) i32s(vs []int32) {
	for _, v := range vs {
		e.u32(uint32(v))
	}
	e.pad8()
}

func (e *enc) f64s(vs []float64) {
	for _, v := range vs {
		e.f64(v)
	}
}

func (e *enc) nodeIDs(vs []graph.NodeID) {
	for _, v := range vs {
		e.u64(uint64(v))
	}
}

// Encode serializes a built store to the TCSF image. The snapshot
// captures everything Build computed — fragmentation, complementary
// tables, preprocessing report, epoch — plus the per-site dense CSR
// kernels, force-built here so a restored deployment answers
// dense-engine queries with zero interning work. Sites whose kernel
// cannot be built (e.g. negative edge weights) are stored without one;
// the restored site re-derives the same per-query refusal lazily.
func Encode(st *dsa.Store) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("store: encode: nil store")
	}
	fr := st.Fragmentation()
	base := fr.Base()
	nodes := base.Nodes()
	frags := fr.Fragments()

	e := &enc{b: make([]byte, 0, encodeSizeHint(base, st))}
	e.raw([]byte(fileMagic))
	e.u32(0) // crc32, backpatched below
	e.u32(0) // flags, reserved
	e.u64(st.Epoch())
	e.u64(uint64(st.Problem()))
	e.u64(uint64(st.MaxChains()))
	prep := st.Preprocessing()
	e.u64(uint64(prep.DijkstraRuns))
	e.u64(uint64(prep.PairsStored))
	e.u64(uint64(prep.DisconnectionSets))
	e.u64(uint64(len(nodes)))
	e.u64(uint64(len(frags)))

	// Node table: ids, then both coordinate columns.
	e.nodeIDs(nodes)
	for _, id := range nodes {
		e.f64(base.Coord(id).X)
	}
	for _, id := range nodes {
		e.f64(base.Coord(id).Y)
	}

	// Per-fragment edge columns. The fragments partition the base
	// graph's edges, so this section doubles as the base edge list.
	// Endpoints are stored as node-table indices, not IDs: half the
	// bytes, and the decoder validates an endpoint with a bounds check
	// instead of a node-map lookup per edge — by construction an
	// in-range index IS a declared node.
	idx := make(map[graph.NodeID]int32, len(nodes))
	for i, id := range nodes {
		idx[id] = int32(i)
	}
	for _, f := range frags {
		e.u64(uint64(len(f.Edges)))
		col := make([]int32, len(f.Edges))
		for k, ed := range f.Edges {
			v, ok := idx[ed.From]
			if !ok {
				return nil, fmt.Errorf("store: encode: fragment %d edge endpoint %d is not a node", f.ID, ed.From)
			}
			col[k] = v
		}
		e.i32s(col)
		for k, ed := range f.Edges {
			v, ok := idx[ed.To]
			if !ok {
				return nil, fmt.Errorf("store: encode: fragment %d edge endpoint %d is not a node", f.ID, ed.To)
			}
			col[k] = v
		}
		e.i32s(col)
		for _, ed := range f.Edges {
			e.f64(ed.Weight)
		}
	}

	// Complementary tables, in deterministic pair order.
	comp := st.CompTables()
	pairs := make([]fragment.Pair, 0, len(comp))
	for p := range comp {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].I != pairs[j].I {
			return pairs[i].I < pairs[j].I
		}
		return pairs[i].J < pairs[j].J
	})
	e.u64(uint64(len(pairs)))
	for _, p := range pairs {
		ci := comp[p]
		e.u64(uint64(p.I))
		e.u64(uint64(p.J))
		e.u64(uint64(len(ci.Nodes)))
		e.nodeIDs(ci.Nodes)
		costs := ci.ShortcutEdges() // deterministic (a, b, cost) order
		e.u64(uint64(len(costs)))
		for _, c := range costs {
			e.u64(uint64(c.From))
		}
		for _, c := range costs {
			e.u64(uint64(c.To))
		}
		for _, c := range costs {
			e.f64(c.Weight)
		}
	}

	// Per-site dense CSR kernels.
	sites := st.Sites()
	e.u64(uint64(len(sites)))
	for _, s := range sites {
		d, err := s.DenseKernel()
		if err != nil {
			e.u64(0) // kernel absent
			continue
		}
		ids, rowStart, colIdx, weight := d.CSR()
		e.u64(1) // kernel present
		e.u64(uint64(len(ids)))
		e.u64(uint64(len(colIdx)))
		e.i64s(ids)
		e.i32s(rowStart)
		e.i32s(colIdx)
		e.f64s(weight)
	}

	e.raw([]byte(fileTrailer))

	// Checksum everything after the magic+crc+flags prelude.
	binary.LittleEndian.PutUint32(e.b[8:12], crc32.ChecksumIEEE(e.b[16:]))
	return e.b, nil
}

// encodeSizeHint estimates the image size so the encoder allocates
// once: header + 24 bytes per node, ~30 per edge (index+weight edge
// columns plus the dense CSR), plus slack for comp tables and section
// counts.
func encodeSizeHint(base *graph.Graph, st *dsa.Store) int {
	return headerSize + 24*base.NumNodes() + 32*base.NumEdges() + 1<<16
}

// SaveFile encodes st and writes it atomically: a temp file in the
// target directory, fsync, rename over the final name, and a
// best-effort directory sync. Readers of path therefore see either
// the old image or the complete new one, never a torn write.
func SaveFile(path string, st *dsa.Store) (int64, error) {
	data, err := Encode(st)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: save: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return 0, fmt.Errorf("store: save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return 0, fmt.Errorf("store: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return 0, fmt.Errorf("store: save: %w", err)
	}
	syncDir(dir)
	return int64(len(data)), nil
}

// syncDir fsyncs a directory so a rename is durable, best-effort:
// some platforms refuse to sync directory handles, and losing the
// rename on power failure just reverts to the previous image.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
