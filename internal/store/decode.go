package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/tc"
)

// ErrBadSnapshot reports a TCSF image the decoder refuses: wrong
// magic, failed checksum, or a structurally inconsistent body. Wrapped
// by every decode failure so callers branch with errors.Is.
var ErrBadSnapshot = errors.New("store: bad snapshot")

// nativeLE reports whether this machine is little-endian — the
// precondition for aliasing the file's arrays in place. On big-endian
// targets every array helper falls back to a byte-swapping copy, so
// the format stays portable while the common case stays zero-copy.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// dec walks the image with a sticky error: the first failure poisons
// every later read, so section parsers read straight-line and check
// d.err at their boundaries. Every count is validated against the
// bytes actually remaining BEFORE it sizes an allocation — the cap
// that keeps a fuzzer-built header from requesting gigabytes.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrBadSnapshot, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// count reads a u64 element count and bounds it by the bytes left at
// elemSize bytes per element. Anything larger is unsatisfiable and
// refused before any allocation happens.
func (d *dec) count(elemSize int) int {
	v := d.u64()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/elemSize) {
		d.fail("count %d exceeds remaining %d bytes at %d bytes/element", v, d.remaining(), elemSize)
		return 0
	}
	return int(v)
}

// take consumes n bytes and returns them.
func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.fail("truncated section (%d bytes wanted)", n)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// pad8 consumes the zero padding up to the next 8-byte boundary.
func (d *dec) pad8() {
	if rem := d.off % 8; rem != 0 {
		d.take(8 - rem)
	}
}

// i64s returns n int64s, aliased from the image when the platform
// allows (little-endian, 8-aligned — mmap bases are page-aligned and
// the format keeps 8-byte arrays 8-aligned, so this is the norm).
func (d *dec) i64s(n int) []int64 {
	p := d.take(n * 8)
	if d.err != nil || n == 0 {
		return nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return out
}

func (d *dec) f64s(n int) []float64 {
	p := d.take(n * 8)
	if d.err != nil || n == 0 {
		return nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return out
}

func (d *dec) i32s(n int) []int32 {
	p := d.take(n * 4)
	d.pad8()
	if d.err != nil || n == 0 {
		return nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out
}

// intFrom narrows a stored u64 to a non-negative int, refusing values
// a corrupt header could use to overflow downstream arithmetic.
func (d *dec) intFrom(v uint64, what string) int {
	if v > math.MaxInt32 {
		d.fail("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

// denseRaw holds one site's CSR arrays as read from the image, before
// kernel validation.
type denseRaw struct {
	ids      []int64
	rowStart []int32
	colIdx   []int32
	weight   []float64
}

// Decode reconstructs a deployed store from a TCSF image. The image is
// checksum-verified first; afterwards the structure is still treated
// as untrusted (every count capped, every kernel shape validated), so
// a corrupt-but-checksummed file fails with ErrBadSnapshot instead of
// panicking or over-allocating.
//
// The returned store aliases data's dense CSR arrays — callers keep
// the backing buffer (or mapping) alive for the store's lifetime and
// never mutate it.
func Decode(data []byte) (*dsa.Store, error) {
	if len(data) < headerSize+len(fileTrailer) {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrBadSnapshot, len(data))
	}
	if string(data[:8]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, data[:8])
	}
	if string(data[len(data)-len(fileTrailer):]) != fileTrailer {
		return nil, fmt.Errorf("%w: missing trailer (truncated file)", ErrBadSnapshot)
	}
	if want, got := binary.LittleEndian.Uint32(data[8:12]), crc32.ChecksumIEEE(data[16:]); want != got {
		return nil, fmt.Errorf("%w: checksum mismatch (header %08x, computed %08x)", ErrBadSnapshot, want, got)
	}

	d := &dec{b: data[:len(data)-len(fileTrailer)], off: 16}
	epoch := d.u64()
	problem := dsa.Problem(d.intFrom(d.u64(), "problem"))
	maxChains := d.intFrom(d.u64(), "maxChains")
	var prep dsa.PreprocessStats
	prep.DijkstraRuns = d.intFrom(d.u64(), "dijkstraRuns")
	prep.PairsStored = d.intFrom(d.u64(), "pairsStored")
	prep.DisconnectionSets = d.intFrom(d.u64(), "disconnectionSets")
	nodeCount := d.count(24)
	fragCount := d.count(8)
	if d.err != nil {
		return nil, d.err
	}

	// Node table. The encoder writes base.Nodes(), which is sorted and
	// duplicate-free; enforcing the order here both hardens the format
	// and guarantees the uniqueness the bulk node install below relies
	// on. The base graph itself is built after the edge sections, once
	// each node's complete adjacency run is known.
	ids := d.i64s(nodeCount)
	xs := d.f64s(nodeCount)
	ys := d.f64s(nodeCount)
	if d.err != nil {
		return nil, d.err
	}
	for i := 1; i < nodeCount; i++ {
		if ids[i] <= ids[i-1] {
			d.fail("node table not strictly increasing at entry %d", i)
			return nil, d.err
		}
	}

	// Per-fragment edge columns, materialized as edge slices (the one
	// unavoidable copy: the graph layer works in Edge structs).
	// Endpoints are node-table indices: the bounds check below is the
	// complete endpoint validation — an in-range index is a declared
	// node by construction, so the adjacency fill needs no node-map
	// lookups. The same pass accumulates per-node degrees for the
	// bucketed fill below.
	edgeSets := make([][]graph.Edge, fragCount)
	froms := make([][]int32, fragCount)
	tos := make([][]int32, fragCount)
	outDeg := make([]int32, nodeCount+1)
	inDeg := make([]int32, nodeCount+1)
	totalEdges := 0
	for fi := range edgeSets {
		n := d.count(16)
		from := d.i32s(n)
		to := d.i32s(n)
		w := d.f64s(n)
		if d.err != nil {
			return nil, d.err
		}
		es := make([]graph.Edge, n)
		for k := range es {
			fi32, ti32 := from[k], to[k]
			if fi32 < 0 || int(fi32) >= nodeCount || ti32 < 0 || int(ti32) >= nodeCount {
				d.fail("fragment %d edge %d: endpoint index out of range", fi, k)
				return nil, d.err
			}
			es[k] = graph.Edge{From: graph.NodeID(ids[fi32]), To: graph.NodeID(ids[ti32]), Weight: w[k]}
			outDeg[fi32+1]++
			inDeg[ti32+1]++
		}
		edgeSets[fi], froms[fi], tos[fi] = es, from, to
		totalEdges += n
	}

	// Bucket the edge volume into one contiguous adjacency run per node
	// and build the base graph with one bulk install per node: a fixed
	// handful of map writes each instead of two map-append operations
	// per edge. The site builder shares these lists for
	// fragment-private nodes, so the base adjacency must be complete
	// before dsa.Restore runs.
	for i := 0; i < nodeCount; i++ {
		outDeg[i+1] += outDeg[i]
		inDeg[i+1] += inDeg[i]
	}
	outBuf := make([]graph.Edge, totalEdges)
	inBuf := make([]graph.Edge, totalEdges)
	outCur := append([]int32(nil), outDeg[:nodeCount]...)
	inCur := append([]int32(nil), inDeg[:nodeCount]...)
	for fi, es := range edgeSets {
		from, to := froms[fi], tos[fi]
		for k := range es {
			f, t := from[k], to[k]
			outBuf[outCur[f]] = es[k]
			outCur[f]++
			inBuf[inCur[t]] = es[k]
			inCur[t]++
		}
	}
	base := graph.NewWithCapacity(nodeCount)
	for i := 0; i < nodeCount; i++ {
		os, oe := outDeg[i], outDeg[i+1]
		is, ie := inDeg[i], inDeg[i+1]
		base.InstallNode(graph.NodeID(ids[i]), graph.Coord{X: xs[i], Y: ys[i]},
			outBuf[os:oe:oe], inBuf[is:ie:ie])
	}

	// Complementary tables.
	pairCount := d.count(40)
	comp := make(map[fragment.Pair]*dsa.CompInfo, pairCount)
	for pi := 0; pi < pairCount; pi++ {
		i := d.intFrom(d.u64(), "pair fragment")
		j := d.intFrom(d.u64(), "pair fragment")
		nNodes := d.count(8)
		nodeIDs := d.i64s(nNodes)
		nCost := d.count(24)
		ca := d.i64s(nCost)
		cb := d.i64s(nCost)
		cw := d.f64s(nCost)
		if d.err != nil {
			return nil, d.err
		}
		ci := &dsa.CompInfo{
			Pair:  fragment.Pair{I: i, J: j},
			Nodes: make([]graph.NodeID, nNodes),
			Cost:  make(map[[2]graph.NodeID]float64, nCost),
		}
		for k, id := range nodeIDs {
			ci.Nodes[k] = graph.NodeID(id)
		}
		for k := 0; k < nCost; k++ {
			ci.Cost[[2]graph.NodeID{graph.NodeID(ca[k]), graph.NodeID(cb[k])}] = cw[k]
		}
		comp[ci.Pair] = ci
	}

	// Dense CSR sections, read fully before reconstruction starts.
	denseCount := d.count(8)
	if d.err == nil && denseCount != 0 && denseCount != fragCount {
		d.fail("dense section count %d does not match %d fragments", denseCount, fragCount)
	}
	raws := make([]*denseRaw, denseCount)
	for si := range raws {
		present := d.u64()
		if d.err != nil {
			return nil, d.err
		}
		if present == 0 {
			continue
		}
		if present != 1 {
			d.fail("dense presence flag %d", present)
			return nil, d.err
		}
		n := d.count(8)
		e := d.count(12)
		raw := &denseRaw{
			ids:      d.i64s(n),
			rowStart: d.i32s(n + 1),
			colIdx:   d.i32s(e),
			weight:   d.f64s(e),
		}
		if d.err != nil {
			return nil, d.err
		}
		raws[si] = raw
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		d.fail("%d trailing bytes after last section", d.remaining())
		return nil, d.err
	}

	fr, err := fragment.Restore(base, edgeSets)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}

	st, rerr := dsa.Restore(fr, comp, dsa.Options{MaxChains: maxChains, Problem: problem}, epoch, prep)
	if rerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, rerr)
	}

	// Prime the dense kernels from the stored CSR arrays (validated,
	// zero-copy). A snapshot written without kernels restores with
	// lazy builds, exactly like a live deployment.
	for si, raw := range raws {
		if raw == nil {
			continue
		}
		dg, err := tc.DenseFromCSR(raw.ids, raw.rowStart, raw.colIdx, raw.weight)
		if err != nil {
			return nil, fmt.Errorf("%w: site %d kernel: %v", ErrBadSnapshot, si, err)
		}
		st.Site(si).PrimeDense(dg)
	}
	return st, nil
}

// Load reads the TCSF image at path and reconstructs the store. On
// unix the file is mmap'd and the store's dense kernels alias the
// mapping zero-copy; the mapping therefore stays alive for the life of
// the process (one snapshot per boot — there is nothing to reclaim).
// Elsewhere the file is read into memory (see mmap_other.go).
func Load(path string) (*dsa.Store, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	st, err := Decode(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return st, nil
}
