//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file at path read-only. The returned buffer aliases
// the page cache: loading a snapshot is bounded by I/O (page-in plus
// one checksum pass), not by copying. The second result reports that
// the buffer is a real mapping and must go through unmapFile to be
// released.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < headerSize {
		return nil, false, fmt.Errorf("store: %s: %w: file too small (%d bytes)", path, ErrBadSnapshot, size)
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("store: %s: %w: file too large for this platform", path, ErrBadSnapshot)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return b, true, nil
}

// unmapFile releases a mapping obtained from mapFile.
func unmapFile(b []byte) { syscall.Munmap(b) }
