package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/gen"
)

// fuzzSeedImage builds one small valid TCSF image for the corpus.
func fuzzSeedImage(tb testing.TB) []byte {
	tb.Helper()
	g, sets, err := gen.RoadNetwork(gen.RoadConfig{
		Clusters: 2, ClusterWidth: 3, ClusterHeight: 3, Gateways: 1, Seed: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		tb.Fatal(err)
	}
	st, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	b, err := Encode(st)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzTCSFDecode asserts the decoder's safety contract: arbitrary
// bytes must produce either a store or an error — never a panic, and
// never an allocation driven by an unvalidated length field (every
// count is capped by the bytes actually present before any make()).
// The driver's -fuzzminimizetime memory ceiling would catch an
// over-allocation as an OOM crash.
func FuzzTCSFDecode(f *testing.F) {
	valid := fuzzSeedImage(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)/2])
	// A header declaring huge counts with no body behind them — the
	// exact shape the allocation caps exist for.
	huge := bytes.Clone(valid[:headerSize])
	for off := 16; off+8 <= headerSize; off += 8 {
		binary.LittleEndian.PutUint64(huge[off:], 1<<40)
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		// A decode that succeeds must return a usable store.
		if st == nil {
			t.Fatal("Decode returned nil store and nil error")
		}
		if st.Fragmentation().NumFragments() <= 0 {
			t.Fatal("decoded store has no fragments")
		}
	})
}

// FuzzJournalScan asserts the journal opener's matching contract: any
// file content yields a clean truncation point, never a panic or an
// oversized allocation.
func FuzzJournalScan(f *testing.F) {
	rec := encodeJournalRecord(journalRecord{Epoch: 3, Ops: []dsa.EdgeOp{
		{Kind: dsa.OpInsert, Frag: 0, Edge: validEdge()},
	}})
	f.Add(bytes.Clone(rec))
	f.Add(rec[:len(rec)-3])
	f.Add(append(bytes.Clone(rec), rec...))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/journal.log"
		if err := writeFileForTest(path, data); err != nil {
			t.Fatal(err)
		}
		j, _, _, err := openJournal(path)
		if err != nil {
			return
		}
		j.close()
	})
}
