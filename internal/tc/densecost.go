package tc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/relation"
)

// This file implements the dense cost-query kernel: the cost-capable
// counterpart of the bitset reachability kernel. Where the relational
// min-cost fixpoint hashes interface{} tuples per derived path per
// round, this kernel renumbers the nodes to dense int32 ids once,
// stores the edges in a CSR (compressed sparse row) adjacency with a
// parallel float64 weight array, and answers entry-set-restricted
// shortest-path cost queries with level-synchronous Bellman-Ford: each
// round relaxes the out-edges of the improved frontier, and only
// strictly improved nodes enter the next frontier. With non-negative
// weights the frontier drains after at most diameter-many rounds (the
// paper's own fixpoint bound, §2.1), so a fragment leg costs
// O(rounds × frontier edges) array work instead of hash joins.
//
// One propagation pass serves a whole entry set: every distinct source
// gets its own distance row, and the rows — mutually independent — are
// fanned out over the GOMAXPROCS worker pool of bitset.go, the dense
// analogue of "neither communication nor synchronization is required"
// between per-source searches.

// ErrNodesNotInt64 reports that an edge relation holds non-integer node
// values, which the dense kernel cannot renumber. The exported wrappers
// fall back to the generic relational fixpoint instead of surfacing it.
var ErrNodesNotInt64 = errors.New("tc: dense kernel requires int64 node values")

// DenseGraph is a CSR snapshot of an edge relation over int64 nodes
// with non-negative float64 costs. Build once, query many times — the
// disconnection set approach's sites keep one per augmented fragment.
type DenseGraph struct {
	ids      []int64         // dense index → original node id
	idx      map[int64]int32 // original node id → dense index
	rowStart []int32         // CSR row offsets, len(ids)+1
	colIdx   []int32         // edge targets, grouped by source row
	weight   []float64       // edge costs, parallel to colIdx
}

// NewDenseGraph interns the (src, dst, cost) relation into CSR form.
// It validates like normalizeEdges (arity 3, float64 non-negative
// costs) and returns ErrNodesNotInt64 when some node value is not an
// int64 (callers fall back to the relational fixpoint, as the bitset
// kernel does).
func NewDenseGraph(r *relation.Relation) (*DenseGraph, error) {
	if r.Arity() != 3 {
		return nil, errors.New("tc: edge relation must have arity 3 (src, dst, cost)")
	}
	tuples := r.Tuples()
	d := &DenseGraph{idx: make(map[int64]int32, len(tuples))}
	intern := func(id int64) int32 {
		if i, seen := d.idx[id]; seen {
			return i
		}
		i := int32(len(d.ids))
		d.idx[id] = i
		d.ids = append(d.ids, id)
		return i
	}
	type edge struct {
		from, to int32
		w        float64
	}
	edges := make([]edge, 0, len(tuples))
	for _, t := range tuples {
		from, ok1 := t[0].(int64)
		to, ok2 := t[1].(int64)
		if !ok1 || !ok2 {
			return nil, ErrNodesNotInt64
		}
		c, ok := t[2].(float64)
		if !ok {
			return nil, errors.New("tc: edge cost is not float64")
		}
		if c < 0 {
			return nil, fmt.Errorf("tc: %w: cost %v not supported", ErrNegativeWeight, c)
		}
		edges = append(edges, edge{from: intern(from), to: intern(to), w: c})
	}
	// Counting sort into CSR rows.
	n := len(d.ids)
	d.rowStart = make([]int32, n+1)
	for _, e := range edges {
		d.rowStart[e.from+1]++
	}
	for i := 0; i < n; i++ {
		d.rowStart[i+1] += d.rowStart[i]
	}
	d.colIdx = make([]int32, len(edges))
	d.weight = make([]float64, len(edges))
	fill := make([]int32, n)
	for _, e := range edges {
		p := d.rowStart[e.from] + fill[e.from]
		fill[e.from]++
		d.colIdx[p] = e.to
		d.weight[p] = e.w
	}
	return d, nil
}

// Nodes returns the number of distinct nodes in the snapshot.
func (d *DenseGraph) Nodes() int { return len(d.ids) }

// Edges returns the number of edges (parallel edges kept — relaxation
// takes the minimum naturally).
func (d *DenseGraph) Edges() int { return len(d.colIdx) }

// costRow is the per-source scratch state of one propagation row.
type costRow struct {
	dist     []float64
	inNext   []bool
	frontier []int32
	next     []int32
}

func newCostRow(n int) *costRow {
	r := &costRow{dist: make([]float64, n), inNext: make([]bool, n)}
	for i := range r.dist {
		r.dist[i] = math.Inf(1)
	}
	return r
}

// reset clears the finite distances of the previous run (touching only
// the visited nodes, not the whole row).
func (r *costRow) reset(visited []int32) {
	for _, v := range visited {
		r.dist[v] = math.Inf(1)
	}
}

// relaxFrom seeds the row with the out-edges of src (paths of at least
// one edge, matching ShortestFrom's semantics) and runs the frontier
// iteration. It returns the visited nodes (ascending insertion order is
// NOT guaranteed), the number of rounds and the number of successful
// relaxations.
func (d *DenseGraph) relaxFrom(ctx context.Context, r *costRow, src int32) (visited []int32, rounds, relaxed int) {
	r.frontier = r.frontier[:0]
	for k := d.rowStart[src]; k < d.rowStart[src+1]; k++ {
		v, w := d.colIdx[k], d.weight[k]
		if w < r.dist[v] {
			if math.IsInf(r.dist[v], 1) {
				r.frontier = append(r.frontier, v)
				visited = append(visited, v)
			}
			r.dist[v] = w
			relaxed++
		}
	}
	visited, rounds, relaxed2 := d.propagate(ctx, r, visited)
	return visited, rounds, relaxed + relaxed2
}

// propagate drains the frontier: each round relaxes the out-edges of
// every frontier node; strictly improved nodes form the next frontier.
// A canceled ctx stops the iteration between rounds with a partial row;
// callers that care (CostFromCtx) surface ErrCanceled and discard the
// result.
func (d *DenseGraph) propagate(ctx context.Context, r *costRow, visited []int32) ([]int32, int, int) {
	rounds, relaxed := 0, 0
	for len(r.frontier) > 0 && ctx.Err() == nil {
		rounds++
		r.next = r.next[:0]
		for _, u := range r.frontier {
			du := r.dist[u]
			for k := d.rowStart[u]; k < d.rowStart[u+1]; k++ {
				v := d.colIdx[k]
				nd := du + d.weight[k]
				if nd < r.dist[v] {
					if math.IsInf(r.dist[v], 1) {
						visited = append(visited, v)
					}
					r.dist[v] = nd
					relaxed++
					if !r.inNext[v] {
						r.inNext[v] = true
						r.next = append(r.next, v)
					}
				}
			}
		}
		for _, v := range r.next {
			r.inNext[v] = false
		}
		r.frontier, r.next = r.next, r.frontier
	}
	return visited, rounds, relaxed
}

// costFact is one (dst, cost) result of a source row, in dense space.
type costFact struct {
	dst  int32
	cost float64
}

// CostFrom computes the minimum path cost (over paths of at least one
// edge) from every distinct present source to every node it reaches,
// as a (src, dst, cost) relation — the same answer ShortestFrom gives,
// in kernel time. Sources absent from the snapshot contribute nothing
// (they have no out-edges); duplicates count once. Stats are in the
// kernel's units: Iterations is the maximum frontier-round count over
// all source rows (the critical-path analogue of fixpoint rounds),
// DerivedTuples the total number of successful relaxations.
func (d *DenseGraph) CostFrom(sources []graph.NodeID) (*relation.Relation, Stats) {
	out, st, _ := d.CostFromCtx(context.Background(), sources)
	return out, st
}

// CostFromCtx is CostFrom with cancellation: worker rows observe ctx
// between sources and between frontier rounds, and a canceled run
// returns ErrCanceled instead of a partial relation.
func (d *DenseGraph) CostFromCtx(ctx context.Context, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	var st Stats
	n := len(d.ids)
	var srcIdx []int32
	seen := make(map[int32]struct{}, len(sources))
	for _, s := range sources {
		i, present := d.idx[int64(s)]
		if !present {
			continue
		}
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		srcIdx = append(srcIdx, i)
	}
	results := make([][]costFact, len(srcIdx))
	rounds := make([]int, len(srcIdx))
	var relaxed atomic.Int64
	// One distance row per source; rows are independent, so chunks of
	// sources fan out over the worker pool, each chunk reusing one
	// scratch row.
	bitsetPool(len(srcIdx), func(lo, hi int) {
		row := newCostRow(n)
		sum := 0
		for si := lo; si < hi; si++ {
			if ctx.Err() != nil {
				return
			}
			visited, r, rel := d.relaxFrom(ctx, row, srcIdx[si])
			rounds[si] = r
			sum += rel
			facts := make([]costFact, 0, len(visited))
			// Emit in ascending dense-id order for determinism.
			for v := int32(0); v < int32(n); v++ {
				if !math.IsInf(row.dist[v], 1) {
					facts = append(facts, costFact{dst: v, cost: row.dist[v]})
				}
			}
			results[si] = facts
			row.reset(visited)
		}
		relaxed.Add(int64(sum))
	})
	if ctx.Err() != nil {
		return nil, st, canceled(ctx)
	}
	st.DerivedTuples = int(relaxed.Load())
	for _, r := range rounds {
		if r > st.Iterations {
			st.Iterations = r
		}
	}
	out := relation.New(costSchema...)
	for si, facts := range results {
		src := d.ids[srcIdx[si]]
		for _, f := range facts {
			out.MustInsert(relation.Tuple{src, d.ids[f.dst], f.cost})
		}
	}
	st.ResultTuples = out.Len()
	return out, st, nil
}

// CostVector runs one propagation seeded with the given (node, cost)
// vector, allowing zero-edge paths: the result contains every node
// reachable from a seed, including the seeds themselves at (at most)
// their seed cost. Negative seed costs are ignored, mirroring
// graph.ShortestPathsMulti. Seeds absent from the snapshot are carried
// through at their seed cost — the CSR only knows edge endpoints, so an
// absent seed is an isolated node, which the graph-backed search would
// keep (a chain may enter and leave a fragment at the same border
// node). This is the pipelined chain evaluation primitive, where the
// running cost vector of the previous fragments seeds the next
// fragment's search.
func (d *DenseGraph) CostVector(seed map[graph.NodeID]float64) map[graph.NodeID]float64 {
	out, _ := d.CostVectorCtx(context.Background(), seed)
	return out
}

// CostVectorCtx is CostVector with cancellation: the propagation
// observes ctx between frontier rounds, and a canceled run returns
// ErrCanceled instead of a partial vector.
func (d *DenseGraph) CostVectorCtx(ctx context.Context, seed map[graph.NodeID]float64) (map[graph.NodeID]float64, error) {
	row := newCostRow(len(d.ids))
	out := make(map[graph.NodeID]float64, len(seed))
	var visited []int32
	row.frontier = row.frontier[:0]
	for s, c := range seed {
		if c < 0 {
			continue
		}
		i, present := d.idx[int64(s)]
		if !present {
			out[s] = c
			continue
		}
		if c < row.dist[i] {
			if math.IsInf(row.dist[i], 1) {
				row.frontier = append(row.frontier, i)
				visited = append(visited, i)
			}
			row.dist[i] = c
		}
	}
	visited, _, _ = d.propagate(ctx, row, visited)
	if ctx.Err() != nil {
		return nil, canceled(ctx)
	}
	for _, v := range visited {
		out[graph.NodeID(d.ids[v])] = row.dist[v]
	}
	return out, nil
}

// DenseCostFrom computes the entry-set-restricted shortest-path costs
// of the edge relation with the dense kernel: the same (src, dst, cost)
// relation as ShortestFrom, at CSR+Bellman-Ford speed. Non-int64 node
// values fall back to the relational fixpoint.
func DenseCostFrom(r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	var st Stats
	d, err := NewDenseGraph(r)
	if errors.Is(err, ErrNodesNotInt64) {
		edges, err := normalizeEdges(r)
		if err != nil {
			return nil, st, err
		}
		seed, err := edges.SelectInKeys("src", relation.NodeKeySet(sources))
		if err != nil {
			return nil, st, err
		}
		return shortestFixpoint(context.Background(), seed, edges, &st)
	}
	if err != nil {
		return nil, st, err
	}
	out, st := d.CostFrom(sources)
	return out, st, nil
}

// DenseCostClosure computes the full min-cost closure (every connected
// ordered pair) with the dense kernel, the counterpart of
// ShortestClosure. Non-int64 node values fall back to the relational
// fixpoint.
func DenseCostClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	d, err := NewDenseGraph(r)
	if errors.Is(err, ErrNodesNotInt64) {
		return ShortestClosure(r)
	}
	if err != nil {
		return nil, st, err
	}
	sources := make([]graph.NodeID, len(d.ids))
	for i, id := range d.ids {
		sources[i] = graph.NodeID(id)
	}
	out, st := d.CostFrom(sources)
	return out, st, nil
}
