package tc

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/relation"
)

// costSchema is the schema of shortest-path closures: the minimum cost
// of any path from src to dst.
var costSchema = relation.Schema{"src", "dst", "cost"}

// normalizeEdges validates an edge relation and returns it with the
// canonical (src, dst, cost) schema and minimal cost per edge (parallel
// edges collapse to the cheapest).
func normalizeEdges(r *relation.Relation) (*relation.Relation, error) {
	if r.Arity() != 3 {
		return nil, fmt.Errorf("tc: edge relation must have arity 3 (src, dst, cost), got %d", r.Arity())
	}
	edges, err := r.Rename(costSchema...)
	if err != nil {
		return nil, err
	}
	for _, t := range edges.Tuples() {
		c, ok := t[2].(float64)
		if !ok {
			return nil, fmt.Errorf("tc: edge cost %v (%T) is not float64", t[2], t[2])
		}
		if c < 0 {
			return nil, fmt.Errorf("tc: %w: cost %v not supported", ErrNegativeWeight, c)
		}
	}
	return edges.MinBy("cost", "src", "dst")
}

// ShortestClosure computes, for every ordered pair of connected nodes,
// the cost of the cheapest path, by semi-naive evaluation with min-cost
// aggregation: each round extends the improved tuples of the previous
// round by one edge and keeps only strict improvements. For
// non-negative costs the iteration reaches a fixpoint after at most
// diameter-many rounds.
//
// This is the "cost of the shortest path between A and B" query of the
// paper's introduction, and the per-fragment computation of the
// disconnection set approach for path problems.
func ShortestClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := normalizeEdges(r)
	if err != nil {
		return nil, st, err
	}
	return shortestFixpoint(context.Background(), edges, edges, &st)
}

// ShortestFrom computes the cheapest path costs from the given source
// nodes only, seeding the fixpoint with their out-edges (selection
// pushing, as in ReachableFrom).
func ShortestFrom(r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	return ShortestFromCtx(context.Background(), r, sources)
}

// ShortestFromCtx is ShortestFrom with cancellation: the fixpoint
// observes ctx between rounds, and a canceled run returns ErrCanceled
// instead of a partial relation.
func ShortestFromCtx(ctx context.Context, r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := normalizeEdges(r)
	if err != nil {
		return nil, st, err
	}
	seed, err := edges.SelectInKeys("src", relation.NodeKeySet(sources))
	if err != nil {
		return nil, st, err
	}
	return shortestFixpoint(ctx, seed, edges, &st)
}

// shortestFixpoint runs the min-cost delta iteration from seed over
// edges; both have schema (src, dst, cost).
//
// The known set is kept as a (src, dst) → best-cost index that lives
// across rounds and is updated incrementally — the previous
// implementation rebuilt the whole index (re-encoding every known
// tuple) and re-aggregated the merged relation once per round. The
// final relation lists pairs in first-appearance order with their best
// cost, exactly what the Union+MinBy chain produced.
func shortestFixpoint(ctx context.Context, seed, edges *relation.Relation, st *Stats) (*relation.Relation, Stats, error) {
	seedMin, err := seed.MinBy("cost", "src", "dst")
	if err != nil {
		return nil, *st, err
	}
	// entries holds one best (src, dst, cost) per pair in
	// first-appearance order; index maps encoded (src, dst) keys to
	// positions in entries.
	type entry struct {
		src, dst relation.Value
		cost     float64
	}
	var entries []entry
	index := make(map[string]int, seedMin.Len())
	var buf []byte
	for _, t := range seedMin.Tuples() {
		buf = relation.Tuple{t[0], t[1]}.AppendKey(buf[:0])
		index[string(buf)] = len(entries)
		entries = append(entries, entry{src: t[0], dst: t[1], cost: t[2].(float64)})
	}

	delta := seedMin
	renamed, err := edges.Rename("mid", "dst2", "cost2")
	if err != nil {
		return nil, *st, err
	}
	// cancelStride bounds how many fold iterations run between ctx
	// checks: the expensive per-round loops stay interruptible even
	// when one round derives hundreds of thousands of tuples (the
	// monolithic Join is then the only uninterruptible unit).
	const cancelStride = 8192
	for delta.Len() > 0 {
		if ctx.Err() != nil {
			return nil, *st, canceled(ctx)
		}
		st.Iterations++
		joined, err := delta.Join(renamed, []string{"dst"}, []string{"mid"})
		if err != nil {
			return nil, *st, err
		}
		st.DerivedTuples += joined.Len()
		// Fold the joined (src, dst, cost, dst2, cost2) tuples — Join
		// drops the right-side join attribute mid — into the
		// per-(src, dst2) round minimum, in first-appearance order.
		var round []entry
		roundPos := make(map[string]int) // key → position in round
		for ti, t := range joined.Tuples() {
			if ti%cancelStride == 0 && ctx.Err() != nil {
				return nil, *st, canceled(ctx)
			}
			total := t[2].(float64) + t[4].(float64)
			buf = relation.Tuple{t[0], t[3]}.AppendKey(buf[:0])
			if pos, ok := roundPos[string(buf)]; ok {
				if total < round[pos].cost {
					round[pos].cost = total
				}
				continue
			}
			roundPos[string(buf)] = len(round)
			round = append(round, entry{src: t[0], dst: t[3], cost: total})
		}
		// Commit strict improvements over the known costs; they form the
		// next delta.
		improved := relation.New(costSchema...)
		for ci, c := range round {
			if ci%cancelStride == 0 && ctx.Err() != nil {
				return nil, *st, canceled(ctx)
			}
			buf = relation.Tuple{c.src, c.dst}.AppendKey(buf[:0])
			if pos, ok := index[string(buf)]; ok {
				if c.cost >= entries[pos].cost {
					continue
				}
				entries[pos].cost = c.cost
			} else {
				index[string(buf)] = len(entries)
				entries = append(entries, c)
			}
			improved.MustInsert(relation.Tuple{c.src, c.dst, c.cost})
		}
		if improved.Len() == 0 {
			break
		}
		delta = improved
	}
	known := relation.New(costSchema...)
	for _, e := range entries {
		known.MustInsert(relation.Tuple{e.src, e.dst, e.cost})
	}
	st.ResultTuples = known.Len()
	return known, *st, nil
}

// indexCosts builds a (src, dst) → cost map from a cost relation.
func indexCosts(r *relation.Relation) map[string]float64 {
	m := make(map[string]float64, r.Len())
	var buf []byte
	for _, t := range r.Tuples() {
		buf = relation.Tuple{t[0], t[1]}.AppendKey(buf[:0])
		m[string(buf)] = t[2].(float64)
	}
	return m
}

// FloydWarshallCosts computes all-pairs shortest path costs over a
// graph with the classic O(n³) dynamic program. It is the dense oracle
// the relational fixpoints are validated against, and the tool the
// disconnection-set preprocessor uses on small border sets.
func FloydWarshallCosts(g *graph.Graph) map[graph.NodeID]map[graph.NodeID]float64 {
	nodes := g.Nodes()
	dist := make(map[graph.NodeID]map[graph.NodeID]float64, len(nodes))
	for _, u := range nodes {
		dist[u] = make(map[graph.NodeID]float64)
		dist[u][u] = 0
	}
	for _, e := range g.Edges() {
		if d, ok := dist[e.From][e.To]; !ok || e.Weight < d {
			dist[e.From][e.To] = e.Weight
		}
	}
	for _, k := range nodes {
		for _, i := range nodes {
			dik, ok := dist[i][k]
			if !ok {
				continue
			}
			for j, dkj := range dist[k] {
				if d, ok := dist[i][j]; !ok || dik+dkj < d {
					dist[i][j] = dik + dkj
				}
			}
		}
	}
	return dist
}
