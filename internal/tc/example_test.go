package tc_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// Example computes the reachability closure of a small parts hierarchy
// with semi-naive evaluation and reports the fixpoint statistics.
func Example() {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0}) // truck uses gearbox
	r.MustInsert(relation.Tuple{int64(2), int64(3), 1.0}) // gearbox uses clutch
	closure, stats, err := tc.SemiNaiveClosure(r)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d pairs in %d iterations\n", closure.Len(), stats.Iterations)
	// Output: 3 pairs in 2 iterations
}

// ExampleShortestFrom pushes the source selection into the cost
// fixpoint — the keyhole behaviour disconnection sets rely on.
func ExampleShortestFrom() {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 3.0})
	r.MustInsert(relation.Tuple{int64(2), int64(3), 4.0})
	r.MustInsert(relation.Tuple{int64(1), int64(3), 9.0})
	costs, _, err := tc.ShortestFrom(r, []graph.NodeID{1})
	if err != nil {
		panic(err)
	}
	for _, t := range costs.Sort().Tuples() {
		fmt.Printf("%v -> %v costs %v\n", t[0], t[1], t[2])
	}
	// Output:
	// 1 -> 2 costs 3
	// 1 -> 3 costs 7
}
