package tc

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/relation"
)

// This file implements the bitset-parallel closure kernel: the first
// engine of the repository that exploits real intra-fragment
// parallelism instead of simulating it. The paper's first phase needs
// "neither communication nor synchronization" between sites; within a
// site the same property holds between independent rows of the
// condensation, and this kernel spends it on a bounded worker pool.
//
// The algorithm is the reverse-topological SCC propagation behind
// Warren-style dense closure: intern the nodes into dense indices,
// condense the strongly connected components with an iterative Tarjan,
// and represent the reachable-component set of each component as a
// []uint64 bit row over component space. Tarjan emits the components in
// reverse topological order, so every successor of a component is
// finished before the component itself; the row of a component is the
// word-wise OR of its successors' rows plus the successors' own bits
// (plus its own bit when the component is cyclic). Components are
// grouped into dependency levels (longest path to a sink in the
// condensation DAG) and each level is fanned out over a
// runtime.GOMAXPROCS-sized worker pool in chunked row ranges — rows of
// one level only read rows of strictly earlier levels, so the phase
// needs no locks, only the level barrier.

// bitsetParallelThreshold is the minimum number of rows in a level
// before the kernel bothers spinning up the pool; tiny levels are
// cheaper to close on the calling goroutine.
const bitsetParallelThreshold = 64

// bitsetChunksPerWorker over-partitions each level so the pool
// self-balances when component sizes are skewed.
const bitsetChunksPerWorker = 4

// bitsetPool runs fn over the index range [0, n) in chunked sub-ranges
// on a bounded worker pool. fn must be safe for concurrent invocation
// on disjoint ranges.
func bitsetPool(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < bitsetParallelThreshold {
		fn(0, n)
		return
	}
	chunk := (n + workers*bitsetChunksPerWorker - 1) / (workers * bitsetChunksPerWorker)
	jobs := make(chan [2]int, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		jobs <- [2]int{lo, hi}
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn(j[0], j[1])
			}
		}()
	}
	wg.Wait()
}

// bitGraph is a dense renumbering of an edge relation over int64 nodes.
type bitGraph struct {
	ids []int64       // dense index -> original node id
	idx map[int64]int // original node id -> dense index
	adj [][]int32     // out-neighbours in dense index space
}

// newBitGraph interns the (src, dst) pairs of the arity-2 relation. ok
// is false when some node is not an int64, in which case the caller
// falls back to the generic relational fixpoint (as CondensedClosure
// does).
func newBitGraph(pairs *relation.Relation) (bg *bitGraph, ok bool) {
	bg = &bitGraph{idx: make(map[int64]int, pairs.Len())}
	intern := func(id int64) int32 {
		if i, seen := bg.idx[id]; seen {
			return int32(i)
		}
		i := len(bg.ids)
		bg.idx[id] = i
		bg.ids = append(bg.ids, id)
		bg.adj = append(bg.adj, nil)
		return int32(i)
	}
	for _, t := range pairs.Tuples() {
		from, ok1 := t[0].(int64)
		to, ok2 := t[1].(int64)
		if !ok1 || !ok2 {
			return nil, false
		}
		u := intern(from)
		v := intern(to)
		bg.adj[u] = append(bg.adj[u], v)
	}
	return bg, true
}

// condense runs iterative Tarjan over the dense graph. comps lists the
// strongly connected components in reverse topological order of the
// condensation (every condensation edge points from a later component
// to an earlier one); compOf maps dense node index to component index;
// cyclic marks components whose members reach themselves (size > 1 or a
// self loop).
//
// This deliberately mirrors graph.StronglyConnectedComponents
// (internal/graph/scc.go) over dense int32 indices instead of the
// map-backed graph representation — the kernel never materialises a
// graph.Graph, and the array-indexed state keeps the SCC pass
// allocation-light. A low-link fix in one implementation applies to
// the other.
func (bg *bitGraph) condense() (comps [][]int32, compOf []int32, cyclic []bool) {
	n := len(bg.ids)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	compOf = make([]int32, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int32
	var next int32

	type frame struct {
		node int32
		ei   int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{node: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			out := bg.adj[f.node]
			advanced := false
			for f.ei < len(out) {
				w := out[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.node
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				ci := int32(len(comps))
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					compOf[w] = ci
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	cyclic = make([]bool, len(comps))
	for ci, comp := range comps {
		if len(comp) > 1 {
			cyclic[ci] = true
			continue
		}
		u := comp[0]
		for _, v := range bg.adj[u] {
			if v == u {
				cyclic[ci] = true
				break
			}
		}
	}
	return comps, compOf, cyclic
}

// succsOf builds the distinct successor lists of the condensation DAG.
// Because comps is in reverse topological order, every successor of a
// component has a smaller component index.
func succsOf(bg *bitGraph, comps [][]int32, compOf []int32) [][]int32 {
	succs := make([][]int32, len(comps))
	mark := make([]int32, len(comps))
	for i := range mark {
		mark[i] = -1
	}
	for ci, comp := range comps {
		for _, u := range comp {
			for _, v := range bg.adj[u] {
				cv := compOf[v]
				if int(cv) == ci || mark[cv] == int32(ci) {
					continue
				}
				mark[cv] = int32(ci)
				succs[ci] = append(succs[ci], cv)
			}
		}
	}
	return succs
}

// levelsOf groups component indices by dependency level: sinks are
// level 0, otherwise 1 + max over successors. One forward pass suffices
// because successors precede their predecessors in comps.
func levelsOf(succs [][]int32) [][]int32 {
	level := make([]int32, len(succs))
	maxLevel := int32(0)
	for ci := range succs {
		l := int32(0)
		for _, cv := range succs[ci] {
			if level[cv]+1 > l {
				l = level[cv] + 1
			}
		}
		level[ci] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for ci := range level {
		byLevel[level[ci]] = append(byLevel[level[ci]], int32(ci))
	}
	return byLevel
}

// bitsetPropagate computes the reachable-component bit rows. needed
// selects the components whose rows are wanted (nil = all); rows of
// unneeded components stay nil and are skipped entirely — the
// entry-set-restricted variant of the kernel. Stats are reported in the
// kernel's own units: Iterations is the number of dependency levels
// with work (the analogue of fixpoint rounds — the longest dependency
// chain), DerivedTuples the total number of reachable-component bits
// set across all computed rows (the intermediate result size at
// component granularity).
//
// Cancellation is observed between dependency levels (the pool's
// natural barrier): a canceled ctx abandons the remaining levels and
// returns ErrCanceled.
func bitsetPropagate(ctx context.Context, succs [][]int32, cyclic []bool, needed []bool, st *Stats) ([][]uint64, error) {
	m := len(succs)
	words := (m + 63) / 64
	rows := make([][]uint64, m)
	byLevel := levelsOf(succs)
	for _, level := range byLevel {
		if ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		// Keep only the rows this call actually needs.
		var work []int32
		if needed == nil {
			work = level
		} else {
			for _, ci := range level {
				if needed[ci] {
					work = append(work, ci)
				}
			}
		}
		if len(work) == 0 {
			continue
		}
		st.Iterations++
		var derived atomic.Int64
		bitsetPool(len(work), func(lo, hi int) {
			pop := 0
			for _, ci := range work[lo:hi] {
				row := make([]uint64, words)
				for _, cv := range succs[ci] {
					row[cv>>6] |= 1 << (uint(cv) & 63)
					if sub := rows[cv]; sub != nil {
						for w := range row {
							row[w] |= sub[w]
						}
					}
				}
				if cyclic[ci] {
					row[ci>>6] |= 1 << (uint(ci) & 63)
				}
				rows[ci] = row
				for _, w := range row {
					pop += bits.OnesCount64(w)
				}
			}
			derived.Add(int64(pop))
		})
		st.DerivedTuples += int(derived.Load())
	}
	return rows, nil
}

// markNeeded flags every component reachable from the given start
// components (including the start components themselves) by iterative
// DFS over the condensation successors.
func markNeeded(succs [][]int32, starts []int32) []bool {
	needed := make([]bool, len(succs))
	var stack []int32
	for _, s := range starts {
		if !needed[s] {
			needed[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, cv := range succs[c] {
			if !needed[cv] {
				needed[cv] = true
				stack = append(stack, cv)
			}
		}
	}
	return needed
}

// BitsetClosure computes the reachability closure of the edge relation
// r with the bitset-parallel kernel. The result is identical to
// SemiNaiveClosure / CondensedClosure: the set of (src, dst) pairs
// connected by a path of at least one edge. Non-int64 node values fall
// back to the generic relational fixpoint.
func BitsetClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	pairs, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	bg, ok := newBitGraph(pairs)
	if !ok {
		return semiNaivePairs(pairs, pairs, &st)
	}
	comps, compOf, cyclic := bg.condense()
	succs := succsOf(bg, comps, compOf)
	rows, err := bitsetPropagate(context.Background(), succs, cyclic, nil, &st)
	if err != nil {
		return nil, st, err
	}

	out := relation.New(pairSchema...)
	for ci, comp := range comps {
		emitRow(out, bg, comps, rows[ci], comp)
	}
	st.ResultTuples = out.Len()
	return out, st, nil
}

// BitsetReachableFrom computes the (src, dst) pairs with src in sources
// with the bitset kernel, restricting propagation to the components
// reachable from the sources — the kernel's analogue of the pushed
// selection in ReachableFrom, and the variant fragment legs run: the
// entry set is the incoming disconnection set, so only its "magic cone"
// of the condensation is ever touched.
func BitsetReachableFrom(r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	return BitsetReachableFromCtx(context.Background(), r, sources)
}

// BitsetReachableFromCtx is BitsetReachableFrom with cancellation: the
// worker pool observes ctx between dependency levels and a canceled
// run returns ErrCanceled instead of a partial relation.
func BitsetReachableFromCtx(ctx context.Context, r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	var st Stats
	pairs, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	bg, ok := newBitGraph(pairs)
	if !ok {
		seed, err := pairs.SelectInKeys("src", relation.NodeKeySet(sources))
		if err != nil {
			return nil, st, err
		}
		return semiNaivePairs(seed, pairs, &st)
	}
	comps, compOf, cyclic := bg.condense()
	succs := succsOf(bg, comps, compOf)

	// Sources outside the relation's node universe contribute nothing
	// (they have no out-edges), and duplicate sources count once —
	// matching ReachableFrom's set semantics.
	var entries []int32 // dense node indices of the distinct present sources
	var starts []int32  // their components
	seenNode := make([]bool, len(bg.ids))
	seenComp := make([]bool, len(comps))
	for _, s := range sources {
		i, present := bg.idx[int64(s)]
		if !present || seenNode[i] {
			continue
		}
		seenNode[i] = true
		entries = append(entries, int32(i))
		ci := compOf[i]
		if !seenComp[ci] {
			seenComp[ci] = true
			starts = append(starts, ci)
		}
	}
	needed := markNeeded(succs, starts)
	rows, err := bitsetPropagate(ctx, succs, cyclic, needed, &st)
	if err != nil {
		return nil, st, err
	}

	out := relation.New(pairSchema...)
	for _, u := range entries {
		emitRow(out, bg, comps, rows[compOf[u]], []int32{u})
	}
	st.ResultTuples = out.Len()
	return out, st, nil
}

// emitRow expands one reachable-component bit row into (src, dst)
// tuples: every listed source node reaches every member of every set
// component. A cyclic component's own bit is set in its row, so
// within-component pairs (including u→u on cycles and self loops) need
// no special case.
func emitRow(out *relation.Relation, bg *bitGraph, comps [][]int32, row []uint64, srcs []int32) {
	if row == nil {
		return
	}
	for w, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			for _, u := range srcs {
				src := bg.ids[u]
				for _, v := range comps[w*64+b] {
					out.MustInsert(relation.Tuple{src, bg.ids[v]})
				}
			}
		}
	}
}

// BitsetGraphClosure is a convenience wrapper computing the bitset
// closure of a graph (mirror of GraphClosure).
func BitsetGraphClosure(g *graph.Graph) (*relation.Relation, Stats, error) {
	return BitsetClosure(relation.FromGraph(g))
}
