package tc

import (
	"repro/internal/graph"
	"repro/internal/relation"
)

// CondensedClosure computes the reachability closure via strongly
// connected component condensation: contract each SCC to one node,
// close the resulting DAG with semi-naive evaluation, then expand —
// every node of component C reaches every node of every component
// reachable from C (plus its own component when it is cyclic). On
// graphs with large cycles this does a fraction of the work of the
// direct fixpoint, which is why practical TC engines condense first;
// here it doubles as an independent oracle for the other closure
// algorithms.
func CondensedClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	// Materialise the graph to condense.
	g := graph.New()
	selfReach := make(map[graph.NodeID]bool)
	for _, t := range edges.Tuples() {
		from, ok1 := t[0].(int64)
		to, ok2 := t[1].(int64)
		if !ok1 || !ok2 {
			// Fall back to the generic fixpoint for non-integer nodes.
			return semiNaivePairs(edges, edges, &st)
		}
		g.AddEdge(graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: 1})
		if from == to {
			selfReach[graph.NodeID(from)] = true
		}
	}
	dag, comps, compOf := g.Condensation()

	// Close the condensation DAG (usually much smaller).
	dagRel := relation.FromGraph(dag)
	dagClosure, dagStats, err := SemiNaiveClosure(dagRel)
	if err != nil {
		return nil, st, err
	}
	st.Iterations = dagStats.Iterations
	st.DerivedTuples = dagStats.DerivedTuples

	// reachableComps[c] lists the components reachable from c
	// (excluding c itself).
	reachableComps := make(map[int][]int, len(comps))
	for _, t := range dagClosure.Tuples() {
		from := int(t[0].(int64))
		to := int(t[1].(int64))
		reachableComps[from] = append(reachableComps[from], to)
	}

	out := relation.New("src", "dst")
	emit := func(u, v graph.NodeID) {
		out.MustInsert(relation.Tuple{int64(u), int64(v)})
	}
	for _, u := range g.Nodes() {
		cu := compOf[u]
		// Within the own component: every member pair, including u→u,
		// when the component is cyclic (size > 1, or an explicit self
		// loop).
		if len(comps[cu]) > 1 || selfReach[u] {
			for _, v := range comps[cu] {
				emit(u, v)
			}
		}
		for _, cv := range reachableComps[cu] {
			for _, v := range comps[cv] {
				emit(u, v)
			}
		}
	}
	st.ResultTuples = out.Len()
	return out, st, nil
}
