// Package tc implements transitive-closure algorithms on edge relations
// and graphs: naive, semi-naive (delta) and smart (squaring) fixpoints
// for reachability, a cost-aggregating fixpoint for shortest paths, a
// Warshall matrix algorithm, and source-restricted variants that push
// selections into the iteration — the "keyhole" behaviour disconnection
// sets induce (ICDE'93 §2.2).
//
// Every algorithm reports Stats so experiments can verify the paper's
// §2.1 claim that "the number of iterations required before reaching a
// fixpoint is given by the maximum diameter of the graph" and that
// fragmenting the graph reduces the per-site iteration count.
package tc

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/relation"
)

// Stats describes the work a transitive-closure computation performed.
// The paper uses the number of fixpoint iterations and the size of the
// intermediate results as the workload measure of a fragment (§2.2).
type Stats struct {
	// Iterations is the number of fixpoint rounds until no new tuples
	// were derived (the final empty round is not counted).
	Iterations int
	// DerivedTuples counts every tuple produced by joins across all
	// rounds, before duplicate elimination — the paper's "size of the
	// intermediate results".
	DerivedTuples int
	// ResultTuples is the cardinality of the final closure.
	ResultTuples int
}

// Add accumulates other into s; the parallel executor sums per-site
// stats with it.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.DerivedTuples += other.DerivedTuples
	s.ResultTuples += other.ResultTuples
}

// Max keeps, per field, the maximum of s and other — the critical-path
// view of parallel work (the slowest site determines the elapsed time).
func (s *Stats) Max(other Stats) {
	if other.Iterations > s.Iterations {
		s.Iterations = other.Iterations
	}
	if other.DerivedTuples > s.DerivedTuples {
		s.DerivedTuples = other.DerivedTuples
	}
	if other.ResultTuples > s.ResultTuples {
		s.ResultTuples = other.ResultTuples
	}
}

// pairSchema is the schema of reachability closures.
var pairSchema = relation.Schema{"src", "dst"}

// checkEdgeRelation verifies that r looks like an edge relation
// (arity 3: src, dst, cost) and returns its projection to (src, dst).
func checkEdgeRelation(r *relation.Relation) (*relation.Relation, error) {
	if r.Arity() != 3 {
		return nil, fmt.Errorf("tc: edge relation must have arity 3 (src, dst, cost), got %d", r.Arity())
	}
	s := r.Schema()
	pairs, err := r.Project(s[0], s[1])
	if err != nil {
		return nil, err
	}
	pairs, err = pairs.Rename("src", "dst")
	if err != nil {
		return nil, err
	}
	return pairs.Distinct(), nil
}

// NaiveClosure computes the reachability closure of the edge relation r
// with the naive fixpoint: T_{k+1} = E ∪ π(T_k ⋈ E), re-deriving every
// known tuple each round. It exists as the textbook baseline the
// smarter algorithms are measured against.
func NaiveClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	known := edges
	renamed, err := edges.Rename("mid", "dst2")
	if err != nil {
		return nil, st, err
	}
	for {
		st.Iterations++
		joined, err := known.Join(renamed, []string{"dst"}, []string{"mid"})
		if err != nil {
			return nil, st, err
		}
		st.DerivedTuples += joined.Len()
		stepped, err := joined.Project("src", "dst2")
		if err != nil {
			return nil, st, err
		}
		stepped, err = stepped.Rename("src", "dst")
		if err != nil {
			return nil, st, err
		}
		next, err := known.Union(stepped)
		if err != nil {
			return nil, st, err
		}
		if next.Len() == known.Len() {
			st.ResultTuples = known.Len()
			return known, st, nil
		}
		known = next
	}
}

// SemiNaiveClosure computes the reachability closure with semi-naive
// (delta) evaluation: only tuples new in round k join with the edge
// relation in round k+1. This is the single-processor algorithm the
// disconnection set approach runs per fragment.
func SemiNaiveClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	return semiNaivePairs(edges, edges, &st)
}

// semiNaivePairs runs the delta iteration from the given seed pairs over
// the given edge pairs. Both relations must have schema (src, dst).
//
// The known set is maintained as one relation.Dedup that lives across
// rounds: each round's step output is filtered against it in a single
// pass (Dedup.Filter is Distinct + Difference combined) and the new
// tuples are appended in place, instead of re-encoding the whole known
// relation per round through Distinct/Difference/Union chains.
func semiNaivePairs(seed, edges *relation.Relation, st *Stats) (*relation.Relation, Stats, error) {
	dedup := relation.NewDedup()
	known := dedup.Filter(seed)
	delta := known
	renamed, err := edges.Rename("mid", "dst2")
	if err != nil {
		return nil, *st, err
	}
	for delta.Len() > 0 {
		st.Iterations++
		joined, err := delta.Join(renamed, []string{"dst"}, []string{"mid"})
		if err != nil {
			return nil, *st, err
		}
		st.DerivedTuples += joined.Len()
		stepped, err := joined.Project("src", "dst2")
		if err != nil {
			return nil, *st, err
		}
		stepped, err = stepped.Rename("src", "dst")
		if err != nil {
			return nil, *st, err
		}
		delta = dedup.Filter(stepped)
		if err := known.Extend(delta); err != nil {
			return nil, *st, err
		}
	}
	st.ResultTuples = known.Len()
	return known, *st, nil
}

// SmartClosure computes the reachability closure by repeated squaring
// (the "smart" algorithm of Ioannidis, paper reference [16]): paths of
// length up to 2^k after k rounds, so the number of iterations is
// logarithmic in the diameter instead of linear.
func SmartClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	known, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	for {
		st.Iterations++
		renamed, err := known.Rename("mid", "dst2")
		if err != nil {
			return nil, st, err
		}
		joined, err := known.Join(renamed, []string{"dst"}, []string{"mid"})
		if err != nil {
			return nil, st, err
		}
		st.DerivedTuples += joined.Len()
		stepped, err := joined.Project("src", "dst2")
		if err != nil {
			return nil, st, err
		}
		stepped, err = stepped.Rename("src", "dst")
		if err != nil {
			return nil, st, err
		}
		next, err := known.Union(stepped)
		if err != nil {
			return nil, st, err
		}
		if next.Len() == known.Len() {
			st.ResultTuples = known.Len()
			return known, st, nil
		}
		known = next
	}
}

// WarshallClosure computes the reachability closure with Warshall's
// in-place matrix algorithm over a dense bit matrix. It serves as an
// independent oracle for the relational fixpoints in tests, and as the
// centralized baseline with no per-fragment structure to exploit.
func WarshallClosure(r *relation.Relation) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	// Collect the node universe.
	index := make(map[int64]int)
	var ids []int64
	intern := func(v relation.Value) (int, error) {
		id, ok := v.(int64)
		if !ok {
			return 0, fmt.Errorf("tc: warshall: node %v (%T) is not int64", v, v)
		}
		if i, ok := index[id]; ok {
			return i, nil
		}
		index[id] = len(ids)
		ids = append(ids, id)
		return len(ids) - 1, nil
	}
	type pair struct{ a, b int }
	var pairs []pair
	for _, t := range edges.Tuples() {
		a, err := intern(t[0])
		if err != nil {
			return nil, st, err
		}
		b, err := intern(t[1])
		if err != nil {
			return nil, st, err
		}
		pairs = append(pairs, pair{a, b})
	}
	n := len(ids)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for _, p := range pairs {
		reach[p.a][p.b] = true
	}
	for k := 0; k < n; k++ {
		st.Iterations++
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			row, via := reach[i], reach[k]
			for j := 0; j < n; j++ {
				if via[j] && !row[j] {
					row[j] = true
					st.DerivedTuples++
				}
			}
		}
	}
	out := relation.New(pairSchema...)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if reach[i][j] {
				out.MustInsert(relation.Tuple{ids[i], ids[j]})
			}
		}
	}
	st.ResultTuples = out.Len()
	return out, st, nil
}

// ReachableFrom computes the set of (src, dst) pairs with src in
// sources, by semi-naive evaluation seeded with the out-edges of the
// sources. This is the selection-pushed recursion each site runs in the
// disconnection set approach: the sources are either the query constant
// or the nodes of the incoming disconnection set, so the whole "magic
// cone" never leaves the fragment.
func ReachableFrom(r *relation.Relation, sources []graph.NodeID) (*relation.Relation, Stats, error) {
	var st Stats
	edges, err := checkEdgeRelation(r)
	if err != nil {
		return nil, st, err
	}
	seed, err := edges.SelectInKeys("src", relation.NodeKeySet(sources))
	if err != nil {
		return nil, st, err
	}
	return semiNaivePairs(seed, edges, &st)
}

// GraphClosure is a convenience wrapper computing the semi-naive
// reachability closure of a graph.
func GraphClosure(g *graph.Graph) (*relation.Relation, Stats, error) {
	return SemiNaiveClosure(relation.FromGraph(g))
}
