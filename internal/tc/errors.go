package tc

import (
	"context"
	"errors"
	"fmt"
)

// Typed error sentinels of the kernel layer. They are defined here, at
// the lowest layer that produces them, so that every layer above (dsa,
// server, pkg/tcq) can re-export the same values and errors.Is matches
// across the whole stack.
var (
	// ErrNegativeWeight reports an edge with a negative cost, which the
	// non-negative shortest-path kernels (dense Bellman-Ford, the
	// relational min-cost fixpoint) refuse.
	ErrNegativeWeight = errors.New("negative edge weight")
	// ErrCanceled reports that a kernel observed context cancellation
	// mid-computation and abandoned the (partial) result. Errors wrapping
	// it also wrap the context's own error, so errors.Is(err,
	// context.Canceled) and errors.Is(err, context.DeadlineExceeded)
	// keep working.
	ErrCanceled = errors.New("query canceled")
)

// canceled wraps a context error as an ErrCanceled, preserving both
// sentinels for errors.Is.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w (%w)", ErrCanceled, context.Cause(ctx))
}
