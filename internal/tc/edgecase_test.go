package tc

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/relation"
)

// This file pins down the degenerate shapes of the cost fixpoint
// (shortest.go) and the condensation closure (condensed.go): self
// loops, zero-weight edges, unreachable entry sets and single-node
// fragments — the cases a fragmented deployment actually produces
// (a one-city fragment, a border node with no local edges, an entry
// set on the far side of a directed cut).

// TestShortestFromSelfLoop: a self loop is a path of length one, so it
// appears as a src→src fact with the loop cost; a cheaper cycle
// through a neighbour must win over a dearer self loop.
func TestShortestFromSelfLoop(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(1), 5.0})
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0})
	r.MustInsert(relation.Tuple{int64(2), int64(1), 1.0})
	got, _, err := ShortestFrom(r, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(1)}.Key()]; c != 2.0 {
		t.Errorf("cost(1→1) = %v, want 2 (cycle beats self loop)", c)
	}
}

// TestShortestFromZeroWeightEdges: zero-weight edges propagate costs
// without inflating them, and the fixpoint terminates despite the
// zero-weight cycle (no strict improvement recurs).
func TestShortestFromZeroWeightEdges(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 0.0})
	r.MustInsert(relation.Tuple{int64(2), int64(1), 0.0})
	r.MustInsert(relation.Tuple{int64(2), int64(3), 4.0})
	got, _, err := ShortestFrom(r, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(1)}.Key()]; c != 0.0 {
		t.Errorf("cost(1→1) = %v, want 0 via the zero cycle", c)
	}
	if c := costs[relation.Tuple{int64(1), int64(3)}.Key()]; c != 4.0 {
		t.Errorf("cost(1→3) = %v, want 4", c)
	}
}

// TestShortestFromUnreachableEntrySet: entry nodes that are absent or
// pure sinks derive no facts, and the stats stay zeroed.
func TestShortestFromUnreachableEntrySet(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0})
	got, st, err := ShortestFrom(r, []graph.NodeID{2, 42})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || st.ResultTuples != 0 {
		t.Errorf("sink/absent entry set derived %d facts", got.Len())
	}
}

// TestShortestClosureSingleNode: a universe of one self-looping node —
// the single-node fragment — closes to exactly one fact.
func TestShortestClosureSingleNode(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(3), int64(3), 1.5})
	got, st, err := ShortestClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("closure of a self loop has %d facts, want 1", got.Len())
	}
	if c := got.Tuples()[0][2].(float64); c != 1.5 {
		t.Errorf("cost = %v, want 1.5", c)
	}
	if st.Iterations == 0 {
		t.Error("closure reported zero iterations")
	}
}

// TestShortestFromParallelEdgesKeepMin: duplicate edges collapse to
// the cheapest before the fixpoint runs (normalizeEdges' MinBy).
func TestShortestFromParallelEdgesKeepMin(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 9.0})
	r.MustInsert(relation.Tuple{int64(1), int64(2), 2.0})
	got, _, err := ShortestFrom(r, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(2)}.Key()]; c != 2.0 {
		t.Errorf("cost(1→2) = %v, want the cheaper parallel edge 2", c)
	}
}

// TestCondensedClosureSelfLoopOnly: a graph whose only cycle is a self
// loop — the node must reach itself, its loop-free sibling must not.
func TestCondensedClosureSelfLoopOnly(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(1), 1.0})
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0})
	got, _, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(relation.Tuple{int64(1), int64(1)}) {
		t.Error("self-looping node does not reach itself")
	}
	if got.Contains(relation.Tuple{int64(2), int64(2)}) {
		t.Error("loop-free sink reaches itself")
	}
}

// TestCondensedClosureSingleNodeFragment: one node, no edges — an
// empty relation is rejected upstream, so model it as an isolated pair
// and check the isolated side contributes nothing.
func TestCondensedClosureSingleNodeFragment(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(7), int64(8), 1.0})
	got, _, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(relation.Tuple{int64(7), int64(8)}) {
		t.Errorf("closure = %v, want exactly 7→8", got)
	}
}

// TestCondensedClosureZeroWeightCycleAgrees: condensation and the
// plain fixpoint agree on a graph that mixes a two-node cycle, a self
// loop and a tail (reachability ignores the weights, including zeros).
func TestCondensedClosureZeroWeightCycleAgrees(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 0.0})
	r.MustInsert(relation.Tuple{int64(2), int64(1), 0.0})
	r.MustInsert(relation.Tuple{int64(2), int64(2), 0.0})
	r.MustInsert(relation.Tuple{int64(2), int64(3), 0.0})
	want, _, err := SemiNaiveClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "condensed vs seminaive", got, want)
}

// TestFloydWarshallSelfAndZero: the dense oracle reports 0 for every
// node to itself and handles zero-weight edges.
func TestFloydWarshallSelfAndZero(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 0})
	g.AddEdge(graph.Edge{From: 2, To: 3, Weight: 2})
	dist := FloydWarshallCosts(g)
	if d := dist[1][3]; math.Abs(d-2) > 1e-12 {
		t.Errorf("dist(1,3) = %v, want 2", d)
	}
	if d := dist[3][3]; d != 0 {
		t.Errorf("dist(3,3) = %v, want 0", d)
	}
}
