package tc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/relation"
)

// rel builds an edge relation from (src, dst, cost) triples.
func rel(edges ...[3]float64) *relation.Relation {
	r := relation.New("src", "dst", "cost")
	for _, e := range edges {
		r.MustInsert(relation.Tuple{int64(e[0]), int64(e[1]), e[2]})
	}
	return r
}

// pairSet extracts {src->dst} keys from a closure relation.
func pairSet(r *relation.Relation) map[[2]int64]bool {
	set := make(map[[2]int64]bool, r.Len())
	for _, t := range r.Tuples() {
		set[[2]int64{t[0].(int64), t[1].(int64)}] = true
	}
	return set
}

var closureAlgorithms = []struct {
	name string
	fn   func(*relation.Relation) (*relation.Relation, Stats, error)
}{
	{"naive", NaiveClosure},
	{"seminaive", SemiNaiveClosure},
	{"smart", SmartClosure},
	{"warshall", WarshallClosure},
}

func TestClosureLine(t *testing.T) {
	// 1 -> 2 -> 3 -> 4: closure has 3+2+1 = 6 pairs.
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{3, 4, 1})
	for _, alg := range closureAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, st, err := alg.fn(r)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != 6 {
				t.Errorf("closure size = %d, want 6", got.Len())
			}
			if !pairSet(got)[[2]int64{1, 4}] {
				t.Error("missing pair 1->4")
			}
			if st.ResultTuples != 6 {
				t.Errorf("stats.ResultTuples = %d, want 6", st.ResultTuples)
			}
		})
	}
}

func TestClosureCycle(t *testing.T) {
	// 1 -> 2 -> 3 -> 1: every ordered pair (including self) is reachable.
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{3, 1, 1})
	for _, alg := range closureAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, _, err := alg.fn(r)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != 9 {
				t.Errorf("cycle closure size = %d, want 9", got.Len())
			}
			if !pairSet(got)[[2]int64{1, 1}] {
				t.Error("cycle should derive 1->1")
			}
		})
	}
}

func TestClosureEmptyAndErrors(t *testing.T) {
	for _, alg := range closureAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, _, err := alg.fn(relation.New("src", "dst", "cost"))
			if err != nil {
				t.Fatalf("empty relation: %v", err)
			}
			if got.Len() != 0 {
				t.Errorf("empty closure size = %d", got.Len())
			}
			if _, _, err := alg.fn(relation.New("a", "b")); err == nil {
				t.Error("arity-2 relation accepted")
			}
		})
	}
}

func TestWarshallRejectsNonIntNodes(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{"a", "b", 1.0})
	if _, _, err := WarshallClosure(r); err == nil {
		t.Error("string nodes accepted by Warshall")
	}
}

func TestSemiNaiveIterationsTrackDiameter(t *testing.T) {
	// The paper (§2.1): iterations to fixpoint = max diameter. A line of
	// n nodes has diameter n-1; semi-naive needs n-1 productive rounds
	// plus the final empty one is not counted.
	for _, n := range []int{2, 5, 9} {
		g := graph.New()
		for i := 0; i+1 < n; i++ {
			g.AddEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1})
		}
		_, st, err := SemiNaiveClosure(relation.FromGraph(g))
		if err != nil {
			t.Fatal(err)
		}
		if st.Iterations != n-1 {
			t.Errorf("line(%d): iterations = %d, want %d", n, st.Iterations, n-1)
		}
	}
}

func TestSmartIsLogarithmic(t *testing.T) {
	// Squaring should close a 16-node line in ~log2(15)+1 rounds, far
	// fewer than semi-naive's 15.
	g := graph.New()
	for i := 0; i < 15; i++ {
		g.AddEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1})
	}
	r := relation.FromGraph(g)
	_, smart, err := SmartClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	_, semi, err := SemiNaiveClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if smart.Iterations >= semi.Iterations {
		t.Errorf("smart iterations = %d, semi-naive = %d; smart should be fewer", smart.Iterations, semi.Iterations)
	}
	if smart.Iterations > 6 {
		t.Errorf("smart iterations = %d, want ≤ 6 for diameter 15", smart.Iterations)
	}
}

func TestReachableFrom(t *testing.T) {
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{10, 11, 1})
	got, _, err := ReachableFrom(r, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	set := pairSet(got)
	if len(set) != 2 || !set[[2]int64{1, 2}] || !set[[2]int64{1, 3}] {
		t.Errorf("ReachableFrom(1) = %v", set)
	}
}

func TestReachableFromEmptySources(t *testing.T) {
	r := rel([3]float64{1, 2, 1})
	got, st, err := ReachableFrom(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || st.Iterations != 0 {
		t.Errorf("empty sources: closure %d tuples, %d iterations", got.Len(), st.Iterations)
	}
}

func TestShortestClosureChoosesCheapPath(t *testing.T) {
	// 1->2->3 costs 2; direct 1->3 costs 5.
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{1, 3, 5})
	got, _, err := ShortestClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(3)}.Key()]; c != 2 {
		t.Errorf("cost(1,3) = %v, want 2", c)
	}
}

func TestShortestClosureCycleTerminates(t *testing.T) {
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 1, 1}, [3]float64{2, 3, 4})
	got, st, err := ShortestClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(1)}.Key()]; c != 2 {
		t.Errorf("cost(1,1) = %v, want 2 (round trip)", c)
	}
	if c := costs[relation.Tuple{int64(1), int64(3)}.Key()]; c != 5 {
		t.Errorf("cost(1,3) = %v, want 5", c)
	}
	if st.Iterations > 10 {
		t.Errorf("cycle fixpoint took %d iterations", st.Iterations)
	}
}

func TestShortestClosureRejectsNegative(t *testing.T) {
	r := rel([3]float64{1, 2, -1})
	if _, _, err := ShortestClosure(r); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestShortestClosureParallelEdges(t *testing.T) {
	r := rel([3]float64{1, 2, 7}, [3]float64{1, 2, 3})
	got, _, err := ShortestClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(2)}.Key()]; c != 3 {
		t.Errorf("parallel edges: cost = %v, want 3", c)
	}
}

func TestShortestFrom(t *testing.T) {
	r := rel([3]float64{1, 2, 2}, [3]float64{2, 3, 2}, [3]float64{9, 1, 1})
	got, _, err := ShortestFrom(r, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range got.Tuples() {
		if tup[0].(int64) != 1 {
			t.Errorf("ShortestFrom leaked tuple with src %v", tup[0])
		}
	}
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(3)}.Key()]; c != 4 {
		t.Errorf("cost(1,3) = %v, want 4", c)
	}
}

func TestFloydWarshallSmall(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	g.AddEdge(graph.Edge{From: 2, To: 3, Weight: 1})
	g.AddEdge(graph.Edge{From: 1, To: 3, Weight: 5})
	d := FloydWarshallCosts(g)
	if d[1][3] != 2 {
		t.Errorf("FW cost(1,3) = %v, want 2", d[1][3])
	}
	if d[1][1] != 0 {
		t.Errorf("FW cost(1,1) = %v, want 0", d[1][1])
	}
	if _, ok := d[3][1]; ok {
		t.Error("FW derived unreachable pair 3->1")
	}
}

func TestStatsAddMax(t *testing.T) {
	a := Stats{Iterations: 2, DerivedTuples: 10, ResultTuples: 5}
	b := Stats{Iterations: 3, DerivedTuples: 4, ResultTuples: 9}
	sum := a
	sum.Add(b)
	if sum.Iterations != 5 || sum.DerivedTuples != 14 || sum.ResultTuples != 14 {
		t.Errorf("Add = %+v", sum)
	}
	m := a
	m.Max(b)
	if m.Iterations != 3 || m.DerivedTuples != 10 || m.ResultTuples != 9 {
		t.Errorf("Max = %+v", m)
	}
}

// randomEdgeRelation builds a random directed graph's edge relation.
func randomEdgeRelation(rng *rand.Rand, n, m int) (*relation.Relation, *graph.Graph) {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), graph.Coord{})
	}
	for k := 0; k < m; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j && !g.HasEdge(graph.NodeID(i), graph.NodeID(j)) {
			g.AddEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(j), Weight: 1 + float64(rng.Intn(9))})
		}
	}
	return relation.FromGraph(g), g
}

// TestPropertyClosureAlgorithmsAgree: all four reachability algorithms
// must produce identical pair sets on random graphs.
func TestPropertyClosureAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		r, _ := randomEdgeRelation(rng, n, rng.Intn(3*n))
		ref, _, err := WarshallClosure(r)
		if err != nil {
			return false
		}
		want := pairSet(ref)
		for _, alg := range closureAlgorithms[:3] {
			got, _, err := alg.fn(r)
			if err != nil {
				return false
			}
			gs := pairSet(got)
			if len(gs) != len(want) {
				return false
			}
			for p := range gs {
				if !want[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShortestClosureMatchesDijkstra: the relational min-cost
// fixpoint must agree with graph Dijkstra for every pair.
func TestPropertyShortestClosureMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		r, g := randomEdgeRelation(rng, n, rng.Intn(3*n))
		got, _, err := ShortestClosure(r)
		if err != nil {
			return false
		}
		costs := indexCosts(got)
		for _, u := range g.Nodes() {
			dist, _ := g.ShortestPaths(u)
			for v, d := range dist {
				if u == v {
					continue // closure derives paths of length ≥ 1 only
				}
				c, ok := costs[relation.Tuple{int64(u), int64(v)}.Key()]
				if !ok || math.Abs(c-d) > 1e-9 {
					return false
				}
			}
		}
		// No spurious pairs.
		for _, tup := range got.Tuples() {
			u := graph.NodeID(tup[0].(int64))
			v := graph.NodeID(tup[1].(int64))
			if d := g.Distance(u, v); math.IsInf(d, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReachableFromIsClosureSlice: the source-restricted
// computation must equal the full closure filtered to those sources.
func TestPropertyReachableFromIsClosureSlice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		r, g := randomEdgeRelation(rng, n, rng.Intn(3*n))
		src := g.Nodes()[rng.Intn(g.NumNodes())]
		restricted, _, err := ReachableFrom(r, []graph.NodeID{src})
		if err != nil {
			return false
		}
		full, _, err := SemiNaiveClosure(r)
		if err != nil {
			return false
		}
		want := make(map[[2]int64]bool)
		for p := range pairSet(full) {
			if p[0] == int64(src) {
				want[p] = true
			}
		}
		got := pairSet(restricted)
		if len(got) != len(want) {
			return false
		}
		for p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGraphClosureWrapper(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	got, _, err := GraphClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("closure size = %d, want 1", got.Len())
	}
}

func TestCondensedClosureCycle(t *testing.T) {
	// 1 -> 2 -> 3 -> 1 plus tail 3 -> 4: cycle members reach everything
	// including themselves; 4 reaches nothing.
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{3, 1, 1}, [3]float64{3, 4, 1})
	got, st, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := SemiNaiveClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("condensed = %d tuples, semi-naive = %d", got.Len(), want.Len())
	}
	set := pairSet(got)
	if !set[[2]int64{1, 1}] || !set[[2]int64{1, 4}] {
		t.Errorf("missing expected pairs in %v", set)
	}
	if set[[2]int64{4, 4}] {
		t.Error("acyclic sink should not reach itself")
	}
	if st.ResultTuples != got.Len() {
		t.Errorf("stats.ResultTuples = %d", st.ResultTuples)
	}
}

func TestCondensedClosureSelfLoop(t *testing.T) {
	r := rel([3]float64{1, 1, 1}, [3]float64{1, 2, 1})
	got, _, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	set := pairSet(got)
	if !set[[2]int64{1, 1}] {
		t.Error("self loop should derive 1->1")
	}
	if set[[2]int64{2, 2}] {
		t.Error("2 has no self loop")
	}
}

func TestCondensedClosureErrors(t *testing.T) {
	if _, _, err := CondensedClosure(relation.New("a", "b")); err == nil {
		t.Error("arity-2 relation accepted")
	}
	empty, _, err := CondensedClosure(relation.New("src", "dst", "cost"))
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty = %v, %v", empty, err)
	}
}

// TestPropertyCondensedMatchesSemiNaive: SCC condensation must produce
// exactly the semi-naive closure on random cyclic graphs.
func TestPropertyCondensedMatchesSemiNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		r, _ := randomEdgeRelation(rng, n, rng.Intn(4*n))
		a, _, err := CondensedClosure(r)
		if err != nil {
			return false
		}
		b, _, err := SemiNaiveClosure(r)
		if err != nil {
			return false
		}
		sa, sb := pairSet(a), pairSet(b)
		if len(sa) != len(sb) {
			return false
		}
		for p := range sa {
			if !sb[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCondensedClosureDoesLessWorkOnCycles(t *testing.T) {
	// A single big cycle: the condensation collapses it to one node, so
	// the DAG fixpoint does almost nothing, while semi-naive derives
	// O(n²) tuples over O(n) rounds.
	var edges [][3]float64
	const n = 12
	for i := 0; i < n; i++ {
		edges = append(edges, [3]float64{float64(i), float64((i + 1) % n), 1})
	}
	r := rel(edges...)
	_, condensed, err := CondensedClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	_, semi, err := SemiNaiveClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if condensed.DerivedTuples >= semi.DerivedTuples {
		t.Errorf("condensed derived %d tuples, semi-naive %d; condensation should win on a cycle",
			condensed.DerivedTuples, semi.DerivedTuples)
	}
}

func TestNormalizeEdgesErrors(t *testing.T) {
	bad := relation.New("src", "dst", "cost")
	bad.MustInsert(relation.Tuple{int64(1), int64(2), "expensive"})
	if _, _, err := ShortestClosure(bad); err == nil {
		t.Error("non-numeric cost accepted")
	}
	if _, _, err := ShortestFrom(relation.New("a", "b"), []graph.NodeID{1}); err == nil {
		t.Error("arity-2 relation accepted by ShortestFrom")
	}
	if _, _, err := ReachableFrom(relation.New("a", "b"), []graph.NodeID{1}); err == nil {
		t.Error("arity-2 relation accepted by ReachableFrom")
	}
}

func TestShortestFromUnknownSource(t *testing.T) {
	r := rel([3]float64{1, 2, 1})
	got, _, err := ShortestFrom(r, []graph.NodeID{99})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("unknown source derived %d tuples", got.Len())
	}
}

func TestClosurePreservesOriginalRelation(t *testing.T) {
	// Algorithms must not mutate their input.
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1})
	before := r.Len()
	if _, _, err := SemiNaiveClosure(r); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShortestClosure(r); err != nil {
		t.Fatal(err)
	}
	if r.Len() != before {
		t.Errorf("input relation mutated: %d tuples, had %d", r.Len(), before)
	}
}
