package tc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/relation"
)

// assertSameCosts asserts that two (src, dst, cost) relations hold the
// same pair set with costs equal to within 1e-9 (equally cheap paths
// can sum their float weights in different orders).
func assertSameCosts(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	gc, wc := indexCosts(got), indexCosts(want)
	for k, w := range wc {
		g, ok := gc[k]
		if !ok {
			t.Errorf("%s: missing pair %q (want cost %v)", label, k, w)
			return
		}
		if math.Abs(g-w) > 1e-9 {
			t.Errorf("%s: pair %q cost %v, want %v", label, k, g, w)
			return
		}
	}
	for k := range gc {
		if _, ok := wc[k]; !ok {
			t.Errorf("%s: extra pair %q", label, k)
			return
		}
	}
}

// randomCostRelation builds a random weighted edge relation including
// self-loops, parallel edges and zero-weight edges.
func randomCostRelation(rng *rand.Rand, n, m int) *relation.Relation {
	r := relation.New("src", "dst", "cost")
	for k := 0; k < m; k++ {
		r.MustInsert(relation.Tuple{
			int64(rng.Intn(n)), int64(rng.Intn(n)), float64(rng.Intn(6)),
		})
	}
	return r
}

// TestDenseCostFromEquivalence is the engine-equivalence property for
// the cost kernel: on every corpus graph and random entry set
// (including absent sources), DenseCostFrom matches ShortestFrom.
func TestDenseCostFromEquivalence(t *testing.T) {
	for name, g := range corpusGraphs(t) {
		t.Run(name, func(t *testing.T) {
			r := relation.FromGraph(g)
			nodes := g.Nodes()
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 4; trial++ {
				k := 1 + rng.Intn(3)
				srcs := make([]graph.NodeID, 0, k+2)
				for i := 0; i < k; i++ {
					srcs = append(srcs, nodes[rng.Intn(len(nodes))])
				}
				srcs = append(srcs, srcs[0])                       // duplicate
				srcs = append(srcs, graph.NodeID(1_000_000+trial)) // absent
				want, _, err := ShortestFrom(r, srcs)
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := DenseCostFrom(r, srcs)
				if err != nil {
					t.Fatal(err)
				}
				assertSameCosts(t, "dense vs seminaive", got, want)
				if st.ResultTuples != got.Len() {
					t.Errorf("ResultTuples = %d, want %d", st.ResultTuples, got.Len())
				}
			}
		})
	}
}

// TestDenseCostClosureEquivalence: the full dense closure matches the
// relational min-cost fixpoint and the Floyd-Warshall oracle.
func TestDenseCostClosureEquivalence(t *testing.T) {
	for name, g := range corpusGraphs(t) {
		t.Run(name, func(t *testing.T) {
			r := relation.FromGraph(g)
			want, _, err := ShortestClosure(r)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := DenseCostClosure(r)
			if err != nil {
				t.Fatal(err)
			}
			assertSameCosts(t, "dense closure vs seminaive", got, want)
		})
	}
}

// TestPropertyDenseCostMatchesDijkstra: on random weighted graphs the
// dense kernel agrees with graph Dijkstra for every derived pair (the
// oracle that does not share the relational substrate).
func TestPropertyDenseCostMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		r, g := randomEdgeRelation(rng, n, rng.Intn(3*n))
		src := graph.NodeID(rng.Intn(n))
		got, _, err := DenseCostFrom(r, []graph.NodeID{src})
		if err != nil {
			return false
		}
		costs := indexCosts(got)
		dist, _ := g.ShortestPaths(src)
		for v, d := range dist {
			if v == src {
				continue // kernel derives paths of length ≥ 1 only
			}
			c, ok := costs[relation.Tuple{int64(src), int64(v)}.Key()]
			if !ok || math.Abs(c-d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDenseCostSelfLoopsAndZeroWeights: self-loops appear as src→src
// facts at their loop cost, zero-weight edges propagate and terminate.
func TestDenseCostSelfLoopsAndZeroWeights(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(1), 3.0}) // self loop
	r.MustInsert(relation.Tuple{int64(1), int64(2), 0.0}) // zero weight
	r.MustInsert(relation.Tuple{int64(2), int64(3), 0.0})
	r.MustInsert(relation.Tuple{int64(3), int64(2), 0.0}) // zero-weight cycle
	want, _, err := ShortestFrom(r, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DenseCostFrom(r, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCosts(t, "self-loop/zero-weight", got, want)
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(1)}.Key()]; c != 3.0 {
		t.Errorf("self-loop cost = %v, want 3", c)
	}
	if c := costs[relation.Tuple{int64(1), int64(3)}.Key()]; c != 0.0 {
		t.Errorf("zero-weight chain cost = %v, want 0", c)
	}
}

// TestDenseCostUnreachableEntrySet: sources absent from the relation,
// or present only as destinations, derive nothing.
func TestDenseCostUnreachableEntrySet(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0})
	got, st, err := DenseCostFrom(r, []graph.NodeID{2, 99})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("got %d facts from sink/absent entry set, want 0", got.Len())
	}
	if st.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0 for empty propagation", st.Iterations)
	}
}

// TestDenseCostValidation: the kernel rejects what normalizeEdges
// rejects, and falls back to the relational fixpoint on non-int64
// nodes.
func TestDenseCostValidation(t *testing.T) {
	bad := relation.New("a", "b")
	bad.MustInsert(relation.Tuple{int64(1), int64(2)})
	if _, _, err := DenseCostFrom(bad, nil); err == nil {
		t.Error("arity-2 relation accepted")
	}
	neg := relation.New("src", "dst", "cost")
	neg.MustInsert(relation.Tuple{int64(1), int64(2), -1.0})
	if _, _, err := DenseCostFrom(neg, []graph.NodeID{1}); err == nil {
		t.Error("negative cost accepted")
	}
	badCost := relation.New("src", "dst", "cost")
	badCost.MustInsert(relation.Tuple{int64(1), int64(2), int64(1)})
	if _, _, err := DenseCostFrom(badCost, []graph.NodeID{1}); err == nil {
		t.Error("non-float cost accepted")
	}

	strNodes := relation.New("src", "dst", "cost")
	strNodes.MustInsert(relation.Tuple{"a", "b", 1.0})
	strNodes.MustInsert(relation.Tuple{"b", "c", 2.0})
	if _, err := NewDenseGraph(strNodes); err != ErrNodesNotInt64 {
		t.Fatalf("NewDenseGraph on string nodes: %v, want ErrNodesNotInt64", err)
	}
	// The wrapper silently falls back; string sources cannot be
	// expressed as NodeIDs, so seed with none and check the closure
	// variant instead.
	got, _, err := DenseCostClosure(strNodes)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ShortestClosure(strNodes)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCosts(t, "string-node fallback", got, want)
}

// TestDenseCostVectorMatchesShortestPathsMulti: the vector-seeded
// single-row propagation (the pipelined primitive) matches the
// graph-backed multi-source Dijkstra, including seed nodes kept at
// their seed cost and ignored negative seeds.
func TestDenseCostVectorMatchesShortestPathsMulti(t *testing.T) {
	for name, g := range corpusGraphs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDenseGraph(relation.FromGraph(g))
			if err != nil {
				t.Fatal(err)
			}
			nodes := g.Nodes()
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 4; trial++ {
				seed := map[graph.NodeID]float64{
					nodes[rng.Intn(len(nodes))]: float64(rng.Intn(5)),
					nodes[rng.Intn(len(nodes))]: 0,
					graph.NodeID(2_000_000):     -1, // ignored: negative
				}
				want, _ := g.ShortestPathsMulti(seed)
				got := d.CostVector(seed)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d nodes, want %d", trial, len(got), len(want))
				}
				for v, c := range want {
					if math.Abs(got[v]-c) > 1e-9 {
						t.Errorf("trial %d: dist(%d) = %v, want %v", trial, v, got[v], c)
					}
				}
			}
		})
	}
}

// TestDenseGraphCounts: Nodes/Edges reflect the interned snapshot.
func TestDenseGraphCounts(t *testing.T) {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(1), int64(2), 1.0})
	r.MustInsert(relation.Tuple{int64(1), int64(2), 2.0}) // parallel edge kept
	r.MustInsert(relation.Tuple{int64(2), int64(3), 1.0})
	d, err := NewDenseGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != 3 || d.Edges() != 3 {
		t.Errorf("Nodes/Edges = %d/%d, want 3/3", d.Nodes(), d.Edges())
	}
	// Parallel edges collapse to the cheaper cost in results.
	got, _ := d.CostFrom([]graph.NodeID{1})
	costs := indexCosts(got)
	if c := costs[relation.Tuple{int64(1), int64(2)}.Key()]; c != 1.0 {
		t.Errorf("parallel edge min cost = %v, want 1", c)
	}
}

// TestDenseCostSingleNodeFragment: a single-node universe (one self
// loop) and an empty relation are handled without special cases.
func TestDenseCostSingleNodeFragment(t *testing.T) {
	empty := relation.New("src", "dst", "cost")
	got, st, err := DenseCostFrom(empty, []graph.NodeID{1})
	if err != nil || got.Len() != 0 || st.ResultTuples != 0 {
		t.Errorf("empty relation: got %d facts, err %v", got.Len(), err)
	}
	single := relation.New("src", "dst", "cost")
	single.MustInsert(relation.Tuple{int64(7), int64(7), 2.5})
	got, _, err = DenseCostFrom(single, []graph.NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	costs := indexCosts(got)
	if len(costs) != 1 || costs[relation.Tuple{int64(7), int64(7)}.Key()] != 2.5 {
		t.Errorf("single self-loop node: got %v", costs)
	}
}

// TestPropertyDenseRandomCostRelations hammers the kernel with random
// relations that include self-loops, duplicates and zero weights.
func TestPropertyDenseRandomCostRelations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		r := randomCostRelation(rng, n, rng.Intn(4*n))
		srcs := []graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
		want, _, err := ShortestFrom(r, srcs)
		if err != nil {
			return false
		}
		got, _, err := DenseCostFrom(r, srcs)
		if err != nil {
			return false
		}
		wc, gc := indexCosts(want), indexCosts(got)
		if len(wc) != len(gc) {
			return false
		}
		for k, w := range wc {
			g, ok := gc[k]
			if !ok || math.Abs(g-w) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzDenseCost cross-checks the dense cost kernel against the
// relational min-cost fixpoint on arbitrary small weighted edge lists:
// consecutive byte triples are (src, dst, cost) edges over a 16-node
// universe with costs in [0, 7].
func FuzzDenseCost(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 2})
	f.Add([]byte{1, 1, 0, 1, 2, 3, 2, 1, 0})
	f.Add([]byte{0, 1, 0, 1, 0, 0, 2, 3, 7})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := relation.New("src", "dst", "cost")
		for i := 0; i+2 < len(data); i += 3 {
			r.MustInsert(relation.Tuple{
				int64(data[i] % 16), int64(data[i+1] % 16), float64(data[i+2] % 8),
			})
		}
		var srcs []graph.NodeID
		if len(data) > 0 {
			srcs = append(srcs, graph.NodeID(data[0]%16))
		}
		if len(data) > 1 {
			srcs = append(srcs, graph.NodeID(data[1]%16))
		}
		want, _, err := ShortestFrom(r, srcs)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := DenseCostFrom(r, srcs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCosts(t, "dense vs seminaive", got, want)

		wantC, _, err := ShortestClosure(r)
		if err != nil {
			t.Fatal(err)
		}
		gotC, _, err := DenseCostClosure(r)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCosts(t, "dense closure vs seminaive", gotC, wantC)
	})
}
