package tc

import (
	"errors"
	"fmt"
)

// This file is the serialization seam of the dense kernel: the binary
// snapshot store (internal/store) persists a built DenseGraph as its
// raw CSR arrays and reconstructs it on load without re-interning the
// edge relation — the renumbering tables and adjacency are exactly the
// expensive part of NewDenseGraph that a cold start should not redo.

// CSR exposes the snapshot's raw arrays: the dense-index→node-id
// renumbering table, the row offsets (len(ids)+1), the edge targets and
// the parallel weights. The slices are owned by the DenseGraph and must
// not be modified; they are exactly the input DenseFromCSR accepts.
func (d *DenseGraph) CSR() (ids []int64, rowStart, colIdx []int32, weight []float64) {
	return d.ids, d.rowStart, d.colIdx, d.weight
}

// DenseFromCSR reconstructs a DenseGraph from raw CSR arrays, adopting
// the slices without copying (loaders alias them straight out of an
// mmap'd snapshot). Only the node-id→index map is rebuilt. The shape is
// fully validated — offsets monotone and in range, targets in range,
// weights non-negative, ids distinct — so a corrupt snapshot fails here
// instead of crashing a kernel later.
func DenseFromCSR(ids []int64, rowStart, colIdx []int32, weight []float64) (*DenseGraph, error) {
	n, e := len(ids), len(colIdx)
	if len(rowStart) != n+1 {
		return nil, fmt.Errorf("tc: csr: rowStart length %d, want %d", len(rowStart), n+1)
	}
	if len(weight) != e {
		return nil, fmt.Errorf("tc: csr: %d weights for %d edges", len(weight), e)
	}
	if rowStart[0] != 0 || int(rowStart[n]) != e {
		return nil, errors.New("tc: csr: row offsets do not span the edge array")
	}
	for i := 0; i < n; i++ {
		if rowStart[i] > rowStart[i+1] {
			return nil, fmt.Errorf("tc: csr: row offsets decrease at row %d", i)
		}
	}
	for k, v := range colIdx {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("tc: csr: edge %d targets out-of-range node %d", k, v)
		}
	}
	for k, w := range weight {
		if w < 0 {
			return nil, fmt.Errorf("tc: csr: %w: edge %d cost %v", ErrNegativeWeight, k, w)
		}
	}
	d := &DenseGraph{ids: ids, rowStart: rowStart, colIdx: colIdx, weight: weight,
		idx: make(map[int64]int32, n)}
	for i, id := range ids {
		if _, dup := d.idx[id]; dup {
			return nil, fmt.Errorf("tc: csr: duplicate node id %d", id)
		}
		d.idx[id] = int32(i)
	}
	return d, nil
}
