package tc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relation"
)

// corpusGraphs builds the generator corpus the engine-equivalence
// property is asserted over: grids (one big SCC), general and
// transportation graphs (symmetric, clustered), random directed graphs
// (cyclic condensations with non-trivial DAG structure), and the
// degenerate shapes.
func corpusGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	corpus := make(map[string]*graph.Graph)

	grid, err := gen.Grid(gen.GridConfig{Width: 8, Height: 8, DiagonalProb: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	corpus["grid-8x8"] = grid

	general, err := gen.General(gen.Defaults(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	corpus["general-40"] = general

	transport, err := gen.Transportation(gen.TransportConfig{
		Clusters: 3,
		Cluster:  gen.Defaults(12, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus["transport-3x12"] = transport

	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 20 + int(seed)*7
		for i := 0; i < 2*n; i++ {
			g.AddEdge(graph.Edge{
				From:   graph.NodeID(rng.Intn(n)),
				To:     graph.NodeID(rng.Intn(n)),
				Weight: 1,
			})
		}
		corpus[fmt.Sprintf("directed-%d", seed)] = g
	}

	line := graph.New()
	for i := 0; i < 10; i++ {
		line.AddEdge(graph.Edge{From: graph.NodeID(i), To: graph.NodeID(i + 1), Weight: 1})
	}
	corpus["line-10"] = line

	loops := graph.New()
	loops.AddEdge(graph.Edge{From: 1, To: 1, Weight: 1})
	loops.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	loops.AddEdge(graph.Edge{From: 2, To: 3, Weight: 1})
	loops.AddEdge(graph.Edge{From: 3, To: 2, Weight: 1})
	corpus["selfloop-cycle"] = loops

	return corpus
}

// TestBitsetClosureEquivalence is the engine-equivalence property:
// BitsetClosure, SemiNaiveClosure and CondensedClosure produce the same
// pair set on every corpus graph.
func TestBitsetClosureEquivalence(t *testing.T) {
	for name, g := range corpusGraphs(t) {
		t.Run(name, func(t *testing.T) {
			r := relation.FromGraph(g)
			want, _, err := CondensedClosure(r)
			if err != nil {
				t.Fatal(err)
			}
			sn, _, err := SemiNaiveClosure(r)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := BitsetClosure(r)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, "bitset vs condensed", got, want)
			assertSamePairs(t, "bitset vs seminaive", got, sn)
			if st.ResultTuples != got.Len() {
				t.Errorf("ResultTuples = %d, want %d", st.ResultTuples, got.Len())
			}
			if got.Len() > 0 && st.Iterations == 0 {
				t.Error("non-empty closure reported zero iterations")
			}
		})
	}
}

// TestBitsetReachableFromEquivalence asserts the entry-set-restricted
// kernel against the pushed-selection semi-naive fixpoint on random
// source sets, including sources absent from the graph.
func TestBitsetReachableFromEquivalence(t *testing.T) {
	for name, g := range corpusGraphs(t) {
		t.Run(name, func(t *testing.T) {
			r := relation.FromGraph(g)
			nodes := g.Nodes()
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 4; trial++ {
				k := 1 + rng.Intn(3)
				srcs := make([]graph.NodeID, 0, k+1)
				for i := 0; i < k; i++ {
					srcs = append(srcs, nodes[rng.Intn(len(nodes))])
				}
				srcs = append(srcs, graph.NodeID(1_000_000+trial)) // absent
				want, _, err := ReachableFrom(r, srcs)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := BitsetReachableFrom(r, srcs)
				if err != nil {
					t.Fatal(err)
				}
				assertSamePairs(t, fmt.Sprintf("sources %v", srcs), got, want)
			}
		})
	}
}

// TestBitsetReachableFromDuplicateSources: duplicate sources count
// once, matching ReachableFrom's set semantics (regression: duplicates
// used to emit duplicate tuples).
func TestBitsetReachableFromDuplicateSources(t *testing.T) {
	r := rel([3]float64{1, 2, 1}, [3]float64{2, 3, 1})
	srcs := []graph.NodeID{1, 1, 1}
	want, _, err := ReachableFrom(r, srcs)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := BitsetReachableFrom(r, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || want.Len() != 2 {
		t.Errorf("lens = %d (bitset), %d (seminaive), want 2", got.Len(), want.Len())
	}
	assertSamePairs(t, "duplicate sources", got, want)
}

// TestBitsetClosureEmpty checks the degenerate inputs.
func TestBitsetClosureEmpty(t *testing.T) {
	empty := relation.New("src", "dst", "cost")
	got, st, err := BitsetClosure(empty)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || st.ResultTuples != 0 {
		t.Errorf("empty closure = %d tuples, stats %+v", got.Len(), st)
	}
	if _, _, err := BitsetClosure(relation.New("a", "b")); err == nil {
		t.Error("arity-2 relation accepted")
	}
	gotR, _, err := BitsetReachableFrom(empty, []graph.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Len() != 0 {
		t.Errorf("empty restricted closure = %d tuples", gotR.Len())
	}
}

// TestBitsetClosureNonIntegerFallback checks the generic-fixpoint
// fallback for non-int64 node values.
func TestBitsetClosureNonIntegerFallback(t *testing.T) {
	r := relation.New("from", "to", "w")
	r.MustInsert(relation.Tuple{"a", "b", 1.0})
	r.MustInsert(relation.Tuple{"b", "c", 1.0})
	got, _, err := BitsetClosure(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("string-node closure = %d tuples, want 3", got.Len())
	}
	restricted, _, err := BitsetReachableFrom(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restricted.Len() != 0 {
		t.Errorf("restricted fallback with no sources = %d tuples, want 0", restricted.Len())
	}
}

// TestBitsetGraphClosure exercises the graph convenience wrapper.
func TestBitsetGraphClosure(t *testing.T) {
	g := graph.New()
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	g.AddEdge(graph.Edge{From: 2, To: 3, Weight: 1})
	got, _, err := BitsetGraphClosure(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("closure = %d tuples, want 3", got.Len())
	}
}

// assertSamePairs fails the test when two pair relations differ,
// reporting a few missing pairs from each side.
func assertSamePairs(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	gs, ws := pairSet(got), pairSet(want)
	for p := range ws {
		if !gs[p] {
			t.Errorf("%s: missing pair %v", label, p)
			return
		}
	}
	for p := range gs {
		if !ws[p] {
			t.Errorf("%s: extra pair %v", label, p)
			return
		}
	}
}

// FuzzBitsetClosure cross-checks the bitset kernel against the
// semi-naive fixpoint on arbitrary small edge lists: consecutive byte
// pairs are edges over a 16-node universe.
func FuzzBitsetClosure(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{1, 1, 1, 2, 2, 1})
	f.Add([]byte{0, 1, 1, 0, 2, 3, 3, 4, 4, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := relation.New("src", "dst", "cost")
		for i := 0; i+1 < len(data); i += 2 {
			r.MustInsert(relation.Tuple{int64(data[i] % 16), int64(data[i+1] % 16), 1.0})
		}
		want, _, err := SemiNaiveClosure(r)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := BitsetClosure(r)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, "bitset vs seminaive", got, want)
		if len(data) >= 2 {
			src := graph.NodeID(data[0] % 16)
			wantR, _, err := ReachableFrom(r, []graph.NodeID{src})
			if err != nil {
				t.Fatal(err)
			}
			gotR, _, err := BitsetReachableFrom(r, []graph.NodeID{src})
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, "restricted bitset vs seminaive", gotR, wantR)
		}
	})
}
