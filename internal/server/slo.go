package server

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SLOBudget is a committed latency/error budget for a load run — the
// contents of SLO.json, the contract the CI latency-slo gate enforces.
// Nil fields are unchecked, so a budget file can pin only the
// dimensions it cares about.
type SLOBudget struct {
	// ReadP99Ms bounds the read (query) p99 latency in milliseconds.
	ReadP99Ms *float64 `json:"read_p99_ms,omitempty"`
	// WriteP99Ms bounds the write (/v1/update transaction) p99 latency
	// in milliseconds.
	WriteP99Ms *float64 `json:"write_p99_ms,omitempty"`
	// ErrorRate bounds errors/requests (0 = no errors tolerated).
	ErrorRate *float64 `json:"error_rate,omitempty"`
}

// Empty reports whether no dimension is budgeted.
func (b SLOBudget) Empty() bool {
	return b.ReadP99Ms == nil && b.WriteP99Ms == nil && b.ErrorRate == nil
}

// LoadSLOBudget reads a budget file (SLO.json). Unknown keys are
// rejected so a typo in the committed budget cannot silently disable
// a gate.
func LoadSLOBudget(path string) (SLOBudget, error) {
	f, err := os.Open(path)
	if err != nil {
		return SLOBudget{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var b SLOBudget
	if err := dec.Decode(&b); err != nil {
		return SLOBudget{}, fmt.Errorf("server: slo: %s: %w", path, err)
	}
	return b, nil
}

// SLOReport is the machine-readable verdict of one load run against a
// budget: measured values, the budget they were held to, and one
// violation string per exceeded dimension. It is embedded in the
// tcload -json report and uploaded as the CI artifact.
type SLOReport struct {
	Budget SLOBudget `json:"budget"`
	// ReadP99Ms / WriteP99Ms / ErrorRate are the measured values
	// (client-observed latency, nearest-rank percentile).
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`
	ErrorRate  float64 `json:"error_rate"`
	// Violations lists every exceeded budget dimension; empty means the
	// run is within budget.
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// SLO evaluates the run against a budget.
func (r *LoadReport) SLO(b SLOBudget) *SLOReport {
	rep := &SLOReport{
		Budget:     b,
		ReadP99Ms:  float64(r.P99) / float64(time.Millisecond),
		WriteP99Ms: float64(r.WriteP99) / float64(time.Millisecond),
	}
	if r.Requests > 0 {
		rep.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if b.ReadP99Ms != nil && rep.ReadP99Ms > *b.ReadP99Ms {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("read p99 %.3fms exceeds budget %.3fms", rep.ReadP99Ms, *b.ReadP99Ms))
	}
	if b.WriteP99Ms != nil && rep.WriteP99Ms > *b.WriteP99Ms {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("write p99 %.3fms exceeds budget %.3fms", rep.WriteP99Ms, *b.WriteP99Ms))
	}
	if b.ErrorRate != nil && rep.ErrorRate > *b.ErrorRate {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("error rate %.5f exceeds budget %.5f", rep.ErrorRate, *b.ErrorRate))
	}
	rep.Pass = len(rep.Violations) == 0
	return rep
}
