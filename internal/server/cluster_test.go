package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dsa"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
	"repro/pkg/tcq"
)

// swapHandler is an http.Handler whose delegate is installed after the
// listener starts — the knot-tying a test cluster needs: peer URLs
// must exist before the coordinators (and so the servers) that answer
// on them can be built.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h := s.h.Load()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

// testCluster is an in-process multi-node deployment wired over real
// HTTP: every node an identical store, the ring sharding leg work.
type testCluster struct {
	servers []*Server
	https   []*httptest.Server
	ids     []string
}

// newTestCluster deploys n nodes over the same w×h grid fragmented
// into frags sites. mutate, when non-nil, edits each node's cluster
// config before New — the hook fault-injection tests use to swap in
// failing transports.
func newTestCluster(t *testing.T, w, h, frags, n int, mutate func(i int, cfg *cluster.Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var peers []cluster.Node
	var swaps []*swapHandler
	for i := 0; i < n; i++ {
		id := string(rune('a' + i))
		sw := &swapHandler{}
		hs := httptest.NewServer(sw)
		t.Cleanup(hs.Close)
		tc.ids = append(tc.ids, id)
		swaps = append(swaps, sw)
		tc.https = append(tc.https, hs)
		peers = append(peers, cluster.Node{ID: id, URL: hs.URL})
	}
	for i := 0; i < n; i++ {
		g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.15, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := tcq.NewDataset(res.Fragmentation, tcq.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.Config{NodeID: tc.ids[i], Peers: peers, Timeout: 10 * time.Second}
		if mutate != nil {
			mutate(i, &cfg)
		}
		coord, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewDataset(ds, Config{CacheCapacity: 256, Cluster: coord})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		handler := srv.Handler()
		swaps[i].h.Store(&handler)
		tc.servers = append(tc.servers, srv)
	}
	return tc
}

// TestClusterMatchesSingleNode is the tentpole's correctness property:
// a 3-node cluster sharding leg execution over real HTTP answers
// exactly what a single-node deployment answers, from every
// coordinator, including on cache-hitting replays.
func TestClusterMatchesSingleNode(t *testing.T) {
	tcl := newTestCluster(t, 8, 8, 8, 3, nil)
	ref, _ := newGridServer(t, 8, 8, 8, Config{CacheCapacity: 256})

	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 12; q++ {
		src := graph.NodeID(rng.Intn(64))
		dst := graph.NodeID(rng.Intn(64))
		want, _, err := ref.Query(src, dst, dsa.EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		for ni, srv := range tcl.servers {
			// Twice: the replay answers from caches (local and remote).
			for pass := 0; pass < 2; pass++ {
				got, _, err := srv.Query(src, dst, dsa.EngineDijkstra)
				if err != nil {
					t.Fatalf("node %s query %d->%d pass %d: %v", tcl.ids[ni], src, dst, pass, err)
				}
				if got.Reachable != want.Reachable {
					t.Errorf("node %s %d->%d pass %d: reachable %v, single-node %v",
						tcl.ids[ni], src, dst, pass, got.Reachable, want.Reachable)
				}
				if want.Reachable && math.Abs(got.Cost-want.Cost) > 1e-9 {
					t.Errorf("node %s %d->%d pass %d: cost %v, single-node %v",
						tcl.ids[ni], src, dst, pass, got.Cost, want.Cost)
				}
			}
		}
	}
}

// TestClusterPlacementExplain: a clustered /v1/query annotates its
// explain block with the per-site node placement, and the entries
// agree with the ring.
func TestClusterPlacementExplain(t *testing.T) {
	tcl := newTestCluster(t, 8, 8, 8, 3, nil)
	var vr V1QueryResponse
	status := postV1(t, tcl.https[0].URL+"/v1/query", V1Request{
		Sources: []int{0}, Targets: []int{63}, Mode: "cost", Engine: "dijkstra",
	}, &vr)
	if status != http.StatusOK {
		t.Fatalf("clustered /v1/query: status %d", status)
	}
	if len(vr.Explain.Placement) == 0 {
		t.Fatal("clustered /v1/query carried no placement explain")
	}
	coord := tcl.servers[0].cluster
	for _, p := range vr.Explain.Placement {
		if want := coord.Owner(p.Site).ID; p.Node != want {
			t.Errorf("placement says site %d on node %s, ring says %s", p.Site, p.Node, want)
		}
	}

	// Single-node deployments must not grow the field.
	ref, _ := newGridServer(t, 8, 8, 4, Config{})
	ts := httptest.NewServer(ref.Handler())
	defer ts.Close()
	var solo V1QueryResponse
	postV1(t, ts.URL+"/v1/query", V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost"}, &solo)
	if len(solo.Explain.Placement) != 0 {
		t.Errorf("single-node /v1/query reported placement %+v", solo.Explain.Placement)
	}
}

// TestClusterStats: /stats exposes the membership and the full routing
// table, identically on every node.
func TestClusterStats(t *testing.T) {
	tcl := newTestCluster(t, 6, 6, 4, 3, nil)
	var tables []map[string][]int
	for ni, srv := range tcl.servers {
		st := srv.Stats()
		if st.Cluster == nil {
			t.Fatalf("node %s /stats has no cluster block", tcl.ids[ni])
		}
		if st.Cluster.NodeID != tcl.ids[ni] {
			t.Errorf("node %s reports node_id %s", tcl.ids[ni], st.Cluster.NodeID)
		}
		if len(st.Cluster.Nodes) != 3 {
			t.Errorf("node %s reports %d members", tcl.ids[ni], len(st.Cluster.Nodes))
		}
		tables = append(tables, st.Cluster.Placement)
	}
	for ni, table := range tables[1:] {
		if fmt.Sprint(table) != fmt.Sprint(tables[0]) {
			t.Errorf("node %s placement %v differs from node a's %v", tcl.ids[ni+1], table, tables[0])
		}
	}
}

// TestClusterUpdateFanOut: a /v1/update against one node fans out to
// every peer with a coherent epoch swap, a remote owner rebuilds its
// fragment, and post-update answers stay equivalent to a single node
// that applied the same transaction.
func TestClusterUpdateFanOut(t *testing.T) {
	tcl := newTestCluster(t, 8, 8, 8, 3, nil)
	ref, _ := newGridServer(t, 8, 8, 8, Config{CacheCapacity: 256})

	// Pick a fragment the coordinator does NOT own: the update must
	// rebuild on a remote owner and still be visible everywhere.
	coord := tcl.servers[0].cluster
	frag := -1
	for s := 0; s < 8; s++ {
		if !coord.IsLocal(s) {
			frag = s
			break
		}
	}
	if frag < 0 {
		t.Fatal("ring assigned every site to node a")
	}

	// An edge inside the fragment: linear fragmentation over the 64-node
	// grid puts nodes [frag*8, frag*8+8) in fragment frag.
	from, to := frag*8, frag*8+1
	op := V1UpdateOp{Op: "insert", Fragment: frag, From: from, To: to, Weight: 0.25}
	var ur V1UpdateResponse
	status := postV1(t, tcl.https[0].URL+"/v1/update", V1UpdateRequest{Ops: []V1UpdateOp{op}}, &ur)
	if status != http.StatusOK {
		t.Fatalf("clustered /v1/update: status %d: %+v", status, ur)
	}
	if ur.Epoch != 1 || ur.Applied != 1 {
		t.Fatalf("update answered epoch %d applied %d, want 1/1", ur.Epoch, ur.Applied)
	}
	if len(ur.Cluster) != 2 {
		t.Fatalf("update acked by %d peers, want 2: %+v", len(ur.Cluster), ur.Cluster)
	}
	for _, ack := range ur.Cluster {
		if ack.Epoch != 1 {
			t.Errorf("peer %s acked epoch %d, want 1", ack.Node, ack.Epoch)
		}
	}
	for ni, srv := range tcl.servers {
		if got := srv.Dataset().Epoch(); got != 1 {
			t.Errorf("node %s at epoch %d after fan-out, want 1", tcl.ids[ni], got)
		}
	}

	// Reference applies the identical transaction; answers must match
	// from every coordinator — including pairs crossing the remotely
	// rebuilt fragment.
	if _, err := ref.InsertEdge(frag, graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: 0.25}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pairs := [][2]graph.NodeID{{graph.NodeID(from), graph.NodeID(to)}, {0, 63}}
	for q := 0; q < 8; q++ {
		pairs = append(pairs, [2]graph.NodeID{graph.NodeID(rng.Intn(64)), graph.NodeID(rng.Intn(64))})
	}
	for _, p := range pairs {
		want, _, err := ref.Query(p[0], p[1], dsa.EngineDijkstra)
		if err != nil {
			t.Fatal(err)
		}
		for ni, srv := range tcl.servers {
			got, _, err := srv.Query(p[0], p[1], dsa.EngineDijkstra)
			if err != nil {
				t.Fatalf("node %s query %d->%d post-update: %v", tcl.ids[ni], p[0], p[1], err)
			}
			if got.Reachable != want.Reachable || (want.Reachable && math.Abs(got.Cost-want.Cost) > 1e-9) {
				t.Errorf("node %s %d->%d post-update: (%v, %v), single-node (%v, %v)",
					tcl.ids[ni], p[0], p[1], got.Reachable, got.Cost, want.Reachable, want.Cost)
			}
		}
	}
}

// TestClusterForwardedLoopGuard: a request already marked forwarded is
// applied locally and not fanned out again — no acks, no loops.
func TestClusterForwardedLoopGuard(t *testing.T) {
	tcl := newTestCluster(t, 6, 6, 4, 2, nil)
	body, _ := json.Marshal(V1UpdateRequest{Ops: []V1UpdateOp{{Op: "insert", Fragment: 0, From: 0, To: 1, Weight: 9}}})
	req, _ := http.NewRequest(http.MethodPost, tcl.https[0].URL+"/v1/update", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ur V1UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(ur.Cluster) != 0 {
		t.Fatalf("forwarded update: status %d, acks %+v (want 200 and none)", resp.StatusCode, ur.Cluster)
	}
	if got := tcl.servers[0].Dataset().Epoch(); got != 1 {
		t.Errorf("forwarded update left node a at epoch %d, want 1", got)
	}
	if got := tcl.servers[1].Dataset().Epoch(); got != 0 {
		t.Errorf("forwarded update leaked to node b (epoch %d, want 0)", got)
	}
}

// TestV1LegEndpoint covers the peer endpoint's contract directly: a
// servable epoch answers facts, an unservable one answers 409
// epoch_skew, and malformed requests get typed 4xx refusals.
func TestV1LegEndpoint(t *testing.T) {
	tcl := newTestCluster(t, 6, 6, 4, 2, nil)
	url := tcl.https[0].URL + "/v1/leg"

	var leg cluster.LegResponse
	status := postV1(t, url, cluster.NewLegRequest(0, []graph.NodeID{0}, "dijkstra", 0), &leg)
	if status != http.StatusOK {
		t.Fatalf("/v1/leg at current epoch: status %d", status)
	}
	if leg.Epoch != 0 || len(leg.Src) == 0 {
		t.Errorf("/v1/leg answered epoch %d with %d facts", leg.Epoch, len(leg.Src))
	}
	if len(leg.Src) != len(leg.Dst) || len(leg.Src) != len(leg.Cost) {
		t.Errorf("/v1/leg columns of unequal length: %d/%d/%d", len(leg.Src), len(leg.Dst), len(leg.Cost))
	}

	var ve V1Error
	status = postV1(t, url, cluster.NewLegRequest(0, []graph.NodeID{0}, "dijkstra", 99), &ve)
	if status != http.StatusConflict || ve.Code != "epoch_skew" {
		t.Errorf("/v1/leg at future epoch: status %d code %q, want 409 epoch_skew", status, ve.Code)
	}

	status = postV1(t, url, cluster.NewLegRequest(0, nil, "warp", 0), &ve)
	if status != http.StatusBadRequest || ve.Code != "unknown_engine" {
		t.Errorf("/v1/leg bad engine: status %d code %q, want 400 unknown_engine", status, ve.Code)
	}

	status = postV1(t, url, cluster.NewLegRequest(77, []graph.NodeID{0}, "dijkstra", 0), &ve)
	if status != http.StatusNotFound || ve.Code != "unknown_site" {
		t.Errorf("/v1/leg bad site: status %d code %q, want 404 unknown_site", status, ve.Code)
	}

	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/v1/leg malformed body: status %d, want 400", resp.StatusCode)
	}
}

// faultTransport stands in for a peer with one scripted behaviour.
type faultTransport struct {
	err error                                          // non-nil: every RPC fails with it
	leg func(*cluster.LegRequest) *cluster.LegResponse // non-nil: scripted 200
}

func (f *faultTransport) ExecuteLeg(ctx context.Context, req *cluster.LegRequest) (*cluster.LegResponse, error) {
	if f.err != nil {
		return nil, f.err
	}
	return f.leg(req), nil
}

func (f *faultTransport) ForwardUpdate(ctx context.Context, req *cluster.UpdateRequest) (*cluster.UpdateAck, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &cluster.UpdateAck{}, nil
}

// emptyLeg is a syntactically valid scripted leg response.
func emptyLeg(epoch uint64) *cluster.LegResponse {
	return cluster.NewLegResponse(epoch, false, relation.New("src", "dst", "cost"), tc.Stats{})
}

// TestClusterFailureTaxonomy: protocol-level peer failures — the kinds
// degraded fallback must NOT mask — surface as their own typed tcq
// error through the whole stack: the library error satisfies
// errors.Is, and the HTTP surface answers the matching status and
// stable code. (Transport-level failures no longer surface on the read
// path at all: they fall back to local execution — see
// TestClusterDegradedFallback.)
func TestClusterFailureTaxonomy(t *testing.T) {
	cases := []struct {
		name       string
		transport  *faultTransport
		sentinel   error
		wantStatus int
		wantCode   string
	}{
		{"epoch skew", &faultTransport{leg: func(r *cluster.LegRequest) *cluster.LegResponse { return emptyLeg(r.Epoch + 5) }},
			tcq.ErrEpochSkew, http.StatusConflict, "epoch_skew"},
		{"malformed leg", &faultTransport{leg: func(r *cluster.LegRequest) *cluster.LegResponse {
			bad := emptyLeg(r.Epoch)
			bad.Src = []int64{1} // columns now unequal
			return bad
		}}, tcq.ErrBadPeerResponse, http.StatusBadGateway, "bad_peer_response"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tcl := newTestCluster(t, 8, 8, 8, 2, func(i int, cfg *cluster.Config) {
				cfg.NewTransport = func(cluster.Node) cluster.Transport { return tt.transport }
			})
			srv := tcl.servers[0]
			// Corner to corner crosses every fragment, so some leg lands
			// on the faulty peer whatever the ring dealt.
			_, _, err := srv.Query(0, 63, dsa.EngineDijkstra)
			if !errors.Is(err, tt.sentinel) {
				t.Fatalf("library error %v, want %v", err, tt.sentinel)
			}
			var ve V1Error
			status := postV1(t, tcl.https[0].URL+"/v1/query",
				V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost", Engine: "dijkstra"}, &ve)
			if status != tt.wantStatus || ve.Code != tt.wantCode {
				t.Errorf("HTTP surface: status %d code %q, want %d %q", status, ve.Code, tt.wantStatus, tt.wantCode)
			}
		})
	}
}

// TestClusterDegradedFallback: with a peer unreachable (down or timing
// out), queries whose legs route to it succeed anyway — the
// coordinator executes those legs locally against its own pinned
// snapshot — with the degradation fully visible: QueryStats and the
// /v1 placement explain name the fallback sites, the fallback counter
// advances, the breaker trips, and /readyz + /stats report degraded.
func TestClusterDegradedFallback(t *testing.T) {
	faults := []struct {
		name string
		err  error
	}{
		{"peer down", fmt.Errorf("dial: %w", cluster.ErrPeerDown)},
		{"peer timeout", fmt.Errorf("deadline: %w", cluster.ErrPeerTimeout)},
	}
	for _, tt := range faults {
		t.Run(tt.name, func(t *testing.T) {
			tcl := newTestCluster(t, 8, 8, 8, 2, func(i int, cfg *cluster.Config) {
				cfg.NewTransport = func(cluster.Node) cluster.Transport { return &faultTransport{err: tt.err} }
				cfg.Retry.Attempts = 1           // no retries: each failure is terminal
				cfg.Breaker.FailureThreshold = 1 // trip on the first failure
			})
			srv := tcl.servers[0]
			ref, _ := newGridServer(t, 8, 8, 8, Config{CacheCapacity: 256})

			// Corner to corner crosses every fragment; legs owned by the
			// dead peer must fall back and the answer must stay exact.
			want, _, err := ref.Query(0, 63, dsa.EngineDijkstra)
			if err != nil {
				t.Fatal(err)
			}
			got, qs, err := srv.Query(0, 63, dsa.EngineDijkstra)
			if err != nil {
				t.Fatalf("degraded query failed instead of falling back: %v", err)
			}
			if got.Reachable != want.Reachable || math.Abs(got.Cost-want.Cost) > 1e-9 {
				t.Errorf("degraded answer (%v, %v), single-node (%v, %v)",
					got.Reachable, got.Cost, want.Reachable, want.Cost)
			}
			if len(qs.FallbackSites) == 0 {
				t.Error("degraded query reported no fallback sites")
			}
			coord := srv.cluster
			for _, site := range qs.FallbackSites {
				if coord.IsLocal(site) {
					t.Errorf("locally owned site %d reported as fallback", site)
				}
			}

			// The /v1 surface: the query succeeds and its placement explain
			// marks exactly the remote sites as fallback.
			var vr V1QueryResponse
			status := postV1(t, tcl.https[0].URL+"/v1/query",
				V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost", Engine: "dijkstra"}, &vr)
			if status != http.StatusOK {
				t.Fatalf("degraded /v1/query: status %d", status)
			}
			sawFallback := false
			for _, p := range vr.Explain.Placement {
				if remote := !coord.IsLocal(p.Site); p.Fallback != remote {
					t.Errorf("placement site %d (remote %v) fallback %v", p.Site, remote, p.Fallback)
				}
				sawFallback = sawFallback || p.Fallback
			}
			if !sawFallback {
				t.Error("degraded /v1/query placement carried no fallback annotation")
			}

			// Degradation is observable: breaker open in /stats, readyz
			// degraded, fallback counter advanced.
			st := srv.Stats()
			if st.Cluster == nil || st.Cluster.Breakers["b"] != "open" {
				t.Errorf("stats breakers = %+v, want b open", st.Cluster.Breakers)
			}
			resp, err := http.Get(tcl.https[0].URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			var rz ReadyzResponse
			if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || rz.Status != "degraded" || rz.Breakers["b"] != "open" {
				t.Errorf("readyz = %d %+v, want 200 degraded with b open", resp.StatusCode, rz)
			}
			fallbacks := 0.0
			for k, v := range srv.metrics.reg.Snapshot() {
				if strings.HasPrefix(k, "tc_cluster_leg_fallback_total") {
					fallbacks += v
				}
			}
			if fallbacks == 0 {
				t.Error("tc_cluster_leg_fallback_total did not advance")
			}
		})
	}
}

// TestClusterUpdateNeverFallsBack: write fan-out keeps PR 7's
// single-shot coherence semantics — an unreachable peer fails the
// update with a typed 502, it is not retried and never "falls back"
// (that would silently diverge the membership).
func TestClusterUpdateNeverFallsBack(t *testing.T) {
	tcl := newTestCluster(t, 8, 8, 8, 2, func(i int, cfg *cluster.Config) {
		cfg.NewTransport = func(cluster.Node) cluster.Transport {
			return &faultTransport{err: fmt.Errorf("dial: %w", cluster.ErrPeerDown)}
		}
	})
	var ve V1Error
	status := postV1(t, tcl.https[0].URL+"/v1/update",
		V1UpdateRequest{Ops: []V1UpdateOp{{Op: "insert", Fragment: 0, From: 0, To: 1, Weight: 2}}}, &ve)
	if status != http.StatusBadGateway || ve.Code != "peer_down" {
		t.Errorf("update with dead peer: status %d code %q, want 502 peer_down", status, ve.Code)
	}
}

// TestReadyzSingleNode: without a cluster, readyz is a plain ok and
// carries no breaker table.
func TestReadyzSingleNode(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 4, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rz.Status != "ok" || len(rz.Breakers) != 0 {
		t.Errorf("single-node readyz = %d %+v, want 200 ok without breakers", resp.StatusCode, rz)
	}
}

// TestClusterConcurrentQueriesAndFanOut is the cluster race test:
// queries from every coordinator interleave with /v1/update fan-outs
// while the epoch history keeps superseded generations servable. A
// reader overtaken by more than the history depth may see a typed
// ErrEpochSkew; anything else is a bug, and most reads must succeed.
// Run with -race (CI always does).
func TestClusterConcurrentQueriesAndFanOut(t *testing.T) {
	tcl := newTestCluster(t, 6, 6, 4, 3, nil)
	const readers = 3
	const iters = 20
	var wg sync.WaitGroup
	var ok atomic.Int64

	for ni := range tcl.servers {
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ni)))
			for i := 0; i < iters; i++ {
				src := graph.NodeID(rng.Intn(36))
				dst := graph.NodeID(rng.Intn(36))
				_, _, err := tcl.servers[ni].Query(src, dst, dsa.EngineDijkstra)
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, tcq.ErrEpochSkew):
					// Tolerated: the writer lapped this reader's pinned epoch.
				default:
					t.Errorf("node %s reader: %v", tcl.ids[ni], err)
					return
				}
			}
		}(ni)
	}

	// One writer fanning updates out through the real HTTP path. The
	// deployment model is single-writer, so these are sequential.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			op := V1UpdateOp{Op: "insert", Fragment: 1, From: 9, To: 10, Weight: 1e9}
			if i%2 == 1 {
				op.Op = "delete"
			}
			var ur V1UpdateResponse
			status := postV1(t, tcl.https[0].URL+"/v1/update", V1UpdateRequest{Ops: []V1UpdateOp{op}}, &ur)
			if status != http.StatusOK {
				t.Errorf("writer: /v1/update %d: status %d", i, status)
				return
			}
			if len(ur.Cluster) != 2 {
				t.Errorf("writer: update %d acked by %d peers, want 2", i, len(ur.Cluster))
				return
			}
		}
	}()

	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no cluster read succeeded while updates fanned out")
	}
	for ni, srv := range tcl.servers {
		if got := srv.Dataset().Epoch(); got != 8 {
			t.Errorf("node %s finished at epoch %d, want 8", tcl.ids[ni], got)
		}
	}
	_ = readers
}
