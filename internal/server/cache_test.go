package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

func rel(n int) *relation.Relation {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(n), int64(n + 1), 1.0})
	return r
}

func TestLegCacheLRUEviction(t *testing.T) {
	c := newLegCache(2)
	c.put("a", 0, 0, rel(1), tc.Stats{})
	c.put("b", 0, 0, rel(2), tc.Stats{})
	// Touch a so b is the least recently used.
	if _, _, ok := c.get("a", 0); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 0, 0, rel(3), tc.Stats{})
	if _, _, ok := c.get("b", 0); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, _, ok := c.get("a", 0); !ok {
		t.Error("a should have survived")
	}
	if _, _, ok := c.get("c", 0); !ok {
		t.Error("c should be present")
	}
	s := c.snapshot()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

func TestLegCacheEpochMismatch(t *testing.T) {
	c := newLegCache(4)
	c.put("k", 0, 1, rel(1), tc.Stats{})
	if _, _, ok := c.get("k", 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	s := c.snapshot()
	if s.Expired != 1 {
		t.Errorf("expired = %d, want 1", s.Expired)
	}
	if s.Entries != 0 {
		t.Errorf("entries = %d, want 0 (stale entry dropped)", s.Entries)
	}
	// Refill under the new epoch works.
	c.put("k", 0, 2, rel(1), tc.Stats{})
	if _, _, ok := c.get("k", 2); !ok {
		t.Error("fresh entry missing")
	}
}

// TestLegCacheInvalidateSweep pins the eager per-fragment sweep: on an
// update swap, entries of rebuilt sites are dropped immediately while
// entries of structurally shared sites are retagged to the new epoch
// and keep serving — no stale entries lingering until LRU pressure,
// no warm entries lost to a blanket purge.
func TestLegCacheInvalidateSweep(t *testing.T) {
	c := newLegCache(8)
	c.put("a", 0, 0, rel(1), tc.Stats{}) // site 0: rebuilt below
	c.put("b", 1, 0, rel(2), tc.Stats{}) // site 1: shared below
	c.put("d", 2, 0, rel(3), tc.Stats{}) // site 2: shared below
	c.invalidate([]int{0}, 1)
	if _, _, ok := c.get("a", 1); ok {
		t.Error("rebuilt-site entry survived the sweep")
	}
	// Shared-site entries serve at the NEW epoch without recomputation.
	if _, _, ok := c.get("b", 1); !ok {
		t.Error("shared-site entry b lost its retagged epoch")
	}
	if _, _, ok := c.get("d", 1); !ok {
		t.Error("shared-site entry d lost its retagged epoch")
	}
	s := c.snapshot()
	if s.Invalidated != 1 || s.Retained != 2 || s.Sweeps != 1 {
		t.Errorf("invalidated = %d retained = %d sweeps = %d, want 1, 2, 1", s.Invalidated, s.Retained, s.Sweeps)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

// TestLegCacheInvalidateDropsLaggingPuts pins the staleness guard: an
// entry put by a query that was still running on an OLD pinned
// snapshot may predate intermediate rebuilds of its site, so a later
// sweep must drop it rather than retag it — even though its site is
// not in the current sweep's rebuilt list.
func TestLegCacheInvalidateDropsLaggingPuts(t *testing.T) {
	c := newLegCache(8)
	// Epoch 0→1 rebuilds site 3; the key is not cached yet.
	c.invalidate([]int{3}, 1)
	// A query pinned at epoch 0 finishes late and puts its (stale for
	// epoch ≥ 1) site-3 leg under epoch 0.
	c.put("lag", 3, 0, rel(1), tc.Stats{})
	// Epoch 1→2 touches only site 5. Site 3 is "shared" in THIS
	// transition, but the lagging entry predates the 0→1 rebuild.
	c.invalidate([]int{5}, 2)
	if _, _, ok := c.get("lag", 2); ok {
		t.Fatal("lagging old-epoch entry was revived as current — stale data served")
	}
	// A current-epoch entry put between swap and sweep survives as is.
	c.put("fresh", 5, 3, rel(2), tc.Stats{})
	c.invalidate([]int{1}, 3)
	if _, _, ok := c.get("fresh", 3); !ok {
		t.Fatal("entry computed on the new generation must survive its own sweep")
	}
}

func TestLegCacheDisabled(t *testing.T) {
	c := newLegCache(0)
	c.put("a", 0, 0, rel(1), tc.Stats{})
	if _, _, ok := c.get("a", 0); ok {
		t.Error("capacity-0 cache stored an entry")
	}
	s := c.snapshot()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("disabled cache counted lookups: %+v", s)
	}
}

func TestLegCacheHitRate(t *testing.T) {
	s := CacheStats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", got)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("empty hit rate = %v, want 0", got)
	}
}

func TestLegKeyIgnoresExit(t *testing.T) {
	a := legKey(3, []graph.NodeID{1, 2}, 0)
	b := legKey(3, []graph.NodeID{1, 2}, 0)
	if a != b {
		t.Errorf("same leg keys differ: %q vs %q", a, b)
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(3, []graph.NodeID{1, 2}, 1) {
		t.Error("engines share a key")
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(4, []graph.NodeID{1, 2}, 0) {
		t.Error("sites share a key")
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(3, []graph.NodeID{1, 22}, 0) {
		t.Error("entry sets share a key")
	}
	// The separator must keep (12) and (1,2) apart.
	if legKey(3, []graph.NodeID{12}, 0) == legKey(3, []graph.NodeID{1, 2}, 0) {
		t.Error("ambiguous entry-set rendering")
	}
}

// TestLegCacheSnapshotRace is the synchronization proof for the /stats
// and /metrics read path: snapshot() must return a copy taken under
// the cache lock while writers mutate the counters through get, put
// and invalidate. Run under -race this fails loudly if any stats field
// is ever read outside the lock.
func TestLegCacheSnapshotRace(t *testing.T) {
	c := newLegCache(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: misses, puts, hits, expirations, sweeps.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", (w*7+i)%12)
				epoch := uint64(i % 3)
				if _, _, ok := c.get(key, epoch); !ok {
					c.put(key, w, epoch, rel(i), tc.Stats{})
				}
				if i%50 == 0 {
					c.invalidate([]int{w}, epoch+1)
				}
			}
		}(w)
	}
	// Readers: concurrent snapshots; each must be internally consistent
	// enough to be a value copy (no torn map/slice state exists in
	// CacheStats — the race detector is the real assertion here).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := c.snapshot()
				if s.Entries > 8 {
					t.Errorf("snapshot entries %d exceed capacity 8", s.Entries)
					return
				}
			}
		}()
	}
	// Let the snapshot readers finish against live writers, then stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	<-done
}
