package server

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

func rel(n int) *relation.Relation {
	r := relation.New("src", "dst", "cost")
	r.MustInsert(relation.Tuple{int64(n), int64(n + 1), 1.0})
	return r
}

func TestLegCacheLRUEviction(t *testing.T) {
	c := newLegCache(2)
	c.put("a", 0, rel(1), tc.Stats{})
	c.put("b", 0, rel(2), tc.Stats{})
	// Touch a so b is the least recently used.
	if _, _, ok := c.get("a", 0); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 0, rel(3), tc.Stats{})
	if _, _, ok := c.get("b", 0); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, _, ok := c.get("a", 0); !ok {
		t.Error("a should have survived")
	}
	if _, _, ok := c.get("c", 0); !ok {
		t.Error("c should be present")
	}
	s := c.snapshot()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
}

func TestLegCacheEpochMismatch(t *testing.T) {
	c := newLegCache(4)
	c.put("k", 1, rel(1), tc.Stats{})
	if _, _, ok := c.get("k", 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	s := c.snapshot()
	if s.Expired != 1 {
		t.Errorf("expired = %d, want 1", s.Expired)
	}
	if s.Entries != 0 {
		t.Errorf("entries = %d, want 0 (stale entry dropped)", s.Entries)
	}
	// Refill under the new epoch works.
	c.put("k", 2, rel(1), tc.Stats{})
	if _, _, ok := c.get("k", 2); !ok {
		t.Error("fresh entry missing")
	}
}

func TestLegCachePurge(t *testing.T) {
	c := newLegCache(4)
	c.put("a", 0, rel(1), tc.Stats{})
	c.put("b", 0, rel(2), tc.Stats{})
	c.purge()
	if _, _, ok := c.get("a", 0); ok {
		t.Error("a survived purge")
	}
	s := c.snapshot()
	if s.Purges != 1 || s.Entries != 0 {
		t.Errorf("purges = %d entries = %d, want 1 and 0", s.Purges, s.Entries)
	}
}

func TestLegCacheDisabled(t *testing.T) {
	c := newLegCache(0)
	c.put("a", 0, rel(1), tc.Stats{})
	if _, _, ok := c.get("a", 0); ok {
		t.Error("capacity-0 cache stored an entry")
	}
	s := c.snapshot()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("disabled cache counted lookups: %+v", s)
	}
}

func TestLegCacheHitRate(t *testing.T) {
	s := CacheStats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", got)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("empty hit rate = %v, want 0", got)
	}
}

func TestLegKeyIgnoresExit(t *testing.T) {
	a := legKey(3, []graph.NodeID{1, 2}, 0)
	b := legKey(3, []graph.NodeID{1, 2}, 0)
	if a != b {
		t.Errorf("same leg keys differ: %q vs %q", a, b)
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(3, []graph.NodeID{1, 2}, 1) {
		t.Error("engines share a key")
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(4, []graph.NodeID{1, 2}, 0) {
		t.Error("sites share a key")
	}
	if legKey(3, []graph.NodeID{1, 2}, 0) == legKey(3, []graph.NodeID{1, 22}, 0) {
		t.Error("entry sets share a key")
	}
	// The separator must keep (12) and (1,2) apart.
	if legKey(3, []graph.NodeID{12}, 0) == legKey(3, []graph.NodeID{1, 2}, 0) {
		t.Error("ambiguous entry-set rendering")
	}
}
