package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dsa"
	"repro/pkg/tcq"
)

// This file is the serving layer's side of the cluster seam: the
// /v1/leg peer endpoint (serving legs to remote coordinators at their
// pinned epochs), the update fan-out glue, the epoch-history snapshot
// ring that keeps recently superseded generations servable, and the
// cluster views exported through /stats and Explain.

// epochHistoryDepth is how many recent generations a node keeps
// servable for peers. A coordinator pins its epoch at query start, so
// a leg RPC can lag the owner by however many batches landed since;
// eight generations covers any realistic in-flight window at smoke
// scale, and anything older answers with a typed epoch skew instead
// of wrong data.
const epochHistoryDepth = 8

// snapHistory is a bounded ring of recent snapshots keyed by epoch.
// The dataset only exposes the CURRENT generation; peers executing
// legs for queries pinned a few batches back need the superseded ones
// too, so the server retains them here (snapshots are immutable and
// cheap to hold — structurally shared with their successors).
type snapHistory struct {
	mu    sync.Mutex
	cap   int
	snaps []*tcq.Snapshot // oldest first
}

func newSnapHistory(capacity int) *snapHistory {
	return &snapHistory{cap: capacity}
}

// add retains a generation, evicting the oldest past the bound.
func (h *snapHistory) add(s *tcq.Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snaps = append(h.snaps, s)
	if len(h.snaps) > h.cap {
		h.snaps = h.snaps[len(h.snaps)-h.cap:]
	}
}

// at returns the retained generation with the exact epoch, nil if it
// was never seen or already evicted.
func (h *snapHistory) at(epoch uint64) *tcq.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.snaps) - 1; i >= 0; i-- {
		if h.snaps[i].Epoch() == epoch {
			return h.snaps[i]
		}
	}
	return nil
}

// snapshotAt resolves the generation a peer RPC pinned: the current
// snapshot fast path, then the history ring.
func (s *Server) snapshotAt(epoch uint64) *tcq.Snapshot {
	if snap := s.ds.Snapshot(); snap.Epoch() == epoch {
		return snap
	}
	return s.history.at(epoch)
}

// handleV1Leg serves POST /v1/leg — the internal peer endpoint of the
// cluster transport. The request names a (site, entry set, engine)
// computation and the epoch the remote coordinator pinned; the answer
// is the full leg fact relation (the paper's complementary-cost
// table) straight from this node's cache or kernels. An epoch this
// node cannot serve — older than the history window, or not yet
// applied here — answers 409 epoch_skew rather than facts from a
// different generation.
func (s *Server) handleV1Leg(w http.ResponseWriter, r *http.Request) {
	var req cluster.LegRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	engine, err := dsa.ParseEngine(req.Engine)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	snap := s.snapshotAt(req.Epoch)
	if snap == nil {
		writeV1Error(w, fmt.Errorf("server: %w: cannot serve epoch %d (current %d)",
			tcq.ErrEpochSkew, req.Epoch, s.ds.Epoch()))
		return
	}
	full, stats, hit, err := s.executeLegLocal(r.Context(), snap, req.Site, req.EntryNodes(), engine)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	if s.cluster != nil {
		s.cluster.LocalLeg()
	}
	s.siteLegs[req.Site].Add(1)
	writeJSON(w, http.StatusOK, cluster.NewLegResponse(req.Epoch, hit, full, stats))
}

// fanOutUpdate forwards one just-applied transaction to every peer and
// verifies the coherent epoch swap (see Coordinator.FanOutUpdate). A
// request already marked forwarded is a peer's fan-out — applied
// locally only, never re-forwarded (the loop guard).
func (s *Server) fanOutUpdate(r *http.Request, ops []cluster.UpdateOp, wantEpoch uint64) ([]cluster.PeerAck, error) {
	if s.cluster == nil || r.Header.Get(cluster.ForwardedHeader) != "" {
		return nil, nil
	}
	return s.cluster.FanOutUpdate(r.Context(), ops, wantEpoch)
}

// Placement implements tcq.PlacementReporter: the facade calls it to
// annotate each materialised result with the node that owned each
// involved site's legs. Single-node deployments report nothing.
func (s *Server) Placement(sites []int) []tcq.SitePlacement {
	if s.cluster == nil {
		return nil
	}
	out := make([]tcq.SitePlacement, len(sites))
	for i, site := range sites {
		out[i] = tcq.SitePlacement{Site: site, Node: s.cluster.Owner(site).ID}
	}
	return out
}

// ClusterStats is the /stats view of a multi-node deployment.
type ClusterStats struct {
	// NodeID is this node's identity in the membership.
	NodeID string `json:"node_id"`
	// Nodes is the full static membership, sorted by ID.
	Nodes []cluster.Node `json:"nodes"`
	// Placement maps node ID → sites owned (the full routing table;
	// identical on every member, derived from the same ring).
	Placement map[string][]int `json:"placement"`
	// Breakers maps each remote peer to its circuit-breaker state
	// (closed | half_open | open) as seen by this node.
	Breakers map[string]string `json:"breakers"`
}

// clusterStats builds the /stats cluster block (nil when single-node).
func (s *Server) clusterStats(sites int) *ClusterStats {
	if s.cluster == nil {
		return nil
	}
	return &ClusterStats{
		NodeID:    s.cluster.Self().ID,
		Nodes:     s.cluster.Nodes(),
		Placement: s.cluster.Placement(sites),
		Breakers:  s.cluster.BreakerStates(),
	}
}
