package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// TestConcurrentQueriesAndUpdates is the race-detector stress test for
// the serving layer: pooled cost queries, connectivity queries on every
// engine, pipelined queries and edge inserts/deletes all interleave on
// one server. It guards the epoch-tagged cache, the eager per-fragment
// invalidation sweep and the lock-free snapshot-pinning read path
// around the copy-on-write store swap — run with -race (CI always
// does).
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	srv, st := newGridServer(t, 6, 6, 3, Config{CacheCapacity: 128, SiteWorkers: 2})
	nodes := st.Fragmentation().Base().NumNodes()
	const iters = 25
	var wg sync.WaitGroup

	// Two pooled cost-query workers (dijkstra and seminaive).
	for w, engine := range []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive} {
		wg.Add(1)
		go func(w int, engine dsa.Engine) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				src := graph.NodeID(rng.Intn(nodes))
				dst := graph.NodeID(rng.Intn(nodes))
				if _, _, err := srv.Query(src, dst, engine); err != nil {
					t.Errorf("query worker %d: %v", w, err)
					return
				}
			}
		}(w, engine)
	}

	// A connectivity worker on the bitset engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < iters; i++ {
			src := graph.NodeID(rng.Intn(nodes))
			dst := graph.NodeID(rng.Intn(nodes))
			got, _, err := srv.Connected(src, dst, dsa.EngineBitset)
			if err != nil {
				t.Errorf("connected worker: %v", err)
				return
			}
			// The grid stays connected through every update below.
			if !got {
				t.Errorf("connected(%d, %d) = false on a connected grid", src, dst)
				return
			}
		}
	}()

	// A pipelined-query worker (the uncached library path, same lock).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < iters; i++ {
			src := graph.NodeID(rng.Intn(nodes))
			dst := graph.NodeID(rng.Intn(nodes))
			engine := dsa.EngineDijkstra
			if i%2 == 1 {
				engine = dsa.EngineDense
			}
			if _, err := srv.QueryPipelined(src, dst, engine); err != nil {
				t.Errorf("pipelined worker: %v", err)
				return
			}
		}
	}()

	// An updater inserting and deleting the same shortcut, forcing
	// epoch bumps and eager cache sweeps while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := graph.Edge{From: 0, To: 14, Weight: 0.5}
		for i := 0; i < 4; i++ {
			if _, err := srv.InsertEdge(0, e); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if _, err := srv.DeleteEdge(0, e); err != nil {
				t.Errorf("delete %d: %v", i, err)
				return
			}
		}
	}()

	// A transactional writer applying multi-op batches through the
	// dataset — the /v1/update path — concurrently with the per-op
	// legacy updater above (writers serialise on the dataset's gate).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			var b tcq.Batch
			b.Insert(1, 6, 20, 0.75).Delete(1, 6, 20, 0.75)
			if _, err := srv.ApplyBatch(context.Background(), &b); err != nil {
				t.Errorf("batch %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()

	// The server must still answer correctly after the storm.
	res, _, err := srv.Query(0, graph.NodeID(nodes-1), dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Error("grid corners unreachable after stress")
	}
	if st := srv.Stats(); st.Updates != 12 {
		t.Errorf("updates = %d, want 12", st.Updates)
	}
}
