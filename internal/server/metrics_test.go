package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// scrape pulls GET /metrics off the handler and parses the exposition
// text — a malformed exporter fails here before it fails in CI.
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	samples, err := metrics.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return samples
}

// post fires one JSON request at the handler and returns the status.
func post(t *testing.T, h http.Handler, path, body string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec.Code
}

// TestMetricsEndpoint drives queries, an error, and an update through
// the HTTP surface and checks the exported series: the acceptance
// criterion's ≥10 distinct series, the per-endpoint counters, the
// engine/mode latency histograms, and the cache + epoch movement
// across a write.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newGridServer(t, 8, 8, 4, Config{CacheCapacity: 256})
	h := srv.Handler()

	before := scrape(t, h)
	// The registry must expose the full catalog even before traffic.
	for _, name := range []string{
		"tc_inflight_requests",
		"tc_legcache_entries",
		"tc_legcache_hits_total",
		"tc_legcache_misses_total",
		"tc_legcache_evictions_total",
		"tc_legcache_expired_total",
		"tc_legcache_invalidated_total",
		"tc_legcache_retained_total",
		"tc_legcache_sweeps_total",
		"tc_epoch",
		"tc_epoch_swaps_total",
		"tc_fragments_rebuilt_total",
		"tc_fragments_shared_total",
		"tc_update_ops_applied_total",
		"tc_recomputed_sets_total",
		"tc_global_search_runs_total",
		"tc_apply_duration_seconds_count",
		"tc_uptime_seconds",
	} {
		if _, ok := before[name]; !ok {
			t.Errorf("metrics catalog missing %s before traffic", name)
		}
	}
	if len(before) < 10 {
		t.Fatalf("only %d series exported, acceptance wants >= 10", len(before))
	}

	// Traffic: two cost queries (same pair — the second hits the leg
	// cache), one connectivity query, one bad request.
	for i := 0; i < 2; i++ {
		if code := post(t, h, "/v1/query", `{"sources":[0],"targets":[63],"mode":"cost"}`); code != http.StatusOK {
			t.Fatalf("/v1/query: status %d", code)
		}
	}
	if code := post(t, h, "/v1/query", `{"sources":[0],"targets":[63],"mode":"connectivity"}`); code != http.StatusOK {
		t.Fatalf("/v1/query connectivity: status %d", code)
	}
	if code := post(t, h, "/v1/query", `{"sources":[0],"targets":[63],"engine":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("bad engine: status %d, want 400", code)
	}

	after := scrape(t, h)
	if got := after[`tc_http_requests_total{endpoint="/v1/query"}`] - before[`tc_http_requests_total{endpoint="/v1/query"}`]; got != 4 {
		t.Errorf("request counter advanced by %v, want 4", got)
	}
	if got := after[`tc_http_errors_total{endpoint="/v1/query"}`] - before[`tc_http_errors_total{endpoint="/v1/query"}`]; got != 1 {
		t.Errorf("error counter advanced by %v, want 1", got)
	}
	// The planner resolved a concrete engine; exactly three pair
	// executions must have been observed across the mode labels.
	var observed float64
	for k, v := range after {
		if strings.HasPrefix(k, "tc_query_duration_seconds_count{") {
			observed += v
		}
	}
	if observed != 3 {
		t.Errorf("query latency histogram observed %v pairs, want 3", observed)
	}
	for k := range after {
		if strings.Contains(k, `engine="auto"`) {
			t.Errorf("latency histogram labeled with unresolved engine: %s", k)
		}
	}
	if after["tc_legcache_hits_total"] <= before["tc_legcache_hits_total"] {
		t.Errorf("cache hits did not advance (repeat query should hit)")
	}
	if after["tc_legcache_misses_total"] <= before["tc_legcache_misses_total"] {
		t.Errorf("cache misses did not advance")
	}

	// A write: epoch swap, apply histogram, fragment rebuild/share
	// counters and the cache sweep all move; with 4 fragments and a
	// fragment-0 edge, at least one site is rebuilt and the warm
	// entries on other sites are retained or invalidated.
	if code := post(t, h, "/v1/update",
		`{"ops":[{"op":"insert","fragment":0,"from":0,"to":1,"weight":9}]}`); code != http.StatusOK {
		t.Fatalf("/v1/update: status %d", code)
	}
	final := scrape(t, h)
	if final["tc_epoch_swaps_total"] != after["tc_epoch_swaps_total"]+1 {
		t.Errorf("epoch swaps = %v, want +1", final["tc_epoch_swaps_total"])
	}
	if final["tc_epoch"] != after["tc_epoch"]+1 {
		t.Errorf("tc_epoch = %v, want %v", final["tc_epoch"], after["tc_epoch"]+1)
	}
	if final["tc_apply_duration_seconds_count"] != 1 {
		t.Errorf("apply histogram count = %v, want 1", final["tc_apply_duration_seconds_count"])
	}
	if final["tc_fragments_rebuilt_total"] < 1 {
		t.Errorf("fragments rebuilt = %v, want >= 1", final["tc_fragments_rebuilt_total"])
	}
	if final["tc_legcache_sweeps_total"] != after["tc_legcache_sweeps_total"]+1 {
		t.Errorf("cache sweeps = %v, want +1", final["tc_legcache_sweeps_total"])
	}
	moved := final["tc_legcache_invalidated_total"] - after["tc_legcache_invalidated_total"] +
		final["tc_legcache_retained_total"] - after["tc_legcache_retained_total"]
	if moved <= 0 {
		t.Errorf("neither invalidated nor retained advanced across the update (inv %v->%v, ret %v->%v)",
			after["tc_legcache_invalidated_total"], final["tc_legcache_invalidated_total"],
			after["tc_legcache_retained_total"], final["tc_legcache_retained_total"])
	}
	if final["tc_update_ops_applied_total"] != 1 {
		t.Errorf("ops applied = %v, want 1", final["tc_update_ops_applied_total"])
	}
}

// TestStatsEmbedsMetrics: /stats carries the flattened registry
// snapshot, so one poll sees both the legacy counters and the
// Prometheus series.
func TestStatsEmbedsMetrics(t *testing.T) {
	srv, _ := newGridServer(t, 4, 4, 2, Config{CacheCapacity: 16})
	if code := post(t, srv.Handler(), "/v1/query", `{"sources":[0],"targets":[15],"mode":"cost"}`); code != http.StatusOK {
		t.Fatalf("/v1/query: status %d", code)
	}
	st := srv.Stats()
	if len(st.Metrics) < 10 {
		t.Fatalf("/stats metrics snapshot has %d series, want >= 10", len(st.Metrics))
	}
	if _, ok := st.Metrics["tc_legcache_hits_total"]; !ok {
		t.Errorf("stats metrics missing tc_legcache_hits_total: %v", st.Metrics)
	}
}

// TestMetricsConcurrentScrape races scrapes against query and update
// traffic — the -race proof that the registry, the cache collectors
// and the /stats snapshot are safe against the hot path.
func TestMetricsConcurrentScrape(t *testing.T) {
	srv, _ := newGridServer(t, 8, 8, 4, Config{CacheCapacity: 64})
	h := srv.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch w {
				case 0:
					post(t, h, "/v1/query", `{"sources":[0],"targets":[63],"mode":"cost"}`)
				case 1:
					post(t, h, "/v1/update",
						`{"ops":[{"op":"insert","fragment":0,"from":0,"to":1,"weight":1e9},{"op":"delete","fragment":0,"from":0,"to":1,"weight":1e9}]}`)
				case 2:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				case 3:
					_ = srv.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := metrics.ParseText(strings.NewReader(scrapeRaw(t, h))); err != nil {
		t.Fatalf("final scrape unparseable: %v", err)
	}
}

// scrapeRaw returns the raw exposition text.
func scrapeRaw(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}
