// Package server is the long-lived query-serving layer over a tcq
// dataset: persistent per-site worker pools (the paper's processors,
// kept alive across queries), a bounded LRU leg-result cache that
// memoizes the expensive half of leg execution across queries, and an
// HTTP/JSON API. It turns the one-shot library pipeline into the
// serving system the ROADMAP's "heavy traffic" north star asks for:
// many concurrent queries interleave their per-site legs exactly the
// way the paper's sites would interleave independent subqueries.
//
// Concurrency model: reads are lock-free — every query pins the
// immutable store generation current when it starts (one atomic
// pointer load through tcq.Dataset) and runs on it to completion.
// Updates build the next generation copy-on-write off to the side
// (only the touched fragments are re-preprocessed) and swap the
// pointer, so writers never block readers and vice versa. On every
// swap the leg cache is invalidated eagerly per changed fragment:
// entries computed on rebuilt sites are dropped, entries on
// structurally shared sites are retagged to the new epoch and keep
// serving. Cache entries remain epoch-tagged, making staleness
// impossible even if an invalidation were missed.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
	"repro/pkg/tcq"
)

// Config tunes a Server.
type Config struct {
	// DefaultEngine answers legacy requests that do not select an
	// engine. tcq.EngineAuto (the zero value) delegates per-request
	// engine choice to the facade's planner — the recommended setting.
	DefaultEngine tcq.Engine
	// CacheCapacity bounds the leg-result cache in entries; 0 disables
	// memoization.
	CacheCapacity int
	// SiteWorkers is the number of worker goroutines per site (default
	// 1: each site serialises its legs like a single-processor site).
	SiteWorkers int
	// Cluster enables multi-node scatter-gather: legs of sites the
	// coordinator assigns to peers execute remotely over its transport,
	// and /v1/update transactions fan out to every peer with a coherent
	// epoch swap. nil (the default) keeps every site local.
	Cluster *cluster.Coordinator
}

// Server is a live deployment: a dataset, its worker pools and the
// leg-result cache.
type Server struct {
	ds          *tcq.Dataset
	cache       *legCache
	pools       *sitePools
	cfg         Config
	facade      *tcq.Client
	unsubscribe func()
	start       time.Time
	metrics     *serverMetrics
	cluster     *cluster.Coordinator
	history     *snapHistory

	queries    atomic.Uint64
	connected  atomic.Uint64
	pipelined  atomic.Uint64
	updates    atomic.Uint64
	errors     atomic.Uint64
	siteLegs   []atomic.Uint64
	siteBusyNS []atomic.Int64
}

// New deploys a server over a built store, wrapping it in a dataset.
func New(st *dsa.Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("server: nil store") //tcvet:ignore typederr constructor misuse guard; fails startup, never crosses the wire
	}
	ds, err := tcq.OpenDataset(st)
	if err != nil {
		return nil, err
	}
	return NewDataset(ds, cfg)
}

// NewDataset deploys a server over a dataset — the write-capable
// facade handle. The server registers an OnApply subscriber for eager
// per-fragment cache invalidation, so batches applied through ANY
// holder of the dataset (the server's endpoints, a library caller)
// keep the leg cache coherent.
func NewDataset(ds *tcq.Dataset, cfg Config) (*Server, error) {
	if ds == nil {
		return nil, fmt.Errorf("server: nil dataset") //tcvet:ignore typederr constructor misuse guard; fails startup, never crosses the wire
	}
	if !cfg.DefaultEngine.Valid() {
		return nil, fmt.Errorf("server: %w %d", dsa.ErrUnknownEngine, int(cfg.DefaultEngine))
	}
	if cfg.SiteWorkers < 1 {
		cfg.SiteWorkers = 1
	}
	n := ds.Snapshot().Stats().Sites
	s := &Server{
		ds:         ds,
		cache:      newLegCache(cfg.CacheCapacity),
		pools:      newSitePools(n, cfg.SiteWorkers),
		cfg:        cfg,
		start:      time.Now(),
		siteLegs:   make([]atomic.Uint64, n),
		siteBusyNS: make([]atomic.Int64, n),
		cluster:    cfg.Cluster,
		history:    newSnapHistory(epochHistoryDepth),
	}
	s.history.add(ds.Snapshot())
	s.metrics = newServerMetrics(s)
	if s.cluster != nil {
		s.cluster.Register(s.metrics.reg)
	}
	// The server is the facade's runner: every tcq query — the /v1 API,
	// or a library caller holding Facade() — executes through the
	// pooled, leg-cached path below.
	facade, err := ds.Open(tcq.WithRunner(s))
	if err != nil {
		return nil, err
	}
	s.facade = facade
	// Every applied batch invalidates eagerly per changed fragment:
	// entries for rebuilt sites are dropped, entries for structurally
	// shared sites are retagged to the new epoch and keep serving.
	s.unsubscribe = ds.OnApply(func(r tcq.ApplyResult) {
		s.cache.invalidate(r.Stats.SitesRebuilt, r.Epoch)
		// Retain the new generation for peers still gathering legs at
		// recent epochs (the callback runs under the writer gate, so
		// Snapshot() is exactly the generation r announces).
		s.history.add(s.ds.Snapshot())
		s.updates.Add(1)
		s.metrics.observeApply(r)
	})
	return s, nil
}

// Facade returns the server-backed tcq client: the public facade whose
// queries run through the server's worker pools and leg cache.
func (s *Server) Facade() *tcq.Client { return s.facade }

// Dataset returns the deployment's write handle (Apply, Snapshot).
func (s *Server) Dataset() *tcq.Dataset { return s.ds }

// RunPair implements tcq.Runner: it is how the facade executes one
// planned (source, target) pair on this server, against the snapshot
// the request pinned. The engine is already concrete (the facade's
// planner resolved auto), so the pair maps directly onto the pooled
// executor — or the store's pipelined walk for ModePipelined, which is
// vector-seeded and therefore uncacheable.
func (s *Server) RunPair(ctx context.Context, snap *tcq.Snapshot, source, target graph.NodeID, engine dsa.Engine, mode tcq.Mode) (*dsa.Result, tcq.RunStats, error) {
	start := time.Now()
	if mode == tcq.ModePipelined {
		res, err := s.queryPipelinedOn(ctx, snap, source, target, engine)
		if err == nil {
			s.metrics.observeQuery(engine.String(), mode, time.Since(start))
		}
		return res, tcq.RunStats{}, err
	}
	res, qs, err := s.runCtx(ctx, snap, source, target, engine, mode == tcq.ModeCost)
	if err != nil {
		s.errors.Add(1)
		return nil, tcq.RunStats{}, err
	}
	if mode == tcq.ModeCost {
		s.queries.Add(1)
	} else {
		s.connected.Add(1)
	}
	s.metrics.observeQuery(engine.String(), mode, time.Since(start))
	return res, tcq.RunStats{CacheHits: qs.CacheHits, CacheMisses: qs.CacheMisses, FallbackSites: qs.FallbackSites}, nil
}

// Close stops the worker pools and detaches the server from its
// dataset (the OnApply subscription would otherwise keep the server
// and its cache alive and swept for the dataset's lifetime). The
// server must not be used afterwards; the dataset remains usable.
func (s *Server) Close() {
	s.unsubscribe()
	s.pools.close()
}

// DefaultEngine returns the engine used when a legacy request names
// none (tcq.EngineAuto = the planner decides).
func (s *Server) DefaultEngine() tcq.Engine { return s.cfg.DefaultEngine }

// QueryStats reports the cache behaviour of one query.
type QueryStats struct {
	// CacheHits and CacheMisses count this query's leg lookups.
	CacheHits, CacheMisses int
	// FallbackSites lists remote-owned sites whose legs this node
	// executed locally in degraded mode (owner unreachable). Empty on
	// healthy clusters and single-node deployments.
	FallbackSites []int
}

// Query answers a shortest-path query through the pools and the cache.
// It mirrors dsa.Store.Query's refusals: reachability stores and the
// connectivity-only bitset engine cannot answer cost queries.
func (s *Server) Query(source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, QueryStats, error) {
	res, qs, err := s.runCtx(context.Background(), s.ds.Snapshot(), source, target, engine, true)
	if err != nil {
		s.errors.Add(1)
		return nil, qs, err
	}
	s.queries.Add(1)
	return res, qs, nil
}

// Connected answers the reachability query through the pools and the
// cache; it accepts every engine on every store, like dsa.Connected.
func (s *Server) Connected(source, target graph.NodeID, engine dsa.Engine) (bool, QueryStats, error) {
	res, qs, err := s.runCtx(context.Background(), s.ds.Snapshot(), source, target, engine, false)
	if err != nil {
		s.errors.Add(1)
		return false, qs, err
	}
	s.connected.Add(1)
	return res.Reachable, qs, nil
}

// QueryPipelined passes a pipelined-evaluation query through the
// serving layer (no leg cache: pipelined legs are seeded with the
// running cost vector, so they are query-specific). The engine must
// support vector-seeded evaluation: dsa.EngineDijkstra or
// dsa.EngineDense.
func (s *Server) QueryPipelined(source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	return s.QueryPipelinedCtx(context.Background(), source, target, engine)
}

// QueryPipelinedCtx is QueryPipelined with cancellation threaded into
// the chain walk.
func (s *Server) QueryPipelinedCtx(ctx context.Context, source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	return s.queryPipelinedOn(ctx, s.ds.Snapshot(), source, target, engine)
}

// queryPipelinedOn runs the pipelined chain walk on one pinned
// snapshot.
func (s *Server) queryPipelinedOn(ctx context.Context, snap *tcq.Snapshot, source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	res, err := snap.Store().QueryPipelinedEngineCtx(ctx, source, target, engine)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.pipelined.Add(1)
	return res, nil
}

// runCtx is the pooled, cache-aware, cancellation-aware executor
// behind every non-pipelined query, running entirely on the snapshot
// the request pinned — concurrent batch applies swap the dataset
// underneath without disturbing it. costQuery marks shortest-path
// queries, which reachability stores and the connectivity-only bitset
// engine refuse (mirroring dsa.Query, with the same typed errors).
// Leg tasks observe ctx both before executing (a canceled query's
// queued legs become no-ops) and inside the kernels.
func (s *Server) runCtx(ctx context.Context, snap *tcq.Snapshot, source, target graph.NodeID, engine dsa.Engine, costQuery bool) (*dsa.Result, QueryStats, error) {
	if !dsa.ValidEngine(engine) {
		return nil, QueryStats{}, fmt.Errorf("server: %w %d", dsa.ErrUnknownEngine, int(engine))
	}
	st := snap.Store()
	if costQuery {
		if st.Problem() != dsa.ProblemShortestPath {
			return nil, QueryStats{}, fmt.Errorf("server: %w: store precomputed for reachability cannot answer cost queries", dsa.ErrProblemMismatch)
		}
		if engine == dsa.EngineBitset {
			return nil, QueryStats{}, fmt.Errorf("server: %w: engine bitset computes connectivity only; use Connected", dsa.ErrEngineMismatch)
		}
	}
	start := time.Now()
	plan, err := st.NewPlan(source, target)
	if err != nil {
		return nil, QueryStats{}, err
	}
	res, done := st.PlanResult(plan)
	if done {
		res.Elapsed = time.Since(start)
		return res, QueryStats{}, nil
	}

	// Phase 1: every locally owned leg becomes one task on its site's
	// persistent worker queue; the cache intercepts the (site, entry,
	// engine) computation and the exit selection specialises it per
	// leg. In cluster deployments, legs of remotely owned sites are
	// shipped to their owners instead (scatter), each on its own
	// goroutine — they are I/O-bound waits, and the owner serialises
	// the actual work on ITS site pool. Both kinds land in the same
	// results slice, so the assembly phase (gather) is oblivious to
	// where a leg ran.
	epoch := snap.Epoch()
	results := make([]*dsa.LegResult, len(plan.Legs))
	errs := make([]error, len(plan.Legs))
	var hits, misses atomic.Int64
	var fallbackMu sync.Mutex
	var fallbackSites []int
	var wg sync.WaitGroup
	finishLeg := func(i int, leg dsa.Leg, t0 time.Time, full *relation.Relation, stats tc.Stats, hit bool) {
		if hit {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		filtered, filterErr := dsa.FilterLegFacts(full, leg)
		if filterErr != nil {
			errs[i] = filterErr
			return
		}
		stats.ResultTuples = filtered.Len()
		took := time.Since(t0)
		results[i] = &dsa.LegResult{Leg: leg, Rel: filtered, Stats: stats, Took: took}
		s.siteLegs[leg.SiteID].Add(1)
		s.siteBusyNS[leg.SiteID].Add(int64(took))
	}
	for i := range plan.Legs {
		leg := plan.Legs[i]
		wg.Add(1)
		if s.cluster != nil && !s.cluster.IsLocal(leg.SiteID) {
			go func() {
				defer wg.Done()
				if err := ctx.Err(); err != nil {
					errs[i] = fmt.Errorf("server: %w (%w)", dsa.ErrCanceled, context.Cause(ctx))
					return
				}
				t0 := time.Now()
				full, stats, hit, err := s.cluster.ExecuteLeg(ctx, leg.SiteID, leg.Entry, engine.String(), epoch)
				if err != nil {
					// Degraded mode: the owner is unreachable (down,
					// timed out, or its breaker is open), but every node
					// builds the identical store — so run the leg here,
					// against the same pinned snapshot, and answer
					// correctly instead of failing the query. Protocol
					// errors (epoch skew, bad response) are NOT eligible:
					// falling back would mask incoherence.
					if !cluster.FallbackEligible(err) {
						errs[i] = err
						return
					}
					full, stats, hit, err = s.executeLegLocal(ctx, snap, leg.SiteID, leg.Entry, engine)
					if err != nil {
						errs[i] = err
						return
					}
					s.cluster.FallbackLeg(leg.SiteID)
					fallbackMu.Lock()
					fallbackSites = append(fallbackSites, leg.SiteID)
					fallbackMu.Unlock()
				}
				// hit reports the OWNER's cache verdict — remote hits
				// count as hits here so the hit rate reflects work
				// actually saved cluster-wide.
				finishLeg(i, leg, t0, full, stats, hit)
			}()
			continue
		}
		s.pools.submit(leg.SiteID, func() {
			defer wg.Done()
			// A canceled query's queued legs become no-ops instead of
			// occupying the site's workers.
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("server: %w (%w)", dsa.ErrCanceled, context.Cause(ctx))
				return
			}
			t0 := time.Now()
			full, stats, hit, execErr := s.executeLegLocal(ctx, snap, leg.SiteID, leg.Entry, engine)
			if execErr != nil {
				errs[i] = execErr
				return
			}
			if s.cluster != nil {
				s.cluster.LocalLeg()
			}
			finishLeg(i, leg, t0, full, stats, hit)
		})
	}
	wg.Wait()
	qs := QueryStats{CacheHits: int(hits.Load()), CacheMisses: int(misses.Load()), FallbackSites: fallbackSites}
	for _, err := range errs {
		if err != nil {
			return nil, qs, err
		}
	}

	// Phase 2: accounting + assembly, the same epilogue as the library
	// path.
	if err := st.FinishPlan(plan, results, res); err != nil {
		return nil, qs, err
	}
	res.Elapsed = time.Since(start)
	return res, qs, nil
}

// executeLegLocal runs the memoizable half of one leg on this node:
// cache lookup keyed (site, entry, engine) at the snapshot's epoch,
// kernel execution on miss. It is shared by the pooled executor and
// the /v1/leg peer endpoint, so remote and local traffic for a site
// fill and hit the same cache entries.
func (s *Server) executeLegLocal(ctx context.Context, snap *tcq.Snapshot, siteID int, entry []graph.NodeID, engine dsa.Engine) (*relation.Relation, tc.Stats, bool, error) {
	epoch := snap.Epoch()
	key := legKey(siteID, entry, engine)
	if full, stats, ok := s.cache.get(key, epoch); ok {
		return full, stats, true, nil
	}
	full, stats, err := snap.Store().ExecuteLegFullCtx(ctx, siteID, entry, engine)
	if err != nil {
		return nil, tc.Stats{}, false, err
	}
	s.cache.put(key, siteID, epoch, full, stats)
	return full, stats, false, nil
}

// ApplyBatch applies a transactional batch of edge operations through
// the dataset: atomic validation, copy-on-write rebuild of the touched
// fragments, pointer swap, eager cache invalidation — in-flight
// queries keep answering on the snapshots they pinned.
func (s *Server) ApplyBatch(ctx context.Context, b *tcq.Batch) (tcq.ApplyResult, error) {
	res, err := s.ds.Apply(ctx, b)
	if err != nil {
		s.errors.Add(1)
		return res, err
	}
	return res, nil
}

// InsertEdge applies an edge insertion as a single-op batch — the
// legacy per-op entry point, kept for the unversioned /update shim.
func (s *Server) InsertEdge(fragID int, e graph.Edge) (dsa.UpdateStats, error) {
	return s.applyOne(tcq.Insert(fragID, int(e.From), int(e.To), e.Weight))
}

// DeleteEdge applies an edge deletion as a single-op batch — the
// legacy per-op entry point, kept for the unversioned /update shim.
func (s *Server) DeleteEdge(fragID int, e graph.Edge) (dsa.UpdateStats, error) {
	return s.applyOne(tcq.Delete(fragID, int(e.From), int(e.To), e.Weight))
}

// applyOne routes one op through the facade's single-op path (which
// unwraps the batch envelope to the op's own typed error).
func (s *Server) applyOne(op tcq.Op) (dsa.UpdateStats, error) {
	var stats tcq.UpdateStats
	var err error
	if op.Kind == tcq.OpInsert {
		stats, err = s.facade.InsertEdge(op.Fragment, op.From, op.To, op.Weight)
	} else {
		stats, err = s.facade.DeleteEdge(op.Fragment, op.From, op.To, op.Weight)
	}
	if err != nil {
		s.errors.Add(1)
	}
	return stats, err
}

// SiteStats is one site's serving-time work.
type SiteStats struct {
	// Legs is the number of leg tasks the site's workers executed.
	Legs uint64 `json:"legs"`
	// BusyNS is the cumulative wall-clock nanoseconds those tasks took.
	BusyNS int64 `json:"busy_ns"`
}

// Stats is the server-wide counter snapshot served at /stats.
type Stats struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Epoch            uint64  `json:"epoch"`
	Nodes            int     `json:"nodes"`
	Sites            int     `json:"sites"`
	LooselyConnected bool    `json:"loosely_connected"`
	Problem          string  `json:"problem"`
	DefaultEngine    string  `json:"default_engine"`

	Queries          uint64 `json:"queries"`
	ConnectedQueries uint64 `json:"connected_queries"`
	PipelinedQueries uint64 `json:"pipelined_queries"`
	Updates          uint64 `json:"updates"`
	Errors           uint64 `json:"errors"`

	Cache CacheStats  `json:"cache"`
	Site  []SiteStats `json:"sites_work"`

	// Cluster describes this node's view of the multi-node deployment:
	// its identity, the membership and the site→node routing table.
	// Absent on single-node deployments.
	Cluster *ClusterStats `json:"cluster,omitempty"`

	// Metrics is the flattened sample snapshot of the Prometheus
	// registry (name{labels} -> value) — the same numbers GET /metrics
	// exposes, embedded so /stats consumers need no second scrape.
	Metrics map[string]float64 `json:"metrics"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	snap := s.ds.Snapshot()
	ss := snap.Stats()
	st := Stats{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Epoch:            snap.Epoch(),
		Nodes:            ss.TotalNodes,
		Sites:            ss.Sites,
		LooselyConnected: ss.LooselyConnected,
		Problem:          ss.Problem.String(),
		DefaultEngine:    s.cfg.DefaultEngine.String(),
	}
	st.Queries = s.queries.Load()
	st.ConnectedQueries = s.connected.Load()
	st.PipelinedQueries = s.pipelined.Load()
	st.Updates = s.updates.Load()
	st.Errors = s.errors.Load()
	st.Cache = s.cache.snapshot()
	st.Site = make([]SiteStats, len(s.siteLegs))
	for i := range s.siteLegs {
		st.Site[i] = SiteStats{Legs: s.siteLegs[i].Load(), BusyNS: s.siteBusyNS[i].Load()}
	}
	st.Cluster = s.clusterStats(ss.Sites)
	st.Metrics = s.metrics.reg.Snapshot()
	return st
}
