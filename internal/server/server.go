// Package server is the long-lived query-serving layer over a
// dsa.Store: persistent per-site worker pools (the paper's processors,
// kept alive across queries), a bounded LRU leg-result cache that
// memoizes the expensive half of leg execution across queries, and an
// HTTP/JSON API. It turns the one-shot library pipeline into the
// serving system the ROADMAP's "heavy traffic" north star asks for:
// many concurrent queries interleave their per-site legs exactly the
// way the paper's sites would interleave independent subqueries.
//
// Concurrency model: queries hold a read lock for their whole
// plan-execute-assemble span; updates (InsertEdge/DeleteEdge) hold the
// write lock, so they serialise against in-flight queries, then bump
// the store epoch and purge the cache. Cache entries are epoch-tagged,
// making staleness impossible even if a purge were missed.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// Config tunes a Server.
type Config struct {
	// DefaultEngine answers legacy requests that do not select an
	// engine. tcq.EngineAuto (the zero value) delegates per-request
	// engine choice to the facade's planner — the recommended setting.
	DefaultEngine tcq.Engine
	// CacheCapacity bounds the leg-result cache in entries; 0 disables
	// memoization.
	CacheCapacity int
	// SiteWorkers is the number of worker goroutines per site (default
	// 1: each site serialises its legs like a single-processor site).
	SiteWorkers int
}

// Server is a live deployment: a store, its worker pools and the
// leg-result cache.
type Server struct {
	// mu guards st: queries and stats take the read side, updates the
	// write side (dsa updates rebuild the store in place).
	mu     sync.RWMutex
	st     *dsa.Store
	cache  *legCache
	pools  *sitePools
	cfg    Config
	facade *tcq.Client
	start  time.Time

	queries    atomic.Uint64
	connected  atomic.Uint64
	pipelined  atomic.Uint64
	updates    atomic.Uint64
	errors     atomic.Uint64
	siteLegs   []atomic.Uint64
	siteBusyNS []atomic.Int64
}

// New deploys a server over a built store.
func New(st *dsa.Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if !cfg.DefaultEngine.Valid() {
		return nil, fmt.Errorf("server: %w %d", dsa.ErrUnknownEngine, int(cfg.DefaultEngine))
	}
	if cfg.SiteWorkers < 1 {
		cfg.SiteWorkers = 1
	}
	n := len(st.Sites())
	s := &Server{
		st:         st,
		cache:      newLegCache(cfg.CacheCapacity),
		pools:      newSitePools(n, cfg.SiteWorkers),
		cfg:        cfg,
		start:      time.Now(),
		siteLegs:   make([]atomic.Uint64, n),
		siteBusyNS: make([]atomic.Int64, n),
	}
	// The server is the facade's runner: every tcq query — the /v1 API,
	// or a library caller holding Facade() — executes through the
	// pooled, leg-cached path below.
	facade, err := tcq.Open(st, tcq.WithRunner(s))
	if err != nil {
		return nil, err
	}
	s.facade = facade
	return s, nil
}

// Facade returns the server-backed tcq client: the public facade whose
// queries run through the server's worker pools and leg cache.
func (s *Server) Facade() *tcq.Client { return s.facade }

// RunPair implements tcq.Runner: it is how the facade executes one
// planned (source, target) pair on this server. The engine is already
// concrete (the facade's planner resolved auto), so the pair maps
// directly onto the pooled executor — or the store's pipelined walk
// for ModePipelined, which is vector-seeded and therefore uncacheable.
func (s *Server) RunPair(ctx context.Context, source, target graph.NodeID, engine dsa.Engine, mode tcq.Mode) (*dsa.Result, tcq.RunStats, error) {
	if mode == tcq.ModePipelined {
		res, err := s.QueryPipelinedCtx(ctx, source, target, engine)
		return res, tcq.RunStats{}, err
	}
	res, qs, err := s.runCtx(ctx, source, target, engine, mode == tcq.ModeCost)
	if err != nil {
		s.errors.Add(1)
		return nil, tcq.RunStats{}, err
	}
	if mode == tcq.ModeCost {
		s.queries.Add(1)
	} else {
		s.connected.Add(1)
	}
	return res, tcq.RunStats{CacheHits: qs.CacheHits, CacheMisses: qs.CacheMisses}, nil
}

// Close stops the worker pools. The server must not be used afterwards.
func (s *Server) Close() { s.pools.close() }

// DefaultEngine returns the engine used when a legacy request names
// none (tcq.EngineAuto = the planner decides).
func (s *Server) DefaultEngine() tcq.Engine { return s.cfg.DefaultEngine }

// QueryStats reports the cache behaviour of one query.
type QueryStats struct {
	// CacheHits and CacheMisses count this query's leg lookups.
	CacheHits, CacheMisses int
}

// Query answers a shortest-path query through the pools and the cache.
// It mirrors dsa.Store.Query's refusals: reachability stores and the
// connectivity-only bitset engine cannot answer cost queries.
func (s *Server) Query(source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, QueryStats, error) {
	res, qs, err := s.run(source, target, engine, true)
	if err != nil {
		s.errors.Add(1)
		return nil, qs, err
	}
	s.queries.Add(1)
	return res, qs, nil
}

// Connected answers the reachability query through the pools and the
// cache; it accepts every engine on every store, like dsa.Connected.
func (s *Server) Connected(source, target graph.NodeID, engine dsa.Engine) (bool, QueryStats, error) {
	res, qs, err := s.run(source, target, engine, false)
	if err != nil {
		s.errors.Add(1)
		return false, qs, err
	}
	s.connected.Add(1)
	return res.Reachable, qs, nil
}

// QueryPipelined passes a pipelined-evaluation query through the
// serving layer's locking (no leg cache: pipelined legs are seeded
// with the running cost vector, so they are query-specific). The
// engine must support vector-seeded evaluation: dsa.EngineDijkstra or
// dsa.EngineDense.
func (s *Server) QueryPipelined(source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	return s.QueryPipelinedCtx(context.Background(), source, target, engine)
}

// QueryPipelinedCtx is QueryPipelined with cancellation threaded into
// the chain walk.
func (s *Server) QueryPipelinedCtx(ctx context.Context, source, target graph.NodeID, engine dsa.Engine) (*dsa.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, err := s.st.QueryPipelinedEngineCtx(ctx, source, target, engine)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.pipelined.Add(1)
	return res, nil
}

// run is the pooled, cache-aware counterpart of dsa.Store.RunPlan.
func (s *Server) run(source, target graph.NodeID, engine dsa.Engine, costQuery bool) (*dsa.Result, QueryStats, error) {
	return s.runCtx(context.Background(), source, target, engine, costQuery)
}

// runCtx is the pooled, cache-aware, cancellation-aware executor
// behind every non-pipelined query. costQuery marks shortest-path
// queries, which reachability stores and the connectivity-only bitset
// engine refuse (mirroring dsa.Query, with the same typed errors).
// Leg tasks observe ctx both before executing (a canceled query's
// queued legs become no-ops) and inside the kernels.
func (s *Server) runCtx(ctx context.Context, source, target graph.NodeID, engine dsa.Engine, costQuery bool) (*dsa.Result, QueryStats, error) {
	if !dsa.ValidEngine(engine) {
		return nil, QueryStats{}, fmt.Errorf("server: %w %d", dsa.ErrUnknownEngine, int(engine))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if costQuery {
		if s.st.Problem() != dsa.ProblemShortestPath {
			return nil, QueryStats{}, fmt.Errorf("server: %w: store precomputed for reachability cannot answer cost queries", dsa.ErrProblemMismatch)
		}
		if engine == dsa.EngineBitset {
			return nil, QueryStats{}, fmt.Errorf("server: %w: engine bitset computes connectivity only; use Connected", dsa.ErrEngineMismatch)
		}
	}
	start := time.Now()
	plan, err := s.st.NewPlan(source, target)
	if err != nil {
		return nil, QueryStats{}, err
	}
	res, done := s.st.PlanResult(plan)
	if done {
		res.Elapsed = time.Since(start)
		return res, QueryStats{}, nil
	}

	// Phase 1: every leg becomes one task on its site's persistent
	// worker queue; the cache intercepts the (site, entry, engine)
	// computation and the exit selection specialises it per leg.
	epoch := s.st.Epoch()
	results := make([]*dsa.LegResult, len(plan.Legs))
	errs := make([]error, len(plan.Legs))
	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	for i := range plan.Legs {
		leg := plan.Legs[i]
		wg.Add(1)
		s.pools.submit(leg.SiteID, func() {
			defer wg.Done()
			// A canceled query's queued legs become no-ops instead of
			// occupying the site's workers.
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("server: %w (%w)", dsa.ErrCanceled, context.Cause(ctx))
				return
			}
			t0 := time.Now()
			key := legKey(leg.SiteID, leg.Entry, engine)
			full, stats, ok := s.cache.get(key, epoch)
			if ok {
				hits.Add(1)
			} else {
				misses.Add(1)
				var execErr error
				full, stats, execErr = s.st.ExecuteLegFullCtx(ctx, leg.SiteID, leg.Entry, engine)
				if execErr != nil {
					errs[i] = execErr
					return
				}
				s.cache.put(key, epoch, full, stats)
			}
			filtered, filterErr := dsa.FilterLegFacts(full, leg)
			if filterErr != nil {
				errs[i] = filterErr
				return
			}
			stats.ResultTuples = filtered.Len()
			took := time.Since(t0)
			results[i] = &dsa.LegResult{Leg: leg, Rel: filtered, Stats: stats, Took: took}
			s.siteLegs[leg.SiteID].Add(1)
			s.siteBusyNS[leg.SiteID].Add(int64(took))
		})
	}
	wg.Wait()
	qs := QueryStats{CacheHits: int(hits.Load()), CacheMisses: int(misses.Load())}
	for _, err := range errs {
		if err != nil {
			return nil, qs, err
		}
	}

	// Phase 2: accounting + assembly, the same epilogue as the library
	// path.
	if err := s.st.FinishPlan(plan, results, res); err != nil {
		return nil, qs, err
	}
	res.Elapsed = time.Since(start)
	return res, qs, nil
}

// InsertEdge applies an edge insertion under the write lock, advancing
// the store epoch and purging the leg cache.
func (s *Server) InsertEdge(fragID int, e graph.Edge) (dsa.UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats, err := s.st.InsertEdge(fragID, e)
	if err != nil {
		s.errors.Add(1)
		return stats, err
	}
	s.cache.purge()
	s.updates.Add(1)
	s.refreshFacade()
	return stats, nil
}

// DeleteEdge applies an edge deletion under the write lock, advancing
// the store epoch and purging the leg cache.
func (s *Server) DeleteEdge(fragID int, e graph.Edge) (dsa.UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats, err := s.st.DeleteEdge(fragID, e)
	if err != nil {
		s.errors.Add(1)
		return stats, err
	}
	s.cache.purge()
	s.updates.Add(1)
	s.refreshFacade()
	return stats, nil
}

// refreshFacade recollects the facade's planner stats after an applied
// update (the store was rebuilt in place, so fragment sizes may have
// changed). Called under the write lock, which keeps the store stable
// while the stats are re-read; the facade's own lock is only ever held
// briefly by planners, never across server execution, so the nesting
// is safe.
func (s *Server) refreshFacade() {
	s.facade.Refresh()
}

// SiteStats is one site's serving-time work.
type SiteStats struct {
	// Legs is the number of leg tasks the site's workers executed.
	Legs uint64 `json:"legs"`
	// BusyNS is the cumulative wall-clock nanoseconds those tasks took.
	BusyNS int64 `json:"busy_ns"`
}

// Stats is the server-wide counter snapshot served at /stats.
type Stats struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Epoch            uint64  `json:"epoch"`
	Nodes            int     `json:"nodes"`
	Sites            int     `json:"sites"`
	LooselyConnected bool    `json:"loosely_connected"`
	Problem          string  `json:"problem"`
	DefaultEngine    string  `json:"default_engine"`

	Queries          uint64 `json:"queries"`
	ConnectedQueries uint64 `json:"connected_queries"`
	PipelinedQueries uint64 `json:"pipelined_queries"`
	Updates          uint64 `json:"updates"`
	Errors           uint64 `json:"errors"`

	Cache CacheStats  `json:"cache"`
	Site  []SiteStats `json:"sites_work"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Epoch:            s.st.Epoch(),
		Nodes:            s.st.Fragmentation().Base().NumNodes(),
		Sites:            len(s.st.Sites()),
		LooselyConnected: s.st.LooselyConnected(),
		Problem:          s.st.Problem().String(),
		DefaultEngine:    s.cfg.DefaultEngine.String(),
	}
	s.mu.RUnlock()
	st.Queries = s.queries.Load()
	st.ConnectedQueries = s.connected.Load()
	st.PipelinedQueries = s.pipelined.Load()
	st.Updates = s.updates.Load()
	st.Errors = s.errors.Load()
	st.Cache = s.cache.snapshot()
	st.Site = make([]SiteStats, len(s.siteLegs))
	for i := range s.siteLegs {
		st.Site[i] = SiteStats{Legs: s.siteLegs[i].Load(), BusyNS: s.siteBusyNS[i].Load()}
	}
	return st
}
