package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/pkg/tcq"
)

// This file is the versioned HTTP surface of the facade: POST
// /v1/query and POST /v1/batch, JSON in both directions, speaking
// pkg/tcq's vocabulary (source/target sets, modes, auto-planned
// engines, typed error codes). The unversioned GET endpoints remain as
// thin shims over the same facade (http.go).

// maxBatchRequests bounds one /v1/batch body — a backstop against a
// single request monopolising the worker pools.
const maxBatchRequests = 256

// maxQueryPairs bounds the effective (source, target) pair count of
// one /v1 request: the sources × targets product, reduced by an
// explicit limit. The same backstop as maxBatchRequests, for the
// cross-product dimension.
const maxQueryPairs = 4096

// maxBodyBytes bounds a /v1 request body.
const maxBodyBytes = 8 << 20

// V1Request is the JSON body of POST /v1/query (and one element of a
// /v1/batch body): the wire form of tcq.Request.
type V1Request struct {
	// Sources and Targets are the query entry and exit sets (required,
	// non-empty).
	Sources []int `json:"sources"`
	Targets []int `json:"targets"`
	// Mode is connectivity (default), cost or pipelined.
	Mode string `json:"mode,omitempty"`
	// Engine forces a concrete engine; empty or "auto" lets the planner
	// choose.
	Engine string `json:"engine,omitempty"`
	// Limit caps the number of answers (0 = all pairs).
	Limit int `json:"limit,omitempty"`
}

// toRequest parses the wire form into a facade request.
func (v V1Request) toRequest() (tcq.Request, error) {
	mode, err := tcq.ParseMode(v.Mode)
	if err != nil {
		return tcq.Request{}, err
	}
	engine, err := tcq.ParseEngine(v.Engine)
	if err != nil {
		return tcq.Request{}, err
	}
	// Bound the work one request can demand: the pair product, after
	// the limit (a limited stream never evaluates past its limit).
	pairs := len(v.Sources) * len(v.Targets)
	if v.Limit > 0 && v.Limit < pairs {
		pairs = v.Limit
	}
	if pairs > maxQueryPairs {
		return tcq.Request{}, fmt.Errorf("%w: request spans %d pairs, exceeding the %d-pair bound (set a limit)",
			tcq.ErrInvalidRequest, pairs, maxQueryPairs)
	}
	return tcq.Request{Sources: v.Sources, Targets: v.Targets, Mode: mode, Engine: engine, Limit: v.Limit}, nil
}

// V1Explain is the wire form of the planner's decision.
type V1Explain struct {
	Mode      string `json:"mode"`
	Engine    string `json:"engine"`
	Canonical string `json:"canonical"`
	Forced    bool   `json:"forced"`
	Reason    string `json:"reason"`
	EntrySize int    `json:"entry_size"`
	Pairs     int    `json:"pairs"`
}

// V1Answer is one (source, target) pair answer on the wire.
type V1Answer struct {
	Source    int  `json:"source"`
	Target    int  `json:"target"`
	Reachable bool `json:"reachable"`
	// Cost is present only on reachable cost-mode answers (the
	// library's +Inf does not survive JSON).
	Cost             *float64 `json:"cost,omitempty"`
	BestChain        []int    `json:"best_chain,omitempty"`
	SameFragment     bool     `json:"same_fragment"`
	Truncated        bool     `json:"truncated"`
	ChainsConsidered int      `json:"chains_considered"`
	Sites            int      `json:"sites"`
	TuplesShipped    int      `json:"tuples_shipped"`
	ElapsedUS        int64    `json:"elapsed_us"`
}

// V1QueryResponse is the JSON answer of POST /v1/query.
type V1QueryResponse struct {
	Explain     V1Explain  `json:"explain"`
	Answers     []V1Answer `json:"answers"`
	LimitHit    bool       `json:"limit_hit"`
	CacheHits   int        `json:"cache_hits"`
	CacheMisses int        `json:"cache_misses"`
	ElapsedUS   int64      `json:"elapsed_us"`
}

// V1Error is the JSON error envelope of the /v1 endpoints: a
// human-readable message plus a stable machine code derived from the
// facade's typed errors.
type V1Error struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// V1BatchRequest is the JSON body of POST /v1/batch.
type V1BatchRequest struct {
	Requests []V1Request `json:"requests"`
}

// V1BatchItem is one element of a batch response: exactly one of
// Response and Error is set — batch evaluation is partial-failure
// tolerant.
type V1BatchItem struct {
	Response *V1QueryResponse `json:"response,omitempty"`
	Error    *V1Error         `json:"error,omitempty"`
}

// V1BatchResponse is the JSON answer of POST /v1/batch, one item per
// request in order.
type V1BatchResponse struct {
	Results []V1BatchItem `json:"results"`
}

// errorCode maps a facade error onto (HTTP status, stable code).
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, tcq.ErrInvalidRequest):
		return http.StatusBadRequest, "invalid_request"
	case errors.Is(err, tcq.ErrUnknownMode):
		return http.StatusBadRequest, "unknown_mode"
	case errors.Is(err, tcq.ErrUnknownEngine):
		return http.StatusBadRequest, "unknown_engine"
	case errors.Is(err, tcq.ErrEngineMismatch):
		return http.StatusBadRequest, "engine_mismatch"
	case errors.Is(err, tcq.ErrProblemMismatch):
		return http.StatusBadRequest, "problem_mismatch"
	case errors.Is(err, tcq.ErrNegativeWeight):
		return http.StatusBadRequest, "negative_weight"
	case errors.Is(err, tcq.ErrUnknownNode):
		return http.StatusNotFound, "unknown_node"
	case errors.Is(err, tcq.ErrUnknownSite):
		return http.StatusNotFound, "unknown_site"
	case errors.Is(err, tcq.ErrNoRoute):
		return http.StatusNotFound, "no_route"
	case errors.Is(err, tcq.ErrCanceled):
		// 499 is the de-facto "client closed request" status; by the
		// time it is written the client is usually gone anyway.
		return 499, "canceled"
	}
	return http.StatusInternalServerError, "internal"
}

// writeV1Error renders a typed error as the /v1 envelope.
func writeV1Error(w http.ResponseWriter, err error) {
	status, code := errorCode(err)
	writeJSON(w, status, V1Error{Error: err.Error(), Code: code})
}

// v1ResponseFrom renders a facade result on the wire.
func v1ResponseFrom(res *tcq.Result) *V1QueryResponse {
	out := &V1QueryResponse{
		Explain: V1Explain{
			Mode:      res.Explain.Mode.String(),
			Engine:    res.Explain.Engine.String(),
			Canonical: res.Explain.Canonical(),
			Forced:    res.Explain.Forced,
			Reason:    res.Explain.Reason,
			EntrySize: res.Explain.EntrySize,
			Pairs:     res.Explain.Pairs,
		},
		Answers:     make([]V1Answer, 0, len(res.Answers)),
		LimitHit:    res.LimitHit,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
		ElapsedUS:   res.Elapsed.Microseconds(),
	}
	costMode := res.Explain.Mode != tcq.ModeConnectivity
	for _, a := range res.Answers {
		va := V1Answer{
			Source:           a.Source,
			Target:           a.Target,
			Reachable:        a.Reachable,
			BestChain:        a.BestChain,
			SameFragment:     a.SameFragment,
			Truncated:        a.Truncated,
			ChainsConsidered: a.ChainsConsidered,
			Sites:            a.Sites,
			TuplesShipped:    a.TuplesShipped,
			ElapsedUS:        a.Elapsed.Microseconds(),
		}
		if costMode && a.Reachable {
			cost := a.Cost
			va.Cost = &cost
		}
		out.Answers = append(out.Answers, va)
	}
	return out
}

// handleV1Query serves POST /v1/query.
func (s *Server) handleV1Query(w http.ResponseWriter, r *http.Request) {
	var body V1Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	req, err := body.toRequest()
	if err != nil {
		writeV1Error(w, err)
		return
	}
	res, err := s.facade.Query(r.Context(), req)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v1ResponseFrom(res))
}

// handleV1Batch serves POST /v1/batch: every request of the body is
// answered in order, with per-item typed errors — one malformed or
// unanswerable entry never poisons its neighbours.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	var body V1BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	if len(body.Requests) == 0 {
		writeV1Error(w, fmt.Errorf("%w: empty batch", tcq.ErrInvalidRequest))
		return
	}
	if len(body.Requests) > maxBatchRequests {
		writeV1Error(w, fmt.Errorf("%w: batch of %d exceeds the %d-request bound",
			tcq.ErrInvalidRequest, len(body.Requests), maxBatchRequests))
		return
	}
	// Parse every entry first; entries that fail stay as error items
	// and the parseable remainder goes through the facade batch path.
	items := make([]V1BatchItem, len(body.Requests))
	reqs := make([]tcq.Request, 0, len(body.Requests))
	reqIdx := make([]int, 0, len(body.Requests))
	for i, vr := range body.Requests {
		req, err := vr.toRequest()
		if err != nil {
			_, code := errorCode(err)
			items[i] = V1BatchItem{Error: &V1Error{Error: err.Error(), Code: code}}
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}
	batch, batchErr := s.facade.QueryBatch(r.Context(), reqs)
	for bi, br := range batch {
		i := reqIdx[bi]
		if br.Err != nil {
			_, code := errorCode(br.Err)
			items[i] = V1BatchItem{Error: &V1Error{Error: br.Err.Error(), Code: code}}
			continue
		}
		items[i] = V1BatchItem{Response: v1ResponseFrom(br.Result)}
	}
	if batchErr != nil {
		// Cancellation mid-batch: the unprocessed suffix gets the
		// canceled code (the client has usually disconnected).
		_, code := errorCode(batchErr)
		for bi := len(batch); bi < len(reqIdx); bi++ {
			items[reqIdx[bi]] = V1BatchItem{Error: &V1Error{Error: batchErr.Error(), Code: code}}
		}
	}
	writeJSON(w, http.StatusOK, V1BatchResponse{Results: items})
}
