package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/pkg/tcq"
)

// This file is the versioned HTTP surface of the facade: POST
// /v1/query and POST /v1/batch, JSON in both directions, speaking
// pkg/tcq's vocabulary (source/target sets, modes, auto-planned
// engines, typed error codes). The unversioned GET endpoints remain as
// thin shims over the same facade (http.go).

// maxBatchRequests bounds one /v1/batch body — a backstop against a
// single request monopolising the worker pools.
const maxBatchRequests = 256

// maxUpdateOps bounds one /v1/update body — a backstop against a
// single transaction monopolising the writer gate.
const maxUpdateOps = 256

// maxQueryPairs bounds the effective (source, target) pair count of
// one /v1 request: the sources × targets product, reduced by an
// explicit limit. The same backstop as maxBatchRequests, for the
// cross-product dimension.
const maxQueryPairs = 4096

// maxBodyBytes bounds a /v1 request body.
const maxBodyBytes = 8 << 20

// V1Request is the JSON body of POST /v1/query (and one element of a
// /v1/batch body): the wire form of tcq.Request.
type V1Request struct {
	// Sources and Targets are the query entry and exit sets (required,
	// non-empty).
	Sources []int `json:"sources"`
	Targets []int `json:"targets"`
	// Mode is connectivity (default), cost or pipelined.
	Mode string `json:"mode,omitempty"`
	// Engine forces a concrete engine; empty or "auto" lets the planner
	// choose.
	Engine string `json:"engine,omitempty"`
	// Limit caps the number of answers (0 = all pairs).
	Limit int `json:"limit,omitempty"`
}

// toRequest parses the wire form into a facade request.
func (v V1Request) toRequest() (tcq.Request, error) {
	mode, err := tcq.ParseMode(v.Mode)
	if err != nil {
		return tcq.Request{}, err
	}
	engine, err := tcq.ParseEngine(v.Engine)
	if err != nil {
		return tcq.Request{}, err
	}
	// Bound the work one request can demand: the pair product, after
	// the limit (a limited stream never evaluates past its limit).
	pairs := len(v.Sources) * len(v.Targets)
	if v.Limit > 0 && v.Limit < pairs {
		pairs = v.Limit
	}
	if pairs > maxQueryPairs {
		return tcq.Request{}, fmt.Errorf("%w: request spans %d pairs, exceeding the %d-pair bound (set a limit)",
			tcq.ErrInvalidRequest, pairs, maxQueryPairs)
	}
	return tcq.Request{Sources: v.Sources, Targets: v.Targets, Mode: mode, Engine: engine, Limit: v.Limit}, nil
}

// V1Explain is the wire form of the planner's decision.
type V1Explain struct {
	Mode      string `json:"mode"`
	Engine    string `json:"engine"`
	Canonical string `json:"canonical"`
	Forced    bool   `json:"forced"`
	Reason    string `json:"reason"`
	EntrySize int    `json:"entry_size"`
	Pairs     int    `json:"pairs"`
	// Placement maps each involved site to the cluster node that owned
	// its legs; present only on multi-node deployments.
	Placement []V1SitePlacement `json:"placement,omitempty"`
}

// V1SitePlacement is one site→node ownership entry of a clustered
// explain.
type V1SitePlacement struct {
	Site int    `json:"site"`
	Node string `json:"node"`
	// Fallback marks degraded-mode execution: the owner was unreachable
	// and the coordinator ran this site's legs locally.
	Fallback bool `json:"fallback,omitempty"`
}

// V1Answer is one (source, target) pair answer on the wire.
type V1Answer struct {
	Source    int  `json:"source"`
	Target    int  `json:"target"`
	Reachable bool `json:"reachable"`
	// Cost is present only on reachable cost-mode answers (the
	// library's +Inf does not survive JSON).
	Cost             *float64 `json:"cost,omitempty"`
	BestChain        []int    `json:"best_chain,omitempty"`
	SameFragment     bool     `json:"same_fragment"`
	Truncated        bool     `json:"truncated"`
	ChainsConsidered int      `json:"chains_considered"`
	Sites            int      `json:"sites"`
	TuplesShipped    int      `json:"tuples_shipped"`
	ElapsedUS        int64    `json:"elapsed_us"`
}

// V1QueryResponse is the JSON answer of POST /v1/query.
type V1QueryResponse struct {
	Explain     V1Explain  `json:"explain"`
	Answers     []V1Answer `json:"answers"`
	LimitHit    bool       `json:"limit_hit"`
	CacheHits   int        `json:"cache_hits"`
	CacheMisses int        `json:"cache_misses"`
	ElapsedUS   int64      `json:"elapsed_us"`
}

// V1Error is the JSON error envelope of the /v1 endpoints: a
// human-readable message plus a stable machine code derived from the
// facade's typed errors.
type V1Error struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// V1BatchRequest is the JSON body of POST /v1/batch.
type V1BatchRequest struct {
	Requests []V1Request `json:"requests"`
}

// V1BatchItem is one element of a batch response: exactly one of
// Response and Error is set — batch evaluation is partial-failure
// tolerant.
type V1BatchItem struct {
	Response *V1QueryResponse `json:"response,omitempty"`
	Error    *V1Error         `json:"error,omitempty"`
}

// V1BatchResponse is the JSON answer of POST /v1/batch, one item per
// request in order.
type V1BatchResponse struct {
	Results []V1BatchItem `json:"results"`
}

// V1UpdateOp is one typed mutation of a /v1/update transaction.
type V1UpdateOp struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Fragment is the fragment whose edge set changes.
	Fragment int `json:"fragment"`
	// From and To are the edge endpoints (existing node IDs).
	From int `json:"from"`
	To   int `json:"to"`
	// Weight is the edge weight; on delete the (from, to, weight)
	// triple must match a stored fragment edge exactly.
	Weight float64 `json:"weight"`
}

// V1UpdateRequest is the JSON body of POST /v1/update: an ordered op
// batch applied as one transaction — either every op lands in one new
// epoch, or nothing is applied and the response lists a typed error
// per offending op.
type V1UpdateRequest struct {
	Ops []V1UpdateOp `json:"ops"`
}

// V1UpdateResponse is the JSON answer of a successful POST /v1/update.
type V1UpdateResponse struct {
	// Epoch is the new dataset generation the batch produced.
	Epoch uint64 `json:"epoch"`
	// Applied is the number of ops the transaction applied.
	Applied int `json:"applied"`
	// RecomputedSets and DijkstraRuns report the preprocessing cost.
	RecomputedSets int `json:"recomputed_sets"`
	DijkstraRuns   int `json:"dijkstra_runs"`
	// RebuiltFragments lists the fragments that were re-preprocessed;
	// SharedFragments counts those structurally shared with the
	// previous epoch (their cached leg results survive the swap).
	RebuiltFragments []int `json:"rebuilt_fragments"`
	SharedFragments  int   `json:"shared_fragments"`
	// LocalOnly reports that no complementary information existed to
	// recompute.
	LocalOnly bool  `json:"local_only"`
	ElapsedUS int64 `json:"elapsed_us"`
	// Cluster lists the peer acknowledgements of the epoch fan-out —
	// present only when this node coordinated a clustered update. Every
	// ack carries the same epoch as Epoch above (a diverging peer makes
	// the whole request fail with epoch_skew instead).
	Cluster []cluster.PeerAck `json:"cluster,omitempty"`
}

// V1OpError is one refused op of a /v1/update transaction.
type V1OpError struct {
	// Index is the op's position in the request's ops array.
	Index int `json:"index"`
	// Code is the stable machine code of the refusal.
	Code string `json:"code"`
	// Error is the human-readable detail.
	Error string `json:"error"`
}

// V1UpdateError is the JSON error envelope of POST /v1/update: the
// batch-level message plus one typed error per offending op. When it
// is returned, nothing was applied.
type V1UpdateError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// Ops lists the refused operations (absent for non-batch failures
	// such as a malformed body).
	Ops []V1OpError `json:"ops,omitempty"`
}

// errorCode maps a facade error onto (HTTP status, stable code).
func errorCode(err error) (int, string) {
	switch {
	case errors.Is(err, tcq.ErrInvalidRequest), errors.Is(err, tcq.ErrEmptyBatch):
		return http.StatusBadRequest, "invalid_request"
	case errors.Is(err, tcq.ErrEdgeNotFound):
		return http.StatusNotFound, "edge_not_found"
	case errors.Is(err, tcq.ErrEmptyFragment):
		return http.StatusBadRequest, "empty_fragment"
	case errors.Is(err, tcq.ErrUnknownMode):
		return http.StatusBadRequest, "unknown_mode"
	case errors.Is(err, tcq.ErrUnknownEngine):
		return http.StatusBadRequest, "unknown_engine"
	case errors.Is(err, tcq.ErrEngineMismatch):
		return http.StatusBadRequest, "engine_mismatch"
	case errors.Is(err, tcq.ErrProblemMismatch):
		return http.StatusBadRequest, "problem_mismatch"
	case errors.Is(err, tcq.ErrNegativeWeight):
		return http.StatusBadRequest, "negative_weight"
	case errors.Is(err, tcq.ErrUnknownNode):
		return http.StatusNotFound, "unknown_node"
	case errors.Is(err, tcq.ErrUnknownSite):
		return http.StatusNotFound, "unknown_site"
	case errors.Is(err, tcq.ErrNoRoute):
		return http.StatusNotFound, "no_route"
	case errors.Is(err, tcq.ErrCanceled):
		// 499 is the de-facto "client closed request" status; by the
		// time it is written the client is usually gone anyway.
		return 499, "canceled"
	case errors.Is(err, tcq.ErrEpochSkew):
		return http.StatusConflict, "epoch_skew"
	case errors.Is(err, tcq.ErrPeerTimeout):
		return http.StatusGatewayTimeout, "peer_timeout"
	case errors.Is(err, tcq.ErrPeerDown):
		return http.StatusBadGateway, "peer_down"
	case errors.Is(err, tcq.ErrBadPeerResponse):
		return http.StatusBadGateway, "bad_peer_response"
	}
	return http.StatusInternalServerError, "internal"
}

// writeV1Error renders a typed error as the /v1 envelope.
func writeV1Error(w http.ResponseWriter, err error) {
	status, code := errorCode(err)
	writeJSON(w, status, V1Error{Error: err.Error(), Code: code})
}

// v1ResponseFrom renders a facade result on the wire.
func v1ResponseFrom(res *tcq.Result) *V1QueryResponse {
	out := &V1QueryResponse{
		Explain: V1Explain{
			Mode:      res.Explain.Mode.String(),
			Engine:    res.Explain.Engine.String(),
			Canonical: res.Explain.Canonical(),
			Forced:    res.Explain.Forced,
			Reason:    res.Explain.Reason,
			EntrySize: res.Explain.EntrySize,
			Pairs:     res.Explain.Pairs,
		},
		Answers:     make([]V1Answer, 0, len(res.Answers)),
		LimitHit:    res.LimitHit,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
		ElapsedUS:   res.Elapsed.Microseconds(),
	}
	for _, p := range res.Explain.Placement {
		out.Explain.Placement = append(out.Explain.Placement, V1SitePlacement{Site: p.Site, Node: p.Node, Fallback: p.Fallback})
	}
	costMode := res.Explain.Mode != tcq.ModeConnectivity
	for _, a := range res.Answers {
		va := V1Answer{
			Source:           a.Source,
			Target:           a.Target,
			Reachable:        a.Reachable,
			BestChain:        a.BestChain,
			SameFragment:     a.SameFragment,
			Truncated:        a.Truncated,
			ChainsConsidered: a.ChainsConsidered,
			Sites:            a.Sites,
			TuplesShipped:    a.TuplesShipped,
			ElapsedUS:        a.Elapsed.Microseconds(),
		}
		if costMode && a.Reachable {
			cost := a.Cost
			va.Cost = &cost
		}
		out.Answers = append(out.Answers, va)
	}
	return out
}

// handleV1Query serves POST /v1/query.
func (s *Server) handleV1Query(w http.ResponseWriter, r *http.Request) {
	var body V1Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	req, err := body.toRequest()
	if err != nil {
		writeV1Error(w, err)
		return
	}
	res, err := s.facade.Query(r.Context(), req)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v1ResponseFrom(res))
}

// handleV1Update serves POST /v1/update: parse the op batch, apply it
// as one transaction through the dataset (atomic: any refused op means
// nothing is applied and every offending op is reported with a typed
// code), answer with the new epoch and the incremental-rebuild cost
// breakdown.
func (s *Server) handleV1Update(w http.ResponseWriter, r *http.Request) {
	var body V1UpdateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	if len(body.Ops) == 0 {
		writeV1Error(w, fmt.Errorf("%w: empty ops", tcq.ErrInvalidRequest))
		return
	}
	if len(body.Ops) > maxUpdateOps {
		writeV1Error(w, fmt.Errorf("%w: transaction of %d ops exceeds the %d-op bound",
			tcq.ErrInvalidRequest, len(body.Ops), maxUpdateOps))
		return
	}
	var b tcq.Batch
	for i, op := range body.Ops {
		switch op.Op {
		case "insert":
			b.Insert(op.Fragment, op.From, op.To, op.Weight)
		case "delete":
			b.Delete(op.Fragment, op.From, op.To, op.Weight)
		default:
			writeJSON(w, http.StatusBadRequest, V1UpdateError{
				Error: fmt.Sprintf("op %d: unknown op %q (want insert or delete)", i, op.Op),
				Code:  "invalid_request",
				Ops:   []V1OpError{{Index: i, Code: "invalid_request", Error: fmt.Sprintf("unknown op %q", op.Op)}},
			})
			return
		}
	}
	start := time.Now()
	res, err := s.ApplyBatch(r.Context(), &b)
	if err != nil {
		writeV1UpdateError(w, err)
		return
	}
	// Clustered deployments fan the transaction out to every peer and
	// verify the coherent epoch swap before acking the client; a peer
	// failure or diverging epoch surfaces as a typed error (the local
	// apply stands — retrying the transaction converges the cluster).
	ops := make([]cluster.UpdateOp, len(body.Ops))
	for i, op := range body.Ops {
		ops[i] = cluster.UpdateOp{Op: op.Op, Fragment: op.Fragment, From: op.From, To: op.To, Weight: op.Weight}
	}
	acks, err := s.fanOutUpdate(r, ops, res.Epoch)
	if err != nil {
		writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, V1UpdateResponse{
		Epoch:            res.Epoch,
		Applied:          res.Stats.Ops,
		RecomputedSets:   res.Stats.RecomputedSets,
		DijkstraRuns:     res.Stats.DijkstraRuns,
		RebuiltFragments: res.Stats.SitesRebuilt,
		SharedFragments:  res.Stats.SitesShared,
		LocalOnly:        res.Stats.LocalOnly,
		ElapsedUS:        time.Since(start).Microseconds(),
		Cluster:          acks,
	})
}

// writeV1UpdateError renders an Apply failure: atomic batch refusals
// carry per-op typed codes (worst status wins), everything else is the
// plain typed envelope.
func writeV1UpdateError(w http.ResponseWriter, err error) {
	var be *tcq.BatchError
	if errors.As(err, &be) {
		status := http.StatusBadRequest
		ops := make([]V1OpError, 0, len(be.Ops))
		for _, oe := range be.Ops {
			st, code := errorCode(oe.Err)
			if st > status {
				status = st
			}
			ops = append(ops, V1OpError{Index: oe.Index, Code: code, Error: oe.Err.Error()})
		}
		writeJSON(w, status, V1UpdateError{Error: err.Error(), Code: "batch_refused", Ops: ops})
		return
	}
	writeV1Error(w, err)
}

// handleV1Batch serves POST /v1/batch: every request of the body is
// answered in order, with per-item typed errors — one malformed or
// unanswerable entry never poisons its neighbours.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	var body V1BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeV1Error(w, fmt.Errorf("%w: bad body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	if len(body.Requests) == 0 {
		writeV1Error(w, fmt.Errorf("%w: empty batch", tcq.ErrInvalidRequest))
		return
	}
	if len(body.Requests) > maxBatchRequests {
		writeV1Error(w, fmt.Errorf("%w: batch of %d exceeds the %d-request bound",
			tcq.ErrInvalidRequest, len(body.Requests), maxBatchRequests))
		return
	}
	// Parse every entry first; entries that fail stay as error items
	// and the parseable remainder goes through the facade batch path.
	items := make([]V1BatchItem, len(body.Requests))
	reqs := make([]tcq.Request, 0, len(body.Requests))
	reqIdx := make([]int, 0, len(body.Requests))
	for i, vr := range body.Requests {
		req, err := vr.toRequest()
		if err != nil {
			_, code := errorCode(err)
			items[i] = V1BatchItem{Error: &V1Error{Error: err.Error(), Code: code}}
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}
	batch, batchErr := s.facade.QueryBatch(r.Context(), reqs)
	for bi, br := range batch {
		i := reqIdx[bi]
		if br.Err != nil {
			_, code := errorCode(br.Err)
			items[i] = V1BatchItem{Error: &V1Error{Error: br.Err.Error(), Code: code}}
			continue
		}
		items[i] = V1BatchItem{Response: v1ResponseFrom(br.Result)}
	}
	if batchErr != nil {
		// Cancellation mid-batch: the unprocessed suffix gets the
		// canceled code (the client has usually disconnected).
		_, code := errorCode(batchErr)
		for bi := len(batch); bi < len(reqIdx); bi++ {
			items[reqIdx[bi]] = V1BatchItem{Error: &V1Error{Error: batchErr.Error(), Code: code}}
		}
	}
	writeJSON(w, http.StatusOK, V1BatchResponse{Results: items})
}
