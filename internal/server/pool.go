package server

import "sync"

// sitePools realises the paper's persistent processors: one worker
// group per site, alive for the lifetime of the server, consuming leg
// tasks from a per-site queue. Concurrent queries interleave their legs
// on the owning site's workers — a site is busy the way the paper's
// fragment processors are busy — while distinct sites always run in
// parallel. With one worker per site (the default) each site serialises
// its legs exactly like a single-processor site would.
type sitePools struct {
	queues []chan func()
	wg     sync.WaitGroup
}

// newSitePools starts workers-per-site goroutines for each of numSites
// queues.
func newSitePools(numSites, workersPerSite int) *sitePools {
	if workersPerSite < 1 {
		workersPerSite = 1
	}
	p := &sitePools{queues: make([]chan func(), numSites)}
	for i := range p.queues {
		// A small buffer decouples query fan-out from worker pace; a
		// full queue back-pressures submitters instead of growing
		// unboundedly.
		q := make(chan func(), 64)
		p.queues[i] = q
		for w := 0; w < workersPerSite; w++ {
			p.wg.Add(1)
			go func(q chan func()) {
				defer p.wg.Done()
				for task := range q {
					task()
				}
			}(q)
		}
	}
	return p
}

// submit enqueues one leg task on the site's queue, blocking when the
// queue is full. The task signals its own completion (the callers use a
// WaitGroup); submit only guarantees eventual execution.
func (p *sitePools) submit(site int, task func()) {
	p.queues[site] <- task
}

// close drains and stops all workers. Callers must not submit after
// close.
func (p *sitePools) close() {
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
}
