package server

import (
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/pkg/tcq"
)

// This file is the server's Prometheus instrumentation: one registry
// per Server, populated at deploy time and served at GET /metrics.
// The quantities exported are exactly the ones the paper's design
// lives on — per-leg/per-query execution cost (latency histograms per
// engine and mode), complementary-table reuse (leg-cache hit /
// invalidated / retained counters), and update-epoch churn (swap
// count, apply latency, rebuilt-vs-shared fragments) — plus the
// vanilla serving vitals (in-flight requests, per-endpoint request and
// error counters).
//
// Hot-path discipline: query latency is observed with one histogram
// update per pair (the engine/mode child is resolved through a
// read-locked map — the label cardinality is tiny and the lookup is
// off the leg execution path), cache counters are callback collectors
// read under the cache lock only at scrape time, and the epoch/apply
// metrics ride the existing OnApply subscription. Nothing here adds a
// lock to leg execution.

// serverMetrics bundles the server's registry and its instrument
// handles.
type serverMetrics struct {
	reg *metrics.Registry

	// queryLatency is tc_query_duration_seconds{engine,mode}: one
	// observation per (source, target) pair executed, labeled by the
	// concrete engine the planner resolved and the query mode.
	queryLatency *metrics.HistogramVec

	// inflight is tc_inflight_requests: HTTP requests currently being
	// served (all endpoints).
	inflight *metrics.Gauge

	// httpRequests / httpErrors are tc_http_requests_total{endpoint}
	// and tc_http_errors_total{endpoint} — errors are responses with a
	// 4xx/5xx status.
	httpRequests *metrics.CounterVec
	httpErrors   *metrics.CounterVec

	// epochSwaps, applyLatency, fragmentsRebuilt/Shared are the write
	// path: one OnApply notification per applied batch.
	epochSwaps       *metrics.Counter
	applyLatency     *metrics.Histogram
	fragmentsRebuilt *metrics.Counter
	fragmentsShared  *metrics.Counter
	updateOpsApplied *metrics.Counter
	recomputedSets   *metrics.Counter
	globalSearchRuns *metrics.Counter
}

// newServerMetrics builds the registry for one deployment. The cache
// and dataset are captured by the callback collectors, so their
// counters are always scrape-time fresh without double bookkeeping.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.queryLatency = reg.HistogramVec("tc_query_duration_seconds",
		"Per-pair query execution latency by concrete engine and mode.",
		nil, "engine", "mode")
	m.inflight = reg.Gauge("tc_inflight_requests",
		"HTTP requests currently in flight.")
	m.httpRequests = reg.CounterVec("tc_http_requests_total",
		"HTTP requests served, by endpoint.", "endpoint")
	m.httpErrors = reg.CounterVec("tc_http_errors_total",
		"HTTP responses with a 4xx/5xx status, by endpoint.", "endpoint")

	// Leg cache: scrape-time reads of the counters the cache already
	// maintains under its lock. One snapshot per sample keeps the
	// collectors trivially correct; the lock is uncontended at scrape
	// cadence.
	cache := s.cache
	reg.GaugeFunc("tc_legcache_entries",
		"Cached leg relations currently held.",
		func() float64 { return float64(cache.snapshot().Entries) })
	reg.CounterFunc("tc_legcache_hits_total",
		"Leg-cache lookups answered from cache.",
		func() float64 { return float64(cache.snapshot().Hits) })
	reg.CounterFunc("tc_legcache_misses_total",
		"Leg-cache lookups that executed the leg.",
		func() float64 { return float64(cache.snapshot().Misses) })
	reg.CounterFunc("tc_legcache_evictions_total",
		"Entries dropped by the LRU bound.",
		func() float64 { return float64(cache.snapshot().Evictions) })
	reg.CounterFunc("tc_legcache_expired_total",
		"Entries dropped on lookup because their epoch was stale.",
		func() float64 { return float64(cache.snapshot().Expired) })
	reg.CounterFunc("tc_legcache_invalidated_total",
		"Entries dropped eagerly on an epoch swap (site rebuilt).",
		func() float64 { return float64(cache.snapshot().Invalidated) })
	reg.CounterFunc("tc_legcache_retained_total",
		"Entries retagged to the new epoch on a swap (site shared).",
		func() float64 { return float64(cache.snapshot().Retained) })
	reg.CounterFunc("tc_legcache_sweeps_total",
		"Eager invalidation passes (one per applied batch).",
		func() float64 { return float64(cache.snapshot().Sweeps) })

	ds := s.ds
	reg.GaugeFunc("tc_epoch",
		"Current dataset generation (advances once per applied batch).",
		func() float64 { return float64(ds.Epoch()) })
	start := s.start
	reg.GaugeFunc("tc_uptime_seconds",
		"Seconds since the server deployed.",
		func() float64 { return time.Since(start).Seconds() })

	// Persistence: scrape-time reads of the dataset's journal and
	// checkpoint counters. All-zero when the deployment has no store
	// directory attached.
	reg.CounterFunc("tc_store_journal_records_total",
		"Update batches appended to the apply journal.",
		func() float64 { return float64(ds.PersistStats().JournalRecords) })
	reg.GaugeFunc("tc_store_journal_append_seconds",
		"Cumulative journal append+fsync time.",
		func() float64 { return ds.PersistStats().JournalAppendSeconds })
	reg.CounterFunc("tc_store_checkpoints_total",
		"Snapshot checkpoints written to the store directory.",
		func() float64 { return float64(ds.PersistStats().Checkpoints) })
	reg.GaugeFunc("tc_store_checkpoint_seconds",
		"Cumulative snapshot checkpoint time.",
		func() float64 { return ds.PersistStats().CheckpointSeconds })
	reg.GaugeFunc("tc_store_save_seconds",
		"Cumulative snapshot write time (checkpoints and explicit saves).",
		func() float64 { return ds.PersistStats().SaveSeconds })
	reg.GaugeFunc("tc_store_load_seconds",
		"Wall-clock time of the boot-time snapshot or checkpoint load.",
		func() float64 { return ds.PersistStats().LoadSeconds })

	m.epochSwaps = reg.Counter("tc_epoch_swaps_total",
		"Copy-on-write generation swaps (applied batches).")
	m.applyLatency = reg.Histogram("tc_apply_duration_seconds",
		"Wall-clock latency of Dataset.Apply (validation, incremental rebuild, swap).",
		nil)
	m.fragmentsRebuilt = reg.Counter("tc_fragments_rebuilt_total",
		"Fragments re-preprocessed across all applied batches.")
	m.fragmentsShared = reg.Counter("tc_fragments_shared_total",
		"Fragments structurally shared across swaps (rebuild skipped).")
	m.updateOpsApplied = reg.Counter("tc_update_ops_applied_total",
		"Edge operations landed by applied batches.")
	m.recomputedSets = reg.Counter("tc_recomputed_sets_total",
		"Disconnection sets whose complementary tables were recomputed.")
	m.globalSearchRuns = reg.Counter("tc_global_search_runs_total",
		"Global single-source searches triggered by recomputation.")
	return m
}

// observeApply records one applied batch — called from the server's
// OnApply subscriber, in epoch order.
func (m *serverMetrics) observeApply(r tcq.ApplyResult) {
	m.epochSwaps.Inc()
	m.applyLatency.Observe(r.Elapsed.Seconds())
	m.fragmentsRebuilt.Add(uint64(len(r.Stats.SitesRebuilt)))
	m.fragmentsShared.Add(uint64(r.Stats.SitesShared))
	m.updateOpsApplied.Add(uint64(r.Stats.Ops))
	m.recomputedSets.Add(uint64(r.Stats.RecomputedSets))
	m.globalSearchRuns.Add(uint64(r.Stats.DijkstraRuns))
}

// observeQuery records one executed pair.
func (m *serverMetrics) observeQuery(engine string, mode tcq.Mode, elapsed time.Duration) {
	m.queryLatency.With(engine, mode.String()).Observe(elapsed.Seconds())
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API mux with the request-level metrics: the
// in-flight gauge and the per-endpoint request/error counters. The
// endpoint label is the mux pattern vocabulary (one label value per
// route, never per URL — bounded cardinality even under fuzzed paths).
func (m *serverMetrics) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := m.httpRequests.With(endpoint)
	errors := m.httpErrors.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		requests.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		if rec.status >= 400 {
			errors.Inc()
		}
	}
}

// Metrics exposes the deployment's registry — tcserver mounts
// reg.Handler() and tests scrape it directly.
func (s *Server) Metrics() *metrics.Registry { return s.metrics.reg }
