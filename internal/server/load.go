package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

//tcvet:ignore-file typederr client-side load driver: its errors surface in run reports, never in wire envelopes or errors.Is dispatch

// LoadConfig parameterises one load-generation run against a running
// tcserver — the repository's counterpart of a parallel benchmark
// query driver: N workers firing source/target queries, random or
// file-driven, with optional replay passes to exercise the leg cache.
type LoadConfig struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8642".
	BaseURL string
	// BaseURLs, when set, targets a multi-node cluster: read queries
	// round-robin across the addresses by request index (every node is
	// a full coordinator, so any of them answers any query), while
	// writes, /stats differencing and the /metrics scrape pin to the
	// first address — writes because the fan-out keeps peers coherent
	// from one entry point, stats because cache deltas are per-node
	// counters that only difference cleanly against one node.
	// Overrides BaseURL.
	BaseURLs []string
	// Requests is the number of queries per pass (ignored when Pairs is
	// set: then every pair is fired once per pass).
	Requests int
	// Parallel is the worker count.
	Parallel int
	// Nodes bounds the random workload: src and dst are drawn uniformly
	// from [0, Nodes). Required unless Pairs is given.
	Nodes int
	// Pairs is an explicit (src, dst) workload; overrides Nodes and
	// Requests.
	Pairs [][2]int
	// Engine selects the per-request engine ("" = server default).
	Engine string
	// Mode is "query" (shortest path) or "connected" (reachability).
	Mode string
	// API selects the wire surface: "legacy" (default; GET /query and
	// /connected) or "v1" (POST /v1/query with a facade request body).
	API string
	// Seed drives the random workload.
	Seed int64
	// Repeat is the number of passes over the same workload (≥ 1).
	// Passes after the first replay identical queries, so their answers
	// must match pass one exactly — the cache-correctness oracle — and
	// the leg cache should start hitting.
	Repeat int
	// Duration, when positive, keeps replaying passes until at least
	// this much wall-clock time has elapsed (and at least Repeat passes
	// ran) — the time-bounded shape the CI latency-SLO gate uses for
	// its sustained mixed read/write load. The replay oracle still
	// holds: every extra pass must answer identically to pass one.
	Duration time.Duration
	// ExpectReachable asserts every answer is reachable/connected —
	// the oracle for workloads on connected graphs (grids), where an
	// unreachable answer can only be a server bug.
	ExpectReachable bool
	// WriteRate is the fraction of workload slots that become write
	// transactions instead of queries (0 = read-only). A write slot
	// fires one POST /v1/update batch that inserts a heavy shortcut
	// edge (weight 1e9 — far above any real path cost, so query
	// answers are invariant) and deletes it again in the same
	// transaction: a net no-op on the data that still forces a full
	// epoch swap, fragment rebuild and cache invalidation. Mixing
	// writes this way keeps the replay oracle exact while measuring
	// read latency under sustained update pressure.
	WriteRate float64
	// WriteEdges optionally pins the write transactions to explicit
	// (fragment, from, to) triples — write slot i uses entry i modulo
	// the list. With endpoints already inside the named fragment, a
	// write stays a single-fragment update (the incremental write
	// path's fast case); left empty, writes use the slot's random node
	// pair on fragment 0, which usually drags foreign nodes into the
	// fragment and forces a full complementary recomputation — the
	// worst case.
	WriteEdges [][3]int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// RetryTransient, when positive, re-fires a read query up to this
	// many extra times after a transient gateway failure (HTTP 502 or
	// 504 — the statuses a cluster node answers with while a peer is
	// down or timing out, before its breaker opens and local fallback
	// takes over). Writes are never retried: an ambiguous update
	// failure must surface, not double-apply. Retries are counted in
	// the report so a chaos run can distinguish "rode through N blips"
	// from "saw nothing".
	RetryTransient int
}

// statusError is a non-2xx response, preserving the code so the load
// loop can tell transient gateway blips (502/504) from hard failures.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	if e.body == "" {
		return fmt.Sprintf("status %d", e.code)
	}
	return fmt.Sprintf("status %d: %s", e.code, e.body)
}

// transient reports whether err is a retryable gateway blip.
func transient(err error) bool {
	var se *statusError
	return errors.As(err, &se) &&
		(se.code == http.StatusBadGateway || se.code == http.StatusGatewayTimeout)
}

// LoadReport is the outcome of one load run. The JSON rendering is
// the machine-readable half of the tcload SLO gate (durations are
// nanoseconds, as Go renders time.Duration).
type LoadReport struct {
	// Requests is the total number of requests fired across all passes.
	Requests int `json:"requests"`
	// Errors counts transport failures and non-2xx responses.
	Errors int `json:"errors"`
	// Mismatches counts replay answers that differ from the first pass
	// plus (with ExpectReachable) unreachable answers.
	Mismatches int `json:"mismatches"`
	// Unreachable counts answers with reachable/connected = false.
	Unreachable int `json:"unreachable"`
	// FirstIssue describes the first error or mismatch, for diagnosis.
	FirstIssue string `json:"first_issue,omitempty"`
	// Elapsed is the wall-clock time of all passes, QPS the overall
	// request throughput.
	Elapsed time.Duration `json:"elapsed_ns"`
	QPS     float64       `json:"qps"`
	// Latency percentiles across all requests.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// Passes is the number of workload passes run (> Repeat when
	// Duration kept the load going).
	Passes int `json:"passes"`
	// PassQPS is the throughput of each pass — the cache warm-up curve.
	PassQPS []float64 `json:"pass_qps"`
	// CacheHits/CacheMisses are the server-side leg-cache deltas over
	// the run, HitRate their ratio (0 when no lookups).
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// Writes counts the update transactions fired (WriteRate > 0), and
	// WriteP50/WriteP95/WriteP99 their latency percentiles.
	Writes   int           `json:"writes"`
	WriteP50 time.Duration `json:"write_p50_ns"`
	WriteP95 time.Duration `json:"write_p95_ns"`
	WriteP99 time.Duration `json:"write_p99_ns"`
	// EpochDelta is the server epoch advance over the run — one per
	// applied transaction.
	EpochDelta uint64 `json:"epoch_delta"`
	// TransientRetries counts read queries re-fired after a transient
	// 502/504 (RetryTransient > 0). A request that eventually succeeds
	// after retries is not an error.
	TransientRetries int `json:"transient_retries"`
	// Metrics is the server's /metrics scrape taken after the run
	// (name{labels} -> value) — server-side truth beside the
	// client-side latencies, and the proof the exposition format
	// parses.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Format renders the report as a human-readable block.
func (r *LoadReport) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests: %d  errors: %d  mismatches: %d  unreachable: %d\n",
		r.Requests, r.Errors, r.Mismatches, r.Unreachable)
	fmt.Fprintf(&sb, "elapsed: %v  QPS: %.1f", r.Elapsed.Round(time.Millisecond), r.QPS)
	if len(r.PassQPS) > 1 {
		fmt.Fprintf(&sb, "  per-pass:")
		for _, q := range r.PassQPS {
			fmt.Fprintf(&sb, " %.1f", q)
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "latency p50: %v  p95: %v  p99: %v  max: %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(&sb, "leg cache: %d hits, %d misses, hit rate %.1f%%\n",
		r.CacheHits, r.CacheMisses, 100*r.HitRate)
	if r.TransientRetries > 0 {
		fmt.Fprintf(&sb, "transient retries: %d (502/504 blips ridden through)\n", r.TransientRetries)
	}
	if r.Writes > 0 {
		fmt.Fprintf(&sb, "writes: %d (epoch +%d)  write latency p50: %v  p95: %v  p99: %v\n",
			r.Writes, r.EpochDelta, r.WriteP50.Round(time.Microsecond),
			r.WriteP95.Round(time.Microsecond), r.WriteP99.Round(time.Microsecond))
	}
	if r.FirstIssue != "" {
		fmt.Fprintf(&sb, "first issue: %s\n", r.FirstIssue)
	}
	return sb.String()
}

// answer is the part of a response the replay oracle compares.
type answer struct {
	reachable bool
	cost      float64
	hasCost   bool
}

// RunLoad fires the configured workload and reports throughput,
// latency percentiles, correctness counters and the server's cache
// delta.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	bases := cfg.BaseURLs
	if len(bases) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("server: load: BaseURL required")
		}
		bases = []string{cfg.BaseURL}
	}
	// primary is the pinned node: writes, stats differencing, metrics.
	primary := bases[0]
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.Repeat < 1 {
		cfg.Repeat = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = "query"
	}
	if cfg.Mode != "query" && cfg.Mode != "connected" {
		return nil, fmt.Errorf("server: load: unknown mode %q (want query or connected)", cfg.Mode)
	}
	if cfg.API == "" {
		cfg.API = "legacy"
	}
	if cfg.API != "legacy" && cfg.API != "v1" {
		return nil, fmt.Errorf("server: load: unknown api %q (want legacy or v1)", cfg.API)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.WriteRate < 0 || cfg.WriteRate >= 1 {
		return nil, fmt.Errorf("server: load: WriteRate %v out of [0, 1)", cfg.WriteRate)
	}
	pairs := cfg.Pairs
	if len(pairs) == 0 {
		if cfg.Nodes <= 0 {
			return nil, fmt.Errorf("server: load: need Nodes > 0 or explicit Pairs")
		}
		if cfg.Requests <= 0 {
			return nil, fmt.Errorf("server: load: need Requests > 0")
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		pairs = make([][2]int, cfg.Requests)
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(cfg.Nodes), rng.Intn(cfg.Nodes)}
		}
	}
	// Write slots are chosen per index (not per pass), so replay passes
	// repeat the same read/write interleaving and the replay oracle
	// stays aligned with its baseline.
	writeSlot := make([]bool, len(pairs))
	if cfg.WriteRate > 0 {
		wrng := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := range writeSlot {
			writeSlot[i] = wrng.Float64() < cfg.WriteRate
		}
	}

	client := &http.Client{Timeout: cfg.Timeout}
	statsBefore, err := fetchStats(client, primary)
	if err != nil {
		return nil, fmt.Errorf("server: load: /stats before run: %v", err)
	}

	rep := &LoadReport{}
	baseline := make([]answer, len(pairs))
	latencies := make([]time.Duration, 0, len(pairs)*cfg.Repeat)
	var writeLats []time.Duration
	var (
		mu         sync.Mutex // guards latencies, writeLats and FirstIssue
		errorsN    atomic.Int64
		mismatches atomic.Int64
		unreach    atomic.Int64
		writesN    atomic.Int64
		retriesN   atomic.Int64
	)
	issue := func(format string, args ...any) {
		mu.Lock()
		if rep.FirstIssue == "" {
			rep.FirstIssue = fmt.Sprintf(format, args...)
		}
		mu.Unlock()
	}

	start := time.Now()
	for pass := 0; ; pass++ {
		// Stop after Repeat passes — or, with a Duration, keep replaying
		// until the clock runs out (whichever keeps the load running
		// longer).
		if pass >= cfg.Repeat && (cfg.Duration <= 0 || time.Since(start) >= cfg.Duration) {
			break
		}
		passStart := time.Now()
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, len(pairs)/cfg.Parallel+1)
				localWrites := []time.Duration(nil)
				for i := range idx {
					p := pairs[i]
					if writeSlot[i] {
						frag, from, to := 0, p[0], p[1]
						if len(cfg.WriteEdges) > 0 {
							we := cfg.WriteEdges[i%len(cfg.WriteEdges)]
							frag, from, to = we[0], we[1], we[2]
						}
						t0 := time.Now()
						err := fireUpdate(client, primary, frag, from, to)
						localWrites = append(localWrites, time.Since(t0))
						writesN.Add(1)
						if err != nil {
							errorsN.Add(1)
							issue("update fragment %d edge %d->%d: %v", frag, from, to, err)
						}
						continue
					}
					t0 := time.Now()
					ans, err := fire(client, cfg, bases[i%len(bases)], p[0], p[1])
					for attempt := 0; err != nil && transient(err) && attempt < cfg.RetryTransient; attempt++ {
						retriesN.Add(1)
						time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
						ans, err = fire(client, cfg, bases[i%len(bases)], p[0], p[1])
					}
					local = append(local, time.Since(t0))
					if err != nil {
						errorsN.Add(1)
						issue("query %d->%d: %v", p[0], p[1], err)
						continue
					}
					if !ans.reachable {
						unreach.Add(1)
						if cfg.ExpectReachable {
							mismatches.Add(1)
							issue("query %d->%d: unreachable, oracle expects reachable", p[0], p[1])
						}
					}
					if pass == 0 {
						baseline[i] = ans
					} else if b := baseline[i]; b.reachable != ans.reachable ||
						(b.hasCost && ans.hasCost && math.Abs(b.cost-ans.cost) > 1e-9) {
						mismatches.Add(1)
						issue("query %d->%d: pass %d answered (reachable=%v cost=%v), pass 1 (reachable=%v cost=%v)",
							p[0], p[1], pass+1, ans.reachable, ans.cost, b.reachable, b.cost)
					}
				}
				mu.Lock()
				latencies = append(latencies, local...)
				writeLats = append(writeLats, localWrites...)
				mu.Unlock()
			}()
		}
		for i := range pairs {
			idx <- i
		}
		close(idx)
		wg.Wait()
		rep.PassQPS = append(rep.PassQPS, float64(len(pairs))/time.Since(passStart).Seconds())
	}
	rep.Elapsed = time.Since(start)
	rep.Passes = len(rep.PassQPS)
	rep.Requests = len(pairs) * rep.Passes
	rep.Errors = int(errorsN.Load())
	rep.Mismatches = int(mismatches.Load())
	rep.Unreachable = int(unreach.Load())
	rep.TransientRetries = int(retriesN.Load())
	if rep.Elapsed > 0 {
		rep.QPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P95 = percentile(latencies, 0.95)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	rep.Writes = int(writesN.Load())
	sort.Slice(writeLats, func(i, j int) bool { return writeLats[i] < writeLats[j] })
	rep.WriteP50 = percentile(writeLats, 0.50)
	rep.WriteP95 = percentile(writeLats, 0.95)
	rep.WriteP99 = percentile(writeLats, 0.99)

	statsAfter, err := fetchStats(client, primary)
	if err != nil {
		return nil, fmt.Errorf("server: load: /stats after run: %v", err)
	}
	rep.CacheHits = statsAfter.Cache.Hits - statsBefore.Cache.Hits
	rep.CacheMisses = statsAfter.Cache.Misses - statsBefore.Cache.Misses
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(total)
	}
	rep.EpochDelta = statsAfter.Epoch - statsBefore.Epoch
	// Scrape the server's Prometheus surface into the report: the
	// server-side counters beside the client-side latencies, and the CI
	// assertion that the exposition format stays parseable.
	m, err := fetchMetrics(client, primary)
	if err != nil {
		return nil, fmt.Errorf("server: load: /metrics after run: %v", err)
	}
	rep.Metrics = m
	return rep, nil
}

// fireUpdate sends one write transaction over POST /v1/update: insert
// a heavy (answer-invariant) shortcut edge into the fragment and
// delete it again in the same atomic batch.
func fireUpdate(client *http.Client, baseURL string, frag, src, dst int) error {
	const heavy = 1e9
	body, err := json.Marshal(V1UpdateRequest{Ops: []V1UpdateOp{
		{Op: "insert", Fragment: frag, From: src, To: dst, Weight: heavy},
		{Op: "delete", Fragment: frag, From: src, To: dst, Weight: heavy},
	}})
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var ur V1UpdateResponse
	if err := json.Unmarshal(raw, &ur); err != nil {
		return fmt.Errorf("bad /v1/update body: %v", err)
	}
	if ur.Applied != 2 {
		return fmt.Errorf("/v1/update applied %d ops, want 2", ur.Applied)
	}
	return nil
}

// fire sends one query over the configured API surface and extracts
// the comparable answer.
func fire(client *http.Client, cfg LoadConfig, baseURL string, src, dst int) (answer, error) {
	if cfg.API == "v1" {
		return fireV1(client, cfg, baseURL, src, dst)
	}
	q := url.Values{}
	q.Set("src", fmt.Sprint(src))
	q.Set("dst", fmt.Sprint(dst))
	if cfg.Engine != "" {
		q.Set("engine", cfg.Engine)
	}
	endpoint := "/query"
	if cfg.Mode == "connected" {
		endpoint = "/connected"
	}
	resp, err := client.Get(baseURL + endpoint + "?" + q.Encode())
	if err != nil {
		return answer{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return answer{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return answer{}, &statusError{code: resp.StatusCode, body: strings.TrimSpace(string(body))}
	}
	if cfg.Mode == "connected" {
		var cr ConnectedResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			return answer{}, fmt.Errorf("bad /connected body: %v", err)
		}
		return answer{reachable: cr.Connected}, nil
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return answer{}, fmt.Errorf("bad /query body: %v", err)
	}
	a := answer{reachable: qr.Reachable}
	if qr.Cost != nil {
		a.cost = *qr.Cost
		a.hasCost = true
	}
	return a, nil
}

// fireV1 sends one query as a facade request over POST /v1/query.
func fireV1(client *http.Client, cfg LoadConfig, baseURL string, src, dst int) (answer, error) {
	mode := "cost"
	if cfg.Mode == "connected" {
		mode = "connectivity"
	}
	body, err := json.Marshal(V1Request{
		Sources: []int{src},
		Targets: []int{dst},
		Mode:    mode,
		Engine:  cfg.Engine,
	})
	if err != nil {
		return answer{}, err
	}
	resp, err := client.Post(baseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return answer{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return answer{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return answer{}, &statusError{code: resp.StatusCode, body: strings.TrimSpace(string(raw))}
	}
	var vr V1QueryResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		return answer{}, fmt.Errorf("bad /v1/query body: %v", err)
	}
	if len(vr.Answers) != 1 {
		return answer{}, fmt.Errorf("/v1/query returned %d answers for one pair", len(vr.Answers))
	}
	a := answer{reachable: vr.Answers[0].Reachable}
	if vr.Answers[0].Cost != nil {
		a.cost = *vr.Answers[0].Cost
		a.hasCost = true
	}
	return a, nil
}

// FetchStats pulls and decodes a running server's /stats — load
// drivers use it to discover the node count and to difference cache
// counters around a run.
func FetchStats(baseURL string) (*Stats, error) {
	return fetchStats(&http.Client{Timeout: 30 * time.Second}, baseURL)
}

// FetchMetrics scrapes and parses a running server's GET /metrics
// exposition text into a flat name{labels} -> value map.
func FetchMetrics(baseURL string) (map[string]float64, error) {
	return fetchMetrics(&http.Client{Timeout: 30 * time.Second}, baseURL)
}

// fetchMetrics scrapes GET /metrics.
func fetchMetrics(client *http.Client, baseURL string) (map[string]float64, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// fetchStats pulls and decodes /stats.
func fetchStats(client *http.Client, baseURL string) (*Stats, error) {
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	// Drain what the decoder left so the connection stays reusable
	// (the PR 8 keep-alive lesson, now enforced by tcvet draincloser).
	io.Copy(io.Discard, resp.Body)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// percentile reads the p-quantile from ascending latencies (nearest
// rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
