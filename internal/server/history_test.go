package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// applyN applies n alternating insert/delete single-op batches through
// the dataset, advancing the epoch by exactly n.
func applyN(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var b tcq.Batch
		if i%2 == 0 {
			b.Insert(0, 0, 1, 9)
		} else {
			b.Delete(0, 0, 1, 9)
		}
		if _, err := srv.ApplyBatch(context.Background(), &b); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

// TestSnapHistoryEvictionBoundary pins the 8-deep snapshot history
// ring's contract at its exact edge: after the current epoch reaches
// N, a peer leg pinned to epoch N-7 still serves (the oldest retained
// generation), while N-8 was just evicted and answers a typed 409
// epoch_skew.
func TestSnapHistoryEvictionBoundary(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 4, Config{CacheCapacity: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Epoch 0's snapshot is retained at construction; 8 applies later
	// the ring holds epochs 1..8 and epoch 0 just fell off.
	applyN(t, srv, epochHistoryDepth)
	current := srv.Dataset().Epoch()
	if current != uint64(epochHistoryDepth) {
		t.Fatalf("epoch %d after %d applies, want %d", current, epochHistoryDepth, epochHistoryDepth)
	}

	oldest := current - uint64(epochHistoryDepth) + 1 // N-7: still retained
	evicted := current - uint64(epochHistoryDepth)    // N-8: just evicted

	var leg cluster.LegResponse
	status := postV1(t, ts.URL+"/v1/leg", cluster.NewLegRequest(0, []graph.NodeID{0}, "dijkstra", oldest), &leg)
	if status != http.StatusOK || leg.Epoch != oldest {
		t.Errorf("leg at oldest retained epoch %d: status %d epoch %d, want 200 at %d", oldest, status, leg.Epoch, oldest)
	}
	var ve V1Error
	status = postV1(t, ts.URL+"/v1/leg", cluster.NewLegRequest(0, []graph.NodeID{0}, "dijkstra", evicted), &ve)
	if status != http.StatusConflict || ve.Code != "epoch_skew" {
		t.Errorf("leg at evicted epoch %d: status %d code %q, want 409 epoch_skew", evicted, status, ve.Code)
	}
	// Every retained generation serves, and the current one does too.
	for e := oldest; e <= current; e++ {
		var lr cluster.LegResponse
		if status := postV1(t, ts.URL+"/v1/leg", cluster.NewLegRequest(0, []graph.NodeID{0}, "dijkstra", e), &lr); status != http.StatusOK {
			t.Errorf("leg at retained epoch %d: status %d, want 200", e, status)
		}
	}
}

// TestSnapHistoryConcurrentReadsAndSwaps races history reads (the
// /v1/leg resolution path) against concurrent epoch swaps: readers pin
// recent epochs while a writer applies batches that push generations
// through the ring. Run under -race (CI always does). Readers must
// only ever observe a snapshot with exactly the epoch they asked for,
// or a miss — never a mixed generation.
func TestSnapHistoryConcurrentReadsAndSwaps(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 4, Config{CacheCapacity: 16})

	const writes = 40
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Chase the writer across the whole retained window.
				cur := srv.Dataset().Epoch()
				for back := uint64(0); back < epochHistoryDepth+2; back++ {
					if back > cur {
						break
					}
					epoch := cur - back
					if snap := srv.snapshotAt(epoch); snap != nil && snap.Epoch() != epoch {
						t.Errorf("snapshotAt(%d) returned epoch %d", epoch, snap.Epoch())
						return
					}
				}
			}
		}()
	}

	applyN(t, srv, writes)
	close(stop)
	wg.Wait()

	if got := srv.Dataset().Epoch(); got != writes {
		t.Fatalf("epoch %d after %d applies", got, writes)
	}
	// Post-race, the boundary contract still holds exactly.
	if snap := srv.snapshotAt(writes - epochHistoryDepth + 1); snap == nil {
		t.Error("oldest retained epoch missing after concurrent swaps")
	}
	if snap := srv.snapshotAt(writes - epochHistoryDepth); snap != nil {
		t.Error("evicted epoch still resolvable after concurrent swaps")
	}
}
