package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"repro/internal/dsa"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

// legKey identifies one memoizable leg computation under the
// planner's canonical plan: the resolved concrete engine (by canonical
// name — tcq's planner resolves auto before execution, so every cached
// entry is keyed by what actually ran, stable across engine
// renumbering), the site, and the entry set (sorted by the planner, so
// the rendering is canonical). The exit set is deliberately absent —
// it is a cheap selection applied after lookup (dsa.FilterLegFacts),
// so queries with different targets share cache entries whenever they
// enter a fragment through the same disconnection set; the mode is
// likewise absent because a leg's full fact relation depends only on
// the engine, letting cost and connectivity traffic share entries.
func legKey(siteID int, entry []graph.NodeID, engine dsa.Engine) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%d|", engine, siteID)
	for _, n := range entry {
		fmt.Fprintf(&sb, "%d,", n)
	}
	return sb.String()
}

// CacheStats is a point-in-time snapshot of the leg-result cache.
type CacheStats struct {
	// Capacity is the configured entry bound (0 = caching disabled).
	Capacity int `json:"capacity"`
	// Entries is the current number of cached leg relations.
	Entries int `json:"entries"`
	// Hits and Misses count lookups since the server started.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound, Expired those
	// dropped because their epoch no longer matched the store's.
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	// Invalidated counts entries dropped eagerly on an update swap
	// because their site was rebuilt; Retained counts entries retagged
	// to the new epoch on a swap because their site was structurally
	// shared (they keep serving hits across the update).
	Invalidated uint64 `json:"invalidated"`
	Retained    uint64 `json:"retained"`
	// Sweeps counts invalidation passes (one per applied batch).
	Sweeps uint64 `json:"sweeps"`
}

// HitRate is hits / (hits + misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry is one memoized leg: the full (unfiltered) fact relation
// of ExecuteLegFull and its stats, tagged with the site it was
// computed on and the store epoch it was computed under. The relation
// is shared read-only across queries; FilterLegFacts builds a fresh
// tuple list (sharing immutable tuple storage), never mutates the
// cached relation.
type cacheEntry struct {
	key    string
	siteID int
	epoch  uint64
	rel    *relation.Relation
	stats  tc.Stats
}

// legCache is a bounded, epoch-aware LRU over leg computations. It is
// safe for concurrent use.
type legCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	stats CacheStats
}

func newLegCache(capacity int) *legCache {
	if capacity < 0 {
		capacity = 0
	}
	return &legCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		stats: CacheStats{Capacity: capacity},
	}
}

// get returns the memoized relation for key if present and computed
// under the given epoch. Entries from older epochs are dropped on
// sight — the store has been updated since they were computed.
func (c *legCache) get(key string, epoch uint64) (*relation.Relation, tc.Stats, bool) {
	if c == nil || c.cap == 0 {
		return nil, tc.Stats{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.stats.Misses++
		return nil, tc.Stats{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.byKey, key)
		c.stats.Expired++
		c.stats.Misses++
		return nil, tc.Stats{}, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return ent.rel, ent.stats, true
}

// put memoizes a leg computation, evicting the least recently used
// entry when the bound is exceeded.
func (c *legCache) put(key string, siteID int, epoch uint64, rel *relation.Relation, stats tc.Stats) {
	if c == nil || c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Concurrent queries can race to fill the same key; keep the
		// newest epoch and refresh recency.
		el.Value = &cacheEntry{key: key, siteID: siteID, epoch: epoch, rel: rel, stats: stats}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, siteID: siteID, epoch: epoch, rel: rel, stats: stats})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// invalidate is the eager per-fragment sweep run on every update swap:
// entries computed on a rebuilt site are dropped immediately (no
// lingering until LRU pressure or an epoch-tag miss), while entries on
// structurally shared sites — whose augmented graph is pointer-
// identical across the swap, so their relations are still exact — are
// retagged to the new epoch and keep serving hits. This is what lets
// the leg cache survive single-fragment updates with its working set
// intact.
//
// Only entries tagged with the epoch this swap supersedes (newEpoch-1)
// are eligible for retagging: the sweep's rebuilt-site list describes
// exactly that one transition. An entry put by a query still running
// on an OLDER pinned snapshot may predate intermediate rebuilds of its
// site that this sweep knows nothing about, so anything older is
// dropped — retagging it would revive stale data as current. Entries
// already tagged newEpoch were computed on the new generation and are
// left untouched.
func (c *legCache) invalidate(rebuiltSites []int, newEpoch uint64) {
	if c == nil || c.cap == 0 {
		return
	}
	rebuilt := make(map[int]bool, len(rebuiltSites))
	for _, id := range rebuiltSites {
		rebuilt[id] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Sweeps++
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*cacheEntry)
		switch {
		case ent.epoch == newEpoch:
			// Computed on the generation this sweep announces.
		case ent.epoch == newEpoch-1 && !rebuilt[ent.siteID]:
			ent.epoch = newEpoch
			c.stats.Retained++
		default:
			// Rebuilt site, a lagging put from an older snapshot, or
			// (impossibly, but defensively) a fresher epoch.
			c.ll.Remove(el)
			delete(c.byKey, ent.key)
			c.stats.Invalidated++
		}
	}
}

// snapshot returns a value copy of the current counters taken under
// the cache lock — the only way /stats and the /metrics collectors may
// read them, since get/put/invalidate mutate the same struct under mu
// (TestLegCacheSnapshotRace is the -race proof).
func (c *legCache) snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
