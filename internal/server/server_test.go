package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dsa"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// newGridServer builds a W×H grid store fragmented into frags linear
// fragments and deploys a server over it.
func newGridServer(t *testing.T, w, h, frags int, cfg Config) (*Server, *dsa.Store) {
	t.Helper()
	g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(res.Fragmentation, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, st
}

// oracle is an independent store over the same fragmentation, used to
// answer queries through the uncached library path.
func newOracle(t *testing.T, st *dsa.Store) *dsa.Store {
	t.Helper()
	o, err := dsa.Build(st.Fragmentation(), dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestServerMatchesLibrary is the serving-layer correctness property:
// pooled, cached execution answers exactly what the one-shot library
// pipeline answers, for repeated (cache-hitting) random queries and
// both cost engines.
func TestServerMatchesLibrary(t *testing.T) {
	srv, st := newGridServer(t, 8, 8, 4, Config{CacheCapacity: 256})
	oracle := newOracle(t, st)
	rng := rand.New(rand.NewSource(3))
	for _, engine := range []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineDense} {
		for q := 0; q < 15; q++ {
			src := graph.NodeID(rng.Intn(64))
			dst := graph.NodeID(rng.Intn(64))
			want, err := oracle.Query(src, dst, engine)
			if err != nil {
				t.Fatal(err)
			}
			// Twice: the second answer comes from the leg cache.
			for pass := 0; pass < 2; pass++ {
				got, _, err := srv.Query(src, dst, engine)
				if err != nil {
					t.Fatalf("server query %d->%d pass %d: %v", src, dst, pass, err)
				}
				if got.Reachable != want.Reachable {
					t.Errorf("%v %d->%d pass %d: reachable %v, oracle %v",
						engine, src, dst, pass, got.Reachable, want.Reachable)
				}
				if want.Reachable && math.Abs(got.Cost-want.Cost) > 1e-9 {
					t.Errorf("%v %d->%d pass %d: cost %v, oracle %v",
						engine, src, dst, pass, got.Cost, want.Cost)
				}
			}
		}
	}
	cs := srv.Stats().Cache
	if cs.Hits == 0 {
		t.Error("no cache hits over repeated identical queries")
	}
}

// TestServerConnectedAllEngines checks the reachability path, including
// the connectivity-only bitset engine, against the graph's own
// reachability.
func TestServerConnectedAllEngines(t *testing.T) {
	srv, st := newGridServer(t, 6, 6, 3, Config{CacheCapacity: 256})
	base := st.Fragmentation().Base()
	rng := rand.New(rand.NewSource(5))
	for _, engine := range []dsa.Engine{dsa.EngineDijkstra, dsa.EngineSemiNaive, dsa.EngineBitset, dsa.EngineDense} {
		for q := 0; q < 10; q++ {
			src := graph.NodeID(rng.Intn(36))
			dst := graph.NodeID(rng.Intn(36))
			_, want := base.Reachable(src)[dst]
			if src == dst {
				want = true
			}
			got, _, err := srv.Connected(src, dst, engine)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%v connected(%d, %d) = %v, want %v", engine, src, dst, got, want)
			}
		}
	}
}

// TestServerUpdateInvalidatesCache inserts a shortcut edge that changes
// a cached answer and checks the served cost moves to the new optimum
// (a stale cache would keep answering the old cost).
func TestServerUpdateInvalidatesCache(t *testing.T) {
	srv, _ := newGridServer(t, 8, 8, 4, Config{CacheCapacity: 256})
	src, dst := graph.NodeID(0), graph.NodeID(63)
	before, _, err := srv.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache with a second identical query.
	if _, qs, err := srv.Query(src, dst, dsa.EngineDijkstra); err != nil || qs.CacheHits == 0 {
		t.Fatalf("warm query: hits=%d err=%v", qs.CacheHits, err)
	}
	// A directed 0→63 shortcut far cheaper than any grid path.
	if _, err := srv.InsertEdge(0, graph.Edge{From: src, To: dst, Weight: 0.25}); err != nil {
		t.Fatal(err)
	}
	after, _, err := srv.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Cost-0.25) > 1e-9 {
		t.Errorf("cost after shortcut insert = %v, want 0.25 (before: %v)", after.Cost, before.Cost)
	}
	// And deleting restores the original answer.
	if _, err := srv.DeleteEdge(0, graph.Edge{From: src, To: dst, Weight: 0.25}); err != nil {
		t.Fatal(err)
	}
	restored, _, err := srv.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored.Cost-before.Cost) > 1e-9 {
		t.Errorf("cost after delete = %v, want %v", restored.Cost, before.Cost)
	}
	st := srv.Stats()
	if st.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", st.Epoch)
	}
	if st.Cache.Sweeps != 2 {
		t.Errorf("cache invalidation sweeps = %d, want 2", st.Cache.Sweeps)
	}
	if st.Cache.Invalidated == 0 {
		t.Error("inserting a shortcut into a cached fragment must invalidate its entries eagerly")
	}
}

func TestServerRefusals(t *testing.T) {
	srv, _ := newGridServer(t, 4, 4, 2, Config{CacheCapacity: 16})
	if _, _, err := srv.Query(0, 15, dsa.EngineBitset); err == nil {
		t.Error("bitset cost query accepted")
	}
	if _, _, err := srv.Query(0, 15, dsa.Engine(9)); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, _, err := srv.Query(0, 4096, dsa.EngineDijkstra); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(newOracle(t, mustStore(t)), Config{DefaultEngine: tcq.Engine(7)}); err == nil {
		t.Error("unknown default engine accepted")
	}
}

func mustStore(t *testing.T) *dsa.Store {
	t.Helper()
	g, err := gen.Grid(gen.GridConfig{Width: 3, Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(res.Fragmentation, dsa.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReachabilityStoreRefusesCostQueries mirrors the library contract
// through the serving layer.
func TestReachabilityStoreRefusesCostQueries(t *testing.T) {
	g, err := gen.Grid(gen.GridConfig{Width: 4, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsa.Build(res.Fragmentation, dsa.Options{Problem: dsa.ProblemReachability})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(st, Config{CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.Query(0, 15, dsa.EngineDijkstra); err == nil {
		t.Error("reachability store answered a cost query")
	}
	got, _, err := srv.Connected(0, 15, dsa.EngineBitset)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("grid corners not connected")
	}
}

// TestHTTPEndpoints drives the JSON API end to end over httptest.
func TestHTTPEndpoints(t *testing.T) {
	srv, st := newGridServer(t, 6, 6, 3, Config{CacheCapacity: 256})
	oracle := newOracle(t, st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string, wantStatus int, into any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
	}

	get("/healthz", http.StatusOK, nil)

	var qr QueryResponse
	get("/query?src=0&dst=35", http.StatusOK, &qr)
	want, err := oracle.Query(0, 35, dsa.EngineDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Reachable || qr.Cost == nil || math.Abs(*qr.Cost-want.Cost) > 1e-9 {
		t.Errorf("HTTP query 0->35 = %+v, oracle cost %v", qr, want.Cost)
	}

	var cr ConnectedResponse
	get("/connected?src=0&dst=35&engine=bitset", http.StatusOK, &cr)
	if !cr.Connected {
		t.Error("corners not connected over HTTP")
	}

	var sr Stats
	get("/stats", http.StatusOK, &sr)
	if sr.Nodes != 36 || sr.Sites != 3 {
		t.Errorf("stats nodes=%d sites=%d, want 36 and 3", sr.Nodes, sr.Sites)
	}
	if sr.Queries == 0 || sr.ConnectedQueries == 0 {
		t.Errorf("stats did not count queries: %+v", sr)
	}

	// Client errors.
	get("/query?src=zero&dst=1", http.StatusBadRequest, nil)
	get("/query?src=0&dst=1&engine=warp", http.StatusBadRequest, nil)
	get("/query?src=0&dst=1&engine=bitset", http.StatusBadRequest, nil)
	get("/query?src=0&dst=1&mode=sideways", http.StatusBadRequest, nil)
	get("/query?src=0&dst=999", http.StatusBadRequest, nil)

	// Pipelined mode over HTTP: defaults to multi-source dijkstra,
	// accepts the vector-seeded dense kernel, and refuses engines
	// without a seeded primitive rather than silently ignoring them.
	var pr QueryResponse
	get("/query?src=0&dst=35&mode=pipelined", http.StatusOK, &pr)
	if !pr.Reachable || pr.Cost == nil || math.Abs(*pr.Cost-want.Cost) > 1e-9 {
		t.Errorf("pipelined HTTP query = %+v, oracle cost %v", pr, want.Cost)
	}
	if pr.Engine != "dijkstra" {
		t.Errorf("pipelined engine = %q, want dijkstra", pr.Engine)
	}
	var pd QueryResponse
	get("/query?src=0&dst=35&mode=pipelined&engine=dense", http.StatusOK, &pd)
	if !pd.Reachable || pd.Cost == nil || math.Abs(*pd.Cost-want.Cost) > 1e-9 {
		t.Errorf("pipelined dense HTTP query = %+v, oracle cost %v", pd, want.Cost)
	}
	if pd.Engine != "dense" {
		t.Errorf("pipelined dense engine = %q, want dense", pd.Engine)
	}
	// A pooled dense cost query shares the leg cache like any engine.
	var dq QueryResponse
	get("/query?src=0&dst=35&engine=dense", http.StatusOK, &dq)
	if !dq.Reachable || dq.Cost == nil || math.Abs(*dq.Cost-want.Cost) > 1e-9 {
		t.Errorf("dense HTTP query = %+v, oracle cost %v", dq, want.Cost)
	}
	get("/query?src=0&dst=35&mode=pipelined&engine=seminaive", http.StatusBadRequest, nil)
	get("/query?src=0&dst=35&mode=pipelined&engine=bitset", http.StatusBadRequest, nil)

	// Update round trip: insert then delete a shortcut.
	post := func(body string, wantStatus int, into any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST /update %s: status %d, want %d", body, resp.StatusCode, wantStatus)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatal(err)
			}
		}
	}
	var ur UpdateResponse
	post(`{"op":"insert","fragment":0,"from":0,"to":35,"weight":0.5}`, http.StatusOK, &ur)
	if ur.Epoch != 1 {
		t.Errorf("epoch after insert = %d, want 1", ur.Epoch)
	}
	get("/query?src=0&dst=35", http.StatusOK, &qr)
	if qr.Cost == nil || math.Abs(*qr.Cost-0.5) > 1e-9 {
		t.Errorf("cost after HTTP insert = %v, want 0.5", qr.Cost)
	}
	post(`{"op":"delete","fragment":0,"from":0,"to":35,"weight":0.5}`, http.StatusOK, &ur)
	post(`{"op":"teleport","fragment":0,"from":0,"to":1}`, http.StatusBadRequest, nil)
	post(`not json`, http.StatusBadRequest, nil)
}

// TestHTTPPipelinedHonorsDenseDefault: with a dense default engine,
// mode=pipelined with no engine param runs dense (matching pooled
// mode) instead of silently reverting to dijkstra.
func TestHTTPPipelinedHonorsDenseDefault(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 3, Config{DefaultEngine: tcq.EngineDense, CacheCapacity: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query?src=0&dst=35&mode=pipelined")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Engine != "dense" || !qr.Reachable {
		t.Errorf("pipelined with dense default = engine %q, reachable %v; want dense, true", qr.Engine, qr.Reachable)
	}
}

// TestRunLoadAgainstServer exercises the load driver end to end: a
// repeated random workload must produce zero errors and mismatches and
// a warm second pass.
func TestRunLoadAgainstServer(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 3, Config{CacheCapacity: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rep, err := RunLoad(LoadConfig{
		BaseURL:         ts.URL,
		Requests:        40,
		Parallel:        4,
		Nodes:           36,
		Seed:            11,
		Repeat:          2,
		ExpectReachable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("load run: %+v", rep)
	}
	if rep.Requests != 80 {
		t.Errorf("requests = %d, want 80", rep.Requests)
	}
	if rep.HitRate == 0 {
		t.Error("repeated workload produced no cache hits")
	}
	if rep.P50 == 0 || rep.Max < rep.P50 {
		t.Errorf("implausible percentiles: %+v", rep)
	}
}
