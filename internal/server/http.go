package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
)

// QueryResponse is the JSON answer of /query.
type QueryResponse struct {
	Source    int  `json:"source"`
	Target    int  `json:"target"`
	Reachable bool `json:"reachable"`
	// Cost is the shortest-path cost; absent when unreachable (the
	// library's +Inf does not survive JSON).
	Cost             *float64 `json:"cost,omitempty"`
	BestChain        []int    `json:"best_chain,omitempty"`
	ChainsConsidered int      `json:"chains_considered"`
	SameFragment     bool     `json:"same_fragment"`
	Truncated        bool     `json:"truncated"`
	Engine           string   `json:"engine"`
	Mode             string   `json:"mode"`
	ElapsedUS        int64    `json:"elapsed_us"`
	CacheHits        int      `json:"cache_hits"`
	CacheMisses      int      `json:"cache_misses"`
	TuplesShipped    int      `json:"tuples_shipped"`
}

// ConnectedResponse is the JSON answer of /connected.
type ConnectedResponse struct {
	Source      int    `json:"source"`
	Target      int    `json:"target"`
	Connected   bool   `json:"connected"`
	Engine      string `json:"engine"`
	ElapsedUS   int64  `json:"elapsed_us"`
	CacheHits   int    `json:"cache_hits"`
	CacheMisses int    `json:"cache_misses"`
}

// UpdateRequest is the JSON body of /update. Weight defaults to 1 on
// insert; on delete the (from, to, weight) triple must match a stored
// fragment edge exactly.
type UpdateRequest struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Fragment is the fragment whose edge set changes.
	Fragment int     `json:"fragment"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Weight   float64 `json:"weight"`
}

// UpdateResponse is the JSON answer of /update.
type UpdateResponse struct {
	Op             string `json:"op"`
	Epoch          uint64 `json:"epoch"`
	RecomputedSets int    `json:"recomputed_sets"`
	DijkstraRuns   int    `json:"dijkstra_runs"`
	LocalOnly      bool   `json:"local_only"`
	ElapsedUS      int64  `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API: /query, /connected, /update, /stats
// and /healthz, all JSON. Engine selection is per-request via
// ?engine=dijkstra|seminaive|bitset (default: the server's configured
// engine); /query additionally accepts ?mode=pooled|pipelined.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /connected", s.handleConnected)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parsePair extracts the src and dst query parameters.
func parsePair(r *http.Request) (graph.NodeID, graph.NodeID, error) {
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		return 0, 0, fmt.Errorf("bad or missing src: %v", err)
	}
	dst, err := strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		return 0, 0, fmt.Errorf("bad or missing dst: %v", err)
	}
	return graph.NodeID(src), graph.NodeID(dst), nil
}

// parseEngine resolves the optional engine parameter against the
// server default.
func (s *Server) parseEngine(r *http.Request) (dsa.Engine, error) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		return s.cfg.DefaultEngine, nil
	}
	return dsa.ParseEngine(name)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, dst, err := parsePair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := s.parseEngine(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "pooled"
	}
	var (
		res *dsa.Result
		qs  QueryStats
	)
	switch mode {
	case "pooled":
		res, qs, err = s.Query(src, dst, engine)
	case "pipelined":
		// Pipelined evaluation is vector-seeded, so only the engines
		// with a multi-source seeded primitive qualify: dijkstra and
		// dense. With no explicit selection, honor the server's
		// configured default when it qualifies (as mode=pooled does)
		// and fall back to dijkstra otherwise; an explicit non-seeded
		// engine would be silently ignored — refuse it instead.
		if r.URL.Query().Get("engine") == "" {
			if engine != dsa.EngineDense {
				engine = dsa.EngineDijkstra
			}
		} else if engine != dsa.EngineDijkstra && engine != dsa.EngineDense {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("mode=pipelined needs a vector-seeded engine (dijkstra or dense), not %q", engine))
			return
		}
		res, err = s.QueryPipelined(src, dst, engine)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want pooled or pipelined)", mode))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := QueryResponse{
		Source:           int(res.Source),
		Target:           int(res.Target),
		Reachable:        res.Reachable,
		BestChain:        res.BestChain,
		ChainsConsidered: res.ChainsConsidered,
		SameFragment:     res.SameFragment,
		Truncated:        res.Truncated,
		Engine:           engine.String(),
		Mode:             mode,
		ElapsedUS:        res.Elapsed.Microseconds(),
		CacheHits:        qs.CacheHits,
		CacheMisses:      qs.CacheMisses,
		TuplesShipped:    res.TuplesShipped,
	}
	if res.Reachable {
		cost := res.Cost
		resp.Cost = &cost
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	src, dst, err := parsePair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := s.parseEngine(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	connected, qs, err := s.Connected(src, dst, engine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ConnectedResponse{
		Source:      int(src),
		Target:      int(dst),
		Connected:   connected,
		Engine:      engine.String(),
		ElapsedUS:   time.Since(start).Microseconds(),
		CacheHits:   qs.CacheHits,
		CacheMisses: qs.CacheMisses,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad update body: %v", err))
		return
	}
	e := graph.Edge{From: graph.NodeID(req.From), To: graph.NodeID(req.To), Weight: req.Weight}
	start := time.Now()
	var (
		stats dsa.UpdateStats
		err   error
	)
	switch req.Op {
	case "insert":
		if e.Weight == 0 {
			e.Weight = 1
		}
		stats, err = s.InsertEdge(req.Fragment, e)
	case "delete":
		stats, err = s.DeleteEdge(req.Fragment, e)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q (want insert or delete)", req.Op))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	epoch := s.st.Epoch()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, UpdateResponse{
		Op:             req.Op,
		Epoch:          epoch,
		RecomputedSets: stats.RecomputedSets,
		DijkstraRuns:   stats.DijkstraRuns,
		LocalOnly:      stats.LocalOnly,
		ElapsedUS:      time.Since(start).Microseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
