package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// QueryResponse is the JSON answer of /query.
type QueryResponse struct {
	Source    int  `json:"source"`
	Target    int  `json:"target"`
	Reachable bool `json:"reachable"`
	// Cost is the shortest-path cost; absent when unreachable (the
	// library's +Inf does not survive JSON).
	Cost             *float64 `json:"cost,omitempty"`
	BestChain        []int    `json:"best_chain,omitempty"`
	ChainsConsidered int      `json:"chains_considered"`
	SameFragment     bool     `json:"same_fragment"`
	Truncated        bool     `json:"truncated"`
	Engine           string   `json:"engine"`
	Mode             string   `json:"mode"`
	ElapsedUS        int64    `json:"elapsed_us"`
	CacheHits        int      `json:"cache_hits"`
	CacheMisses      int      `json:"cache_misses"`
	TuplesShipped    int      `json:"tuples_shipped"`
}

// ConnectedResponse is the JSON answer of /connected.
type ConnectedResponse struct {
	Source      int    `json:"source"`
	Target      int    `json:"target"`
	Connected   bool   `json:"connected"`
	Engine      string `json:"engine"`
	ElapsedUS   int64  `json:"elapsed_us"`
	CacheHits   int    `json:"cache_hits"`
	CacheMisses int    `json:"cache_misses"`
}

// UpdateRequest is the JSON body of /update. Weight defaults to 1 on
// insert; on delete the (from, to, weight) triple must match a stored
// fragment edge exactly.
type UpdateRequest struct {
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// Fragment is the fragment whose edge set changes.
	Fragment int     `json:"fragment"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Weight   float64 `json:"weight"`
}

// UpdateResponse is the JSON answer of /update.
type UpdateResponse struct {
	Op             string `json:"op"`
	Epoch          uint64 `json:"epoch"`
	RecomputedSets int    `json:"recomputed_sets"`
	DijkstraRuns   int    `json:"dijkstra_runs"`
	LocalOnly      bool   `json:"local_only"`
	ElapsedUS      int64  `json:"elapsed_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API. The versioned surface is the facade
// on the wire: POST /v1/query and POST /v1/batch (JSON bodies with
// source/target sets, modes, auto-planned engines and typed error
// codes — see package tcq), and POST /v1/update (transactional op
// batches with per-op typed error codes). The unversioned GET
// endpoints /query and /connected remain as thin shims over the same
// facade for existing clients, alongside /update (a single-op shim
// over the batch path), /stats and /healthz. GET /metrics serves the
// deployment's Prometheus registry in exposition text format.
//
// Every route is instrumented: tc_http_requests_total and
// tc_http_errors_total count per endpoint pattern, and
// tc_inflight_requests tracks requests currently being served.
func (s *Server) Handler() http.Handler {
	m := s.metrics
	metricsHandler := m.reg.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", m.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", m.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("POST /v1/query", m.instrument("/v1/query", s.handleV1Query))
	mux.HandleFunc("POST /v1/batch", m.instrument("/v1/batch", s.handleV1Batch))
	mux.HandleFunc("POST /v1/update", m.instrument("/v1/update", s.handleV1Update))
	mux.HandleFunc("POST /v1/leg", m.instrument("/v1/leg", s.handleV1Leg))
	mux.HandleFunc("GET /query", m.instrument("/query", s.handleQuery))
	mux.HandleFunc("GET /connected", m.instrument("/connected", s.handleConnected))
	mux.HandleFunc("POST /update", m.instrument("/update", s.handleUpdate))
	mux.HandleFunc("GET /stats", m.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", m.instrument("/metrics", metricsHandler.ServeHTTP))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parsePair extracts the src and dst query parameters.
func parsePair(r *http.Request) (graph.NodeID, graph.NodeID, error) {
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad or missing src: %v", tcq.ErrInvalidRequest, err)
	}
	dst, err := strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad or missing dst: %v", tcq.ErrInvalidRequest, err)
	}
	return graph.NodeID(src), graph.NodeID(dst), nil
}

// parseEngine resolves the optional engine parameter against the
// server default (tcq.EngineAuto delegates to the planner).
func (s *Server) parseEngine(r *http.Request) (tcq.Engine, error) {
	name := r.URL.Query().Get("engine")
	if name == "" {
		return s.cfg.DefaultEngine, nil
	}
	return tcq.ParseEngine(name)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyzResponse is the GET /readyz body: liveness split from cluster
// readiness. A degraded node still answers every query correctly
// (remote-owned legs fall back to local execution), so readyz reports
// degradation as data with HTTP 200 — restarting the one healthy
// survivor because its PEERS are down would be exactly wrong.
type ReadyzResponse struct {
	// Status is "ok", or "degraded" when any peer breaker is not closed.
	Status string `json:"status"`
	// Breakers maps each remote peer to its breaker state; absent on
	// single-node deployments.
	Breakers map[string]string `json:"breakers,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyzResponse{Status: "ok"}
	if s.cluster != nil {
		resp.Breakers = s.cluster.BreakerStates()
		if s.cluster.Degraded() {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQuery is the legacy unversioned shim: it translates the GET
// parameters into a facade request and answers in the historical
// response shape. New clients should POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, dst, err := parsePair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := s.parseEngine(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "pooled"
	}
	var tmode tcq.Mode
	switch mode {
	case "pooled":
		tmode = tcq.ModeCost
	case "pipelined":
		tmode = tcq.ModePipelined
		// Historical behaviour: with no explicit engine selection, a
		// configured default that cannot pipeline falls back to
		// dijkstra (auto qualifies — the planner only picks
		// vector-seeded engines for pipelined mode).
		if r.URL.Query().Get("engine") == "" &&
			engine != tcq.EngineAuto && engine != tcq.EngineDijkstra && engine != tcq.EngineDense {
			engine = tcq.EngineDijkstra
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown mode %q (want pooled or pipelined)", tcq.ErrInvalidRequest, mode))
		return
	}
	res, err := s.facade.Query(r.Context(), tcq.Request{
		Sources: []int{int(src)},
		Targets: []int{int(dst)},
		Mode:    tmode,
		Engine:  engine,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ans := res.Answers[0]
	resp := QueryResponse{
		Source:           ans.Source,
		Target:           ans.Target,
		Reachable:        ans.Reachable,
		BestChain:        ans.BestChain,
		ChainsConsidered: ans.ChainsConsidered,
		SameFragment:     ans.SameFragment,
		Truncated:        ans.Truncated,
		Engine:           res.Explain.Engine.String(),
		Mode:             mode,
		ElapsedUS:        ans.Elapsed.Microseconds(),
		CacheHits:        res.CacheHits,
		CacheMisses:      res.CacheMisses,
		TuplesShipped:    ans.TuplesShipped,
	}
	if ans.Reachable {
		cost := ans.Cost
		resp.Cost = &cost
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleConnected is the legacy unversioned shim for the reachability
// query; new clients should POST /v1/query with mode connectivity.
func (s *Server) handleConnected(w http.ResponseWriter, r *http.Request) {
	src, dst, err := parsePair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	engine, err := s.parseEngine(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	res, err := s.facade.Query(r.Context(), tcq.Request{
		Sources: []int{int(src)},
		Targets: []int{int(dst)},
		Mode:    tcq.ModeConnectivity,
		Engine:  engine,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ConnectedResponse{
		Source:      int(src),
		Target:      int(dst),
		Connected:   res.Answers[0].Reachable,
		Engine:      res.Explain.Engine.String(),
		ElapsedUS:   time.Since(start).Microseconds(),
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: bad update body: %v", tcq.ErrInvalidRequest, err))
		return
	}
	e := graph.Edge{From: graph.NodeID(req.From), To: graph.NodeID(req.To), Weight: req.Weight}
	start := time.Now()
	var (
		stats tcq.UpdateStats
		err   error
	)
	switch req.Op {
	case "insert":
		if e.Weight == 0 {
			e.Weight = 1
		}
		stats, err = s.InsertEdge(req.Fragment, e)
	case "delete":
		stats, err = s.DeleteEdge(req.Fragment, e)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: unknown op %q (want insert or delete)", tcq.ErrInvalidRequest, req.Op))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	epoch := s.ds.Epoch()
	// The legacy shim keeps clusters coherent too: fan the single-op
	// transaction out to every peer (unless this IS a peer's fan-out).
	if _, ferr := s.fanOutUpdate(r, []cluster.UpdateOp{{Op: req.Op, Fragment: req.Fragment, From: req.From, To: req.To, Weight: e.Weight}}, epoch); ferr != nil {
		writeV1Error(w, ferr)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{
		Op:             req.Op,
		Epoch:          epoch,
		RecomputedSets: stats.RecomputedSets,
		DijkstraRuns:   stats.DijkstraRuns,
		LocalOnly:      stats.LocalOnly,
		ElapsedUS:      time.Since(start).Microseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
